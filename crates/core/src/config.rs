//! Configuration of the sequential learning engine.

use crate::budget::WorkBudget;
use sla_sim::EquivConfig;

/// Tuning knobs of [`crate::SequentialLearner`].
///
/// The defaults reproduce the configuration used in the paper's experiments:
/// 50-frame simulation, single- and multiple-node learning, gate-equivalence
/// assistance, per-clock-class analysis and the real-circuit propagation rules.
#[derive(Debug, Clone, PartialEq)]
pub struct LearnConfig {
    /// Maximum number of time frames a forward simulation may span (paper: 50).
    pub max_frames: usize,
    /// Run the multiple-node learning phase (paper §3.1, second half).
    pub multiple_node: bool,
    /// Use combinational gate equivalences to push values further.
    pub gate_equivalence: bool,
    /// Partition sequential elements into clock classes and learn per class
    /// (paper §3.3.2). Disable only for single-clock experiments.
    pub partition_by_clock_class: bool,
    /// Apply the set/reset and multiple-port-latch propagation rules
    /// (paper §3.3.1 / §3.3.3). Disabling them is unsound on real circuits and
    /// exists only for ablation benches.
    pub respect_seq_rules: bool,
    /// Also collect relations between nodes at different time frames. They are
    /// reported separately and are not used by the ATPG integration.
    pub learn_cross_frame: bool,
    /// Compute a bounded transitive closure of the learned implications after
    /// learning (0 disables).
    pub closure_limit: usize,
    /// Configuration of the gate-equivalence detection pass.
    pub equiv_config: EquivConfig,
    /// Upper bound on the number of multiple-node learning targets (0 = no
    /// bound). Large industrial circuits can have very many targets; the bound
    /// keeps preprocessing time predictable while learning the most supported
    /// targets first.
    pub max_multi_node_targets: usize,
    /// Deterministic work budget for the whole learning run: one unit per
    /// stem injection and one per multiple-node learning target. When the
    /// budget runs out, the remaining stems/targets are skipped — the
    /// truncation happens *before* the parallel passes, so the learned
    /// database is bit-identical for every `SLA_THREADS`. Unlimited by
    /// default.
    pub budget: WorkBudget,
}

impl Default for LearnConfig {
    fn default() -> Self {
        LearnConfig {
            max_frames: 50,
            multiple_node: true,
            gate_equivalence: true,
            partition_by_clock_class: true,
            respect_seq_rules: true,
            learn_cross_frame: false,
            closure_limit: 0,
            equiv_config: EquivConfig::default(),
            max_multi_node_targets: 0,
            budget: WorkBudget::unlimited(),
        }
    }
}

impl LearnConfig {
    /// The paper's reference configuration (identical to `default()`).
    pub fn paper() -> Self {
        LearnConfig::default()
    }

    /// Single-node learning only (the first ablation of Table 2).
    pub fn single_node_only() -> Self {
        LearnConfig {
            multiple_node: false,
            gate_equivalence: false,
            ..LearnConfig::default()
        }
    }

    /// Single- and multiple-node learning without gate-equivalence assistance
    /// (the second ablation of Table 2).
    pub fn without_equivalence() -> Self {
        LearnConfig {
            gate_equivalence: false,
            ..LearnConfig::default()
        }
    }

    /// Purely combinational learning: simulation confined to a single frame.
    /// Used to isolate what only sequential analysis can extract.
    pub fn combinational_only() -> Self {
        LearnConfig {
            max_frames: 1,
            ..LearnConfig::default()
        }
    }

    /// Sets the frame limit, returning the modified configuration.
    pub fn with_max_frames(mut self, frames: usize) -> Self {
        self.max_frames = frames.max(1);
        self
    }

    /// Sets the work budget, returning the modified configuration.
    pub fn with_budget(mut self, budget: WorkBudget) -> Self {
        self.budget = budget;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_settings() {
        let c = LearnConfig::default();
        assert_eq!(c.max_frames, 50);
        assert!(c.multiple_node);
        assert!(c.gate_equivalence);
        assert!(c.partition_by_clock_class);
        assert!(c.respect_seq_rules);
        assert!(!c.learn_cross_frame);
        assert_eq!(LearnConfig::paper(), c);
    }

    #[test]
    fn ablation_constructors() {
        assert!(!LearnConfig::single_node_only().multiple_node);
        assert!(!LearnConfig::single_node_only().gate_equivalence);
        assert!(!LearnConfig::without_equivalence().gate_equivalence);
        assert!(LearnConfig::without_equivalence().multiple_node);
        assert_eq!(LearnConfig::combinational_only().max_frames, 1);
        assert_eq!(LearnConfig::default().with_max_frames(0).max_frames, 1);
        assert_eq!(LearnConfig::default().with_max_frames(7).max_frames, 7);
    }

    #[test]
    fn budget_defaults_to_unlimited() {
        assert!(LearnConfig::default().budget.is_unlimited());
        let c = LearnConfig::default().with_budget(WorkBudget::units(5));
        assert_eq!(c.budget, WorkBudget::units(5));
    }
}
