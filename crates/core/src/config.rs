//! Configuration of the sequential learning engine.
//!
//! [`LearnOptions`] is the session-facing configuration type: construct it
//! with [`LearnOptions::builder`] or one of the named presets, tweak an
//! existing value with [`LearnOptions::to_builder`]. The struct is
//! `#[non_exhaustive]` so new knobs can be added without breaking downstream
//! construction sites; the fields stay public for reading. `LearnConfig`
//! remains as an alias for the pre-session name.

use crate::budget::WorkBudget;
use sla_sim::EquivConfig;

/// Tuning knobs of [`crate::SequentialLearner`].
///
/// The defaults reproduce the configuration used in the paper's experiments:
/// 50-frame simulation, single- and multiple-node learning, gate-equivalence
/// assistance, per-clock-class analysis and the real-circuit propagation rules.
///
/// Non-exhaustive: build one with [`LearnOptions::builder`] or a preset like
/// [`LearnOptions::paper`]; the fields are public for reading only.
///
/// ```
/// use sla_core::LearnOptions;
///
/// let opts = LearnOptions::builder().max_frames(20).cross_frame(true).build();
/// assert_eq!(opts.max_frames, 20);
/// assert!(opts.learn_cross_frame);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct LearnOptions {
    /// Maximum number of time frames a forward simulation may span (paper: 50).
    pub max_frames: usize,
    /// Run the multiple-node learning phase (paper §3.1, second half).
    pub multiple_node: bool,
    /// Use combinational gate equivalences to push values further.
    pub gate_equivalence: bool,
    /// Partition sequential elements into clock classes and learn per class
    /// (paper §3.3.2). Disable only for single-clock experiments.
    pub partition_by_clock_class: bool,
    /// Apply the set/reset and multiple-port-latch propagation rules
    /// (paper §3.3.1 / §3.3.3). Disabling them is unsound on real circuits and
    /// exists only for ablation benches.
    pub respect_seq_rules: bool,
    /// Also collect relations between nodes at different time frames. They are
    /// reported separately and are not used by the ATPG integration.
    pub learn_cross_frame: bool,
    /// Compute a bounded transitive closure of the learned implications after
    /// learning (0 disables).
    pub closure_limit: usize,
    /// Configuration of the gate-equivalence detection pass.
    pub equiv_config: EquivConfig,
    /// Upper bound on the number of multiple-node learning targets (0 = no
    /// bound). Large industrial circuits can have very many targets; the bound
    /// keeps preprocessing time predictable while learning the most supported
    /// targets first.
    pub max_multi_node_targets: usize,
    /// Deterministic work budget for the whole learning run: one unit per
    /// stem injection and one per multiple-node learning target. When the
    /// budget runs out, the remaining stems/targets are skipped — the
    /// truncation happens *before* the parallel passes, so the learned
    /// database is bit-identical for every `SLA_THREADS`. Unlimited by
    /// default.
    pub budget: WorkBudget,
}

/// Pre-session name of [`LearnOptions`], kept so existing code keeps reading.
pub type LearnConfig = LearnOptions;

impl Default for LearnOptions {
    fn default() -> Self {
        LearnOptions {
            max_frames: 50,
            multiple_node: true,
            gate_equivalence: true,
            partition_by_clock_class: true,
            respect_seq_rules: true,
            learn_cross_frame: false,
            closure_limit: 0,
            equiv_config: EquivConfig::default(),
            max_multi_node_targets: 0,
            budget: WorkBudget::unlimited(),
        }
    }
}

impl LearnOptions {
    /// Starts a builder from the defaults.
    pub fn builder() -> LearnOptionsBuilder {
        LearnOptionsBuilder {
            opts: LearnOptions::default(),
        }
    }

    /// Starts a builder from this value, for tweaking a knob or two.
    pub fn to_builder(&self) -> LearnOptionsBuilder {
        LearnOptionsBuilder { opts: self.clone() }
    }

    /// The paper's reference configuration (identical to `default()`).
    pub fn paper() -> Self {
        LearnOptions::default()
    }

    /// Single-node learning only (the first ablation of Table 2).
    pub fn single_node_only() -> Self {
        Self::builder()
            .multiple_node(false)
            .gate_equivalence(false)
            .build()
    }

    /// Single- and multiple-node learning without gate-equivalence assistance
    /// (the second ablation of Table 2).
    pub fn without_equivalence() -> Self {
        Self::builder().gate_equivalence(false).build()
    }

    /// Purely combinational learning: simulation confined to a single frame.
    /// Used to isolate what only sequential analysis can extract.
    pub fn combinational_only() -> Self {
        Self::builder().max_frames(1).build()
    }

    /// Sets the frame limit, returning the modified configuration.
    #[deprecated(note = "use to_builder().max_frames(frames).build()")]
    pub fn with_max_frames(self, frames: usize) -> Self {
        self.to_builder().max_frames(frames).build()
    }

    /// Sets the work budget, returning the modified configuration.
    #[deprecated(note = "use to_builder().budget(budget).build()")]
    pub fn with_budget(self, budget: WorkBudget) -> Self {
        self.to_builder().budget(budget).build()
    }
}

/// Builder for [`LearnOptions`]; see [`LearnOptions::builder`].
#[derive(Debug, Clone)]
pub struct LearnOptionsBuilder {
    opts: LearnOptions,
}

impl LearnOptionsBuilder {
    /// Frame limit of forward simulation (clamped to at least one frame).
    pub fn max_frames(mut self, frames: usize) -> Self {
        self.opts.max_frames = frames.max(1);
        self
    }

    /// Whether the multiple-node learning phase runs.
    pub fn multiple_node(mut self, enabled: bool) -> Self {
        self.opts.multiple_node = enabled;
        self
    }

    /// Whether gate-equivalence assistance runs.
    pub fn gate_equivalence(mut self, enabled: bool) -> Self {
        self.opts.gate_equivalence = enabled;
        self
    }

    /// Whether sequential elements are partitioned into clock classes.
    pub fn partition_by_clock_class(mut self, enabled: bool) -> Self {
        self.opts.partition_by_clock_class = enabled;
        self
    }

    /// Whether the set/reset and multi-port-latch propagation rules apply.
    pub fn respect_seq_rules(mut self, enabled: bool) -> Self {
        self.opts.respect_seq_rules = enabled;
        self
    }

    /// Whether cross-frame relations are also collected.
    pub fn cross_frame(mut self, enabled: bool) -> Self {
        self.opts.learn_cross_frame = enabled;
        self
    }

    /// Bounded transitive-closure limit (0 disables).
    pub fn closure_limit(mut self, limit: usize) -> Self {
        self.opts.closure_limit = limit;
        self
    }

    /// Configuration of the gate-equivalence detection pass.
    pub fn equiv_config(mut self, config: EquivConfig) -> Self {
        self.opts.equiv_config = config;
        self
    }

    /// Upper bound on multiple-node learning targets (0 = no bound).
    pub fn max_multi_node_targets(mut self, bound: usize) -> Self {
        self.opts.max_multi_node_targets = bound;
        self
    }

    /// Deterministic work budget for the whole learning run.
    pub fn budget(mut self, budget: WorkBudget) -> Self {
        self.opts.budget = budget;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> LearnOptions {
        self.opts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_settings() {
        let c = LearnOptions::default();
        assert_eq!(c.max_frames, 50);
        assert!(c.multiple_node);
        assert!(c.gate_equivalence);
        assert!(c.partition_by_clock_class);
        assert!(c.respect_seq_rules);
        assert!(!c.learn_cross_frame);
        assert_eq!(LearnOptions::paper(), c);
    }

    #[test]
    fn ablation_constructors() {
        assert!(!LearnOptions::single_node_only().multiple_node);
        assert!(!LearnOptions::single_node_only().gate_equivalence);
        assert!(!LearnOptions::without_equivalence().gate_equivalence);
        assert!(LearnOptions::without_equivalence().multiple_node);
        assert_eq!(LearnOptions::combinational_only().max_frames, 1);
        assert_eq!(LearnOptions::builder().max_frames(0).build().max_frames, 1);
        assert_eq!(LearnOptions::builder().max_frames(7).build().max_frames, 7);
    }

    #[test]
    fn builder_covers_every_knob() {
        let c = LearnOptions::builder()
            .max_frames(9)
            .multiple_node(false)
            .gate_equivalence(false)
            .partition_by_clock_class(false)
            .respect_seq_rules(false)
            .cross_frame(true)
            .closure_limit(3)
            .equiv_config(EquivConfig::default())
            .max_multi_node_targets(11)
            .budget(WorkBudget::units(5))
            .build();
        assert_eq!(c.max_frames, 9);
        assert!(!c.multiple_node);
        assert!(!c.gate_equivalence);
        assert!(!c.partition_by_clock_class);
        assert!(!c.respect_seq_rules);
        assert!(c.learn_cross_frame);
        assert_eq!(c.closure_limit, 3);
        assert_eq!(c.max_multi_node_targets, 11);
        assert_eq!(c.budget, WorkBudget::units(5));
        assert_eq!(c.to_builder().build(), c, "to_builder round-trips");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_constructors_forward_to_the_builder() {
        assert_eq!(
            LearnConfig::default().with_max_frames(0).max_frames,
            LearnOptions::builder().max_frames(0).build().max_frames
        );
        assert_eq!(
            LearnConfig::default().with_budget(WorkBudget::units(5)),
            LearnOptions::builder().budget(WorkBudget::units(5)).build()
        );
        assert!(LearnConfig::default().budget.is_unlimited());
    }
}
