//! The sequential learning engine: orchestrates single-node learning, tie
//! extraction, multiple-node learning, gate-equivalence assistance and the
//! per-clock-class real-circuit handling.

use crate::classes::{clock_classes, ClockClass};
use crate::config::LearnConfig;
use crate::db::{ImplicationDb, RelationCounts};
use crate::relation::{CrossImplication, Implication};
use crate::tie::{TieKind, TiedGate};
use crate::{multi_node, single_node, Result};
use sla_netlist::stems::fanout_stems;
use sla_netlist::{Netlist, NodeId};
use sla_sim::{find_equivalences, EquivClasses, Fault, InjectionSim, SimOptions};
use std::collections::BTreeMap;
use std::time::Duration;

/// Summary statistics of one learning run (the quantities reported by Table 3
/// of the paper, plus engine-internal counters).
#[derive(Debug, Clone, Default)]
pub struct LearnStats {
    /// Number of fanout stems injected.
    pub stems: usize,
    /// Number of clock classes processed.
    pub classes: usize,
    /// Number of multiple-node learning targets simulated.
    pub multi_node_targets: usize,
    /// All learned same-frame relations by kind.
    pub total: RelationCounts,
    /// Relations that required sequential (multi-frame) analysis — what the
    /// paper reports, isolating the contribution of sequential learning.
    pub sequential: RelationCounts,
    /// Tied gates proved combinationally.
    pub tied_combinational: usize,
    /// Tied gates that required sequential analysis.
    pub tied_sequential: usize,
    /// Cross-frame relations collected (when enabled).
    pub cross_frame: usize,
    /// Work units actually spent (stem injections + multiple-node targets).
    /// A pure function of the netlist and configuration, identical for every
    /// thread count.
    pub budget_spent: u64,
    /// `true` when a finite [`crate::WorkBudget`] cut the run short: stems or
    /// multiple-node targets were skipped. Always `false` under the default
    /// unlimited budget.
    pub budget_exhausted: bool,
    /// Wall-clock learning time.
    pub cpu: Duration,
}

/// The complete outcome of a learning run.
#[derive(Debug, Clone, Default)]
pub struct LearnResult {
    /// Learned same-frame implications (with contrapositive closure).
    pub implications: ImplicationDb,
    /// Cross-frame relations (empty unless requested in the configuration).
    pub cross_frame: Vec<CrossImplication>,
    /// Tied gates, deduplicated.
    pub tied: Vec<TiedGate>,
    /// Run statistics.
    pub stats: LearnStats,
}

impl LearnResult {
    /// The invalid-state relations: learned same-frame relations whose two
    /// endpoints are both sequential elements.
    pub fn invalid_state_relations(&self, netlist: &Netlist) -> Vec<Implication> {
        self.implications
            .relations()
            .filter(|imp| {
                netlist.node(imp.antecedent.node).is_sequential()
                    && netlist.node(imp.consequent.node).is_sequential()
            })
            .collect()
    }

    /// The cross-frame relations in canonical export order: sorted and
    /// deduplicated. The raw [`LearnResult::cross_frame`] list repeats a
    /// relation once per deriving stem/frame pair; consumers that compile the
    /// relations into an index (the ATPG implication adjacency) want each
    /// logical fact once, in a deterministic order.
    pub fn cross_frame_deduped(&self) -> Vec<CrossImplication> {
        let mut out = self.cross_frame.clone();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Untestable stuck-at faults implied by the tied gates: a node tied to `v`
    /// makes its `stuck-at-v` fault undetectable.
    pub fn untestable_faults(&self) -> Vec<Fault> {
        self.tied.iter().map(|t| t.untestable_fault()).collect()
    }

    /// The tied gates as `(node, value)` constants, the form consumed by
    /// simulators and the ATPG engine.
    pub fn tied_constants(&self) -> Vec<(NodeId, bool)> {
        self.tied.iter().map(|t| (t.node, t.value)).collect()
    }
}

/// The sequential learning engine (paper §3).
///
/// See the crate-level documentation for an end-to-end example.
#[derive(Debug, Clone)]
pub struct SequentialLearner<'a> {
    netlist: &'a Netlist,
    config: LearnConfig,
}

impl<'a> SequentialLearner<'a> {
    /// Creates a learner for `netlist` with the given configuration.
    pub fn new(netlist: &'a Netlist, config: LearnConfig) -> Self {
        SequentialLearner { netlist, config }
    }

    /// The netlist being learned.
    pub fn netlist(&self) -> &'a Netlist {
        self.netlist
    }

    /// The active configuration.
    pub fn config(&self) -> &LearnConfig {
        &self.config
    }

    /// Runs the complete learning flow and returns every learned artifact.
    ///
    /// The two simulation-heavy passes are sharded across worker threads; the
    /// count comes from the `SLA_THREADS` environment variable (default: the
    /// machine's available parallelism). Results are **bit-identical** for
    /// every thread count — `SLA_THREADS=1` is the exact legacy serial path,
    /// and [`SequentialLearner::learn_with_threads`] pins the count
    /// explicitly.
    ///
    /// # Errors
    ///
    /// Returns an error when the combinational logic cannot be levelized (the
    /// netlist contains a combinational cycle).
    pub fn learn(&self) -> Result<LearnResult> {
        self.learn_with_threads(sla_par::thread_count())
    }

    /// [`SequentialLearner::learn`] with an explicit worker-thread count.
    ///
    /// `threads <= 1` runs the serial single-thread pass; any larger count
    /// shards the single-node stem batches and speculatively pipelines the
    /// multiple-node batches, with ordered merges that keep the resulting
    /// database, ties and statistics bit-identical to the serial run.
    ///
    /// # Errors
    ///
    /// Returns an error when the combinational logic cannot be levelized (the
    /// netlist contains a combinational cycle).
    pub fn learn_with_threads(&self, threads: usize) -> Result<LearnResult> {
        let start = sla_netlist::wallclock::now();
        let netlist = self.netlist;
        let stems = fanout_stems(netlist);

        let equivalences: Option<EquivClasses> = if self.config.gate_equivalence {
            let classes = find_equivalences(netlist, &self.config.equiv_config)?;
            if classes.is_empty() {
                None
            } else {
                Some(classes)
            }
        } else {
            None
        };

        let classes: Vec<Option<ClockClass>> = if self.config.partition_by_clock_class {
            let cc = clock_classes(netlist);
            if cc.len() <= 1 {
                // A single class (or none): no mask needed, everything active.
                vec![None]
            } else {
                cc.into_iter().map(Some).collect()
            }
        } else {
            vec![None]
        };

        let options = SimOptions {
            max_frames: self.config.max_frames,
            stop_on_repeat: true,
            respect_seq_rules: self.config.respect_seq_rules,
        };

        let mut db = ImplicationDb::new();
        let mut cross_frame = Vec::new();
        let mut tied: BTreeMap<NodeId, TiedGate> = BTreeMap::new();
        let mut multi_targets = 0usize;
        // Budget accounting: one unit per stem injection, one per
        // multiple-node target. Truncation happens before the sharded passes
        // run, so the work list — and therefore the learned database — is a
        // pure function of the configuration, never of the schedule.
        let budget = self.config.budget;
        let mut budget_spent = 0u64;
        let mut budget_exhausted = false;

        for class in &classes {
            let mask: Option<Vec<bool>> = class.as_ref().map(|c| c.activation_mask(netlist));

            let mut sim = InjectionSim::new(netlist)?;
            if let Some(eq) = &equivalences {
                sim.set_equivalences(eq.clone());
            }
            sim.set_active_sequential(mask.clone());
            sim.set_tied(tied.values().map(|t| (t.node, t.value)).collect());

            // Restrict stem injections on sequential elements to the active
            // class: asserting a foreign-domain flip-flop as a stem would tie
            // its value to this class's time base.
            let mut class_stems: Vec<NodeId> = stems
                .iter()
                .copied()
                .filter(|&s| {
                    if !netlist.node(s).is_sequential() {
                        return true;
                    }
                    match &mask {
                        Some(m) => m[s.index()],
                        None => true,
                    }
                })
                .collect();
            let stem_cap = budget.remaining(budget_spent).min(usize::MAX as u64) as usize;
            if class_stems.len() > stem_cap {
                class_stems.truncate(stem_cap);
                budget_exhausted = true;
            }
            budget_spent += class_stems.len() as u64;

            // Phase 1: single-node learning, 32 stems (64 lanes) per packed
            // forward pass, sharded across threads by batch boundary.
            let single = single_node::run_sharded(
                &sim,
                &class_stems,
                &options,
                mask.as_deref(),
                self.config.learn_cross_frame,
                threads,
            );
            for (imp, seq) in single.implications {
                db.add(imp, seq);
            }
            cross_frame.extend(single.cross_frame);
            for tie in single.ties {
                record_tie(&mut tied, tie);
            }

            // Phase 2: tied gates feed the multiple-node phase.
            sim.set_tied(tied.values().map(|t| (t.node, t.value)).collect());

            if self.config.multiple_node {
                // The multiple-node pass accepts a target cap (0 = unbounded);
                // a finite budget tightens it to the remaining units. A zero
                // remainder means the phase is skipped entirely — passing 0
                // would mean "unbounded" to the pass.
                let remaining = budget.remaining(budget_spent);
                if remaining == 0 {
                    budget_exhausted = true;
                    continue;
                }
                let target_cap = if budget.is_unlimited() {
                    self.config.max_multi_node_targets
                } else {
                    let r = remaining.min(usize::MAX as u64) as usize;
                    if self.config.max_multi_node_targets == 0 {
                        r
                    } else {
                        self.config.max_multi_node_targets.min(r)
                    }
                };
                let multi = multi_node::run_sharded(
                    &mut sim,
                    &single.support,
                    &options,
                    mask.as_deref(),
                    target_cap,
                    self.config.learn_cross_frame,
                    threads,
                );
                multi_targets += multi.targets_processed;
                budget_spent += multi.targets_processed as u64;
                for (imp, seq) in multi.implications {
                    db.add(imp, seq);
                }
                cross_frame.extend(multi.cross_frame);
                for tie in multi.ties {
                    record_tie(&mut tied, tie);
                }
            }
        }

        if self.config.closure_limit > 0 {
            db.transitive_closure(self.config.closure_limit);
        }

        let mut tied: Vec<TiedGate> = tied.into_values().collect();
        tied.sort_by_key(|t| t.node);

        let stats = LearnStats {
            stems: stems.len(),
            classes: classes.len(),
            multi_node_targets: multi_targets,
            total: db.count_by_kind(netlist, false),
            sequential: db.count_by_kind(netlist, true),
            tied_combinational: tied
                .iter()
                .filter(|t| t.kind == TieKind::Combinational)
                .count(),
            tied_sequential: tied
                .iter()
                .filter(|t| t.kind == TieKind::Sequential)
                .count(),
            cross_frame: cross_frame.len(),
            budget_spent,
            budget_exhausted,
            cpu: start.elapsed(),
        };

        Ok(LearnResult {
            implications: db,
            cross_frame,
            tied,
            stats,
        })
    }
}

/// Deduplicates ties, preferring the combinational proof when a node is found
/// tied by both criteria.
fn record_tie(tied: &mut BTreeMap<NodeId, TiedGate>, tie: TiedGate) {
    match tied.get_mut(&tie.node) {
        Some(existing) => {
            if existing.value == tie.value && tie.kind == TieKind::Combinational {
                existing.kind = TieKind::Combinational;
            }
            // A node apparently tied to both values would mean an unsatisfiable
            // circuit; keep the first proof and ignore the contradiction.
        }
        None => {
            tied.insert(tie.node, tie);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sla_netlist::{GateType, NetlistBuilder, SeqInfo};
    use sla_sim::StateOracle;

    /// The mutually-exclusive flip-flop pair used across the test-suite.
    fn exclusive_pair() -> Netlist {
        let mut b = NetlistBuilder::new("pair");
        b.input("a");
        b.gate("na", GateType::Not, &["a"]).unwrap();
        b.gate("nf1", GateType::Not, &["f1"]).unwrap();
        b.gate("nf2", GateType::Not, &["f2"]).unwrap();
        b.gate("d1", GateType::And, &["a", "nf2"]).unwrap();
        b.gate("d2", GateType::And, &["na", "nf1"]).unwrap();
        b.dff("f1", "d1").unwrap();
        b.dff("f2", "d2").unwrap();
        b.output("f1").unwrap();
        b.output("f2").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn learns_the_invalid_state_relation() {
        let n = exclusive_pair();
        let result = SequentialLearner::new(&n, LearnConfig::default())
            .learn()
            .unwrap();
        let f1 = n.require("f1").unwrap();
        let f2 = n.require("f2").unwrap();
        assert!(result.implications.implies(f1, true, f2, false));
        assert!(result.implications.implies(f2, true, f1, false));
        assert!(result.stats.total.ff_ff >= 1);
        assert!(result.stats.sequential.ff_ff >= 1);
        let inv = result.invalid_state_relations(&n);
        assert!(!inv.is_empty());
    }

    #[test]
    fn every_learned_relation_is_sound_against_the_oracle() {
        let n = exclusive_pair();
        let result = SequentialLearner::new(&n, LearnConfig::default())
            .learn()
            .unwrap();
        let oracle = StateOracle::build(&n, StateOracle::DEFAULT_BIT_LIMIT).unwrap();
        for imp in result.implications.relations() {
            assert!(
                oracle.implication_holds(
                    imp.antecedent.node,
                    imp.antecedent.value,
                    imp.consequent.node,
                    imp.consequent.value
                ),
                "unsound relation {}",
                imp.describe(&n)
            );
        }
        for tie in &result.tied {
            assert!(
                oracle.tie_holds(tie.node, tie.value),
                "unsound tie {}",
                tie.describe(&n)
            );
        }
    }

    #[test]
    fn combinational_tie_is_found_and_counted() {
        let mut b = NetlistBuilder::new("tie");
        b.input("a");
        b.gate("na", GateType::Not, &["a"]).unwrap();
        b.gate("z", GateType::And, &["a", "na"]).unwrap();
        b.gate("d", GateType::Or, &["z", "q"]).unwrap();
        b.dff("q", "d").unwrap();
        b.output("q").unwrap();
        let n = b.build().unwrap();
        let result = SequentialLearner::new(&n, LearnConfig::default())
            .learn()
            .unwrap();
        let z = n.require("z").unwrap();
        assert!(result
            .tied
            .iter()
            .any(|t| t.node == z && !t.value && t.kind == TieKind::Combinational));
        assert!(result.stats.tied_combinational >= 1);
        assert_eq!(
            result.untestable_faults().len(),
            result.tied.len(),
            "one untestable fault per tied gate"
        );
    }

    #[test]
    fn single_node_only_learns_a_subset() {
        let n = exclusive_pair();
        let full = SequentialLearner::new(&n, LearnConfig::default())
            .learn()
            .unwrap();
        let single = SequentialLearner::new(&n, LearnConfig::single_node_only())
            .learn()
            .unwrap();
        assert!(single.implications.len() <= full.implications.len());
    }

    #[test]
    fn combinational_only_config_reports_no_sequential_relations() {
        let n = exclusive_pair();
        let result = SequentialLearner::new(&n, LearnConfig::combinational_only())
            .learn()
            .unwrap();
        assert_eq!(result.stats.sequential.ff_ff, 0);
        assert_eq!(result.stats.sequential.gate_ff, 0);
    }

    #[test]
    fn clock_classes_keep_cross_domain_relations_out() {
        // Two independent copies of the exclusive pair, driven by two clocks;
        // relations must only connect flip-flops of the same clock.
        let mut b = NetlistBuilder::new("twoclk");
        b.input("a");
        b.input("b");
        let clk_b = b.clock("clk_b");
        b.gate("na", GateType::Not, &["a"]).unwrap();
        b.gate("nb", GateType::Not, &["b"]).unwrap();
        b.gate("nf1", GateType::Not, &["f1"]).unwrap();
        b.gate("nf2", GateType::Not, &["f2"]).unwrap();
        b.gate("ng1", GateType::Not, &["g1"]).unwrap();
        b.gate("ng2", GateType::Not, &["g2"]).unwrap();
        b.gate("d1", GateType::And, &["a", "nf2"]).unwrap();
        b.gate("d2", GateType::And, &["na", "nf1"]).unwrap();
        b.gate("e1", GateType::And, &["b", "ng2"]).unwrap();
        b.gate("e2", GateType::And, &["nb", "ng1"]).unwrap();
        b.dff("f1", "d1").unwrap();
        b.dff("f2", "d2").unwrap();
        b.seq(
            "g1",
            "e1",
            SeqInfo {
                clock: clk_b,
                ..SeqInfo::default()
            },
        )
        .unwrap();
        b.seq(
            "g2",
            "e2",
            SeqInfo {
                clock: clk_b,
                ..SeqInfo::default()
            },
        )
        .unwrap();
        b.output("f1").unwrap();
        b.output("f2").unwrap();
        b.output("g1").unwrap();
        b.output("g2").unwrap();
        let n = b.build().unwrap();
        let result = SequentialLearner::new(&n, LearnConfig::default())
            .learn()
            .unwrap();
        assert_eq!(result.stats.classes, 2);
        let clock_of = |id: NodeId| n.seq_info(id).map(|i| i.clock);
        for imp in result.implications.relations() {
            let a = imp.antecedent.node;
            let c = imp.consequent.node;
            if n.is_sequential(a) && n.is_sequential(c) {
                assert_eq!(
                    clock_of(a),
                    clock_of(c),
                    "cross-domain relation {} must not be learned",
                    imp.describe(&n)
                );
            }
        }
        // Relations inside each domain are still found.
        let f1 = n.require("f1").unwrap();
        let f2 = n.require("f2").unwrap();
        let g1 = n.require("g1").unwrap();
        let g2 = n.require("g2").unwrap();
        assert!(result.implications.implies(f1, true, f2, false));
        assert!(result.implications.implies(g1, true, g2, false));
    }

    #[test]
    fn stats_record_stems_and_cpu_time() {
        let n = exclusive_pair();
        let result = SequentialLearner::new(&n, LearnConfig::default())
            .learn()
            .unwrap();
        assert_eq!(
            result.stats.stems,
            sla_netlist::stems::fanout_stems(&n).len()
        );
        assert!(result.stats.cpu.as_nanos() > 0);
        assert_eq!(result.stats.classes, 1);
    }

    #[test]
    fn budget_truncates_learning_deterministically() {
        use crate::budget::WorkBudget;
        let n = exclusive_pair();
        let full = SequentialLearner::new(&n, LearnConfig::default())
            .learn()
            .unwrap();
        assert!(!full.stats.budget_exhausted);
        assert_eq!(
            full.stats.budget_spent,
            full.stats.stems as u64 + full.stats.multi_node_targets as u64
        );

        // A budget of two units processes exactly two stems and nothing else.
        let tight = LearnConfig::builder().budget(WorkBudget::units(2)).build();
        let learner = SequentialLearner::new(&n, tight);
        let limited = learner.learn().unwrap();
        assert!(limited.stats.budget_exhausted);
        assert_eq!(limited.stats.budget_spent, 2);
        assert_eq!(limited.stats.multi_node_targets, 0);
        assert!(limited.implications.len() <= full.implications.len());

        // Bit-identical across thread counts: the truncation is computed
        // before the sharded passes.
        for threads in [2, 4] {
            let sharded = learner.learn_with_threads(threads).unwrap();
            assert_eq!(
                limited.implications.iter().collect::<Vec<_>>(),
                sharded.implications.iter().collect::<Vec<_>>()
            );
            assert_eq!(limited.stats.budget_spent, sharded.stats.budget_spent);
            assert_eq!(
                limited.stats.budget_exhausted,
                sharded.stats.budget_exhausted
            );
        }

        // A budget covering all the work changes nothing and reports no
        // exhaustion.
        let roomy = LearnConfig::builder()
            .budget(WorkBudget::units(1_000_000))
            .build();
        let ample = SequentialLearner::new(&n, roomy).learn().unwrap();
        assert!(!ample.stats.budget_exhausted);
        assert_eq!(
            ample.implications.iter().collect::<Vec<_>>(),
            full.implications.iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn cross_frame_relations_only_when_requested() {
        let n = exclusive_pair();
        let without = SequentialLearner::new(&n, LearnConfig::default())
            .learn()
            .unwrap();
        assert!(without.cross_frame.is_empty());
        let with = SequentialLearner::new(&n, LearnConfig::builder().cross_frame(true).build())
            .learn()
            .unwrap();
        assert!(!with.cross_frame.is_empty());
        assert_eq!(with.stats.cross_frame, with.cross_frame.len());
    }
}
