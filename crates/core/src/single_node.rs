//! Single-node learning (paper §3.1, first half) and tie extraction from stem
//! simulation (paper §3.2, first criterion).
//!
//! For every fanout stem both logic values are injected at frame 0 and
//! simulated forward. With `s=0 → g1=v1 @ t` and `s=1 → g2=v2 @ t`, the
//! contrapositive law gives the same-frame relation `g1=¬v1 → g2=v2`.
//! A node driven to the *same* value at the same frame by both polarities is a
//! tied gate. The per-stem traces also populate the *support map* — for every
//! `(node, value)` the set of stem assignments that produce it — which is the
//! input of the multiple-node learning phase.

use crate::relation::{CrossImplication, Implication, Literal};
use crate::tie::{TieKind, TiedGate};
use sla_netlist::{FastHashMap, Netlist, NodeId};
use sla_sim::{Injection, InjectionSim, Logic3, SimOptions, Trace, TraceRead};

/// For every `(node, value)`: the list of `(stem, stem_value, frame)` stem
/// assignments whose forward simulation sets the node to that value at that
/// frame offset.
///
/// An insertion-ordered map rather than a bare `FastHashMap` alias: the
/// accumulate path stays O(1) per assignment (it runs once per simulated
/// binary assignment, the hottest spot of the learning lanes), while
/// iteration walks keys in first-insertion order. That makes iteration a
/// pure function of the accumulation sequence — the fast-map-iteration
/// discipline — without paying a `BTreeMap` comparison ladder on every
/// simulated assignment.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct SupportMap {
    map: FastHashMap<SupportKey, Vec<SupportEntry>>,
    /// Keys in first-insertion order; the only iteration order handed out.
    keys: Vec<SupportKey>,
}

/// A `(node, value)` support-map key.
pub type SupportKey = (NodeId, bool);

/// A `(stem, stem_value, frame)` assignment supporting a key.
pub type SupportEntry = (NodeId, bool, usize);

impl SupportMap {
    /// Appends one support entry for `key`.
    pub fn push(&mut self, key: SupportKey, entry: SupportEntry) {
        self.slot(key).push(entry);
    }

    /// Appends a batch of support entries for `key` (the merge path).
    pub fn extend_entries(
        &mut self,
        key: SupportKey,
        entries: impl IntoIterator<Item = SupportEntry>,
    ) {
        self.slot(key).extend(entries);
    }

    fn slot(&mut self, key: SupportKey) -> &mut Vec<SupportEntry> {
        if !self.map.contains_key(&key) {
            self.keys.push(key);
        }
        self.map.entry(key).or_default()
    }

    /// Support entries of `key`, if any.
    pub fn get(&self, key: &SupportKey) -> Option<&Vec<SupportEntry>> {
        self.map.get(key)
    }

    /// Number of distinct `(node, value)` keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` when no support was accumulated.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Iterates `(key, entries)` in first-insertion key order.
    pub fn iter(&self) -> impl Iterator<Item = (&SupportKey, &Vec<SupportEntry>)> {
        self.keys
            .iter()
            .map(|k| (k, self.map.get(k).expect("key recorded at insertion")))
    }

    /// Consumes the map in first-insertion key order.
    pub fn into_entries(mut self) -> impl Iterator<Item = (SupportKey, Vec<SupportEntry>)> {
        self.keys.into_iter().map(move |k| {
            let entries = self.map.remove(&k).expect("key recorded at insertion");
            (k, entries)
        })
    }
}

/// Decides whether a relation between two endpoints is worth keeping.
///
/// The paper only extracts relations between pairs of sequential elements and
/// between gates and sequential elements (gate–gate relations follow from
/// those, primary inputs are free variables); with multiple clock domains the
/// sequential endpoints must additionally belong to the active class.
pub fn keep_relation(netlist: &Netlist, class_mask: Option<&[bool]>, a: NodeId, b: NodeId) -> bool {
    let na = netlist.node(a);
    let nb = netlist.node(b);
    if na.is_input() || nb.is_input() {
        return false;
    }
    if !(na.is_sequential() || nb.is_sequential()) {
        return false;
    }
    if let Some(mask) = class_mask {
        if na.is_sequential() && !mask[a.index()] {
            return false;
        }
        if nb.is_sequential() && !mask[b.index()] {
            return false;
        }
    }
    true
}

/// Everything learned by one single-node pass over a set of stems.
#[derive(Debug, Default)]
pub struct SingleNodeOutcome {
    /// Same-frame relations with the flag "required sequential analysis".
    pub implications: Vec<(Implication, bool)>,
    /// Optional cross-frame relations (only filled when requested).
    pub cross_frame: Vec<CrossImplication>,
    /// Tied gates found by the same-value-under-both-polarities criterion.
    pub ties: Vec<TiedGate>,
    /// Support map feeding the multiple-node phase.
    pub support: SupportMap,
    /// Number of stems actually simulated.
    pub stems_processed: usize,
}

/// Simulates both polarities of one stem.
pub fn simulate_stem(sim: &InjectionSim<'_>, stem: NodeId, options: &SimOptions) -> (Trace, Trace) {
    let t0 = sim.run(&[Injection::new(stem, false, 0)], options);
    let t1 = sim.run(&[Injection::new(stem, true, 0)], options);
    (t0, t1)
}

/// How many stems fit into one packed forward pass (two polarities per stem,
/// 64 lanes per [`sla_sim::PackedWord`]).
pub const STEMS_PER_BATCH: usize = 32;

/// Simulates both polarities of up to [`STEMS_PER_BATCH`] stems in a single
/// packed forward pass; entry *i* of the result is identical to
/// `simulate_stem(sim, stems[i], options)`.
pub fn simulate_stem_batch(
    sim: &InjectionSim<'_>,
    stems: &[NodeId],
    options: &SimOptions,
) -> Vec<(Trace, Trace)> {
    let packed = simulate_stem_batch_packed(sim, stems, options);
    (0..stems.len())
        .map(|i| (packed.to_trace(2 * i), packed.to_trace(2 * i + 1)))
        .collect()
}

/// Packed form of [`simulate_stem_batch`]: lane `2i` carries stem `i` injected
/// at 0, lane `2i + 1` at 1. The result is read in place via
/// [`sla_sim::PackedTraces::lane`].
pub fn simulate_stem_batch_packed(
    sim: &InjectionSim<'_>,
    stems: &[NodeId],
    options: &SimOptions,
) -> sla_sim::PackedTraces {
    assert!(stems.len() <= STEMS_PER_BATCH);
    let injections: Vec<[Injection; 1]> = stems
        .iter()
        .flat_map(|&stem| {
            [
                [Injection::new(stem, false, 0)],
                [Injection::new(stem, true, 0)],
            ]
        })
        .collect();
    let jobs: Vec<&[Injection]> = injections.iter().map(|j| j.as_slice()).collect();
    sim.run_batch_packed(&jobs, options)
}

/// Marks frames whose `(trace0, trace1)` value pair exactly repeats an
/// earlier frame pair. A repeated pair derives exactly the relations and tie
/// candidates of its first occurrence, so extraction skips it — sequential
/// state oscillation otherwise re-derives the same facts dozens of times.
///
/// Skipping preserves the extracted set: a duplicate of frame 0 would only
/// re-derive frame-0 facts with the weaker "sequential" flag, which the
/// database ignores in favour of the combinational derivation anyway.
fn repeated_frame_pairs<T: TraceRead>(trace0: &T, trace1: &T, frames: usize) -> Vec<bool> {
    // O(frames × nodes) fingerprint prefilter; the exact frame comparison
    // only runs on fingerprint matches, so the all-pairs worst case is
    // reserved for traces that really do repeat.
    let fp: Vec<(u64, u64)> = (0..frames)
        .map(|t| (trace0.frame_fingerprint(t), trace1.frame_fingerprint(t)))
        .collect();
    (0..frames)
        .map(|t| {
            (0..t).any(|earlier| {
                fp[earlier] == fp[t]
                    && trace0.frames_equal(t, earlier)
                    && trace1.frames_equal(t, earlier)
            })
        })
        .collect()
}

/// Extracts tied gates from the two traces of a stem: a node holding the same
/// binary value at the same frame under both polarities can only ever hold
/// that value (combinational tie at frame 0, sequential tie otherwise).
pub fn extract_ties<T: TraceRead>(
    netlist: &Netlist,
    stem: NodeId,
    trace0: &T,
    trace1: &T,
) -> Vec<TiedGate> {
    let frames = trace0.num_frames().min(trace1.num_frames());
    let repeated = repeated_frame_pairs(trace0, trace1, frames);
    extract_ties_skipping(netlist, stem, trace0, trace1, &repeated)
}

/// [`extract_ties`] with a precomputed repeated-frame mask, so one mask can
/// serve both tie and relation extraction of a stem.
fn extract_ties_skipping<T: TraceRead>(
    netlist: &Netlist,
    stem: NodeId,
    trace0: &T,
    trace1: &T,
    repeated: &[bool],
) -> Vec<TiedGate> {
    let mut ties: Vec<TiedGate> = Vec::new();
    let frames = repeated.len();
    for t in (0..frames).filter(|&t| !repeated[t]) {
        for (node, value) in trace0.binary_assignments(t) {
            if node == stem || netlist.node(node).is_input() {
                continue;
            }
            if trace1.value(t, node) == Logic3::from_bool(value) {
                let kind = if t == 0 {
                    TieKind::Combinational
                } else {
                    TieKind::Sequential
                };
                if let Some(existing) = ties.iter_mut().find(|tg| tg.node == node) {
                    if kind == TieKind::Combinational {
                        existing.kind = TieKind::Combinational;
                    }
                } else {
                    ties.push(TiedGate::new(node, value, kind));
                }
            }
        }
    }
    ties
}

/// Per-node endpoint role, precomputed so the quadratic pair loop of
/// [`extract_relations`] does two array loads per pair instead of node and
/// mask lookups (the role is the compiled form of [`keep_relation`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    /// Primary input or masked-out sequential element: never an endpoint.
    Excluded,
    /// Combinational gate: kept when paired with a sequential element.
    Gate,
    /// Sequential element of the active class.
    Seq,
}

fn endpoint_roles(netlist: &Netlist, class_mask: Option<&[bool]>) -> Vec<Role> {
    netlist
        .iter()
        .map(|(id, node)| {
            if node.is_input() {
                Role::Excluded
            } else if node.is_sequential() {
                match class_mask {
                    Some(mask) if !mask[id.index()] => Role::Excluded,
                    _ => Role::Seq,
                }
            } else {
                Role::Gate
            }
        })
        .collect()
}

/// Exact-duplicate filter for the relation pair stream of one learning pass.
///
/// The quadratic pair loops re-derive the same `(antecedent, consequent)` pair
/// across frames and stems thousands of times; the filter drops a pair whose
/// insertion into [`crate::ImplicationDb`] would provably be a no-op, before
/// it is materialized. The database result is unchanged: a pair is suppressed
/// only when the same pair was already emitted with an equal-or-stronger flag
/// (a combinational re-derivation of a pair so far only seen sequentially is
/// still emitted — it downgrades the stored flag).
#[derive(Debug)]
pub enum PairFilter {
    /// Dense pair bitset — O(1) with no hashing; `literals²` bits of memory,
    /// used up to mid-size netlists.
    Bits {
        /// Bit per directed `(literal, literal)` pair emitted with `seq = true`.
        seen_seq: Vec<u64>,
        /// Same, for `seq = false` emissions.
        seen_comb: Vec<u64>,
        /// Number of literal codes (2 × nodes).
        literals: usize,
    },
    /// Sparse fallback for large netlists: packed pair code → flag byte
    /// (bit 0 = emitted combinational, bit 1 = emitted sequential).
    Sparse(sla_netlist::FastHashMap<u64, u8>),
}

impl PairFilter {
    /// Dense up to this many nodes (bitsets ≤ 2 × 8 MiB), sparse beyond.
    const DENSE_NODE_LIMIT: usize = 4096;

    fn for_netlist(netlist: &Netlist) -> PairFilter {
        let n = netlist.num_nodes();
        if n <= PairFilter::DENSE_NODE_LIMIT {
            let literals = 2 * n;
            let words = (literals * literals).div_ceil(64);
            PairFilter::Bits {
                seen_seq: vec![0; words],
                seen_comb: vec![0; words],
                literals,
            }
        } else {
            PairFilter::Sparse(sla_netlist::FastHashMap::default())
        }
    }

    /// Returns `true` when the pair must still be emitted: it is new, or it
    /// downgrades a sequential-only pair to combinational.
    #[inline]
    fn admit(&mut self, g1: NodeId, v1: bool, g2: NodeId, v2: bool, sequential: bool) -> bool {
        let a = (g1.0 as u64) * 2 + v1 as u64;
        let c = (g2.0 as u64) * 2 + v2 as u64;
        match self {
            PairFilter::Bits {
                seen_seq,
                seen_comb,
                literals,
            } => {
                let bit = a as usize * *literals + c as usize;
                let (word, mask) = (bit / 64, 1u64 << (bit % 64));
                if sequential {
                    if (seen_seq[word] | seen_comb[word]) & mask != 0 {
                        return false;
                    }
                    seen_seq[word] |= mask;
                } else {
                    if seen_comb[word] & mask != 0 {
                        return false;
                    }
                    seen_comb[word] |= mask;
                }
                true
            }
            PairFilter::Sparse(seen) => {
                let flags = seen.entry((a << 32) | c).or_insert(0);
                let wanted: u8 = if sequential { 0b11 } else { 0b01 };
                if *flags & wanted != 0 {
                    return false;
                }
                *flags |= if sequential { 0b10 } else { 0b01 };
                true
            }
        }
    }
}

/// Extracts same-frame relations by pairing the assignments of the two traces
/// at equal frames (contrapositive law), restricted by `keep_relation`.
pub fn extract_relations<T: TraceRead>(
    netlist: &Netlist,
    stem: NodeId,
    trace0: &T,
    trace1: &T,
    class_mask: Option<&[bool]>,
) -> Vec<(Implication, bool)> {
    let mut out = Vec::new();
    let mut filter = PairFilter::for_netlist(netlist);
    let roles = endpoint_roles(netlist, class_mask);
    let frames = trace0.num_frames().min(trace1.num_frames());
    let repeated = repeated_frame_pairs(trace0, trace1, frames);
    extract_relations_into(
        stem,
        trace0,
        trace1,
        &repeated,
        &roles,
        &mut filter,
        &mut out,
    );
    out
}

/// [`extract_relations`] with caller-owned per-pass state: the duplicate
/// filter and endpoint roles span every stem of a learning pass, and the
/// repeated-frame mask is shared with tie extraction.
fn extract_relations_into<T: TraceRead>(
    stem: NodeId,
    trace0: &T,
    trace1: &T,
    repeated: &[bool],
    roles: &[Role],
    filter: &mut PairFilter,
    out: &mut Vec<(Implication, bool)>,
) {
    let _ = stem;
    let frames = repeated.len();
    for t in (0..frames).filter(|&t| !repeated[t]) {
        // Keep the pair loop tractable: a relation must involve at least one
        // sequential element, so pair "sequential assignments of one trace"
        // against "all kept assignments of the other". The roles make every
        // pairing below pass `keep_relation` by construction.
        let kept0: Vec<(NodeId, bool)> = trace0
            .binary_assignments(t)
            .filter(|(n, _)| roles[n.index()] != Role::Excluded)
            .collect();
        let kept1: Vec<(NodeId, bool)> = trace1
            .binary_assignments(t)
            .filter(|(n, _)| roles[n.index()] != Role::Excluded)
            .collect();
        let seq0: Vec<(NodeId, bool)> = kept0
            .iter()
            .copied()
            .filter(|(n, _)| roles[n.index()] == Role::Seq)
            .collect();
        let seq1: Vec<(NodeId, bool)> = kept1
            .iter()
            .copied()
            .filter(|(n, _)| roles[n.index()] == Role::Seq)
            .collect();
        let sequential = t > 0;
        // trace0 carries s=0, trace1 carries s=1:
        //   g1 = !v1  =>  s = 1  =>  g2 = v2.
        for &(g1, v1) in &kept0 {
            for &(g2, v2) in &seq1 {
                if g1 == g2 {
                    continue;
                }
                if filter.admit(g1, !v1, g2, v2, sequential) {
                    out.push((
                        Implication::new(Literal::new(g1, !v1), Literal::new(g2, v2)),
                        sequential,
                    ));
                }
            }
        }
        for &(g1, v1) in &seq0 {
            for &(g2, v2) in &kept1 {
                if roles[g2.index()] == Role::Seq {
                    continue; // already covered above
                }
                if filter.admit(g1, !v1, g2, v2, sequential) {
                    out.push((
                        Implication::new(Literal::new(g1, !v1), Literal::new(g2, v2)),
                        sequential,
                    ));
                }
            }
        }
    }
}

/// Extracts cross-frame relations directly from one trace: `stem=value @ 0`
/// implies every recorded assignment at its frame, so the contrapositive links
/// the assignment back to the stem across `frame` time frames.
pub fn extract_cross_frame<T: TraceRead>(
    netlist: &Netlist,
    stem: NodeId,
    value: bool,
    trace: &T,
) -> Vec<CrossImplication> {
    let mut out = Vec::new();
    for t in 1..trace.num_frames() {
        for (node, v) in trace.binary_assignments(t) {
            if node == stem || netlist.node(node).is_input() {
                continue;
            }
            out.push(CrossImplication {
                antecedent: Literal::new(node, !v),
                consequent: Literal::new(stem, !value),
                offset: -(t as i32),
            });
        }
    }
    out
}

/// Adds the assignments of one stem trace to the support map.
pub fn accumulate_support<T: TraceRead>(
    netlist: &Netlist,
    stem: NodeId,
    value: bool,
    trace: &T,
    support: &mut SupportMap,
) {
    for t in 0..trace.num_frames() {
        for (node, v) in trace.binary_assignments(t) {
            if node == stem || netlist.node(node).is_input() {
                continue;
            }
            support.push((node, v), (stem, value, t));
        }
    }
}

/// Extracts everything single-node learning derives from the two polarity
/// traces of one stem and adds it to `outcome`.
#[allow(clippy::too_many_arguments)]
fn harvest_stem<T: TraceRead>(
    netlist: &Netlist,
    stem: NodeId,
    t0: &T,
    t1: &T,
    roles: &[Role],
    learn_cross_frame: bool,
    filter: &mut PairFilter,
    outcome: &mut SingleNodeOutcome,
) {
    let frames = t0.num_frames().min(t1.num_frames());
    let repeated = repeated_frame_pairs(t0, t1, frames);
    outcome
        .ties
        .extend(extract_ties_skipping(netlist, stem, t0, t1, &repeated));
    extract_relations_into(
        stem,
        t0,
        t1,
        &repeated,
        roles,
        filter,
        &mut outcome.implications,
    );
    if learn_cross_frame {
        outcome
            .cross_frame
            .extend(extract_cross_frame(netlist, stem, false, t0));
        outcome
            .cross_frame
            .extend(extract_cross_frame(netlist, stem, true, t1));
    }
    accumulate_support(netlist, stem, false, t0, &mut outcome.support);
    accumulate_support(netlist, stem, true, t1, &mut outcome.support);
    outcome.stems_processed += 1;
}

/// Runs single-node learning over `stems` using an already configured
/// simulator (equivalences, tied constants and the active clock class are
/// taken from the simulator state).
///
/// This is the scalar reference path — one forward simulation per stem
/// polarity. The learning engine uses [`run_batched`], which produces the same
/// outcome from packed 64-lane passes; property tests assert the equality.
pub fn run(
    sim: &InjectionSim<'_>,
    stems: &[NodeId],
    options: &SimOptions,
    class_mask: Option<&[bool]>,
    learn_cross_frame: bool,
) -> SingleNodeOutcome {
    let netlist = sim.netlist();
    let mut outcome = SingleNodeOutcome::default();
    let mut filter = PairFilter::for_netlist(netlist);
    let roles = endpoint_roles(netlist, class_mask);
    for &stem in stems {
        let (t0, t1) = simulate_stem(sim, stem, options);
        harvest_stem(
            netlist,
            stem,
            &t0,
            &t1,
            &roles,
            learn_cross_frame,
            &mut filter,
            &mut outcome,
        );
    }
    outcome
}

/// Runs single-node learning over `stems`, packing [`STEMS_PER_BATCH`] stems
/// (both polarities each) into every forward pass.
///
/// Produces exactly the same outcome as [`run`]; the only difference is that
/// the injection simulations go through the packed 64-wide kernel.
pub fn run_batched(
    sim: &InjectionSim<'_>,
    stems: &[NodeId],
    options: &SimOptions,
    class_mask: Option<&[bool]>,
    learn_cross_frame: bool,
) -> SingleNodeOutcome {
    let netlist = sim.netlist();
    let mut outcome = SingleNodeOutcome::default();
    let mut filter = PairFilter::for_netlist(netlist);
    let roles = endpoint_roles(netlist, class_mask);
    for chunk in stems.chunks(STEMS_PER_BATCH) {
        harvest_chunk(
            sim,
            chunk,
            options,
            &roles,
            &mut filter,
            learn_cross_frame,
            &mut outcome,
        );
    }
    outcome
}

/// One packed forward pass over up to [`STEMS_PER_BATCH`] stems, harvested
/// into `outcome` (the loop body shared by [`run_batched`] and the workers of
/// [`run_sharded`]).
fn harvest_chunk(
    sim: &InjectionSim<'_>,
    chunk: &[NodeId],
    options: &SimOptions,
    roles: &[Role],
    filter: &mut PairFilter,
    learn_cross_frame: bool,
    outcome: &mut SingleNodeOutcome,
) {
    let netlist = sim.netlist();
    let packed = simulate_stem_batch_packed(sim, chunk, options);
    for (k, &stem) in chunk.iter().enumerate() {
        harvest_stem(
            netlist,
            stem,
            &packed.lane(2 * k),
            &packed.lane(2 * k + 1),
            roles,
            learn_cross_frame,
            filter,
            outcome,
        );
    }
}

/// Runs single-node learning over `stems` sharded across `threads` worker
/// threads, producing **exactly** the outcome of [`run_batched`] — the same
/// implication stream (including the duplicate-filter suppressions), ties,
/// cross-frame relations and support map.
///
/// Stems are split at the same [`STEMS_PER_BATCH`] boundaries as the
/// single-thread pass and claimed dynamically; each worker keeps a private
/// [`PairFilter`] that persists across the chunks it happens to claim. That
/// makes the *per-chunk* emission lists schedule-dependent (a worker
/// suppresses pairs it saw in an earlier chunk), but chunks are always
/// claimed in increasing index order, so a pair's first occurrence in the
/// chunk-ordered concatenation is exactly its first occurrence in stem order.
/// The ordered merge then replays the concatenation through one fresh global
/// filter, which reconstructs the single-thread emission stream bit for bit.
pub fn run_sharded(
    sim: &InjectionSim<'_>,
    stems: &[NodeId],
    options: &SimOptions,
    class_mask: Option<&[bool]>,
    learn_cross_frame: bool,
    threads: usize,
) -> SingleNodeOutcome {
    if threads <= 1 || stems.len() <= STEMS_PER_BATCH {
        return run_batched(sim, stems, options, class_mask, learn_cross_frame);
    }
    let netlist = sim.netlist();
    let chunks: Vec<&[NodeId]> = stems.chunks(STEMS_PER_BATCH).collect();
    let outcomes = sla_par::run_indexed_with(
        &chunks,
        threads,
        |_worker| {
            (
                PairFilter::for_netlist(netlist),
                endpoint_roles(netlist, class_mask),
            )
        },
        |(filter, roles), _i, chunk| {
            let mut outcome = SingleNodeOutcome::default();
            harvest_chunk(
                sim,
                chunk,
                options,
                roles,
                filter,
                learn_cross_frame,
                &mut outcome,
            );
            outcome
        },
    );

    // Ordered merge (chunk order = stem order). Only the implication stream
    // needs the replay filter; ties, cross-frame relations and the support
    // map are never duplicate-filtered by the single-thread pass, so plain
    // in-order concatenation is already identical.
    let mut merged = SingleNodeOutcome::default();
    let mut filter = PairFilter::for_netlist(netlist);
    for outcome in outcomes {
        for (imp, seq) in outcome.implications {
            if filter.admit(
                imp.antecedent.node,
                imp.antecedent.value,
                imp.consequent.node,
                imp.consequent.value,
                seq,
            ) {
                merged.implications.push((imp, seq));
            }
        }
        merged.cross_frame.extend(outcome.cross_frame);
        merged.ties.extend(outcome.ties);
        for (key, entries) in outcome.support.into_entries() {
            merged.support.extend_entries(key, entries);
        }
        merged.stems_processed += outcome.stems_processed;
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use sla_netlist::{GateType, NetlistBuilder};

    /// `z = AND(i1, NOT i1)` is combinationally tied to 0; the flip-flop pair
    /// (f1, f2) can never both be 1 because their data inputs are an AND with
    /// complementary first operands.
    fn sample() -> Netlist {
        let mut b = NetlistBuilder::new("single");
        b.input("i1");
        b.input("i2");
        b.gate("ni1", GateType::Not, &["i1"]).unwrap();
        b.gate("z", GateType::And, &["i1", "ni1"]).unwrap();
        b.gate("d1", GateType::And, &["i2", "nf2"]).unwrap();
        b.gate("d2", GateType::And, &["ni2", "nf1"]).unwrap();
        b.gate("ni2", GateType::Not, &["i2"]).unwrap();
        b.gate("nf1", GateType::Not, &["f1"]).unwrap();
        b.gate("nf2", GateType::Not, &["f2"]).unwrap();
        b.dff("f1", "d1").unwrap();
        b.dff("f2", "d2").unwrap();
        b.gate("o", GateType::Or, &["f1", "f2", "z"]).unwrap();
        b.output("o").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn combinational_tie_found_from_stem_polarities() {
        let n = sample();
        let sim = InjectionSim::new(&n).unwrap();
        let i1 = n.require("i1").unwrap();
        let z = n.require("z").unwrap();
        let (t0, t1) = simulate_stem(&sim, i1, &SimOptions::default());
        let ties = extract_ties(&n, i1, &t0, &t1);
        assert!(ties
            .iter()
            .any(|t| t.node == z && !t.value && t.kind == TieKind::Combinational));
    }

    #[test]
    fn invalid_state_relation_found_from_input_stem() {
        let n = sample();
        let sim = InjectionSim::new(&n).unwrap();
        let i2 = n.require("i2").unwrap();
        let f1 = n.require("f1").unwrap();
        let f2 = n.require("f2").unwrap();
        let (t0, t1) = simulate_stem(&sim, i2, &SimOptions::default());
        // i2=0 -> d1=0 -> f1=0 @1 ; i2=1 -> d2=0 -> f2=0 @1.
        assert_eq!(t0.value(1, f1), Logic3::Zero);
        assert_eq!(t1.value(1, f2), Logic3::Zero);
        let rels = extract_relations(&n, i2, &t0, &t1, None);
        let expected = Implication::new(Literal::new(f1, true), Literal::new(f2, false));
        assert!(
            rels.iter().any(|(imp, seq)| *imp == expected && *seq),
            "expected f1=1 -> f2=0 as a sequential relation, got {:?}",
            rels.iter().map(|(i, _)| i.describe(&n)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn relations_never_involve_primary_inputs_or_gate_gate_pairs() {
        let n = sample();
        let sim = InjectionSim::new(&n).unwrap();
        let options = SimOptions::default();
        let stems = sla_netlist::stems::fanout_stems(&n);
        let outcome = run(&sim, &stems, &options, None, false);
        for (imp, _) in &outcome.implications {
            let a = n.node(imp.antecedent.node);
            let c = n.node(imp.consequent.node);
            assert!(!a.is_input() && !c.is_input(), "{}", imp.describe(&n));
            assert!(
                a.is_sequential() || c.is_sequential(),
                "{}",
                imp.describe(&n)
            );
        }
    }

    #[test]
    fn support_map_records_stem_assignments() {
        let n = sample();
        let sim = InjectionSim::new(&n).unwrap();
        let i2 = n.require("i2").unwrap();
        let f1 = n.require("f1").unwrap();
        let (t0, _t1) = simulate_stem(&sim, i2, &SimOptions::default());
        let mut support = SupportMap::default();
        accumulate_support(&n, i2, false, &t0, &mut support);
        let entries = support
            .get(&(f1, false))
            .expect("f1=0 must be supported by i2=0");
        assert!(entries.contains(&(i2, false, 1)));
    }

    #[test]
    fn class_mask_filters_out_foreign_flip_flops() {
        let n = sample();
        let sim = InjectionSim::new(&n).unwrap();
        let i2 = n.require("i2").unwrap();
        let f1 = n.require("f1").unwrap();
        let (t0, t1) = simulate_stem(&sim, i2, &SimOptions::default());
        // Mask excludes f1: no kept relation may have f1 as an endpoint.
        let mut mask = vec![true; n.num_nodes()];
        mask[f1.index()] = false;
        let rels = extract_relations(&n, i2, &t0, &t1, Some(&mask));
        assert!(rels
            .iter()
            .all(|(imp, _)| imp.antecedent.node != f1 && imp.consequent.node != f1));
    }

    #[test]
    fn cross_frame_relations_point_back_to_the_stem() {
        let n = sample();
        let sim = InjectionSim::new(&n).unwrap();
        let i2 = n.require("i2").unwrap();
        let f1 = n.require("f1").unwrap();
        let (t0, _) = simulate_stem(&sim, i2, &SimOptions::default());
        let cross = extract_cross_frame(&n, i2, false, &t0);
        // f1=0 @1 came from i2=0 @0, so f1=1 implies i2=1 one frame earlier.
        assert!(cross.iter().any(|c| c.antecedent == Literal::new(f1, true)
            && c.consequent == Literal::new(i2, true)
            && c.offset == -1));
    }

    #[test]
    fn batched_run_matches_scalar_run() {
        let n = sample();
        let sim = InjectionSim::new(&n).unwrap();
        let stems = sla_netlist::stems::fanout_stems(&n);
        let options = SimOptions::default();
        let scalar = run(&sim, &stems, &options, None, true);
        let batched = run_batched(&sim, &stems, &options, None, true);
        assert_eq!(scalar.implications, batched.implications);
        assert_eq!(scalar.ties, batched.ties);
        assert_eq!(scalar.cross_frame, batched.cross_frame);
        assert_eq!(scalar.support, batched.support);
        assert_eq!(scalar.stems_processed, batched.stems_processed);
    }

    /// Enough independent motif copies to exceed several [`STEMS_PER_BATCH`]
    /// boundaries, so sharding has real chunks to distribute.
    fn many_stems(copies: usize) -> Netlist {
        let mut b = NetlistBuilder::new("many");
        for i in 0..copies {
            let i1 = format!("i1_{i}");
            let i2 = format!("i2_{i}");
            b.input(&i1);
            b.input(&i2);
            b.gate(&format!("n1_{i}"), GateType::Not, &[&i1]).unwrap();
            b.gate(&format!("n2_{i}"), GateType::Not, &[&i2]).unwrap();
            b.gate(
                &format!("d1_{i}"),
                GateType::And,
                &[i2.as_str(), &format!("nf2_{i}")],
            )
            .unwrap();
            b.gate(
                &format!("d2_{i}"),
                GateType::And,
                &[&format!("n2_{i}"), &format!("nf1_{i}")],
            )
            .unwrap();
            b.gate(&format!("nf1_{i}"), GateType::Not, &[&format!("f1_{i}")])
                .unwrap();
            b.gate(&format!("nf2_{i}"), GateType::Not, &[&format!("f2_{i}")])
                .unwrap();
            b.dff(&format!("f1_{i}"), &format!("d1_{i}")).unwrap();
            b.dff(&format!("f2_{i}"), &format!("d2_{i}")).unwrap();
            b.gate(
                &format!("o_{i}"),
                GateType::Or,
                &[
                    format!("f1_{i}").as_str(),
                    format!("f2_{i}").as_str(),
                    format!("n1_{i}").as_str(),
                ],
            )
            .unwrap();
            b.output(&format!("o_{i}")).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn sharded_run_matches_batched_run() {
        let n = many_stems(40);
        let sim = InjectionSim::new(&n).unwrap();
        let stems = sla_netlist::stems::fanout_stems(&n);
        assert!(
            stems.len() > 3 * STEMS_PER_BATCH,
            "need several chunks, got {} stems",
            stems.len()
        );
        let options = SimOptions::default();
        let reference = run_batched(&sim, &stems, &options, None, true);
        for threads in [1, 2, 3, 8] {
            let sharded = run_sharded(&sim, &stems, &options, None, true, threads);
            assert_eq!(reference.implications, sharded.implications, "t={threads}");
            assert_eq!(reference.ties, sharded.ties, "t={threads}");
            assert_eq!(reference.cross_frame, sharded.cross_frame, "t={threads}");
            assert_eq!(reference.support, sharded.support, "t={threads}");
            assert_eq!(
                reference.stems_processed, sharded.stems_processed,
                "t={threads}"
            );
        }
    }

    #[test]
    fn run_processes_every_stem() {
        let n = sample();
        let sim = InjectionSim::new(&n).unwrap();
        let stems = sla_netlist::stems::fanout_stems(&n);
        let outcome = run(&sim, &stems, &SimOptions::default(), None, true);
        assert_eq!(outcome.stems_processed, stems.len());
        assert!(!outcome.support.is_empty());
        assert!(!outcome.cross_frame.is_empty());
    }
}
