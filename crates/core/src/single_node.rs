//! Single-node learning (paper §3.1, first half) and tie extraction from stem
//! simulation (paper §3.2, first criterion).
//!
//! For every fanout stem both logic values are injected at frame 0 and
//! simulated forward. With `s=0 → g1=v1 @ t` and `s=1 → g2=v2 @ t`, the
//! contrapositive law gives the same-frame relation `g1=¬v1 → g2=v2`.
//! A node driven to the *same* value at the same frame by both polarities is a
//! tied gate. The per-stem traces also populate the *support map* — for every
//! `(node, value)` the set of stem assignments that produce it — which is the
//! input of the multiple-node learning phase.

use crate::relation::{CrossImplication, Implication, Literal};
use crate::tie::{TieKind, TiedGate};
use sla_netlist::{Netlist, NodeId};
use sla_sim::{Injection, InjectionSim, Logic3, SimOptions, Trace};
use std::collections::HashMap;

/// For every `(node, value)`: the list of `(stem, stem_value, frame)` stem
/// assignments whose forward simulation sets the node to that value at that
/// frame offset.
pub type SupportMap = HashMap<(NodeId, bool), Vec<(NodeId, bool, usize)>>;

/// Decides whether a relation between two endpoints is worth keeping.
///
/// The paper only extracts relations between pairs of sequential elements and
/// between gates and sequential elements (gate–gate relations follow from
/// those, primary inputs are free variables); with multiple clock domains the
/// sequential endpoints must additionally belong to the active class.
pub fn keep_relation(netlist: &Netlist, class_mask: Option<&[bool]>, a: NodeId, b: NodeId) -> bool {
    let na = netlist.node(a);
    let nb = netlist.node(b);
    if na.is_input() || nb.is_input() {
        return false;
    }
    if !(na.is_sequential() || nb.is_sequential()) {
        return false;
    }
    if let Some(mask) = class_mask {
        if na.is_sequential() && !mask[a.index()] {
            return false;
        }
        if nb.is_sequential() && !mask[b.index()] {
            return false;
        }
    }
    true
}

/// Everything learned by one single-node pass over a set of stems.
#[derive(Debug, Default)]
pub struct SingleNodeOutcome {
    /// Same-frame relations with the flag "required sequential analysis".
    pub implications: Vec<(Implication, bool)>,
    /// Optional cross-frame relations (only filled when requested).
    pub cross_frame: Vec<CrossImplication>,
    /// Tied gates found by the same-value-under-both-polarities criterion.
    pub ties: Vec<TiedGate>,
    /// Support map feeding the multiple-node phase.
    pub support: SupportMap,
    /// Number of stems actually simulated.
    pub stems_processed: usize,
}

/// Simulates both polarities of one stem.
pub fn simulate_stem(sim: &InjectionSim<'_>, stem: NodeId, options: &SimOptions) -> (Trace, Trace) {
    let t0 = sim.run(&[Injection::new(stem, false, 0)], options);
    let t1 = sim.run(&[Injection::new(stem, true, 0)], options);
    (t0, t1)
}

/// Extracts tied gates from the two traces of a stem: a node holding the same
/// binary value at the same frame under both polarities can only ever hold
/// that value (combinational tie at frame 0, sequential tie otherwise).
pub fn extract_ties(
    netlist: &Netlist,
    stem: NodeId,
    trace0: &Trace,
    trace1: &Trace,
) -> Vec<TiedGate> {
    let mut ties: Vec<TiedGate> = Vec::new();
    let frames = trace0.num_frames().min(trace1.num_frames());
    for t in 0..frames {
        for (node, value) in trace0.assignments(t) {
            if node == stem || netlist.node(node).is_input() {
                continue;
            }
            if trace1.value(t, node) == Logic3::from_bool(value) {
                let kind = if t == 0 {
                    TieKind::Combinational
                } else {
                    TieKind::Sequential
                };
                if let Some(existing) = ties.iter_mut().find(|tg| tg.node == node) {
                    if kind == TieKind::Combinational {
                        existing.kind = TieKind::Combinational;
                    }
                } else {
                    ties.push(TiedGate::new(node, value, kind));
                }
            }
        }
    }
    ties
}

/// Extracts same-frame relations by pairing the assignments of the two traces
/// at equal frames (contrapositive law), restricted by `keep_relation`.
pub fn extract_relations(
    netlist: &Netlist,
    stem: NodeId,
    trace0: &Trace,
    trace1: &Trace,
    class_mask: Option<&[bool]>,
) -> Vec<(Implication, bool)> {
    let mut out = Vec::new();
    let frames = trace0.num_frames().min(trace1.num_frames());
    for t in 0..frames {
        let a0: Vec<(NodeId, bool)> = trace0.assignments(t).collect();
        let a1: Vec<(NodeId, bool)> = trace1.assignments(t).collect();
        // Keep the pair loop tractable: a relation must involve at least one
        // sequential element, so pair "sequential assignments of one trace"
        // against "all assignments of the other".
        let seq0: Vec<(NodeId, bool)> = a0
            .iter()
            .copied()
            .filter(|(n, _)| netlist.node(*n).is_sequential())
            .collect();
        let seq1: Vec<(NodeId, bool)> = a1
            .iter()
            .copied()
            .filter(|(n, _)| netlist.node(*n).is_sequential())
            .collect();
        let sequential = t > 0;
        let mut push = |g1: NodeId, v1: bool, g2: NodeId, v2: bool| {
            if g1 == g2 || g1 == stem && g2 == stem {
                return;
            }
            if !keep_relation(netlist, class_mask, g1, g2) {
                return;
            }
            // trace0 carries s=0, trace1 carries s=1:
            //   g1 = !v1  =>  s = 1  =>  g2 = v2.
            out.push((
                Implication::new(Literal::new(g1, !v1), Literal::new(g2, v2)),
                sequential,
            ));
        };
        for &(g1, v1) in &a0 {
            for &(g2, v2) in &seq1 {
                push(g1, v1, g2, v2);
            }
        }
        for &(g1, v1) in &seq0 {
            for &(g2, v2) in &a1 {
                if netlist.node(g2).is_sequential() {
                    continue; // already covered above
                }
                push(g1, v1, g2, v2);
            }
        }
    }
    out
}

/// Extracts cross-frame relations directly from one trace: `stem=value @ 0`
/// implies every recorded assignment at its frame, so the contrapositive links
/// the assignment back to the stem across `frame` time frames.
pub fn extract_cross_frame(
    netlist: &Netlist,
    stem: NodeId,
    value: bool,
    trace: &Trace,
) -> Vec<CrossImplication> {
    let mut out = Vec::new();
    for t in 1..trace.num_frames() {
        for (node, v) in trace.assignments(t) {
            if node == stem || netlist.node(node).is_input() {
                continue;
            }
            out.push(CrossImplication {
                antecedent: Literal::new(node, !v),
                consequent: Literal::new(stem, !value),
                offset: -(t as i32),
            });
        }
    }
    out
}

/// Adds the assignments of one stem trace to the support map.
pub fn accumulate_support(
    netlist: &Netlist,
    stem: NodeId,
    value: bool,
    trace: &Trace,
    support: &mut SupportMap,
) {
    for t in 0..trace.num_frames() {
        for (node, v) in trace.assignments(t) {
            if node == stem || netlist.node(node).is_input() {
                continue;
            }
            support.entry((node, v)).or_default().push((stem, value, t));
        }
    }
}

/// Runs single-node learning over `stems` using an already configured
/// simulator (equivalences, tied constants and the active clock class are
/// taken from the simulator state).
pub fn run(
    sim: &InjectionSim<'_>,
    stems: &[NodeId],
    options: &SimOptions,
    class_mask: Option<&[bool]>,
    learn_cross_frame: bool,
) -> SingleNodeOutcome {
    let netlist = sim.netlist();
    let mut outcome = SingleNodeOutcome::default();
    for &stem in stems {
        let (t0, t1) = simulate_stem(sim, stem, options);
        outcome.ties.extend(extract_ties(netlist, stem, &t0, &t1));
        outcome
            .implications
            .extend(extract_relations(netlist, stem, &t0, &t1, class_mask));
        if learn_cross_frame {
            outcome
                .cross_frame
                .extend(extract_cross_frame(netlist, stem, false, &t0));
            outcome
                .cross_frame
                .extend(extract_cross_frame(netlist, stem, true, &t1));
        }
        accumulate_support(netlist, stem, false, &t0, &mut outcome.support);
        accumulate_support(netlist, stem, true, &t1, &mut outcome.support);
        outcome.stems_processed += 1;
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use sla_netlist::{GateType, NetlistBuilder};

    /// `z = AND(i1, NOT i1)` is combinationally tied to 0; the flip-flop pair
    /// (f1, f2) can never both be 1 because their data inputs are an AND with
    /// complementary first operands.
    fn sample() -> Netlist {
        let mut b = NetlistBuilder::new("single");
        b.input("i1");
        b.input("i2");
        b.gate("ni1", GateType::Not, &["i1"]).unwrap();
        b.gate("z", GateType::And, &["i1", "ni1"]).unwrap();
        b.gate("d1", GateType::And, &["i2", "nf2"]).unwrap();
        b.gate("d2", GateType::And, &["ni2", "nf1"]).unwrap();
        b.gate("ni2", GateType::Not, &["i2"]).unwrap();
        b.gate("nf1", GateType::Not, &["f1"]).unwrap();
        b.gate("nf2", GateType::Not, &["f2"]).unwrap();
        b.dff("f1", "d1").unwrap();
        b.dff("f2", "d2").unwrap();
        b.gate("o", GateType::Or, &["f1", "f2", "z"]).unwrap();
        b.output("o").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn combinational_tie_found_from_stem_polarities() {
        let n = sample();
        let sim = InjectionSim::new(&n).unwrap();
        let i1 = n.require("i1").unwrap();
        let z = n.require("z").unwrap();
        let (t0, t1) = simulate_stem(&sim, i1, &SimOptions::default());
        let ties = extract_ties(&n, i1, &t0, &t1);
        assert!(ties
            .iter()
            .any(|t| t.node == z && !t.value && t.kind == TieKind::Combinational));
    }

    #[test]
    fn invalid_state_relation_found_from_input_stem() {
        let n = sample();
        let sim = InjectionSim::new(&n).unwrap();
        let i2 = n.require("i2").unwrap();
        let f1 = n.require("f1").unwrap();
        let f2 = n.require("f2").unwrap();
        let (t0, t1) = simulate_stem(&sim, i2, &SimOptions::default());
        // i2=0 -> d1=0 -> f1=0 @1 ; i2=1 -> d2=0 -> f2=0 @1.
        assert_eq!(t0.value(1, f1), Logic3::Zero);
        assert_eq!(t1.value(1, f2), Logic3::Zero);
        let rels = extract_relations(&n, i2, &t0, &t1, None);
        let expected = Implication::new(Literal::new(f1, true), Literal::new(f2, false));
        assert!(
            rels.iter().any(|(imp, seq)| *imp == expected && *seq),
            "expected f1=1 -> f2=0 as a sequential relation, got {:?}",
            rels.iter().map(|(i, _)| i.describe(&n)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn relations_never_involve_primary_inputs_or_gate_gate_pairs() {
        let n = sample();
        let sim = InjectionSim::new(&n).unwrap();
        let options = SimOptions::default();
        let stems = sla_netlist::stems::fanout_stems(&n);
        let outcome = run(&sim, &stems, &options, None, false);
        for (imp, _) in &outcome.implications {
            let a = n.node(imp.antecedent.node);
            let c = n.node(imp.consequent.node);
            assert!(!a.is_input() && !c.is_input(), "{}", imp.describe(&n));
            assert!(
                a.is_sequential() || c.is_sequential(),
                "{}",
                imp.describe(&n)
            );
        }
    }

    #[test]
    fn support_map_records_stem_assignments() {
        let n = sample();
        let sim = InjectionSim::new(&n).unwrap();
        let i2 = n.require("i2").unwrap();
        let f1 = n.require("f1").unwrap();
        let (t0, _t1) = simulate_stem(&sim, i2, &SimOptions::default());
        let mut support = SupportMap::new();
        accumulate_support(&n, i2, false, &t0, &mut support);
        let entries = support
            .get(&(f1, false))
            .expect("f1=0 must be supported by i2=0");
        assert!(entries.contains(&(i2, false, 1)));
    }

    #[test]
    fn class_mask_filters_out_foreign_flip_flops() {
        let n = sample();
        let sim = InjectionSim::new(&n).unwrap();
        let i2 = n.require("i2").unwrap();
        let f1 = n.require("f1").unwrap();
        let (t0, t1) = simulate_stem(&sim, i2, &SimOptions::default());
        // Mask excludes f1: no kept relation may have f1 as an endpoint.
        let mut mask = vec![true; n.num_nodes()];
        mask[f1.index()] = false;
        let rels = extract_relations(&n, i2, &t0, &t1, Some(&mask));
        assert!(rels
            .iter()
            .all(|(imp, _)| imp.antecedent.node != f1 && imp.consequent.node != f1));
    }

    #[test]
    fn cross_frame_relations_point_back_to_the_stem() {
        let n = sample();
        let sim = InjectionSim::new(&n).unwrap();
        let i2 = n.require("i2").unwrap();
        let f1 = n.require("f1").unwrap();
        let (t0, _) = simulate_stem(&sim, i2, &SimOptions::default());
        let cross = extract_cross_frame(&n, i2, false, &t0);
        // f1=0 @1 came from i2=0 @0, so f1=1 implies i2=1 one frame earlier.
        assert!(cross.iter().any(|c| c.antecedent == Literal::new(f1, true)
            && c.consequent == Literal::new(i2, true)
            && c.offset == -1));
    }

    #[test]
    fn run_processes_every_stem() {
        let n = sample();
        let sim = InjectionSim::new(&n).unwrap();
        let stems = sla_netlist::stems::fanout_stems(&n);
        let outcome = run(&sim, &stems, &SimOptions::default(), None, true);
        assert_eq!(outcome.stems_processed, stems.len());
        assert!(!outcome.support.is_empty());
        assert!(!outcome.cross_frame.is_empty());
    }
}
