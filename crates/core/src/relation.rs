//! Literals, implications and their classification.

use sla_netlist::{Netlist, NodeId};
use std::fmt;

/// A node/value pair: "`node` has logic value `value`".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    /// The node the literal talks about.
    pub node: NodeId,
    /// The asserted logic value.
    pub value: bool,
}

impl Literal {
    /// Creates a literal.
    pub fn new(node: NodeId, value: bool) -> Self {
        Literal { node, value }
    }

    /// The literal asserting the opposite value on the same node.
    pub fn negated(self) -> Literal {
        Literal {
            node: self.node,
            value: !self.value,
        }
    }

    /// Renders the literal with the node's name, e.g. `F6=1`.
    pub fn describe(&self, netlist: &Netlist) -> String {
        format!(
            "{}={}",
            netlist.node(self.node).name,
            if self.value { 1 } else { 0 }
        )
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.node, if self.value { 1 } else { 0 })
    }
}

/// A same-time-frame implication `antecedent → consequent`.
///
/// Same-frame implications between sequential elements are the paper's
/// *invalid-state relations*: `F6=1 → F4=0` encodes that every state with
/// `F6=1 ∧ F4=1` is invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Implication {
    /// The hypothesis literal.
    pub antecedent: Literal,
    /// The literal implied in the same time frame.
    pub consequent: Literal,
}

impl Implication {
    /// Creates an implication.
    pub fn new(antecedent: Literal, consequent: Literal) -> Self {
        Implication {
            antecedent,
            consequent,
        }
    }

    /// The contrapositive (`¬consequent → ¬antecedent`), which is logically
    /// equivalent and always stored alongside the original.
    pub fn contrapositive(self) -> Implication {
        Implication {
            antecedent: self.consequent.negated(),
            consequent: self.antecedent.negated(),
        }
    }

    /// Classifies the implication by its endpoints.
    pub fn kind(&self, netlist: &Netlist) -> RelationKind {
        let a = netlist.node(self.antecedent.node);
        let c = netlist.node(self.consequent.node);
        let seq_a = a.is_sequential();
        let seq_c = c.is_sequential();
        if seq_a && seq_c {
            RelationKind::FfFf
        } else if (seq_a && c.is_gate()) || (seq_c && a.is_gate()) {
            RelationKind::GateFf
        } else {
            RelationKind::Other
        }
    }

    /// Renders the implication with node names, e.g. `F6=1 -> F4=0`.
    pub fn describe(&self, netlist: &Netlist) -> String {
        format!(
            "{} -> {}",
            self.antecedent.describe(netlist),
            self.consequent.describe(netlist)
        )
    }
}

impl fmt::Display for Implication {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.antecedent, self.consequent)
    }
}

/// Classification of a same-frame relation by the kinds of its endpoints,
/// matching what Table 3 of the paper reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelationKind {
    /// Both endpoints are sequential elements (an invalid-state relation).
    FfFf,
    /// One endpoint is a gate, the other a sequential element.
    GateFf,
    /// Anything else (primary inputs, gate-gate); not reported by the paper.
    Other,
}

/// A relation across time frames: `antecedent` at frame `T` implies
/// `consequent` at frame `T + offset`.
///
/// Cross-frame relations are plentiful but only usable by a consumer that
/// works on a window of `offset` frames (paper §3); they are collected behind
/// a configuration flag and reported separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CrossImplication {
    /// The hypothesis literal (at the reference frame).
    pub antecedent: Literal,
    /// The implied literal.
    pub consequent: Literal,
    /// Frame distance from antecedent to consequent (may be negative).
    pub offset: i32,
}

impl fmt::Display for CrossImplication {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} @ {:+}",
            self.antecedent, self.consequent, self.offset
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sla_netlist::{GateType, NetlistBuilder};

    fn sample() -> Netlist {
        let mut b = NetlistBuilder::new("rel");
        b.input("i");
        b.gate("g", GateType::Not, &["i"]).unwrap();
        b.dff("f1", "g").unwrap();
        b.dff("f2", "f1").unwrap();
        b.output("f2").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn negation_and_contrapositive() {
        let n = sample();
        let f1 = n.require("f1").unwrap();
        let f2 = n.require("f2").unwrap();
        let imp = Implication::new(Literal::new(f1, true), Literal::new(f2, false));
        let contra = imp.contrapositive();
        assert_eq!(contra.antecedent, Literal::new(f2, true));
        assert_eq!(contra.consequent, Literal::new(f1, false));
        assert_eq!(contra.contrapositive(), imp);
    }

    #[test]
    fn classification() {
        let n = sample();
        let i = n.require("i").unwrap();
        let g = n.require("g").unwrap();
        let f1 = n.require("f1").unwrap();
        let f2 = n.require("f2").unwrap();
        let imp =
            |a: NodeId, c: NodeId| Implication::new(Literal::new(a, true), Literal::new(c, false));
        assert_eq!(imp(f1, f2).kind(&n), RelationKind::FfFf);
        assert_eq!(imp(g, f1).kind(&n), RelationKind::GateFf);
        assert_eq!(imp(f1, g).kind(&n), RelationKind::GateFf);
        assert_eq!(imp(i, f1).kind(&n), RelationKind::Other);
        assert_eq!(imp(g, g).kind(&n), RelationKind::Other);
    }

    #[test]
    fn describe_uses_names() {
        let n = sample();
        let f1 = n.require("f1").unwrap();
        let f2 = n.require("f2").unwrap();
        let imp = Implication::new(Literal::new(f1, true), Literal::new(f2, false));
        assert_eq!(imp.describe(&n), "f1=1 -> f2=0");
        assert_eq!(Literal::new(f1, false).describe(&n), "f1=0");
    }
}
