//! Multiple-node learning (paper §3.1, second half) and conflict-based tie
//! learning (paper §3.2, second criterion).
//!
//! For every `(node, value)` produced by two or more stem assignments, the
//! contrapositive value on the node implies the contrapositive of *all* those
//! stem assignments simultaneously. Injecting them together — each at its own
//! frame offset — and simulating forward finds relations that no single-stem
//! (or backward/forward) analysis can reach, such as the `G9=0 → F2=0` example
//! of Figure 2 of the paper. A contradiction during this simulation means the
//! learning target itself cannot take the assumed value, i.e. it is tied.

use crate::relation::{CrossImplication, Implication, Literal};
use crate::single_node::{keep_relation, SupportMap};
use crate::tie::{TieKind, TiedGate};
use sla_netlist::{Netlist, NodeId};
use sla_sim::{Injection, InjectionSim, SimOptions, TraceRead};
use std::collections::BTreeMap;

/// Everything learned by a multiple-node pass.
#[derive(Debug, Default)]
pub struct MultiNodeOutcome {
    /// Same-frame relations with the "required sequential analysis" flag.
    pub implications: Vec<(Implication, bool)>,
    /// Optional cross-frame relations.
    pub cross_frame: Vec<CrossImplication>,
    /// Targets proven tied by conflicts.
    pub ties: Vec<TiedGate>,
    /// Number of learning targets processed.
    pub targets_processed: usize,
    /// Batched path only: number of packed batches cut short because a lane
    /// proved a tie (the suffix after that lane is re-simulated under the
    /// updated tied state).
    pub batch_restarts: usize,
    /// Batched path only: lanes simulated but discarded by those restarts.
    pub wasted_lanes: usize,
}

/// One prepared learning target.
#[derive(Debug, Clone)]
struct Target {
    injections: Vec<Injection>,
    /// Latest supporting frame, i.e. the frame of the hypothesis.
    horizon: usize,
    /// `true` when the support is contradictory and the target is tied outright.
    contradictory: bool,
}

/// Builds the injection set of a learning target from its support entries.
///
/// Support entry `(stem, w, t)` means `stem=w @ 0` produces `node=produced`
/// at frame `t`; the hypothesis `node = !produced @ horizon` therefore forces
/// `stem = !w @ horizon - t`.
fn prepare_target(node: NodeId, produced: bool, entries: &[(NodeId, bool, usize)]) -> Target {
    let horizon = entries.iter().map(|&(_, _, t)| t).max().unwrap_or(0);
    // A BTreeMap: `into_iter` below hands the slots to the injection list,
    // and the determinism contract (fast-map-iteration rule) requires every
    // iterated map to carry an input-defined order.
    let mut by_slot: BTreeMap<(NodeId, usize), bool> = BTreeMap::new();
    let mut contradictory = false;
    for &(stem, w, t) in entries {
        let frame = horizon - t;
        if by_slot.insert((stem, frame), !w) == Some(w) {
            contradictory = true;
        }
    }
    let mut injections: Vec<Injection> = by_slot
        .into_iter()
        .map(|((stem, frame), value)| Injection::new(stem, value, frame))
        .collect();
    injections.sort_by_key(|i| (i.frame, i.node, i.value));
    // The hypothesis itself is injected too: it can enable further propagation
    // and a contradiction on it is exactly the tie-learning conflict.
    injections.push(Injection::new(node, !produced, horizon));
    Target {
        injections,
        horizon,
        contradictory,
    }
}

/// One entry of the sorted target list: the `(node, value)` key and its
/// support entries.
type TargetEntry<'a> = (&'a (NodeId, bool), &'a Vec<(NodeId, bool, usize)>);

/// Sorted, truncated learning-target order: most-supported first (they yield
/// the most relations), ties broken by node id and value.
fn sorted_targets(support: &SupportMap, max_targets: usize) -> Vec<TargetEntry<'_>> {
    let mut targets: Vec<_> = support
        .iter()
        .filter(|(_, entries)| entries.len() >= 2)
        .collect();
    targets.sort_by(|a, b| {
        b.1.len()
            .cmp(&a.1.len())
            .then(a.0 .0.cmp(&b.0 .0))
            .then(a.0 .1.cmp(&b.0 .1))
    });
    if max_targets > 0 {
        targets.truncate(max_targets);
    }
    targets
}

/// Harvests the relations of one conflict-free target trace into `outcome`.
#[allow(clippy::too_many_arguments)]
fn harvest_target<T: TraceRead>(
    netlist: &Netlist,
    node: NodeId,
    produced: bool,
    target: &Target,
    trace: &T,
    class_mask: Option<&[bool]>,
    learn_cross_frame: bool,
    outcome: &mut MultiNodeOutcome,
) {
    let hypothesis = Literal::new(node, !produced);
    let sequential = target.horizon > 0;
    if trace.num_frames() > target.horizon {
        for (other, value) in trace.binary_assignments(target.horizon) {
            if other == node {
                continue;
            }
            if !keep_relation(netlist, class_mask, node, other) {
                continue;
            }
            outcome.implications.push((
                Implication::new(hypothesis, Literal::new(other, value)),
                sequential,
            ));
        }
        if learn_cross_frame {
            for t in 0..target.horizon {
                for (other, value) in trace.binary_assignments(t) {
                    if other == node || netlist.node(other).is_input() {
                        continue;
                    }
                    outcome.cross_frame.push(CrossImplication {
                        antecedent: hypothesis,
                        consequent: Literal::new(other, value),
                        offset: t as i32 - target.horizon as i32,
                    });
                }
            }
        }
    }
}

/// Registers a proven tie with the outcome and the simulator so later targets
/// benefit.
fn record_tie(
    sim: &mut InjectionSim<'_>,
    outcome: &mut MultiNodeOutcome,
    node: NodeId,
    produced: bool,
    horizon: usize,
) {
    let tie = TiedGate::new(node, produced, tie_kind(horizon));
    sim.add_tied(node, produced);
    outcome.ties.push(tie);
}

/// Runs multiple-node learning over the support map.
///
/// The simulator must already carry the equivalences, tied constants and
/// active-class mask of the enclosing learning pass; ties discovered here are
/// added to it on the fly so later targets benefit (this is what lets the
/// `G15` example of the paper be proven tied).
///
/// This is the scalar reference path — one forward simulation per target. The
/// learning engine uses [`run_batched`], which produces the same outcome from
/// packed 64-lane passes; property tests assert the equality.
#[allow(clippy::too_many_arguments)]
pub fn run(
    sim: &mut InjectionSim<'_>,
    support: &SupportMap,
    options: &SimOptions,
    class_mask: Option<&[bool]>,
    max_targets: usize,
    learn_cross_frame: bool,
) -> MultiNodeOutcome {
    let netlist = sim.netlist();
    let mut outcome = MultiNodeOutcome::default();

    for (&(node, produced), entries) in sorted_targets(support, max_targets) {
        if netlist.node(node).is_input() {
            continue;
        }
        if sim.tied().iter().any(|&(n, _)| n == node) {
            continue;
        }
        let target = prepare_target(node, produced, entries);
        outcome.targets_processed += 1;

        if target.contradictory {
            record_tie(sim, &mut outcome, node, produced, target.horizon);
            continue;
        }

        let run_options = SimOptions {
            max_frames: target.horizon + 1,
            stop_on_repeat: false,
            respect_seq_rules: options.respect_seq_rules,
        };
        let trace = sim.run(&target.injections, &run_options);

        if trace.conflict.is_some() {
            // The hypothesis `node = !produced` is impossible: tied to `produced`.
            record_tie(sim, &mut outcome, node, produced, target.horizon);
            continue;
        }

        harvest_target(
            netlist,
            node,
            produced,
            &target,
            &trace,
            class_mask,
            learn_cross_frame,
            &mut outcome,
        );
    }
    outcome
}

/// Runs multiple-node learning over the support map with up to 64 targets per
/// packed forward pass. Produces exactly the same outcome as [`run`].
///
/// Targets are batched under the tied-constant state current at batch start.
/// Serial semantics require a tie discovered at target *k* to influence every
/// target after *k*, so when a batch lane conflicts (a new tie), the lanes up
/// to and including the first conflict are harvested — they only depended on
/// the unchanged prefix state — the tie is registered, and batching restarts
/// at the next target under the updated state.
///
/// The batch width adapts to the tie density: every restart halves the next
/// batch (down to [`MIN_BATCH`]) because on tie-dense target lists a wide
/// batch mostly simulates lanes that are thrown away, and every conflict-free
/// batch doubles it again (up to 64). The restart and wasted-lane counts are
/// reported in the outcome.
#[allow(clippy::too_many_arguments)]
pub fn run_batched(
    sim: &mut InjectionSim<'_>,
    support: &SupportMap,
    options: &SimOptions,
    class_mask: Option<&[bool]>,
    max_targets: usize,
    learn_cross_frame: bool,
) -> MultiNodeOutcome {
    let mut outcome = MultiNodeOutcome::default();
    let targets = sorted_targets(support, max_targets);
    // Targets are prepared on first need and memoized — preparation only
    // depends on the support entries, not on the evolving tied state, so
    // batch restarts never redo the work, and targets skipped as already
    // tied are never prepared at all.
    let mut prepared: Vec<Option<Target>> = (0..targets.len()).map(|_| None).collect();

    let mut cap = MAX_BATCH;
    let mut i = 0;
    loop {
        let step = plan_step(
            sim.netlist(),
            &targets,
            &mut prepared,
            sim.tied(),
            &[],
            i,
            cap,
        );
        match step {
            None => break,
            Some(PlannedStep::Tie {
                idx,
                node,
                produced,
            }) => {
                outcome.targets_processed += 1;
                let horizon = prepared[idx]
                    .as_ref()
                    .expect("planned tie is prepared")
                    .horizon;
                record_tie(sim, &mut outcome, node, produced, horizon);
                i = idx + 1;
            }
            Some(PlannedStep::Batch(plan)) => {
                let traces = simulate_plan(sim, &prepared, &plan, options);
                match process_batch(
                    sim,
                    &prepared,
                    &plan.batch,
                    &traces,
                    class_mask,
                    learn_cross_frame,
                    &mut outcome,
                ) {
                    Some(conflict_at) => {
                        // New tie: later lanes would have seen it in the
                        // serial order — re-run them under the updated state,
                        // and shrink the next batch so a tie-dense stretch
                        // wastes fewer lanes per restart.
                        cap = (cap / 2).max(MIN_BATCH);
                        i = conflict_at + 1;
                    }
                    None => {
                        // A conflict-free batch: the tie-dense stretch (if
                        // any) is over, widen again.
                        cap = (cap * 2).min(MAX_BATCH);
                        i = plan.next_i;
                    }
                }
            }
        }
    }
    outcome
}

/// One planned packed batch.
#[derive(Debug)]
struct BatchPlan {
    /// Lanes: `(target index, node, produced)`.
    batch: Vec<(usize, NodeId, bool)>,
    /// Scan position the serial order continues from when the batch turns out
    /// conflict-free.
    next_i: usize,
    /// Number of certain (contradictory-target) ties planned before this
    /// batch within the current speculation round; the batch's simulation
    /// state is the round's base state plus that overlay prefix.
    overlay_len: usize,
}

/// One step of the serial learning schedule, as produced by [`plan_step`].
#[derive(Debug)]
enum PlannedStep {
    /// The scan head is a contradictory target: a certain tie, no simulation.
    Tie {
        idx: usize,
        node: NodeId,
        produced: bool,
    },
    /// A gathered batch of simulatable targets.
    Batch(BatchPlan),
}

/// Plans the next step of the serial schedule from scan position `i` under
/// the tied state `tied ∪ overlay`: skips input/already-tied targets, then
/// either reports the contradictory head as a certain tie or gathers a batch
/// of up to `cap` simulatable targets (a contradictory target is a batch
/// boundary: its tie mutates the state every later target sees). Returns
/// `None` when the target list is exhausted.
///
/// This is the exact gather logic of the single-thread pass, factored out so
/// the sharded pass can *speculatively* plan several steps ahead — planning
/// is pure given the tied state, and certain ties extend the overlay without
/// any simulation.
fn plan_step(
    netlist: &Netlist,
    targets: &[TargetEntry<'_>],
    prepared: &mut [Option<Target>],
    tied: &[(NodeId, bool)],
    overlay: &[(NodeId, bool)],
    mut i: usize,
    cap: usize,
) -> Option<PlannedStep> {
    let is_tied = |node: NodeId| {
        tied.iter().any(|&(n, _)| n == node) || overlay.iter().any(|&(n, _)| n == node)
    };
    let prepare = |prepared: &mut [Option<Target>], at: usize| {
        if prepared[at].is_none() {
            let (&(node, produced), entries) = targets[at];
            prepared[at] = Some(prepare_target(node, produced, entries));
        }
    };
    loop {
        if i >= targets.len() {
            return None;
        }
        let &(node, produced) = targets[i].0;
        if netlist.node(node).is_input() || is_tied(node) {
            i += 1;
            continue;
        }
        prepare(prepared, i);
        if prepared[i].as_ref().expect("just prepared").contradictory {
            return Some(PlannedStep::Tie {
                idx: i,
                node,
                produced,
            });
        }
        let mut batch: Vec<(usize, NodeId, bool)> = vec![(i, node, produced)];
        let mut j = i + 1;
        while j < targets.len() && batch.len() < cap {
            let &(n2, p2) = targets[j].0;
            if netlist.node(n2).is_input() || is_tied(n2) {
                j += 1;
                continue;
            }
            prepare(prepared, j);
            if prepared[j].as_ref().expect("just prepared").contradictory {
                break;
            }
            batch.push((j, n2, p2));
            j += 1;
        }
        return Some(PlannedStep::Batch(BatchPlan {
            batch,
            next_i: j,
            overlay_len: overlay.len(),
        }));
    }
}

/// Runs the packed forward pass of one planned batch. Pure with respect to
/// the simulator (reads its tied/equivalence/mask state only), so speculative
/// executions on clones produce the traces the serial order would.
fn simulate_plan(
    sim: &InjectionSim<'_>,
    prepared: &[Option<Target>],
    plan: &BatchPlan,
    options: &SimOptions,
) -> sla_sim::PackedTraces {
    let lanes: Vec<&Target> = plan
        .batch
        .iter()
        .map(|&(at, _, _)| prepared[at].as_ref().expect("batch lanes are prepared"))
        .collect();
    let run_options = SimOptions {
        max_frames: lanes
            .iter()
            .map(|t| t.horizon + 1)
            .max()
            .expect("non-empty batch"),
        stop_on_repeat: false,
        respect_seq_rules: options.respect_seq_rules,
    };
    let jobs: Vec<&[Injection]> = lanes.iter().map(|t| t.injections.as_slice()).collect();
    let limits: Vec<usize> = lanes.iter().map(|t| t.horizon + 1).collect();
    sim.run_batch_with_limits_packed(&jobs, &run_options, &limits)
}

/// Processes the lanes of one simulated batch in serial order: harvests
/// conflict-free lanes, and on the first conflicting lane records the tie,
/// the restart and the wasted suffix, returning the conflicting target index
/// (the serial scan resumes right after it). `None` means conflict-free.
#[allow(clippy::too_many_arguments)]
fn process_batch(
    sim: &mut InjectionSim<'_>,
    prepared: &[Option<Target>],
    batch: &[(usize, NodeId, bool)],
    traces: &sla_sim::PackedTraces,
    class_mask: Option<&[bool]>,
    learn_cross_frame: bool,
    outcome: &mut MultiNodeOutcome,
) -> Option<usize> {
    let netlist = sim.netlist();
    for (k, &(ti, n2, p2)) in batch.iter().enumerate() {
        let trace = traces.lane(k);
        let target = prepared[ti].as_ref().expect("batch lanes are prepared");
        outcome.targets_processed += 1;
        if trace.conflict().is_some() {
            let horizon = target.horizon;
            record_tie(sim, outcome, n2, p2, horizon);
            outcome.batch_restarts += 1;
            outcome.wasted_lanes += batch.len() - k - 1;
            return Some(ti);
        }
        harvest_target(
            netlist,
            n2,
            p2,
            target,
            &trace,
            class_mask,
            learn_cross_frame,
            outcome,
        );
    }
    None
}

/// One speculative simulation job of [`run_sharded`]: an owned snapshot of
/// everything the packed forward pass needs, so worker threads never borrow
/// the merge thread's mutable state.
struct SpecJob<'a> {
    /// Clone of the round's base simulator plus the certain-tie overlay
    /// prefix of this batch.
    sim: InjectionSim<'a>,
    /// Per-lane injection sets (cloned from the prepared targets).
    jobs: Vec<Vec<Injection>>,
    /// Per-lane frame limits (`horizon + 1`).
    limits: Vec<usize>,
    /// Widest lane limit (the pass's `max_frames`).
    max_frames: usize,
    respect_seq_rules: bool,
    /// Position among the round's batches (results are reordered by it).
    seq: usize,
}

/// Runs multiple-node learning sharded across `threads` worker threads,
/// producing **exactly** the outcome of [`run_batched`] — same relations,
/// ties, target count and tie-restart accounting (`batch_restarts`,
/// `wasted_lanes`) — and leaving the simulator's tied state identical.
///
/// Targets are coupled through discovered ties, so the work cannot be split
/// by naive sharding without changing the serial schedule. Instead the
/// single-thread schedule is executed *speculatively*: up to `threads`
/// consecutive batches are planned ahead under the assumption that every one
/// of them is conflict-free (certain ties from contradictory targets are
/// applied during planning — they need no simulation), their packed forward
/// passes run in parallel on clones of the current simulator state, and the
/// results are then processed in serial order by the same code the
/// single-thread pass uses. The first simulation-discovered conflict
/// invalidates the remaining speculative traces, which are discarded and
/// replanned under the updated tied state — wasted *machine* work, but the
/// reported schedule (and therefore every output bit) is the serial one.
#[allow(clippy::too_many_arguments)]
pub fn run_sharded(
    sim: &mut InjectionSim<'_>,
    support: &SupportMap,
    options: &SimOptions,
    class_mask: Option<&[bool]>,
    max_targets: usize,
    learn_cross_frame: bool,
    threads: usize,
) -> MultiNodeOutcome {
    if threads <= 1 {
        return run_batched(
            sim,
            support,
            options,
            class_mask,
            max_targets,
            learn_cross_frame,
        );
    }
    let netlist = sim.netlist();
    let mut outcome = MultiNodeOutcome::default();
    let targets = sorted_targets(support, max_targets);
    let mut prepared: Vec<Option<Target>> = (0..targets.len()).map(|_| None).collect();

    // One worker pool for the whole pass: rounds are frequent (every
    // conflict squashes one), so per-round thread spawn/join would dominate
    // tie-dense target lists. The workers run the owned-data twin of
    // [`simulate_plan`].
    sla_par::with_pool(
        threads,
        |_worker| (),
        |(), job: SpecJob<'_>| {
            let run_options = SimOptions {
                max_frames: job.max_frames,
                stop_on_repeat: false,
                respect_seq_rules: job.respect_seq_rules,
            };
            let jobs: Vec<&[Injection]> = job.jobs.iter().map(|j| j.as_slice()).collect();
            let packed = job
                .sim
                .run_batch_with_limits_packed(&jobs, &run_options, &job.limits);
            (job.seq, packed)
        },
        |pool| {
            let mut cap = MAX_BATCH;
            let mut i = 0;
            loop {
                // Speculative plan: up to `threads` batches ahead, assuming
                // conflict-free outcomes (the common case — multi-node ties are rare
                // on most target lists).
                let mut steps: Vec<PlannedStep> = Vec::new();
                let mut overlay: Vec<(NodeId, bool)> = Vec::new();
                let mut plan_i = i;
                let mut plan_cap = cap;
                let mut batches = 0usize;
                while batches < threads {
                    match plan_step(
                        netlist,
                        &targets,
                        &mut prepared,
                        sim.tied(),
                        &overlay,
                        plan_i,
                        plan_cap,
                    ) {
                        None => break,
                        Some(PlannedStep::Tie {
                            idx,
                            node,
                            produced,
                        }) => {
                            overlay.push((node, produced));
                            plan_i = idx + 1;
                            steps.push(PlannedStep::Tie {
                                idx,
                                node,
                                produced,
                            });
                        }
                        Some(PlannedStep::Batch(plan)) => {
                            plan_i = plan.next_i;
                            plan_cap = (plan_cap * 2).min(MAX_BATCH);
                            batches += 1;
                            steps.push(PlannedStep::Batch(plan));
                        }
                    }
                }
                if steps.is_empty() {
                    break;
                }

                // Parallel speculative simulation of the planned batches on the
                // persistent worker pool, each job carrying a clone of the round's
                // base state plus its certain-tie overlay prefix (cloned on this
                // thread, so the workers never borrow the mutable merge state).
                let mut batch_count = 0usize;
                for step in &steps {
                    let PlannedStep::Batch(plan) = step else {
                        continue;
                    };
                    let mut worker_sim = sim.clone();
                    for &(node, value) in &overlay[..plan.overlay_len] {
                        worker_sim.add_tied(node, value);
                    }
                    let lanes: Vec<&Target> = plan
                        .batch
                        .iter()
                        .map(|&(at, _, _)| prepared[at].as_ref().expect("batch lanes are prepared"))
                        .collect();
                    pool.submit(SpecJob {
                        sim: worker_sim,
                        jobs: lanes.iter().map(|t| t.injections.clone()).collect(),
                        limits: lanes.iter().map(|t| t.horizon + 1).collect(),
                        max_frames: lanes
                            .iter()
                            .map(|t| t.horizon + 1)
                            .max()
                            .expect("non-empty batch"),
                        respect_seq_rules: options.respect_seq_rules,
                        seq: batch_count,
                    });
                    batch_count += 1;
                }
                let mut traces: Vec<Option<sla_sim::PackedTraces>> =
                    (0..batch_count).map(|_| None).collect();
                for _ in 0..batch_count {
                    let (seq, packed) = pool.recv();
                    traces[seq] = Some(packed);
                }

                // Serial processing: identical code and order to the single-thread
                // pass; the first conflict discards the remaining speculation.
                let mut conflicted = false;
                let mut trace_idx = 0usize;
                for step in &steps {
                    match step {
                        PlannedStep::Tie {
                            idx,
                            node,
                            produced,
                        } => {
                            outcome.targets_processed += 1;
                            let horizon = prepared[*idx]
                                .as_ref()
                                .expect("planned tie is prepared")
                                .horizon;
                            record_tie(sim, &mut outcome, *node, *produced, horizon);
                            i = idx + 1;
                        }
                        PlannedStep::Batch(plan) => {
                            let batch_traces = traces[trace_idx].as_ref().expect("round result");
                            trace_idx += 1;
                            match process_batch(
                                sim,
                                &prepared,
                                &plan.batch,
                                batch_traces,
                                class_mask,
                                learn_cross_frame,
                                &mut outcome,
                            ) {
                                Some(conflict_at) => {
                                    cap = (cap / 2).max(MIN_BATCH);
                                    i = conflict_at + 1;
                                    conflicted = true;
                                }
                                None => {
                                    cap = (cap * 2).min(MAX_BATCH);
                                    i = plan.next_i;
                                }
                            }
                            if conflicted {
                                break;
                            }
                        }
                    }
                }
            }
        },
    );
    outcome
}

/// Widest packed batch (one lane per bit of the simulation words).
const MAX_BATCH: usize = 64;

/// Narrowest adaptive batch: keeps some word-parallelism even in a stretch
/// where every second target proves a tie.
const MIN_BATCH: usize = 4;

fn tie_kind(horizon: usize) -> TieKind {
    if horizon == 0 {
        TieKind::Combinational
    } else {
        TieKind::Sequential
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::single_node;
    use sla_netlist::{GateType, Netlist, NetlistBuilder};
    use sla_sim::Logic3;

    /// The Figure-2 phenomenon, reduced to its core: each of `i2=0` and `i3=0`
    /// alone forces `g9=1` one frame later, so `g9=0` implies both were 1,
    /// which forces `f2=0` in the same frame as `g9`. No single-stem analysis
    /// can find `g9=0 -> f2=0`.
    fn figure2_core() -> Netlist {
        let mut b = NetlistBuilder::new("fig2core");
        b.input("i2");
        b.input("i3");
        // Branch the inputs so they are fanout stems.
        b.gate("ni2", GateType::Not, &["i2"]).unwrap();
        b.gate("ni3", GateType::Not, &["i3"]).unwrap();
        b.dff("fa", "ni2").unwrap();
        b.dff("fb", "ni3").unwrap();
        b.gate("g9", GateType::Or, &["fa", "fb"]).unwrap();
        // f2 captures i2 AND i3 one frame earlier than g9 is observed... the
        // same frame as g9: f2 <- AND(i2, i3) so f2 and g9 are aligned.
        b.gate("d2", GateType::Nand, &["i2", "i3"]).unwrap();
        b.dff("f2", "d2").unwrap();
        // Extra fanout so i2/i3 really are stems.
        b.gate("u1", GateType::Buf, &["i2"]).unwrap();
        b.gate("u2", GateType::Buf, &["i3"]).unwrap();
        b.output("g9").unwrap();
        b.output("f2").unwrap();
        b.output("u1").unwrap();
        b.output("u2").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn prepare_target_aligns_frames_and_detects_contradictions() {
        let n = figure2_core();
        let i2 = n.require("i2").unwrap();
        let i3 = n.require("i3").unwrap();
        let g9 = n.require("g9").unwrap();
        let t = prepare_target(g9, true, &[(i2, false, 1), (i3, false, 1)]);
        assert_eq!(t.horizon, 1);
        assert!(!t.contradictory);
        assert!(t.injections.contains(&Injection::new(i2, true, 0)));
        assert!(t.injections.contains(&Injection::new(i3, true, 0)));
        assert!(t.injections.contains(&Injection::new(g9, false, 1)));
        // Contradictory support: the same stem must be both 0 and 1 at frame 0.
        let t2 = prepare_target(g9, true, &[(i2, false, 1), (i2, true, 1)]);
        assert!(t2.contradictory);
    }

    #[test]
    fn finds_relation_unreachable_by_single_node_learning() {
        let n = figure2_core();
        let g9 = n.require("g9").unwrap();
        let f2 = n.require("f2").unwrap();
        let stems = sla_netlist::stems::fanout_stems(&n);
        let sim = InjectionSim::new(&n).unwrap();
        let options = SimOptions::default();
        let single = single_node::run(&sim, &stems, &options, None, false);
        // Multiple-node learning target: g9=0 forces i2=1 and i3=1 one frame
        // earlier, which forces d2=NAND(1,1)=0, captured by f2 -> g9=0 -> f2=0.
        let wanted = Implication::new(Literal::new(g9, false), Literal::new(f2, false));
        // Single-node learning cannot see it (g9 and f2 are set by the same
        // stem polarity, never by opposite ones).
        assert!(
            !single
                .implications
                .iter()
                .any(|(imp, _)| *imp == wanted || *imp == wanted.contrapositive()),
            "single-node learning should not find g9=0 -> f2=0"
        );
        let mut sim = InjectionSim::new(&n).unwrap();
        let multi = run(&mut sim, &single.support, &options, None, 0, false);
        assert!(
            multi.implications.iter().any(|(imp, _)| *imp == wanted),
            "multiple-node learning must find g9=0 -> f2=0; got {:?}",
            multi
                .implications
                .iter()
                .map(|(i, _)| i.describe(&n))
                .collect::<Vec<_>>()
        );
    }

    /// A target whose hypothesis is self-contradictory: g = OR(f1, f2) where
    /// both flip-flops are forced to 1 whenever g was 0 one frame earlier is
    /// awkward to build minimally, so instead use the direct conflict: the
    /// hypothesis value is recomputed as its complement inside the same frame.
    #[test]
    fn conflict_during_injection_learns_a_tie() {
        let mut b = NetlistBuilder::new("tieconflict");
        b.input("a");
        b.input("b");
        // g = OR(x, y): x and y both go to 1 whenever a=0 or b=0 at the same
        // frame; g can only be 0 if x=y=0 which forces a=1 and b=1, but then
        // z = AND(a,b) = 1 feeds the OR as well, a contradiction -> g tied to 1.
        b.gate("x", GateType::Not, &["a"]).unwrap();
        b.gate("y", GateType::Not, &["b"]).unwrap();
        b.gate("z", GateType::And, &["a", "b"]).unwrap();
        b.gate("g", GateType::Or, &["x", "y", "z"]).unwrap();
        b.dff("f", "g").unwrap();
        b.output("f").unwrap();
        let n = b.build().unwrap();
        let g = n.require("g").unwrap();
        let stems = sla_netlist::stems::fanout_stems(&n);
        let sim = InjectionSim::new(&n).unwrap();
        let options = SimOptions::default();
        let single = single_node::run(&sim, &stems, &options, None, false);
        assert!(
            single.support.get(&(g, true)).map(|e| e.len()).unwrap_or(0) >= 2,
            "g=1 must be supported by both input stems"
        );
        let mut sim = InjectionSim::new(&n).unwrap();
        let multi = run(&mut sim, &single.support, &options, None, 0, false);
        assert!(
            multi.ties.iter().any(|t| t.node == g && t.value),
            "g must be learned tied to 1, got {:?}",
            multi.ties
        );
        // The tie is also registered with the simulator for later targets.
        assert!(sim.tied().iter().any(|&(node, v)| node == g && v));
    }

    #[test]
    fn already_tied_targets_are_skipped() {
        let n = figure2_core();
        let g9 = n.require("g9").unwrap();
        let stems = sla_netlist::stems::fanout_stems(&n);
        let base = InjectionSim::new(&n).unwrap();
        let single = single_node::run(&base, &stems, &SimOptions::default(), None, false);
        let mut sim = InjectionSim::new(&n).unwrap();
        sim.add_tied(g9, true);
        let multi = run(
            &mut sim,
            &single.support,
            &SimOptions::default(),
            None,
            0,
            false,
        );
        assert!(multi
            .implications
            .iter()
            .all(|(imp, _)| imp.antecedent.node != g9));
    }

    #[test]
    fn batched_run_matches_scalar_run() {
        for netlist in [figure2_core(), {
            // The tie-conflict circuit exercises the batch-restart path.
            let mut b = NetlistBuilder::new("tieconflict");
            b.input("a");
            b.input("b");
            b.gate("x", GateType::Not, &["a"]).unwrap();
            b.gate("y", GateType::Not, &["b"]).unwrap();
            b.gate("z", GateType::And, &["a", "b"]).unwrap();
            b.gate("g", GateType::Or, &["x", "y", "z"]).unwrap();
            b.dff("f", "g").unwrap();
            b.output("f").unwrap();
            b.build().unwrap()
        }] {
            let stems = sla_netlist::stems::fanout_stems(&netlist);
            let options = SimOptions::default();
            let base = InjectionSim::new(&netlist).unwrap();
            let single = single_node::run(&base, &stems, &options, None, false);
            let mut scalar_sim = InjectionSim::new(&netlist).unwrap();
            let scalar = run(&mut scalar_sim, &single.support, &options, None, 0, true);
            let mut batched_sim = InjectionSim::new(&netlist).unwrap();
            let batched = run_batched(&mut batched_sim, &single.support, &options, None, 0, true);
            assert_eq!(scalar.implications, batched.implications);
            assert_eq!(scalar.ties, batched.ties);
            assert_eq!(scalar.cross_frame, batched.cross_frame);
            assert_eq!(scalar.targets_processed, batched.targets_processed);
            assert_eq!(scalar_sim.tied(), batched_sim.tied());
        }
    }

    /// `copies` independent instances of the tie-conflict motif: every
    /// `g{i}` is provably tied to 1 through a simulation conflict, so the
    /// target list is dense in ties and every tie restarts the batch.
    fn tie_dense(copies: usize) -> Netlist {
        let mut b = NetlistBuilder::new("tiedense");
        for i in 0..copies {
            let a = format!("a{i}");
            let bb = format!("b{i}");
            b.input(&a);
            b.input(&bb);
            b.gate(&format!("x{i}"), GateType::Not, &[&a]).unwrap();
            b.gate(&format!("y{i}"), GateType::Not, &[&bb]).unwrap();
            b.gate(&format!("z{i}"), GateType::And, &[&a, &bb]).unwrap();
            b.gate(
                &format!("g{i}"),
                GateType::Or,
                &[
                    format!("x{i}").as_str(),
                    format!("y{i}").as_str(),
                    format!("z{i}").as_str(),
                ],
            )
            .unwrap();
            b.dff(&format!("f{i}"), &format!("g{i}")).unwrap();
            b.output(&format!("f{i}")).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn adaptive_batching_matches_scalar_and_bounds_restart_waste() {
        let netlist = tie_dense(12);
        let stems = sla_netlist::stems::fanout_stems(&netlist);
        let options = SimOptions::default();
        let base = InjectionSim::new(&netlist).unwrap();
        let single = single_node::run(&base, &stems, &options, None, false);

        let mut scalar_sim = InjectionSim::new(&netlist).unwrap();
        let scalar = run(&mut scalar_sim, &single.support, &options, None, 0, false);
        let mut batched_sim = InjectionSim::new(&netlist).unwrap();
        let batched = run_batched(&mut batched_sim, &single.support, &options, None, 0, false);

        assert_eq!(scalar.implications, batched.implications);
        assert_eq!(scalar.ties, batched.ties);
        assert_eq!(scalar.targets_processed, batched.targets_processed);
        assert_eq!(scalar_sim.tied(), batched_sim.tied());
        assert_eq!(scalar.batch_restarts, 0, "scalar path never restarts");

        // Every motif copy proves two ties via simulation conflicts (the OR
        // gate and the flip-flop capturing it); each is one batch restart.
        // Pinned: a change to the restart protocol (or to the target
        // ordering) must be deliberate.
        assert_eq!(batched.ties.len(), 24);
        assert_eq!(batched.batch_restarts, 24);
        // Adaptive shrinking caps the re-simulated suffix: a fixed 64-wide
        // batch discards the whole remaining suffix on every restart (408
        // lanes on this target list); shrinking to MIN_BATCH after the first
        // few ties cuts that to 132.
        assert_eq!(
            batched.wasted_lanes, 132,
            "{} lanes wasted over {} restarts",
            batched.wasted_lanes, batched.batch_restarts
        );
    }

    /// The speculative sharded pass must replay the serial schedule bit for
    /// bit — including on the tie-dense list, where almost every speculation
    /// round is squashed by a conflict.
    #[test]
    fn sharded_run_matches_batched_run_including_restart_accounting() {
        for netlist in [figure2_core(), tie_dense(12)] {
            let stems = sla_netlist::stems::fanout_stems(&netlist);
            let options = SimOptions::default();
            let base = InjectionSim::new(&netlist).unwrap();
            let single = single_node::run(&base, &stems, &options, None, false);
            let mut reference_sim = InjectionSim::new(&netlist).unwrap();
            let reference =
                run_batched(&mut reference_sim, &single.support, &options, None, 0, true);
            for threads in [1, 2, 3, 8] {
                let mut sharded_sim = InjectionSim::new(&netlist).unwrap();
                let sharded = run_sharded(
                    &mut sharded_sim,
                    &single.support,
                    &options,
                    None,
                    0,
                    true,
                    threads,
                );
                assert_eq!(reference.implications, sharded.implications, "t={threads}");
                assert_eq!(reference.ties, sharded.ties, "t={threads}");
                assert_eq!(reference.cross_frame, sharded.cross_frame, "t={threads}");
                assert_eq!(
                    reference.targets_processed, sharded.targets_processed,
                    "t={threads}"
                );
                assert_eq!(
                    reference.batch_restarts, sharded.batch_restarts,
                    "t={threads}"
                );
                assert_eq!(reference.wasted_lanes, sharded.wasted_lanes, "t={threads}");
                assert_eq!(reference_sim.tied(), sharded_sim.tied(), "t={threads}");
            }
        }
    }

    #[test]
    fn max_targets_bounds_the_work() {
        let n = figure2_core();
        let stems = sla_netlist::stems::fanout_stems(&n);
        let base = InjectionSim::new(&n).unwrap();
        let single = single_node::run(&base, &stems, &SimOptions::default(), None, false);
        let mut sim = InjectionSim::new(&n).unwrap();
        let limited = run(
            &mut sim,
            &single.support,
            &SimOptions::default(),
            None,
            1,
            false,
        );
        assert!(limited.targets_processed <= 1);
    }

    #[test]
    fn figure2_core_sanity_simulation() {
        // Cross-check the hand analysis of the helper circuit.
        let n = figure2_core();
        let sim = InjectionSim::new(&n).unwrap();
        let i2 = n.require("i2").unwrap();
        let g9 = n.require("g9").unwrap();
        let trace = sim.run(&[Injection::new(i2, false, 0)], &SimOptions::default());
        assert_eq!(trace.value(1, g9), Logic3::One);
    }
}
