//! The implication database: learned same-frame relations with contrapositive
//! closure, deduplication and per-kind counting.

use crate::relation::{Implication, Literal, RelationKind};
use sla_netlist::{FastHashMap, Netlist, NodeId};
use std::collections::{BTreeMap, BTreeSet};

/// Stores learned same-frame implications.
///
/// Every inserted relation is stored together with its contrapositive (the two
/// are one logical fact); duplicates are ignored. Each canonical relation also
/// remembers whether every derivation of it crossed a time frame — relations
/// derivable at frame 0 are *combinational* and are excluded from the
/// "sequential" counts the paper reports in Table 3.
#[derive(Debug, Clone, Default)]
pub struct ImplicationDb {
    /// antecedent -> set of consequents (directed edges, closed under
    /// contrapositive). A `BTreeMap`, not a fast map: the transitive-closure
    /// pass iterates it, and the determinism contract (fast-map-iteration
    /// rule) requires every iterated map to have an input-defined order.
    forward: BTreeMap<Literal, BTreeSet<Literal>>,
    /// Canonical relation list in insertion order, with the sequential flag.
    canonical: Vec<(Implication, bool)>,
    /// Position of each relation in `canonical`, keyed by the orientation-
    /// independent form (the smaller of relation and contrapositive), so
    /// duplicate insertions and flag downgrades are O(1) instead of a scan.
    index: FastHashMap<Implication, usize>,
}

/// Orientation-independent key of a relation: a relation and its
/// contrapositive are one logical fact.
fn canonical_key(imp: &Implication) -> Implication {
    imp.contrapositive().min(*imp)
}

impl ImplicationDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        ImplicationDb::default()
    }

    /// Inserts a relation (and its contrapositive).
    ///
    /// `sequential` records whether this derivation needed to cross a time
    /// frame. When the same relation is derived both sequentially and
    /// combinationally it is counted as combinational, because combinational
    /// learning would have found it anyway.
    ///
    /// Returns `true` when the relation was new. Self-implications
    /// (`a=v → a=v`) are ignored; contradictory self-implications
    /// (`a=v → a=¬v`) are rejected here — the tie-learning pass handles them.
    pub fn add(&mut self, imp: Implication, sequential: bool) -> bool {
        if imp.antecedent.node == imp.consequent.node {
            return false;
        }
        if let Some(&at) = self.index.get(&canonical_key(&imp)) {
            if !sequential {
                // Downgrade an existing sequential derivation to combinational.
                self.canonical[at].1 = false;
            }
            return false;
        }
        self.forward
            .entry(imp.antecedent)
            .or_default()
            .insert(imp.consequent);
        let contra = imp.contrapositive();
        self.forward
            .entry(contra.antecedent)
            .or_default()
            .insert(contra.consequent);
        self.index.insert(canonical_key(&imp), self.canonical.len());
        self.canonical.push((imp, sequential));
        true
    }

    /// Returns `true` if the relation (or its contrapositive) is stored.
    pub fn contains(&self, imp: &Implication) -> bool {
        self.forward
            .get(&imp.antecedent)
            .is_some_and(|s| s.contains(&imp.consequent))
    }

    /// Returns `true` when `a = va` is known to imply `b = vb` directly.
    pub fn implies(&self, a: NodeId, va: bool, b: NodeId, vb: bool) -> bool {
        self.contains(&Implication::new(Literal::new(a, va), Literal::new(b, vb)))
    }

    /// Direct consequents of a literal (contrapositives included).
    pub fn consequents(&self, lit: Literal) -> impl Iterator<Item = Literal> + '_ {
        self.forward
            .get(&lit)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// Number of stored canonical relations (a relation and its contrapositive
    /// count once).
    pub fn len(&self) -> usize {
        self.canonical.len()
    }

    /// Returns `true` when no relation is stored.
    pub fn is_empty(&self) -> bool {
        self.canonical.is_empty()
    }

    /// Iterates over canonical relations together with the flag telling
    /// whether the relation required sequential (multi-frame) analysis.
    pub fn iter(&self) -> impl Iterator<Item = (Implication, bool)> + '_ {
        self.canonical.iter().copied()
    }

    /// Iterates over canonical relations only.
    pub fn relations(&self) -> impl Iterator<Item = Implication> + '_ {
        self.canonical.iter().map(|(i, _)| *i)
    }

    /// Merges another database into this one.
    pub fn merge(&mut self, other: &ImplicationDb) {
        for (imp, seq) in other.iter() {
            self.add(imp, seq);
        }
    }

    /// Counts canonical relations by kind; when `sequential_only` is set, only
    /// relations that required crossing a time frame are counted (this is what
    /// Table 3 of the paper reports).
    pub fn count_by_kind(&self, netlist: &Netlist, sequential_only: bool) -> RelationCounts {
        let mut counts = RelationCounts::default();
        for (imp, seq) in self.iter() {
            if sequential_only && !seq {
                continue;
            }
            match imp.kind(netlist) {
                RelationKind::FfFf => counts.ff_ff += 1,
                RelationKind::GateFf => counts.gate_ff += 1,
                RelationKind::Other => counts.other += 1,
            }
        }
        counts
    }

    /// Computes the transitive closure of the implication graph, bounded by
    /// `max_new` newly added relations (the closure of a large database can be
    /// quadratic). New relations inherit the sequential flag conservatively
    /// (sequential if any edge on the path was sequential).
    pub fn transitive_closure(&mut self, max_new: usize) -> usize {
        let mut added = 0usize;
        let mut changed = true;
        while changed && added < max_new {
            changed = false;
            let snapshot: Vec<(Literal, Vec<Literal>)> = self
                .forward
                .iter()
                .map(|(k, v)| (*k, v.iter().copied().collect()))
                .collect();
            let seq_of = |imp: &Implication, this: &ImplicationDb| -> bool {
                this.index
                    .get(&canonical_key(imp))
                    .map(|&at| this.canonical[at].1)
                    .unwrap_or(true)
            };
            for (a, consequents) in &snapshot {
                for b in consequents {
                    for c in self
                        .forward
                        .get(b)
                        .map(|s| s.iter().copied().collect::<Vec<_>>())
                        .unwrap_or_default()
                    {
                        if c.node == a.node {
                            continue;
                        }
                        let new_imp = Implication::new(*a, c);
                        if !self.contains(&new_imp) {
                            let seq = seq_of(&Implication::new(*a, *b), self)
                                || seq_of(&Implication::new(*b, c), self);
                            self.add(new_imp, seq);
                            added += 1;
                            changed = true;
                            if added >= max_new {
                                return added;
                            }
                        }
                    }
                }
            }
        }
        added
    }
}

/// Relation counts by endpoint kind (the columns of Table 3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelationCounts {
    /// Relations between two sequential elements (invalid-state relations).
    pub ff_ff: usize,
    /// Relations between a gate and a sequential element.
    pub gate_ff: usize,
    /// Relations with other endpoint combinations (not reported by the paper).
    pub other: usize,
}

impl RelationCounts {
    /// Total number of counted relations.
    pub fn total(&self) -> usize {
        self.ff_ff + self.gate_ff + self.other
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sla_netlist::{GateType, NetlistBuilder};

    fn sample() -> Netlist {
        let mut b = NetlistBuilder::new("db");
        b.input("i");
        b.gate("g", GateType::Not, &["i"]).unwrap();
        b.dff("f1", "g").unwrap();
        b.dff("f2", "f1").unwrap();
        b.dff("f3", "f2").unwrap();
        b.output("f3").unwrap();
        b.build().unwrap()
    }

    fn lit(n: &Netlist, name: &str, v: bool) -> Literal {
        Literal::new(n.require(name).unwrap(), v)
    }

    #[test]
    fn add_stores_contrapositive_and_dedupes() {
        let n = sample();
        let mut db = ImplicationDb::new();
        let imp = Implication::new(lit(&n, "f1", true), lit(&n, "f2", false));
        assert!(db.add(imp, true));
        assert_eq!(db.len(), 1);
        // Contrapositive is contained but does not add a second canonical entry.
        assert!(db.contains(&imp.contrapositive()));
        assert!(!db.add(imp.contrapositive(), true));
        assert!(!db.add(imp, true));
        assert_eq!(db.len(), 1);
        assert!(db.implies(
            n.require("f2").unwrap(),
            true,
            n.require("f1").unwrap(),
            false
        ));
    }

    #[test]
    fn self_implications_ignored() {
        let n = sample();
        let mut db = ImplicationDb::new();
        let f1 = n.require("f1").unwrap();
        assert!(!db.add(
            Implication::new(Literal::new(f1, true), Literal::new(f1, true)),
            false
        ));
        assert!(db.is_empty());
    }

    #[test]
    fn counts_by_kind_and_sequential_flag() {
        let n = sample();
        let mut db = ImplicationDb::new();
        db.add(
            Implication::new(lit(&n, "f1", true), lit(&n, "f2", false)),
            true,
        );
        db.add(
            Implication::new(lit(&n, "g", false), lit(&n, "f3", false)),
            true,
        );
        db.add(
            Implication::new(lit(&n, "f2", true), lit(&n, "f3", true)),
            false, // combinational derivation
        );
        let all = db.count_by_kind(&n, false);
        assert_eq!(all.ff_ff, 2);
        assert_eq!(all.gate_ff, 1);
        assert_eq!(all.total(), 3);
        let seq = db.count_by_kind(&n, true);
        assert_eq!(seq.ff_ff, 1);
        assert_eq!(seq.gate_ff, 1);
    }

    #[test]
    fn combinational_derivation_downgrades_sequential() {
        let n = sample();
        let mut db = ImplicationDb::new();
        let imp = Implication::new(lit(&n, "f1", true), lit(&n, "f2", false));
        db.add(imp, true);
        assert_eq!(db.count_by_kind(&n, true).ff_ff, 1);
        db.add(imp, false);
        assert_eq!(db.count_by_kind(&n, true).ff_ff, 0);
        assert_eq!(db.count_by_kind(&n, false).ff_ff, 1);
    }

    #[test]
    fn consequents_include_contrapositives() {
        let n = sample();
        let mut db = ImplicationDb::new();
        db.add(
            Implication::new(lit(&n, "f1", true), lit(&n, "f2", false)),
            true,
        );
        db.add(
            Implication::new(lit(&n, "f1", true), lit(&n, "f3", false)),
            true,
        );
        let cons: Vec<Literal> = db.consequents(lit(&n, "f1", true)).collect();
        assert_eq!(cons.len(), 2);
        let back: Vec<Literal> = db.consequents(lit(&n, "f2", true)).collect();
        assert_eq!(back, vec![lit(&n, "f1", false)]);
    }

    #[test]
    fn merge_combines_databases() {
        let n = sample();
        let mut a = ImplicationDb::new();
        let mut b = ImplicationDb::new();
        a.add(
            Implication::new(lit(&n, "f1", true), lit(&n, "f2", false)),
            true,
        );
        b.add(
            Implication::new(lit(&n, "f2", true), lit(&n, "f3", false)),
            true,
        );
        b.add(
            Implication::new(lit(&n, "f1", true), lit(&n, "f2", false)),
            true,
        );
        a.merge(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn transitive_closure_adds_chained_relations() {
        let n = sample();
        let mut db = ImplicationDb::new();
        db.add(
            Implication::new(lit(&n, "f1", true), lit(&n, "f2", true)),
            true,
        );
        db.add(
            Implication::new(lit(&n, "f2", true), lit(&n, "f3", true)),
            false,
        );
        let added = db.transitive_closure(100);
        assert!(added >= 1);
        assert!(db.implies(
            n.require("f1").unwrap(),
            true,
            n.require("f3").unwrap(),
            true
        ));
    }
}
