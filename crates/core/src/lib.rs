//! Sequential learning of implications, invalid states and tied gates.
//!
//! This crate is the reproduction of the primary contribution of
//! *"A Fast Sequential Learning Technique for Real Circuits with Application to
//! Enhancing ATPG Performance"* (El-Maleh, Kassab, Rajski — DAC 1998).
//!
//! The technique is built on forward three-valued simulation across time
//! frames (provided by [`sla_sim`]):
//!
//! 1. **Single-node learning** ([`single_node`]) — both logic values are
//!    injected on every fanout stem and simulated forward for a bounded number
//!    of frames; implications between the nodes implied by the two polarities
//!    follow from the contrapositive law.
//! 2. **Tie-gate extraction** ([`tie`]) — a node driven to the same value by
//!    both polarities of a stem at the same frame can only ever take that
//!    value; conflicts during multiple-node injection prove the target tied.
//! 3. **Multiple-node learning** ([`multi_node`]) — for every `(node, value)`
//!    the set of stem assignments that produce it is recorded; the
//!    contrapositive value on the node implies the contrapositive of *all*
//!    those stem assignments, which are injected together and simulated
//!    forward, yielding relations single-stem analysis cannot find.
//! 4. **Gate-equivalence assistance** — combinationally equivalent gates keep
//!    consistent values during simulation so values propagate further.
//! 5. **Real-circuit rules** ([`classes`]) — learning is performed per clock
//!    class; propagation across multi-port latches and unconstrained set/reset
//!    elements is restricted exactly as in §3.3 of the paper.
//!
//! The learned same-frame relations between flip-flops are *invalid-state
//! relations*: `F6=1 → F4=0` states that every state with `F6=1 ∧ F4=1` is
//! invalid. They, the gate–flip-flop relations and the tied gates feed the
//! ATPG engine in `sla-atpg`.
//!
//! # Quick start
//!
//! ```
//! use sla_netlist::{GateType, NetlistBuilder};
//! use sla_core::{LearnConfig, SequentialLearner};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Two flip-flops that can never both be 1.
//! let mut b = NetlistBuilder::new("pair");
//! b.input("a");
//! b.gate("na", GateType::Not, &["a"])?;
//! b.gate("nf1", GateType::Not, &["f1"])?;
//! b.gate("nf2", GateType::Not, &["f2"])?;
//! b.gate("d1", GateType::And, &["a", "nf2"])?;
//! b.gate("d2", GateType::And, &["na", "nf1"])?;
//! b.dff("f1", "d1")?;
//! b.dff("f2", "d2")?;
//! b.output("f1")?;
//! b.output("f2")?;
//! let netlist = b.build()?;
//!
//! let result = SequentialLearner::new(&netlist, LearnConfig::default()).learn()?;
//! let f1 = netlist.require("f1")?;
//! let f2 = netlist.require("f2")?;
//! assert!(result.implications.implies(f1, true, f2, false));
//! # Ok(())
//! # }
//! ```

pub mod budget;
pub mod classes;
pub mod config;
pub mod db;
pub mod engine;
pub mod multi_node;
pub mod relation;
pub mod single_node;
pub mod tie;

pub use budget::WorkBudget;
pub use config::{LearnConfig, LearnOptions, LearnOptionsBuilder};
pub use db::ImplicationDb;
pub use engine::{LearnResult, LearnStats, SequentialLearner};
pub use relation::{CrossImplication, Implication, Literal, RelationKind};
pub use tie::{TieKind, TiedGate};

/// Result alias for learning-layer operations (errors are structural netlist
/// errors surfaced unchanged).
pub type Result<T> = std::result::Result<T, sla_netlist::NetlistError>;
