//! Tied-gate representation.
//!
//! A *tie gate* can only ever assume one known value (paper §3.2). A gate tied
//! combinationally holds the value for every input combination; a gate tied
//! sequentially holds it in every reachable steady state — once it is set to a
//! known value under three-valued simulation it stays there, and the faults
//! `stuck-at-v` on it are untestable (it is *c-cycle redundant*).

use sla_netlist::{Netlist, NodeId};
use sla_sim::Fault;
use std::fmt;

/// How a gate was proven tied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TieKind {
    /// Tied by combinational analysis alone (proved at time frame 0).
    Combinational,
    /// Tied only when the analysis crosses time frames.
    Sequential,
}

/// A gate (or sequential element) proven to be tied to a constant value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TiedGate {
    /// The tied node.
    pub node: NodeId,
    /// The only value the node can assume.
    pub value: bool,
    /// Whether sequential analysis was needed.
    pub kind: TieKind,
}

impl TiedGate {
    /// Creates a tied-gate record.
    pub fn new(node: NodeId, value: bool, kind: TieKind) -> Self {
        TiedGate { node, value, kind }
    }

    /// The untestable stuck-at fault this tie implies: a node tied to `v` makes
    /// the fault `stuck-at-v` undetectable (no test can produce a difference).
    pub fn untestable_fault(&self) -> Fault {
        Fault::output(self.node, self.value)
    }

    /// Renders the tie with the node name, e.g. `G3 tied to 0 (combinational)`.
    pub fn describe(&self, netlist: &Netlist) -> String {
        format!(
            "{} tied to {} ({})",
            netlist.node(self.node).name,
            if self.value { 1 } else { 0 },
            match self.kind {
                TieKind::Combinational => "combinational",
                TieKind::Sequential => "sequential",
            }
        )
    }
}

impl fmt::Display for TiedGate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} tied to {}",
            self.node,
            if self.value { 1 } else { 0 }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sla_netlist::{GateType, NetlistBuilder};

    #[test]
    fn untestable_fault_matches_tied_value() {
        let mut b = NetlistBuilder::new("t");
        b.input("a");
        b.gate("na", GateType::Not, &["a"]).unwrap();
        b.gate("z", GateType::And, &["a", "na"]).unwrap();
        b.output("z").unwrap();
        let n = b.build().unwrap();
        let z = n.require("z").unwrap();
        let tie = TiedGate::new(z, false, TieKind::Combinational);
        assert_eq!(tie.untestable_fault(), Fault::output(z, false));
        assert_eq!(tie.describe(&n), "z tied to 0 (combinational)");
    }

    #[test]
    fn display_is_compact() {
        let tie = TiedGate::new(NodeId(7), true, TieKind::Sequential);
        assert_eq!(tie.to_string(), "n7 tied to 1");
    }
}
