//! Deterministic work budgets.
//!
//! A [`WorkBudget`] bounds how much *work* a run may spend — never how much
//! wall-clock time. Work is counted in discrete, schedule-independent units
//! (decisions and backtracks in ATPG, stem injections and multiple-node
//! learning targets in the learner), so a budget-limited run stops at exactly
//! the same point for every `SLA_THREADS` value: the spent counter is a pure
//! function of the serially-merged prefix of the work stream, per the
//! workspace determinism contract (ROADMAP "Determinism contract").
//!
//! An exhausted budget never discards finished work: consumers report a
//! structured partial result — in ATPG the already-classified prefix keeps its
//! verdicts and the unprocessed tail is classified `Aborted(Budget)`.

/// A deterministic bound on run effort, in work units.
///
/// The default is [`WorkBudget::unlimited`], which never exhausts; every
/// existing entry point therefore behaves exactly as before unless a caller
/// opts into a finite budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkBudget {
    units: u64,
}

impl WorkBudget {
    const UNLIMITED: u64 = u64::MAX;

    /// A budget that never exhausts.
    pub const fn unlimited() -> Self {
        WorkBudget {
            units: Self::UNLIMITED,
        }
    }

    /// A budget of `n` work units.
    pub const fn units(n: u64) -> Self {
        WorkBudget { units: n }
    }

    /// Returns `true` for the unlimited budget.
    pub const fn is_unlimited(self) -> bool {
        self.units == Self::UNLIMITED
    }

    /// The total number of units (u64::MAX when unlimited).
    pub const fn limit(self) -> u64 {
        self.units
    }

    /// Returns `true` when `spent` units exhaust this budget. The unlimited
    /// budget is never exhausted.
    pub fn exhausted(self, spent: u64) -> bool {
        !self.is_unlimited() && spent >= self.units
    }

    /// Units left after spending `spent` (saturating; u64::MAX when
    /// unlimited).
    pub fn remaining(self, spent: u64) -> u64 {
        if self.is_unlimited() {
            Self::UNLIMITED
        } else {
            self.units.saturating_sub(spent)
        }
    }
}

impl Default for WorkBudget {
    fn default() -> Self {
        WorkBudget::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let b = WorkBudget::default();
        assert!(b.is_unlimited());
        assert!(!b.exhausted(0));
        assert!(!b.exhausted(u64::MAX));
        assert_eq!(b.remaining(u64::MAX), u64::MAX);
    }

    #[test]
    fn finite_budget_exhausts_at_the_limit() {
        let b = WorkBudget::units(10);
        assert!(!b.is_unlimited());
        assert!(!b.exhausted(9));
        assert!(b.exhausted(10));
        assert!(b.exhausted(11));
        assert_eq!(b.remaining(4), 6);
        assert_eq!(b.remaining(15), 0);
        assert_eq!(b.limit(), 10);
    }

    #[test]
    fn zero_budget_is_immediately_exhausted() {
        assert!(WorkBudget::units(0).exhausted(0));
    }
}
