//! Clock-class partitioning of sequential elements (paper §3.3.2).
//!
//! To extract relations that are valid regardless of temporal alignment
//! between clock domains, sequential elements are grouped into classes of
//! elements driven by the same clock, at the same phase, with the same element
//! kind (latches and flip-flops are kept apart even on the same clock because
//! their capture times differ). Learning is performed for one class at a time:
//! only elements of the active class propagate values across frames and only
//! relations whose sequential endpoints lie in the active class are kept.

use sla_netlist::{ClockEdge, ClockId, Netlist, NodeId, SeqKind};
use std::collections::BTreeMap;

/// One learning class: sequential elements sharing clock, phase and kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClockClass {
    /// Driving clock.
    pub clock: ClockId,
    /// Capture edge / phase.
    pub edge: ClockEdge,
    /// Flip-flop or latch.
    pub kind: SeqKind,
    /// Members of the class, in arena order.
    pub members: Vec<NodeId>,
}

impl ClockClass {
    /// Human-readable label, e.g. `clk_a/rising/ff (12 elements)`.
    pub fn describe(&self, netlist: &Netlist) -> String {
        format!(
            "{}/{}/{} ({} elements)",
            netlist.clock_name(self.clock),
            match self.edge {
                ClockEdge::Rising => "rising",
                ClockEdge::Falling => "falling",
            },
            match self.kind {
                SeqKind::FlipFlop => "ff",
                SeqKind::Latch => "latch",
            },
            self.members.len()
        )
    }

    /// A node-indexed mask that is `true` exactly for the members of this
    /// class, in the form expected by
    /// [`sla_sim::InjectionSim::set_active_sequential`].
    pub fn activation_mask(&self, netlist: &Netlist) -> Vec<bool> {
        let mut mask = vec![false; netlist.num_nodes()];
        for &m in &self.members {
            mask[m.index()] = true;
        }
        mask
    }

    /// Returns `true` when `node` belongs to this class.
    pub fn contains(&self, node: NodeId) -> bool {
        self.members.contains(&node)
    }
}

/// Partitions the sequential elements of `netlist` into clock classes, ordered
/// by (clock, edge, kind).
pub fn clock_classes(netlist: &Netlist) -> Vec<ClockClass> {
    let mut map: BTreeMap<(ClockId, u8, u8), Vec<NodeId>> = BTreeMap::new();
    for s in netlist.sequential_elements() {
        let info = netlist.seq_info(s).expect("sequential element");
        let edge_key = match info.edge {
            ClockEdge::Rising => 0u8,
            ClockEdge::Falling => 1,
        };
        let kind_key = match info.kind {
            SeqKind::FlipFlop => 0u8,
            SeqKind::Latch => 1,
        };
        map.entry((info.clock, edge_key, kind_key))
            .or_default()
            .push(s);
    }
    map.into_iter()
        .map(|((clock, edge_key, kind_key), members)| ClockClass {
            clock,
            edge: if edge_key == 0 {
                ClockEdge::Rising
            } else {
                ClockEdge::Falling
            },
            kind: if kind_key == 0 {
                SeqKind::FlipFlop
            } else {
                SeqKind::Latch
            },
            members,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sla_netlist::{GateType, NetlistBuilder, SeqInfo};

    #[test]
    fn single_clock_gives_one_class() {
        let mut b = NetlistBuilder::new("one");
        b.input("a");
        b.gate("g", GateType::Not, &["a"]).unwrap();
        b.dff("f1", "g").unwrap();
        b.dff("f2", "f1").unwrap();
        b.output("f2").unwrap();
        let n = b.build().unwrap();
        let classes = clock_classes(&n);
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].members.len(), 2);
        let mask = classes[0].activation_mask(&n);
        assert!(mask[n.require("f1").unwrap().index()]);
        assert!(!mask[n.require("g").unwrap().index()]);
    }

    #[test]
    fn clocks_phases_and_kinds_are_separated() {
        let mut b = NetlistBuilder::new("multi");
        b.input("a");
        let clk_b = b.clock("clk_b");
        b.dff("f_default", "a").unwrap();
        b.seq(
            "f_other_clock",
            "a",
            SeqInfo {
                clock: clk_b,
                ..SeqInfo::default()
            },
        )
        .unwrap();
        b.seq(
            "f_falling",
            "a",
            SeqInfo {
                edge: ClockEdge::Falling,
                ..SeqInfo::default()
            },
        )
        .unwrap();
        b.seq(
            "l_latch",
            "a",
            SeqInfo {
                kind: SeqKind::Latch,
                ..SeqInfo::default()
            },
        )
        .unwrap();
        b.output("f_default").unwrap();
        b.output("f_other_clock").unwrap();
        b.output("f_falling").unwrap();
        b.output("l_latch").unwrap();
        let n = b.build().unwrap();
        let classes = clock_classes(&n);
        assert_eq!(classes.len(), 4, "each element lands in its own class");
        for c in &classes {
            assert_eq!(c.members.len(), 1);
            assert!(c.contains(c.members[0]));
            assert!(!c.describe(&n).is_empty());
        }
    }

    #[test]
    fn no_sequential_elements_means_no_classes() {
        let mut b = NetlistBuilder::new("comb");
        b.input("a");
        b.gate("g", GateType::Not, &["a"]).unwrap();
        b.output("g").unwrap();
        let n = b.build().unwrap();
        assert!(clock_classes(&n).is_empty());
    }
}
