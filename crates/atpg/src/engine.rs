//! The fault-list-level ATPG flow: tied-gate screening, per-fault test
//! generation, sequence validation and fault dropping by fault simulation.
//!
//! # Resilient execution
//!
//! The run is structured as [`AtpgEngine::start`] → [`AtpgEngine::advance`] →
//! [`AtpgEngine::finish`], with [`AtpgEngine::run`] as the one-shot wrapper.
//! The explicit [`RunProgress`] state between the steps is what the
//! resilience layer builds on:
//!
//! * **Deterministic budgets** — [`AtpgConfig::budget`] bounds the run in
//!   work units (one per decision, one per backtrack), charged at the serial
//!   merge boundary. The stopping point is a pure function of the merged
//!   fault prefix, so a budget-limited run reports the *same* classified
//!   prefix for every `SLA_THREADS`; the unprocessed tail is classified
//!   [`AbortReason::Budget`].
//! * **Checkpoint/resume** — `advance` accepts a `stop_before` fault index;
//!   the suspended [`RunProgress`] can be snapshotted (see `sla-snapshot`)
//!   and later rebuilt with [`RunProgress::from_parts`], and the resumed run
//!   is bit-identical to an uninterrupted one.
//! * **Panic quarantine** — each per-fault search runs inside
//!   [`sla_par::quarantine`]; a panicking search poisons only that fault
//!   (classified [`AbortReason::Panic`], message recorded in
//!   [`AtpgRun::panics`] in strict fault order) and the run carries on.

use crate::config::AtpgConfig;
use crate::learned::LearnedData;
use crate::tgen::{GenOutcome, GenResult, TestGenerator};
use crate::Result;
use sla_netlist::levelize::{levelize, Levelization};
use sla_netlist::{FastHashMap, Netlist};
use sla_par::JobOutcome;
use sla_sim::{Fault, FaultSimulator, FaultSite, TestSequence};
use std::time::Duration;

/// Why a fault ended the run unclassified.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// The per-fault backtrack/decision limit was exhausted without a verdict.
    Limit,
    /// The run-level work budget ran out before this fault was searched.
    Budget,
    /// The search for this fault panicked and was quarantined.
    Panic,
}

/// Final classification of a fault after the ATPG run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultStatus {
    /// A validated test sequence detects the fault (directly or by fault
    /// simulation of a sequence generated for another fault).
    Detected,
    /// The fault was proven untestable (tied-gate argument or exhausted search
    /// at the maximum window).
    Untestable,
    /// No verdict, for the recorded reason.
    Aborted(AbortReason),
}

/// Aggregate statistics of one ATPG run (the columns of Table 5).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AtpgStats {
    /// Number of target faults.
    pub total_faults: usize,
    /// Faults detected (including by fault simulation of other tests).
    pub detected: usize,
    /// Faults classified untestable.
    pub untestable: usize,
    /// Faults aborted (any [`AbortReason`]).
    pub aborted: usize,
    /// Faults classified untestable directly from tied gates, without search.
    pub untestable_from_ties: usize,
    /// Total backtracks spent.
    pub backtracks: usize,
    /// Total decisions made.
    pub decisions: usize,
    /// Number of generated test sequences.
    pub sequences: usize,
    /// Total number of test vectors (frames) across all sequences.
    pub test_vectors: usize,
    /// Speculative generations discarded because an earlier-merged sequence
    /// dropped the fault before its merge turn (always 0 on the serial
    /// path). A perf diagnostic: it varies with the thread count and wave
    /// partition, never with the verdicts.
    pub wasted_speculations: usize,
    /// Work units charged against [`AtpgConfig::budget`] (decisions +
    /// backtracks of merged searches). Deterministic across thread counts.
    pub budget_spent: u64,
    /// Wall-clock time of the run.
    pub cpu: Duration,
}

impl AtpgStats {
    /// Fault coverage in basis points (1/100 of a percent): detected / total.
    ///
    /// Integer on purpose: coverage is pipeline output, and the determinism
    /// contract keeps float arithmetic out of the pipeline crates entirely
    /// (`sla-lint` rule `float-arith`). 10000 = 100% coverage.
    pub fn fault_coverage_bp(&self) -> u32 {
        if self.total_faults == 0 {
            return 0;
        }
        (self.detected as u64 * 10_000 / self.total_faults as u64) as u32
    }

    /// Test coverage in basis points: detected / (total - untestable), the
    /// paper's "fault coverage excluding untestable faults". 10000 = 100%.
    pub fn test_coverage_bp(&self) -> u32 {
        let testable = self.total_faults.saturating_sub(self.untestable);
        if testable == 0 {
            return 10_000;
        }
        (self.detected as u64 * 10_000 / testable as u64) as u32
    }
}

/// The result of running ATPG over a fault list.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AtpgRun {
    /// Per-fault classification, parallel to the input fault list.
    pub status: Vec<FaultStatus>,
    /// All generated (and validated) test sequences.
    pub sequences: Vec<TestSequence>,
    /// Quarantined per-fault panics as `(fault index, message)`, in strict
    /// fault order. Empty on a healthy run.
    pub panics: Vec<(usize, String)>,
    /// Aggregate statistics.
    pub stats: AtpgStats,
}

/// Resumable state of a partially executed ATPG run.
///
/// Produced by [`AtpgEngine::start`], mutated by [`AtpgEngine::advance`],
/// consumed by [`AtpgEngine::finish`]. All fields are a pure function of the
/// merged fault prefix — except `wasted_speculations`, which is a
/// thread-count-dependent perf diagnostic and is deliberately excluded from
/// [`RunProgress::from_parts`] (snapshots reset it to zero).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunProgress {
    /// First fault index not yet merged (everything below is classified or
    /// was skipped as already classified).
    next_fault: usize,
    /// Per-fault verdicts; `None` = not yet classified.
    status: Vec<Option<FaultStatus>>,
    /// Validated test sequences generated so far, in merge order.
    sequences: Vec<TestSequence>,
    backtracks: usize,
    decisions: usize,
    test_vectors: usize,
    untestable_from_ties: usize,
    wasted_speculations: usize,
    budget_spent: u64,
    panics: Vec<(usize, String)>,
}

impl RunProgress {
    /// Rebuilds progress from snapshotted parts (the inverse of the
    /// accessors). `wasted_speculations` is intentionally not a parameter:
    /// it is thread-count-dependent and resumed runs restart it at zero.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        next_fault: usize,
        status: Vec<Option<FaultStatus>>,
        sequences: Vec<TestSequence>,
        backtracks: usize,
        decisions: usize,
        test_vectors: usize,
        untestable_from_ties: usize,
        budget_spent: u64,
        panics: Vec<(usize, String)>,
    ) -> Self {
        RunProgress {
            next_fault,
            status,
            sequences,
            backtracks,
            decisions,
            test_vectors,
            untestable_from_ties,
            wasted_speculations: 0,
            budget_spent,
            panics,
        }
    }

    /// First fault index not yet merged.
    pub fn next_fault(&self) -> usize {
        self.next_fault
    }

    /// Per-fault verdicts so far (`None` = unclassified).
    pub fn status(&self) -> &[Option<FaultStatus>] {
        &self.status
    }

    /// Validated sequences generated so far.
    pub fn sequences(&self) -> &[TestSequence] {
        &self.sequences
    }

    /// Total backtracks merged so far.
    pub fn backtracks(&self) -> usize {
        self.backtracks
    }

    /// Total decisions merged so far.
    pub fn decisions(&self) -> usize {
        self.decisions
    }

    /// Total test vectors across the sequences so far.
    pub fn test_vectors(&self) -> usize {
        self.test_vectors
    }

    /// Faults classified untestable by tied-gate screening.
    pub fn untestable_from_ties(&self) -> usize {
        self.untestable_from_ties
    }

    /// Work units charged so far.
    pub fn budget_spent(&self) -> u64 {
        self.budget_spent
    }

    /// Quarantined panics so far, in merge order.
    pub fn panics(&self) -> &[(usize, String)] {
        &self.panics
    }

    /// Returns `true` once every fault is classified or skipped.
    pub fn is_complete(&self) -> bool {
        self.next_fault >= self.status.len()
    }

    /// Verdict of fault `i` so far (`None`: unclassified or out of range).
    fn verdict(&self, i: usize) -> Option<FaultStatus> {
        self.status.get(i).copied().flatten()
    }

    /// Records a verdict for fault `i`; out-of-range indices are ignored
    /// (total by construction — `status` is parallel to the fault list).
    fn classify(&mut self, i: usize, verdict: FaultStatus) {
        if let Some(slot) = self.status.get_mut(i) {
            *slot = Some(verdict);
        }
    }
}

/// Sequential ATPG engine.
///
/// Construct with [`AtpgEngine::new`], optionally attach learned data with
/// [`AtpgEngine::with_learned`], then call [`AtpgEngine::run`] on a fault list.
#[derive(Debug)]
pub struct AtpgEngine<'a> {
    netlist: &'a Netlist,
    config: AtpgConfig,
    learned: LearnedData,
    levels: Levelization,
    /// Fault-injection hook: the search for this fault index panics instead
    /// of running, exercising the quarantine path deterministically.
    panic_at: Option<usize>,
}

impl<'a> AtpgEngine<'a> {
    /// Creates an engine without learned data.
    ///
    /// # Errors
    ///
    /// Returns an error when the netlist cannot be levelized.
    pub fn new(netlist: &'a Netlist, config: AtpgConfig) -> Result<Self> {
        Ok(AtpgEngine {
            netlist,
            config,
            learned: LearnedData::new(),
            levels: levelize(netlist)?,
            panic_at: None,
        })
    }

    /// Attaches learned data (implications and tied gates). The learning mode
    /// in the configuration decides how the implications are used.
    pub fn with_learned(mut self, learned: LearnedData) -> Self {
        self.learned = learned;
        self
    }

    /// Fault-injection hook: the search for fault index `idx` panics instead
    /// of running. The panic is quarantined like any real one — the fault is
    /// classified [`AbortReason::Panic`] and everything else proceeds — so
    /// the harness in `sla-snapshot` can assert the degradation contract at
    /// a seed-chosen point. Deterministic across thread counts (a
    /// speculative panic for a fault that an earlier sequence drops is
    /// discarded exactly like any other speculative result).
    pub fn with_panic_at(mut self, idx: usize) -> Self {
        self.panic_at = Some(idx);
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &AtpgConfig {
        &self.config
    }

    /// The attached learned data.
    pub fn learned(&self) -> &LearnedData {
        &self.learned
    }

    /// Runs test generation over `faults` and returns per-fault statuses,
    /// the generated sequences and aggregate statistics.
    ///
    /// The per-fault searches are sharded across worker threads; the count
    /// comes from the `SLA_THREADS` environment variable (default: the
    /// machine's available parallelism). Per-fault verdicts, backtrack and
    /// decision counts, dropped-fault sets and generated sequences are
    /// **bit-identical** for every thread count — `SLA_THREADS=1` is the
    /// exact legacy serial path, and [`AtpgEngine::run_with_threads`] pins
    /// the count explicitly.
    pub fn run(&self, faults: &[Fault]) -> AtpgRun {
        self.run_with_threads(faults, sla_par::thread_count())
    }

    /// [`AtpgEngine::run`] with an explicit worker-thread count.
    pub fn run_with_threads(&self, faults: &[Fault], threads: usize) -> AtpgRun {
        let start = sla_netlist::wallclock::now();
        let mut progress = self.start(faults);
        self.advance(faults, threads, &mut progress, None);
        let mut run = self.finish(progress);
        run.stats.cpu = start.elapsed();
        run
    }

    /// Begins a run: allocates progress and performs tied-gate screening
    /// (a fault stuck at the tied value of its line can never produce a
    /// difference; classified untestable with zero search).
    pub fn start(&self, faults: &[Fault]) -> RunProgress {
        let mut progress = RunProgress {
            next_fault: 0,
            status: vec![None; faults.len()],
            sequences: Vec::new(),
            backtracks: 0,
            decisions: 0,
            test_vectors: 0,
            untestable_from_ties: 0,
            wasted_speculations: 0,
            budget_spent: 0,
            panics: Vec::new(),
        };
        if !self.learned.tied().is_empty() {
            for (i, fault) in faults.iter().enumerate() {
                let line_value = match fault.site {
                    FaultSite::Output(node) => self.learned.tied_value(node),
                    FaultSite::Input { gate, pin } => self
                        .netlist
                        .fanins(gate)
                        .get(pin)
                        .and_then(|&line| self.learned.tied_value(line)),
                };
                if line_value == Some(fault.stuck_at) {
                    progress.classify(i, FaultStatus::Untestable);
                    progress.untestable_from_ties += 1;
                }
            }
        }
        progress
    }

    /// Advances a run up to (not including) fault index `stop_before`
    /// (`None` = to the end of the list), merging verdicts into `progress`
    /// in strict fault order. Stops early — at a deterministic,
    /// thread-count-independent point — when the work budget is exhausted.
    ///
    /// Faults are coupled only through fault dropping: the sequence generated
    /// for fault *i* may classify later faults without search, and whether
    /// fault *j* is searched at all depends on every earlier verdict. The
    /// sharded path therefore generates **speculatively in waves**: the next
    /// few unclassified faults are searched in parallel (test generation is a
    /// pure function of one fault), and the results are merged strictly in
    /// fault order, replaying the serial drop protocol — a speculative result
    /// for a fault that an earlier-merged sequence drops is discarded, and
    /// its backtracks are not counted, exactly as if it had never been
    /// searched. The wave depth adapts to the observed drop density so
    /// drop-heavy fault lists do not drown in wasted speculation.
    pub fn advance(
        &self,
        faults: &[Fault],
        threads: usize,
        progress: &mut RunProgress,
        stop_before: Option<usize>,
    ) {
        let stop = stop_before.unwrap_or(faults.len()).min(faults.len());
        let budget = self.config.budget;
        let fault_sim = FaultSimulator::with_levels(self.netlist, self.levels.clone());

        if threads <= 1 {
            let generator = TestGenerator::with_levels(
                self.netlist,
                self.levels.clone(),
                self.config,
                &self.learned,
            );
            while progress.next_fault < stop {
                let i = progress.next_fault;
                if progress.verdict(i).is_some() {
                    progress.next_fault += 1;
                    continue;
                }
                if budget.exhausted(progress.budget_spent) {
                    return;
                }
                let outcome = self.generate_quarantined(&generator, faults, i);
                self.absorb(i, outcome, faults, &fault_sim, progress);
                progress.next_fault += 1;
            }
            return;
        }

        // Fanout-cone masks of the fault sites, used to partition the
        // speculative waves: a test generated for fault *i* mostly
        // exercises *i*'s cone, so faults whose cones are disjoint are
        // rarely dropped by each other's sequences — speculating them
        // together wastes almost nothing. This is a heuristic, not a
        // soundness argument: the strict fault-order merge below replays
        // the drop protocol regardless of how the waves were cut, so
        // only the wasted-speculation count depends on it.
        let cones = FaultCones::build(self.netlist, faults);
        let mut wasted = 0usize;
        sla_par::with_pool(
            threads,
            |_worker| {
                TestGenerator::with_levels(
                    self.netlist,
                    self.levels.clone(),
                    self.config,
                    &self.learned,
                )
            },
            |generator, idx: usize| (idx, self.generate_quarantined(generator, faults, idx)),
            |pool| {
                // Speculation depth: at least one fault per worker; grows
                // on waste-free merges, shrinks when a quarter of the
                // merged results had been dropped by earlier sequences.
                // All of this is a pure function of merged state, so wave
                // boundaries — which affect only performance — are
                // deterministic too.
                let mut wave_cap = threads;
                let mut results: FastHashMap<usize, JobOutcome<GenResult>> = FastHashMap::default();
                let mut union = cones.empty_mask();
                let mut last_wave = 0usize;
                let mut wasted_before = 0usize;
                loop {
                    // Ordered merge: strictly ascending fault index,
                    // replaying the serial loop (including dropping and the
                    // budget stop). A speculative result may wait here across
                    // waves until every earlier fault is classified —
                    // generation is a pure function of the fault, so a held
                    // result stays valid as long as its fault is
                    // unclassified.
                    let mut exhausted = false;
                    while progress.next_fault < stop {
                        let next = progress.next_fault;
                        if progress.verdict(next).is_some() {
                            // Classified without a search (tied screening
                            // or dropped): the serial run never searched
                            // it — a speculative result is wasted work.
                            if results.remove(&next).is_some() {
                                wasted += 1;
                            }
                            progress.next_fault += 1;
                        } else if budget.exhausted(progress.budget_spent) {
                            // Same check position as the serial loop: a
                            // pure function of the merged prefix, so every
                            // thread count stops at this exact fault.
                            exhausted = true;
                            break;
                        } else if let Some(outcome) = results.remove(&next) {
                            self.absorb(next, outcome, faults, &fault_sim, progress);
                            progress.next_fault += 1;
                        } else {
                            break;
                        }
                    }
                    if last_wave > 0 {
                        let wave_waste = wasted - wasted_before;
                        if wave_waste * 4 >= last_wave {
                            wave_cap = (wave_cap / 2).max(threads);
                        } else if wave_waste == 0 {
                            wave_cap = (wave_cap * 2).min(8 * threads);
                        }
                    }
                    if exhausted || progress.next_fault >= stop {
                        break;
                    }
                    // Build the next wave: the merge blocker itself (so
                    // every wave guarantees progress), then upcoming
                    // unclassified faults whose cones are disjoint from
                    // everything already in the wave.
                    let blocker = progress.next_fault;
                    let mut wave = vec![blocker];
                    union.copy_from(cones.mask(blocker));
                    let scan_limit = 8 * wave_cap;
                    let mut idx = blocker + 1;
                    let mut scanned = 0usize;
                    while wave.len() < wave_cap && idx < stop && scanned < scan_limit {
                        if progress.verdict(idx).is_none()
                            && !results.contains_key(&idx)
                            && union.disjoint(cones.mask(idx))
                        {
                            union.union_with(cones.mask(idx));
                            wave.push(idx);
                        }
                        scanned += 1;
                        idx += 1;
                    }
                    for &i in &wave {
                        pool.submit(i);
                    }
                    for _ in 0..wave.len() {
                        let (i, result) = pool.recv();
                        results.insert(i, result);
                    }
                    last_wave = wave.len();
                    wasted_before = wasted;
                }
            },
        );
        progress.wasted_speculations += wasted;
    }

    /// Completes a run: remaining unclassified faults are charged to the
    /// exhausted budget and the aggregate statistics are computed. `cpu` is
    /// left at zero — only the one-shot wrappers measure wall clock.
    pub fn finish(&self, progress: RunProgress) -> AtpgRun {
        let RunProgress {
            status,
            sequences,
            backtracks,
            decisions,
            test_vectors,
            untestable_from_ties,
            wasted_speculations,
            budget_spent,
            panics,
            ..
        } = progress;
        let status: Vec<FaultStatus> = status
            .into_iter()
            .map(|s| s.unwrap_or(FaultStatus::Aborted(AbortReason::Budget)))
            .collect();
        let stats = AtpgStats {
            total_faults: status.len(),
            detected: status
                .iter()
                .filter(|s| **s == FaultStatus::Detected)
                .count(),
            untestable: status
                .iter()
                .filter(|s| **s == FaultStatus::Untestable)
                .count(),
            aborted: status
                .iter()
                .filter(|s| matches!(s, FaultStatus::Aborted(_)))
                .count(),
            untestable_from_ties,
            backtracks,
            decisions,
            sequences: sequences.len(),
            test_vectors,
            wasted_speculations,
            budget_spent,
            cpu: Duration::ZERO,
        };
        AtpgRun {
            status,
            sequences,
            panics,
            stats,
        }
    }

    /// Runs one per-fault search inside the panic quarantine (honoring the
    /// injection hook), so a panicking search becomes a mergeable outcome
    /// instead of killing a worker.
    fn generate_quarantined(
        &self,
        generator: &TestGenerator<'_>,
        faults: &[Fault],
        idx: usize,
    ) -> JobOutcome<GenResult> {
        let panic_at = self.panic_at;
        // Resolve the fault before entering the quarantine: an out-of-range
        // index (impossible by construction — waves only submit indices
        // below `stop`) becomes a quarantined outcome, not a panic.
        let Some(&fault) = faults.get(idx) else {
            return JobOutcome::Panicked(format!("fault index {idx} out of range"));
        };
        sla_par::quarantine(move || {
            if panic_at == Some(idx) {
                panic!("injected panic at fault {idx}");
            }
            generator.generate(&fault)
        })
    }

    /// Merges the generation outcome of fault `i` into the run state — the
    /// loop body shared verbatim by the serial path and the in-order merge of
    /// the sharded path (which is what keeps the two bit-identical).
    fn absorb(
        &self,
        i: usize,
        outcome: JobOutcome<GenResult>,
        faults: &[Fault],
        fault_sim: &FaultSimulator<'_>,
        progress: &mut RunProgress,
    ) {
        let result = match outcome {
            JobOutcome::Done(result) => result,
            JobOutcome::Panicked(message) => {
                // Quarantine: only this fault is poisoned; no work units are
                // charged (the search produced none that were merged).
                progress.classify(i, FaultStatus::Aborted(AbortReason::Panic));
                progress.panics.push((i, message));
                return;
            }
        };
        progress.backtracks += result.backtracks;
        progress.decisions += result.decisions;
        progress.budget_spent += (result.backtracks + result.decisions) as u64;
        match result.outcome {
            GenOutcome::Detected(sequence) => {
                progress.classify(i, FaultStatus::Detected);
                if self.config.fault_dropping {
                    // Drop every remaining fault the new sequence detects.
                    let remaining: Vec<(usize, Fault)> = faults
                        .iter()
                        .enumerate()
                        .skip(i + 1)
                        .filter(|(j, _)| progress.verdict(*j).is_none())
                        .map(|(j, &f)| (j, f))
                        .collect();
                    let targets: Vec<Fault> = remaining.iter().map(|&(_, f)| f).collect();
                    let hit = fault_sim.detected_faults(&targets, &sequence);
                    for (&(j, _), &detected) in remaining.iter().zip(&hit) {
                        if detected {
                            progress.classify(j, FaultStatus::Detected);
                        }
                    }
                }
                progress.test_vectors += sequence.len();
                progress.sequences.push(sequence);
            }
            GenOutcome::Untestable => progress.classify(i, FaultStatus::Untestable),
            GenOutcome::Aborted => progress.classify(i, FaultStatus::Aborted(AbortReason::Limit)),
        }
    }
}

/// A word-packed node set (one bit per netlist node).
#[derive(Clone)]
struct ConeMask(Vec<u64>);

impl ConeMask {
    fn empty(words: usize) -> ConeMask {
        ConeMask(vec![0; words])
    }

    #[inline]
    fn get(&self, idx: usize) -> bool {
        self.0
            .get(idx / 64)
            .is_some_and(|word| word & (1 << (idx % 64)) != 0)
    }

    #[inline]
    fn set(&mut self, idx: usize) {
        if let Some(word) = self.0.get_mut(idx / 64) {
            *word |= 1 << (idx % 64);
        }
    }

    fn disjoint(&self, other: &ConeMask) -> bool {
        self.0.iter().zip(&other.0).all(|(a, b)| a & b == 0)
    }

    fn union_with(&mut self, other: &ConeMask) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a |= b;
        }
    }

    fn copy_from(&mut self, other: &ConeMask) {
        self.0.copy_from_slice(&other.0);
    }
}

/// Fanout-cone masks of the fault sites, deduplicated by site node (every
/// fault on one gate — both polarities, every pin — shares the gate's cone).
struct FaultCones {
    masks: Vec<ConeMask>,
    index: Vec<usize>,
    /// All-zero mask of the right width: the total-lookup fallback of
    /// [`FaultCones::mask`] and the seed of [`FaultCones::empty_mask`].
    empty: ConeMask,
}

impl FaultCones {
    fn build(netlist: &Netlist, faults: &[Fault]) -> FaultCones {
        let words = netlist.num_nodes().div_ceil(64);
        let mut by_node: FastHashMap<u32, usize> = FastHashMap::default();
        let mut masks: Vec<ConeMask> = Vec::new();
        let index = faults
            .iter()
            .map(|f| {
                let start = f.site.node();
                *by_node.entry(start.0).or_insert_with(|| {
                    let mut mask = ConeMask::empty(words);
                    mask.set(start.index());
                    let mut stack = vec![start];
                    while let Some(x) = stack.pop() {
                        for &fo in netlist.fanouts(x) {
                            if !mask.get(fo.index()) {
                                mask.set(fo.index());
                                stack.push(fo);
                            }
                        }
                    }
                    masks.push(mask);
                    masks.len() - 1
                })
            })
            .collect();
        FaultCones {
            masks,
            index,
            empty: ConeMask::empty(words),
        }
    }

    /// Cone mask of fault `fault`. Total: an out-of-range index (impossible
    /// for wave-submitted indices) yields the empty mask, which is disjoint
    /// from everything — the merge replays the drop protocol regardless.
    fn mask(&self, fault: usize) -> &ConeMask {
        self.index
            .get(fault)
            .and_then(|&m| self.masks.get(m))
            .unwrap_or(&self.empty)
    }

    fn empty_mask(&self) -> ConeMask {
        self.empty.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LearningMode;
    use sla_core::{LearnConfig, SequentialLearner, WorkBudget};
    use sla_netlist::{GateType, NetlistBuilder};
    use sla_sim::{collapsed_fault_list, full_fault_list};

    /// Small sequential circuit with a combinationally redundant gate.
    fn sample() -> Netlist {
        let mut b = NetlistBuilder::new("sample");
        b.input("a");
        b.input("b");
        b.gate("na", GateType::Not, &["a"]).unwrap();
        b.gate("tie0", GateType::And, &["a", "na"]).unwrap();
        b.gate("g", GateType::Nand, &["a", "b"]).unwrap();
        b.gate("h", GateType::Or, &["g", "tie0"]).unwrap();
        b.dff("q", "h").unwrap();
        b.gate("o", GateType::Xor, &["q", "b"]).unwrap();
        b.output("o").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn run_classifies_every_fault_and_validates_tests() {
        let n = sample();
        let engine = AtpgEngine::new(&n, AtpgConfig::default()).unwrap();
        let faults = collapsed_fault_list(&n);
        let run = engine.run(&faults);
        assert_eq!(run.status.len(), faults.len());
        assert!(run.stats.detected > 0);
        assert_eq!(
            run.stats.detected + run.stats.untestable + run.stats.aborted,
            run.stats.total_faults
        );
        assert!(run.panics.is_empty());
        // Every sequence actually detects at least one listed fault.
        let sim = FaultSimulator::new(&n).unwrap();
        for seq in &run.sequences {
            assert!(faults.iter().any(|f| sim.detects(f, seq)));
        }
        assert!(run.stats.fault_coverage_bp() > 0);
        assert!(run.stats.test_coverage_bp() >= run.stats.fault_coverage_bp());
    }

    #[test]
    fn learned_ties_classify_untestable_faults_without_search() {
        let n = sample();
        let learned = LearnedData::from(
            &SequentialLearner::new(&n, LearnConfig::default())
                .learn()
                .unwrap(),
        );
        assert!(
            learned.tied_value(n.require("tie0").unwrap()) == Some(false),
            "learning must find the tied gate"
        );
        let faults = full_fault_list(&n);
        let engine = AtpgEngine::new(&n, AtpgConfig::default())
            .unwrap()
            .with_learned(learned);
        let run = engine.run(&faults);
        assert!(run.stats.untestable_from_ties >= 1);
        // The tie0 stuck-at-0 fault is among the untestable ones.
        let tie0 = n.require("tie0").unwrap();
        let idx = faults
            .iter()
            .position(|f| *f == Fault::output(tie0, false))
            .unwrap();
        assert_eq!(run.status[idx], FaultStatus::Untestable);
    }

    #[test]
    fn learning_modes_do_not_lose_detections() {
        let n = sample();
        let learned = LearnedData::from(
            &SequentialLearner::new(&n, LearnConfig::default())
                .learn()
                .unwrap(),
        );
        let faults = collapsed_fault_list(&n);
        let baseline = AtpgEngine::new(&n, AtpgConfig::default())
            .unwrap()
            .run(&faults);
        for mode in [LearningMode::ForbiddenValue, LearningMode::KnownValue] {
            let run = AtpgEngine::new(&n, AtpgConfig::builder().learning(mode).build())
                .unwrap()
                .with_learned(learned.clone())
                .run(&faults);
            assert!(
                run.stats.detected + run.stats.untestable >= baseline.stats.detected,
                "mode {mode:?} classified fewer faults than the baseline"
            );
            // Detected tests are always validated by the fault simulator.
            let sim = FaultSimulator::new(&n).unwrap();
            for seq in &run.sequences {
                assert!(faults.iter().any(|f| sim.detects(f, seq)));
            }
        }
    }

    #[test]
    fn fault_dropping_reduces_generated_sequences() {
        let n = sample();
        let faults = collapsed_fault_list(&n);
        let with_drop = AtpgEngine::new(&n, AtpgConfig::default())
            .unwrap()
            .run(&faults);
        let cfg = AtpgConfig::builder().fault_dropping(false).build();
        let without_drop = AtpgEngine::new(&n, cfg).unwrap().run(&faults);
        assert!(with_drop.stats.sequences <= without_drop.stats.sequences);
        // Fault simulation of generated sequences can detect faults the
        // generator itself aborted on (the paper relies on this effect), so
        // dropping never lowers coverage.
        assert!(with_drop.stats.detected >= without_drop.stats.detected);
    }

    /// Sharded runs must replay the serial drop protocol bit for bit: same
    /// verdicts, same backtrack/decision totals, same sequences — with fault
    /// dropping both on (speculation discards) and off (fully independent).
    #[test]
    fn sharded_run_matches_serial_run() {
        let n = sample();
        let learned = LearnedData::from(
            &SequentialLearner::new(&n, LearnConfig::default())
                .learn()
                .unwrap(),
        );
        let faults = full_fault_list(&n);
        for dropping in [true, false] {
            let config = AtpgConfig::builder()
                .fault_dropping(dropping)
                .learning(LearningMode::ForbiddenValue)
                .build();
            let engine = AtpgEngine::new(&n, config)
                .unwrap()
                .with_learned(learned.clone());
            let reference = engine.run_with_threads(&faults, 1);
            for threads in [2, 3, 8] {
                let sharded = engine.run_with_threads(&faults, threads);
                assert_eq!(reference.status, sharded.status, "t={threads}");
                assert_eq!(reference.sequences, sharded.sequences, "t={threads}");
                assert_eq!(
                    reference.stats.backtracks, sharded.stats.backtracks,
                    "t={threads}"
                );
                assert_eq!(
                    reference.stats.decisions, sharded.stats.decisions,
                    "t={threads}"
                );
                assert_eq!(
                    reference.stats.untestable_from_ties, sharded.stats.untestable_from_ties,
                    "t={threads}"
                );
                assert_eq!(
                    reference.stats.test_vectors, sharded.stats.test_vectors,
                    "t={threads}"
                );
                assert_eq!(
                    reference.stats.budget_spent, sharded.stats.budget_spent,
                    "t={threads}"
                );
            }
        }
    }

    /// Cone-disjoint wave partitioning bounds speculation waste: faults with
    /// non-overlapping fault cones are rarely dropped by each other's
    /// sequences, so speculating them together wastes almost nothing. The
    /// counts are pinned — a deterministic function of the workload and
    /// thread count — so a regression in the partition (or a return to
    /// blind contiguous waves, which measurably wasted speculations on this
    /// workload during development) shows up here.
    #[test]
    fn cone_disjoint_waves_bound_speculation_waste() {
        let n = sample();
        let faults = full_fault_list(&n);
        let engine = AtpgEngine::new(&n, AtpgConfig::default()).unwrap();
        let serial = engine.run_with_threads(&faults, 1);
        assert_eq!(serial.stats.wasted_speculations, 0, "serial never wastes");
        for threads in [2, 4] {
            let sharded = engine.run_with_threads(&faults, threads);
            assert_eq!(serial.status, sharded.status, "t={threads}");
            assert_eq!(
                sharded.stats.wasted_speculations, 0,
                "cone-disjoint waves must not waste a single speculation on \
                 this workload (t={threads})"
            );
        }
    }

    #[test]
    fn stats_cover_the_whole_fault_list() {
        let n = sample();
        let faults = full_fault_list(&n);
        let run = AtpgEngine::new(&n, AtpgConfig::builder().backtrack_limit(100).build())
            .unwrap()
            .run(&faults);
        assert_eq!(run.stats.total_faults, faults.len());
        assert!(run.stats.cpu.as_nanos() > 0);
        assert_eq!(run.stats.sequences, run.sequences.len());
    }

    /// A finite budget stops the run at the same classified prefix for every
    /// thread count; the unprocessed tail is `Aborted(Budget)` and every
    /// fault classified under the budget agrees with the unlimited run.
    #[test]
    fn budget_limits_the_run_deterministically() {
        let n = sample();
        let faults = full_fault_list(&n);
        let unlimited = AtpgEngine::new(&n, AtpgConfig::default())
            .unwrap()
            .run_with_threads(&faults, 1);
        assert!(unlimited.stats.budget_spent > 0);
        assert!(!unlimited
            .status
            .contains(&FaultStatus::Aborted(AbortReason::Budget)));

        let config = AtpgConfig::builder()
            .budget(WorkBudget::units(unlimited.stats.budget_spent / 2))
            .build();
        let engine = AtpgEngine::new(&n, config).unwrap();
        let reference = engine.run_with_threads(&faults, 1);
        assert!(
            reference
                .status
                .contains(&FaultStatus::Aborted(AbortReason::Budget)),
            "half the budget must leave a tail unprocessed"
        );
        assert!(reference.stats.budget_spent <= unlimited.stats.budget_spent);
        for (i, s) in reference.status.iter().enumerate() {
            if *s != FaultStatus::Aborted(AbortReason::Budget) {
                assert_eq!(
                    *s, unlimited.status[i],
                    "classified-prefix verdicts must match the unlimited run"
                );
            }
        }
        for threads in [2, 4] {
            let sharded = engine.run_with_threads(&faults, threads);
            assert_eq!(reference.status, sharded.status, "t={threads}");
            assert_eq!(reference.sequences, sharded.sequences, "t={threads}");
            assert_eq!(
                reference.stats.budget_spent, sharded.stats.budget_spent,
                "t={threads}"
            );
        }

        // A zero budget searches nothing: every non-tied fault is Budget.
        let zero = AtpgEngine::new(
            &n,
            AtpgConfig::builder().budget(WorkBudget::units(0)).build(),
        )
        .unwrap()
        .run_with_threads(&faults, 1);
        assert_eq!(zero.stats.budget_spent, 0);
        assert!(zero
            .status
            .iter()
            .all(|s| *s == FaultStatus::Aborted(AbortReason::Budget)));
    }

    /// An injected panic is quarantined: only the target fault is poisoned,
    /// the message lands in `panics`, and every thread count agrees.
    #[test]
    fn injected_panic_quarantines_only_that_fault() {
        let n = sample();
        let faults = full_fault_list(&n);
        // Fault 0 is always searched (no ties, nothing earlier to drop it).
        let engine = AtpgEngine::new(&n, AtpgConfig::default())
            .unwrap()
            .with_panic_at(0);
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let reference = engine.run_with_threads(&faults, 1);
        let sharded: Vec<AtpgRun> = [2, 4]
            .iter()
            .map(|&t| engine.run_with_threads(&faults, t))
            .collect();
        std::panic::set_hook(hook);

        assert_eq!(
            reference.status[0],
            FaultStatus::Aborted(AbortReason::Panic)
        );
        assert_eq!(reference.panics.len(), 1);
        assert_eq!(reference.panics[0].0, 0);
        assert!(reference.panics[0].1.contains("injected panic at fault 0"));
        // Every other fault still gets a verdict; the run completes.
        assert!(reference.status[1..]
            .iter()
            .all(|s| *s != FaultStatus::Aborted(AbortReason::Panic)));
        for (t, run) in [2usize, 4].iter().zip(&sharded) {
            assert_eq!(reference.status, run.status, "t={t}");
            assert_eq!(reference.sequences, run.sequences, "t={t}");
            assert_eq!(reference.panics, run.panics, "t={t}");
        }
    }

    /// Advancing in slices (the checkpoint boundaries of the snapshot layer)
    /// and finishing must be bit-identical to the one-shot run.
    #[test]
    fn sliced_advance_matches_one_shot_run() {
        let n = sample();
        let faults = full_fault_list(&n);
        let engine = AtpgEngine::new(&n, AtpgConfig::default()).unwrap();
        let one_shot = {
            let mut run = engine.run_with_threads(&faults, 1);
            run.stats.cpu = Duration::ZERO;
            run
        };
        for threads in [1, 4] {
            for boundary in [1, faults.len() / 2, faults.len().saturating_sub(1)] {
                let mut progress = engine.start(&faults);
                engine.advance(&faults, threads, &mut progress, Some(boundary));
                assert!(progress.next_fault() >= boundary.min(faults.len()));
                engine.advance(&faults, threads, &mut progress, None);
                assert!(progress.is_complete());
                let mut run = engine.finish(progress);
                // Wave partitioning changes with the slicing, so the one
                // documented thread-variant diagnostic is excluded.
                run.stats.wasted_speculations = one_shot.stats.wasted_speculations;
                assert_eq!(run, one_shot, "t={threads} boundary={boundary}");
            }
        }
    }
}
