//! The fault-list-level ATPG flow: tied-gate screening, per-fault test
//! generation, sequence validation and fault dropping by fault simulation.

use crate::config::AtpgConfig;
use crate::learned::LearnedData;
use crate::tgen::{GenOutcome, TestGenerator};
use crate::Result;
use sla_netlist::Netlist;
use sla_sim::{Fault, FaultSimulator, FaultSite, TestSequence};
use std::time::{Duration, Instant};

/// Final classification of a fault after the ATPG run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultStatus {
    /// A validated test sequence detects the fault (directly or by fault
    /// simulation of a sequence generated for another fault).
    Detected,
    /// The fault was proven untestable (tied-gate argument or exhausted search
    /// at the maximum window).
    Untestable,
    /// The backtrack/decision budget was exhausted without a verdict.
    Aborted,
}

/// Aggregate statistics of one ATPG run (the columns of Table 5).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AtpgStats {
    /// Number of target faults.
    pub total_faults: usize,
    /// Faults detected (including by fault simulation of other tests).
    pub detected: usize,
    /// Faults classified untestable.
    pub untestable: usize,
    /// Faults aborted.
    pub aborted: usize,
    /// Faults classified untestable directly from tied gates, without search.
    pub untestable_from_ties: usize,
    /// Total backtracks spent.
    pub backtracks: usize,
    /// Total decisions made.
    pub decisions: usize,
    /// Number of generated test sequences.
    pub sequences: usize,
    /// Total number of test vectors (frames) across all sequences.
    pub test_vectors: usize,
    /// Wall-clock time of the run.
    pub cpu: Duration,
}

impl AtpgStats {
    /// Fault coverage: detected / total.
    pub fn fault_coverage(&self) -> f64 {
        if self.total_faults == 0 {
            return 0.0;
        }
        self.detected as f64 / self.total_faults as f64
    }

    /// Test coverage: detected / (total - untestable), the paper's "fault
    /// coverage excluding untestable faults".
    pub fn test_coverage(&self) -> f64 {
        let testable = self.total_faults.saturating_sub(self.untestable);
        if testable == 0 {
            return 1.0;
        }
        self.detected as f64 / testable as f64
    }
}

/// The result of running ATPG over a fault list.
#[derive(Debug, Clone, Default)]
pub struct AtpgRun {
    /// Per-fault classification, parallel to the input fault list.
    pub status: Vec<FaultStatus>,
    /// All generated (and validated) test sequences.
    pub sequences: Vec<TestSequence>,
    /// Aggregate statistics.
    pub stats: AtpgStats,
}

/// Sequential ATPG engine.
///
/// Construct with [`AtpgEngine::new`], optionally attach learned data with
/// [`AtpgEngine::with_learned`], then call [`AtpgEngine::run`] on a fault list.
#[derive(Debug)]
pub struct AtpgEngine<'a> {
    netlist: &'a Netlist,
    config: AtpgConfig,
    learned: LearnedData,
}

impl<'a> AtpgEngine<'a> {
    /// Creates an engine without learned data.
    ///
    /// # Errors
    ///
    /// Returns an error when the netlist cannot be levelized.
    pub fn new(netlist: &'a Netlist, config: AtpgConfig) -> Result<Self> {
        // Levelization errors are surfaced early by constructing a generator.
        TestGenerator::new(netlist, config, &LearnedData::new())?;
        Ok(AtpgEngine {
            netlist,
            config,
            learned: LearnedData::new(),
        })
    }

    /// Attaches learned data (implications and tied gates). The learning mode
    /// in the configuration decides how the implications are used.
    pub fn with_learned(mut self, learned: LearnedData) -> Self {
        self.learned = learned;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &AtpgConfig {
        &self.config
    }

    /// Runs test generation over `faults` and returns per-fault statuses,
    /// the generated sequences and aggregate statistics.
    pub fn run(&self, faults: &[Fault]) -> AtpgRun {
        let start = Instant::now();
        let mut status: Vec<Option<FaultStatus>> = vec![None; faults.len()];
        let mut stats = AtpgStats {
            total_faults: faults.len(),
            ..AtpgStats::default()
        };

        // Tied-gate screening: a fault stuck at the tied value of its line can
        // never produce a difference; classified untestable with zero search.
        if !self.learned.tied().is_empty() {
            for (i, fault) in faults.iter().enumerate() {
                let line_value = match fault.site {
                    FaultSite::Output(node) => self.learned.tied_value(node),
                    FaultSite::Input { gate, pin } => {
                        self.learned.tied_value(self.netlist.fanins(gate)[pin])
                    }
                };
                if line_value == Some(fault.stuck_at) {
                    status[i] = Some(FaultStatus::Untestable);
                    stats.untestable_from_ties += 1;
                }
            }
        }

        let generator = TestGenerator::new(self.netlist, self.config, &self.learned)
            .expect("netlist already levelized in new()");
        let fault_sim =
            FaultSimulator::new(self.netlist).expect("netlist already levelized in new()");
        let mut sequences = Vec::new();

        for i in 0..faults.len() {
            if status[i].is_some() {
                continue;
            }
            let result = generator.generate(&faults[i]);
            stats.backtracks += result.backtracks;
            stats.decisions += result.decisions;
            match result.outcome {
                GenOutcome::Detected(sequence) => {
                    status[i] = Some(FaultStatus::Detected);
                    if self.config.fault_dropping {
                        // Drop every remaining fault the new sequence detects.
                        let remaining: Vec<usize> = (i + 1..faults.len())
                            .filter(|&j| status[j].is_none())
                            .collect();
                        let targets: Vec<Fault> = remaining.iter().map(|&j| faults[j]).collect();
                        let hit = fault_sim.detected_faults(&targets, &sequence);
                        for (&j, &detected) in remaining.iter().zip(&hit) {
                            if detected {
                                status[j] = Some(FaultStatus::Detected);
                            }
                        }
                    }
                    stats.test_vectors += sequence.len();
                    sequences.push(sequence);
                }
                GenOutcome::Untestable => status[i] = Some(FaultStatus::Untestable),
                GenOutcome::Aborted => status[i] = Some(FaultStatus::Aborted),
            }
        }

        let status: Vec<FaultStatus> = status
            .into_iter()
            .map(|s| s.unwrap_or(FaultStatus::Aborted))
            .collect();
        stats.detected = status
            .iter()
            .filter(|s| **s == FaultStatus::Detected)
            .count();
        stats.untestable = status
            .iter()
            .filter(|s| **s == FaultStatus::Untestable)
            .count();
        stats.aborted = status
            .iter()
            .filter(|s| **s == FaultStatus::Aborted)
            .count();
        stats.sequences = sequences.len();
        stats.cpu = start.elapsed();

        AtpgRun {
            status,
            sequences,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LearningMode;
    use sla_core::{LearnConfig, SequentialLearner};
    use sla_netlist::{GateType, NetlistBuilder};
    use sla_sim::{collapsed_fault_list, full_fault_list};

    /// Small sequential circuit with a combinationally redundant gate.
    fn sample() -> Netlist {
        let mut b = NetlistBuilder::new("sample");
        b.input("a");
        b.input("b");
        b.gate("na", GateType::Not, &["a"]).unwrap();
        b.gate("tie0", GateType::And, &["a", "na"]).unwrap();
        b.gate("g", GateType::Nand, &["a", "b"]).unwrap();
        b.gate("h", GateType::Or, &["g", "tie0"]).unwrap();
        b.dff("q", "h").unwrap();
        b.gate("o", GateType::Xor, &["q", "b"]).unwrap();
        b.output("o").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn run_classifies_every_fault_and_validates_tests() {
        let n = sample();
        let engine = AtpgEngine::new(&n, AtpgConfig::default()).unwrap();
        let faults = collapsed_fault_list(&n);
        let run = engine.run(&faults);
        assert_eq!(run.status.len(), faults.len());
        assert!(run.stats.detected > 0);
        assert_eq!(
            run.stats.detected + run.stats.untestable + run.stats.aborted,
            run.stats.total_faults
        );
        // Every sequence actually detects at least one listed fault.
        let sim = FaultSimulator::new(&n).unwrap();
        for seq in &run.sequences {
            assert!(faults.iter().any(|f| sim.detects(f, seq)));
        }
        assert!(run.stats.fault_coverage() > 0.0);
        assert!(run.stats.test_coverage() >= run.stats.fault_coverage());
    }

    #[test]
    fn learned_ties_classify_untestable_faults_without_search() {
        let n = sample();
        let learned = LearnedData::from(
            &SequentialLearner::new(&n, LearnConfig::default())
                .learn()
                .unwrap(),
        );
        assert!(
            learned.tied_value(n.require("tie0").unwrap()) == Some(false),
            "learning must find the tied gate"
        );
        let faults = full_fault_list(&n);
        let engine = AtpgEngine::new(&n, AtpgConfig::default())
            .unwrap()
            .with_learned(learned);
        let run = engine.run(&faults);
        assert!(run.stats.untestable_from_ties >= 1);
        // The tie0 stuck-at-0 fault is among the untestable ones.
        let tie0 = n.require("tie0").unwrap();
        let idx = faults
            .iter()
            .position(|f| *f == Fault::output(tie0, false))
            .unwrap();
        assert_eq!(run.status[idx], FaultStatus::Untestable);
    }

    #[test]
    fn learning_modes_do_not_lose_detections() {
        let n = sample();
        let learned = LearnedData::from(
            &SequentialLearner::new(&n, LearnConfig::default())
                .learn()
                .unwrap(),
        );
        let faults = collapsed_fault_list(&n);
        let baseline = AtpgEngine::new(&n, AtpgConfig::default())
            .unwrap()
            .run(&faults);
        for mode in [LearningMode::ForbiddenValue, LearningMode::KnownValue] {
            let run = AtpgEngine::new(&n, AtpgConfig::default().learning(mode))
                .unwrap()
                .with_learned(learned.clone())
                .run(&faults);
            assert!(
                run.stats.detected + run.stats.untestable >= baseline.stats.detected,
                "mode {mode:?} classified fewer faults than the baseline"
            );
            // Detected tests are always validated by the fault simulator.
            let sim = FaultSimulator::new(&n).unwrap();
            for seq in &run.sequences {
                assert!(faults.iter().any(|f| sim.detects(f, seq)));
            }
        }
    }

    #[test]
    fn fault_dropping_reduces_generated_sequences() {
        let n = sample();
        let faults = collapsed_fault_list(&n);
        let with_drop = AtpgEngine::new(&n, AtpgConfig::default())
            .unwrap()
            .run(&faults);
        let cfg = AtpgConfig {
            fault_dropping: false,
            ..AtpgConfig::default()
        };
        let without_drop = AtpgEngine::new(&n, cfg).unwrap().run(&faults);
        assert!(with_drop.stats.sequences <= without_drop.stats.sequences);
        // Fault simulation of generated sequences can detect faults the
        // generator itself aborted on (the paper relies on this effect), so
        // dropping never lowers coverage.
        assert!(with_drop.stats.detected >= without_drop.stats.detected);
    }

    #[test]
    fn stats_cover_the_whole_fault_list() {
        let n = sample();
        let faults = full_fault_list(&n);
        let run = AtpgEngine::new(&n, AtpgConfig::with_backtrack_limit(100))
            .unwrap()
            .run(&faults);
        assert_eq!(run.stats.total_faults, faults.len());
        assert!(run.stats.cpu.as_nanos() > 0);
        assert_eq!(run.stats.sequences, run.sequences.len());
    }
}
