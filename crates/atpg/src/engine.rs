//! The fault-list-level ATPG flow: tied-gate screening, per-fault test
//! generation, sequence validation and fault dropping by fault simulation.

use crate::config::AtpgConfig;
use crate::learned::LearnedData;
use crate::tgen::{GenOutcome, GenResult, TestGenerator};
use crate::Result;
use sla_netlist::{FastHashMap, Netlist};
use sla_sim::{Fault, FaultSimulator, FaultSite, TestSequence};
use std::time::Duration;

/// Final classification of a fault after the ATPG run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultStatus {
    /// A validated test sequence detects the fault (directly or by fault
    /// simulation of a sequence generated for another fault).
    Detected,
    /// The fault was proven untestable (tied-gate argument or exhausted search
    /// at the maximum window).
    Untestable,
    /// The backtrack/decision budget was exhausted without a verdict.
    Aborted,
}

/// Aggregate statistics of one ATPG run (the columns of Table 5).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AtpgStats {
    /// Number of target faults.
    pub total_faults: usize,
    /// Faults detected (including by fault simulation of other tests).
    pub detected: usize,
    /// Faults classified untestable.
    pub untestable: usize,
    /// Faults aborted.
    pub aborted: usize,
    /// Faults classified untestable directly from tied gates, without search.
    pub untestable_from_ties: usize,
    /// Total backtracks spent.
    pub backtracks: usize,
    /// Total decisions made.
    pub decisions: usize,
    /// Number of generated test sequences.
    pub sequences: usize,
    /// Total number of test vectors (frames) across all sequences.
    pub test_vectors: usize,
    /// Speculative generations discarded because an earlier-merged sequence
    /// dropped the fault before its merge turn (always 0 on the serial
    /// path). A perf diagnostic: it varies with the thread count and wave
    /// partition, never with the verdicts.
    pub wasted_speculations: usize,
    /// Wall-clock time of the run.
    pub cpu: Duration,
}

impl AtpgStats {
    /// Fault coverage in basis points (1/100 of a percent): detected / total.
    ///
    /// Integer on purpose: coverage is pipeline output, and the determinism
    /// contract keeps float arithmetic out of the pipeline crates entirely
    /// (`sla-lint` rule `float-arith`). 10000 = 100% coverage.
    pub fn fault_coverage_bp(&self) -> u32 {
        if self.total_faults == 0 {
            return 0;
        }
        (self.detected as u64 * 10_000 / self.total_faults as u64) as u32
    }

    /// Test coverage in basis points: detected / (total - untestable), the
    /// paper's "fault coverage excluding untestable faults". 10000 = 100%.
    pub fn test_coverage_bp(&self) -> u32 {
        let testable = self.total_faults.saturating_sub(self.untestable);
        if testable == 0 {
            return 10_000;
        }
        (self.detected as u64 * 10_000 / testable as u64) as u32
    }
}

/// The result of running ATPG over a fault list.
#[derive(Debug, Clone, Default)]
pub struct AtpgRun {
    /// Per-fault classification, parallel to the input fault list.
    pub status: Vec<FaultStatus>,
    /// All generated (and validated) test sequences.
    pub sequences: Vec<TestSequence>,
    /// Aggregate statistics.
    pub stats: AtpgStats,
}

/// Sequential ATPG engine.
///
/// Construct with [`AtpgEngine::new`], optionally attach learned data with
/// [`AtpgEngine::with_learned`], then call [`AtpgEngine::run`] on a fault list.
#[derive(Debug)]
pub struct AtpgEngine<'a> {
    netlist: &'a Netlist,
    config: AtpgConfig,
    learned: LearnedData,
}

impl<'a> AtpgEngine<'a> {
    /// Creates an engine without learned data.
    ///
    /// # Errors
    ///
    /// Returns an error when the netlist cannot be levelized.
    pub fn new(netlist: &'a Netlist, config: AtpgConfig) -> Result<Self> {
        // Levelization errors are surfaced early by constructing a generator.
        TestGenerator::new(netlist, config, &LearnedData::new())?;
        Ok(AtpgEngine {
            netlist,
            config,
            learned: LearnedData::new(),
        })
    }

    /// Attaches learned data (implications and tied gates). The learning mode
    /// in the configuration decides how the implications are used.
    pub fn with_learned(mut self, learned: LearnedData) -> Self {
        self.learned = learned;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &AtpgConfig {
        &self.config
    }

    /// Runs test generation over `faults` and returns per-fault statuses,
    /// the generated sequences and aggregate statistics.
    ///
    /// The per-fault searches are sharded across worker threads; the count
    /// comes from the `SLA_THREADS` environment variable (default: the
    /// machine's available parallelism). Per-fault verdicts, backtrack and
    /// decision counts, dropped-fault sets and generated sequences are
    /// **bit-identical** for every thread count — `SLA_THREADS=1` is the
    /// exact legacy serial path, and [`AtpgEngine::run_with_threads`] pins
    /// the count explicitly.
    pub fn run(&self, faults: &[Fault]) -> AtpgRun {
        self.run_with_threads(faults, sla_par::thread_count())
    }

    /// [`AtpgEngine::run`] with an explicit worker-thread count.
    ///
    /// Faults are coupled only through fault dropping: the sequence generated
    /// for fault *i* may classify later faults without search, and whether
    /// fault *j* is searched at all depends on every earlier verdict. The
    /// sharded run therefore generates **speculatively in waves**: the next
    /// few unclassified faults are searched in parallel (test generation is a
    /// pure function of one fault), and the results are merged strictly in
    /// fault order, replaying the serial drop protocol — a speculative result
    /// for a fault that an earlier-merged sequence drops is discarded, and
    /// its backtracks are not counted, exactly as if it had never been
    /// searched. The wave depth adapts to the observed drop density so
    /// drop-heavy fault lists do not drown in wasted speculation.
    pub fn run_with_threads(&self, faults: &[Fault], threads: usize) -> AtpgRun {
        let start = sla_netlist::wallclock::now();
        let mut status: Vec<Option<FaultStatus>> = vec![None; faults.len()];
        let mut stats = AtpgStats {
            total_faults: faults.len(),
            ..AtpgStats::default()
        };

        // Tied-gate screening: a fault stuck at the tied value of its line can
        // never produce a difference; classified untestable with zero search.
        if !self.learned.tied().is_empty() {
            for (i, fault) in faults.iter().enumerate() {
                let line_value = match fault.site {
                    FaultSite::Output(node) => self.learned.tied_value(node),
                    FaultSite::Input { gate, pin } => {
                        self.learned.tied_value(self.netlist.fanins(gate)[pin])
                    }
                };
                if line_value == Some(fault.stuck_at) {
                    status[i] = Some(FaultStatus::Untestable);
                    stats.untestable_from_ties += 1;
                }
            }
        }

        let fault_sim =
            FaultSimulator::new(self.netlist).expect("netlist already levelized in new()");
        let mut sequences = Vec::new();

        if threads <= 1 {
            let generator = TestGenerator::new(self.netlist, self.config, &self.learned)
                .expect("netlist already levelized in new()");
            for i in 0..faults.len() {
                if status[i].is_some() {
                    continue;
                }
                let result = generator.generate(&faults[i]);
                self.absorb(
                    i,
                    result,
                    faults,
                    &fault_sim,
                    &mut status,
                    &mut stats,
                    &mut sequences,
                );
            }
        } else {
            // Fanout-cone masks of the fault sites, used to partition the
            // speculative waves: a test generated for fault *i* mostly
            // exercises *i*'s cone, so faults whose cones are disjoint are
            // rarely dropped by each other's sequences — speculating them
            // together wastes almost nothing. This is a heuristic, not a
            // soundness argument: the strict fault-order merge below replays
            // the drop protocol regardless of how the waves were cut, so
            // only the wasted-speculation count depends on it.
            let cones = FaultCones::build(self.netlist, faults);
            let mut wasted = 0usize;
            sla_par::with_pool(
                threads,
                |_worker| {
                    TestGenerator::new(self.netlist, self.config, &self.learned)
                        .expect("netlist already levelized in new()")
                },
                |generator, idx: usize| (idx, generator.generate(&faults[idx])),
                |pool| {
                    // Speculation depth: at least one fault per worker; grows
                    // on waste-free merges, shrinks when a quarter of the
                    // merged results had been dropped by earlier sequences.
                    // All of this is a pure function of merged state, so wave
                    // boundaries — which affect only performance — are
                    // deterministic too.
                    let mut wave_cap = threads;
                    let mut next = 0usize;
                    let mut results: FastHashMap<usize, GenResult> = FastHashMap::default();
                    let mut union = cones.empty_mask();
                    let mut last_wave = 0usize;
                    let mut wasted_before = 0usize;
                    loop {
                        // Ordered merge: strictly ascending fault index,
                        // replaying the serial loop (including dropping). A
                        // speculative result may wait here across waves until
                        // every earlier fault is classified — generation is a
                        // pure function of the fault, so a held result stays
                        // valid as long as its fault is unclassified.
                        while next < faults.len() {
                            if status[next].is_some() {
                                // Classified without a search (tied screening
                                // or dropped): the serial run never searched
                                // it — a speculative result is wasted work.
                                if results.remove(&next).is_some() {
                                    wasted += 1;
                                }
                                next += 1;
                            } else if let Some(result) = results.remove(&next) {
                                self.absorb(
                                    next,
                                    result,
                                    faults,
                                    &fault_sim,
                                    &mut status,
                                    &mut stats,
                                    &mut sequences,
                                );
                                next += 1;
                            } else {
                                break;
                            }
                        }
                        if last_wave > 0 {
                            let wave_waste = wasted - wasted_before;
                            if wave_waste * 4 >= last_wave {
                                wave_cap = (wave_cap / 2).max(threads);
                            } else if wave_waste == 0 {
                                wave_cap = (wave_cap * 2).min(8 * threads);
                            }
                        }
                        if next >= faults.len() {
                            break;
                        }
                        // Build the next wave: the merge blocker itself (so
                        // every wave guarantees progress), then upcoming
                        // unclassified faults whose cones are disjoint from
                        // everything already in the wave.
                        let mut wave = vec![next];
                        union.copy_from(cones.mask(next));
                        let scan_limit = 8 * wave_cap;
                        let mut idx = next + 1;
                        let mut scanned = 0usize;
                        while wave.len() < wave_cap && idx < faults.len() && scanned < scan_limit {
                            if status[idx].is_none()
                                && !results.contains_key(&idx)
                                && union.disjoint(cones.mask(idx))
                            {
                                union.union_with(cones.mask(idx));
                                wave.push(idx);
                            }
                            scanned += 1;
                            idx += 1;
                        }
                        for &i in &wave {
                            pool.submit(i);
                        }
                        for _ in 0..wave.len() {
                            let (i, result) = pool.recv();
                            results.insert(i, result);
                        }
                        last_wave = wave.len();
                        wasted_before = wasted;
                    }
                },
            );
            stats.wasted_speculations = wasted;
        }

        let status: Vec<FaultStatus> = status
            .into_iter()
            .map(|s| s.unwrap_or(FaultStatus::Aborted))
            .collect();
        stats.detected = status
            .iter()
            .filter(|s| **s == FaultStatus::Detected)
            .count();
        stats.untestable = status
            .iter()
            .filter(|s| **s == FaultStatus::Untestable)
            .count();
        stats.aborted = status
            .iter()
            .filter(|s| **s == FaultStatus::Aborted)
            .count();
        stats.sequences = sequences.len();
        stats.cpu = start.elapsed();

        AtpgRun {
            status,
            sequences,
            stats,
        }
    }

    /// Merges the generation result of fault `i` into the run state — the
    /// loop body shared verbatim by the serial path and the in-order merge of
    /// the sharded path (which is what keeps the two bit-identical).
    #[allow(clippy::too_many_arguments)]
    fn absorb(
        &self,
        i: usize,
        result: GenResult,
        faults: &[Fault],
        fault_sim: &FaultSimulator<'_>,
        status: &mut [Option<FaultStatus>],
        stats: &mut AtpgStats,
        sequences: &mut Vec<TestSequence>,
    ) {
        stats.backtracks += result.backtracks;
        stats.decisions += result.decisions;
        match result.outcome {
            GenOutcome::Detected(sequence) => {
                status[i] = Some(FaultStatus::Detected);
                if self.config.fault_dropping {
                    // Drop every remaining fault the new sequence detects.
                    let remaining: Vec<usize> = (i + 1..faults.len())
                        .filter(|&j| status[j].is_none())
                        .collect();
                    let targets: Vec<Fault> = remaining.iter().map(|&j| faults[j]).collect();
                    let hit = fault_sim.detected_faults(&targets, &sequence);
                    for (&j, &detected) in remaining.iter().zip(&hit) {
                        if detected {
                            status[j] = Some(FaultStatus::Detected);
                        }
                    }
                }
                stats.test_vectors += sequence.len();
                sequences.push(sequence);
            }
            GenOutcome::Untestable => status[i] = Some(FaultStatus::Untestable),
            GenOutcome::Aborted => status[i] = Some(FaultStatus::Aborted),
        }
    }
}

/// A word-packed node set (one bit per netlist node).
#[derive(Clone)]
struct ConeMask(Vec<u64>);

impl ConeMask {
    fn empty(words: usize) -> ConeMask {
        ConeMask(vec![0; words])
    }

    #[inline]
    fn get(&self, idx: usize) -> bool {
        self.0[idx / 64] & (1 << (idx % 64)) != 0
    }

    #[inline]
    fn set(&mut self, idx: usize) {
        self.0[idx / 64] |= 1 << (idx % 64);
    }

    fn disjoint(&self, other: &ConeMask) -> bool {
        self.0.iter().zip(&other.0).all(|(a, b)| a & b == 0)
    }

    fn union_with(&mut self, other: &ConeMask) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a |= b;
        }
    }

    fn copy_from(&mut self, other: &ConeMask) {
        self.0.copy_from_slice(&other.0);
    }
}

/// Fanout-cone masks of the fault sites, deduplicated by site node (every
/// fault on one gate — both polarities, every pin — shares the gate's cone).
struct FaultCones {
    masks: Vec<ConeMask>,
    index: Vec<usize>,
    words: usize,
}

impl FaultCones {
    fn build(netlist: &Netlist, faults: &[Fault]) -> FaultCones {
        let words = netlist.num_nodes().div_ceil(64);
        let mut by_node: FastHashMap<u32, usize> = FastHashMap::default();
        let mut masks: Vec<ConeMask> = Vec::new();
        let index = faults
            .iter()
            .map(|f| {
                let start = f.site.node();
                *by_node.entry(start.0).or_insert_with(|| {
                    let mut mask = ConeMask::empty(words);
                    mask.set(start.index());
                    let mut stack = vec![start];
                    while let Some(x) = stack.pop() {
                        for &fo in netlist.fanouts(x) {
                            if !mask.get(fo.index()) {
                                mask.set(fo.index());
                                stack.push(fo);
                            }
                        }
                    }
                    masks.push(mask);
                    masks.len() - 1
                })
            })
            .collect();
        FaultCones {
            masks,
            index,
            words,
        }
    }

    fn mask(&self, fault: usize) -> &ConeMask {
        &self.masks[self.index[fault]]
    }

    fn empty_mask(&self) -> ConeMask {
        ConeMask::empty(self.words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LearningMode;
    use sla_core::{LearnConfig, SequentialLearner};
    use sla_netlist::{GateType, NetlistBuilder};
    use sla_sim::{collapsed_fault_list, full_fault_list};

    /// Small sequential circuit with a combinationally redundant gate.
    fn sample() -> Netlist {
        let mut b = NetlistBuilder::new("sample");
        b.input("a");
        b.input("b");
        b.gate("na", GateType::Not, &["a"]).unwrap();
        b.gate("tie0", GateType::And, &["a", "na"]).unwrap();
        b.gate("g", GateType::Nand, &["a", "b"]).unwrap();
        b.gate("h", GateType::Or, &["g", "tie0"]).unwrap();
        b.dff("q", "h").unwrap();
        b.gate("o", GateType::Xor, &["q", "b"]).unwrap();
        b.output("o").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn run_classifies_every_fault_and_validates_tests() {
        let n = sample();
        let engine = AtpgEngine::new(&n, AtpgConfig::default()).unwrap();
        let faults = collapsed_fault_list(&n);
        let run = engine.run(&faults);
        assert_eq!(run.status.len(), faults.len());
        assert!(run.stats.detected > 0);
        assert_eq!(
            run.stats.detected + run.stats.untestable + run.stats.aborted,
            run.stats.total_faults
        );
        // Every sequence actually detects at least one listed fault.
        let sim = FaultSimulator::new(&n).unwrap();
        for seq in &run.sequences {
            assert!(faults.iter().any(|f| sim.detects(f, seq)));
        }
        assert!(run.stats.fault_coverage_bp() > 0);
        assert!(run.stats.test_coverage_bp() >= run.stats.fault_coverage_bp());
    }

    #[test]
    fn learned_ties_classify_untestable_faults_without_search() {
        let n = sample();
        let learned = LearnedData::from(
            &SequentialLearner::new(&n, LearnConfig::default())
                .learn()
                .unwrap(),
        );
        assert!(
            learned.tied_value(n.require("tie0").unwrap()) == Some(false),
            "learning must find the tied gate"
        );
        let faults = full_fault_list(&n);
        let engine = AtpgEngine::new(&n, AtpgConfig::default())
            .unwrap()
            .with_learned(learned);
        let run = engine.run(&faults);
        assert!(run.stats.untestable_from_ties >= 1);
        // The tie0 stuck-at-0 fault is among the untestable ones.
        let tie0 = n.require("tie0").unwrap();
        let idx = faults
            .iter()
            .position(|f| *f == Fault::output(tie0, false))
            .unwrap();
        assert_eq!(run.status[idx], FaultStatus::Untestable);
    }

    #[test]
    fn learning_modes_do_not_lose_detections() {
        let n = sample();
        let learned = LearnedData::from(
            &SequentialLearner::new(&n, LearnConfig::default())
                .learn()
                .unwrap(),
        );
        let faults = collapsed_fault_list(&n);
        let baseline = AtpgEngine::new(&n, AtpgConfig::default())
            .unwrap()
            .run(&faults);
        for mode in [LearningMode::ForbiddenValue, LearningMode::KnownValue] {
            let run = AtpgEngine::new(&n, AtpgConfig::default().learning(mode))
                .unwrap()
                .with_learned(learned.clone())
                .run(&faults);
            assert!(
                run.stats.detected + run.stats.untestable >= baseline.stats.detected,
                "mode {mode:?} classified fewer faults than the baseline"
            );
            // Detected tests are always validated by the fault simulator.
            let sim = FaultSimulator::new(&n).unwrap();
            for seq in &run.sequences {
                assert!(faults.iter().any(|f| sim.detects(f, seq)));
            }
        }
    }

    #[test]
    fn fault_dropping_reduces_generated_sequences() {
        let n = sample();
        let faults = collapsed_fault_list(&n);
        let with_drop = AtpgEngine::new(&n, AtpgConfig::default())
            .unwrap()
            .run(&faults);
        let cfg = AtpgConfig {
            fault_dropping: false,
            ..AtpgConfig::default()
        };
        let without_drop = AtpgEngine::new(&n, cfg).unwrap().run(&faults);
        assert!(with_drop.stats.sequences <= without_drop.stats.sequences);
        // Fault simulation of generated sequences can detect faults the
        // generator itself aborted on (the paper relies on this effect), so
        // dropping never lowers coverage.
        assert!(with_drop.stats.detected >= without_drop.stats.detected);
    }

    /// Sharded runs must replay the serial drop protocol bit for bit: same
    /// verdicts, same backtrack/decision totals, same sequences — with fault
    /// dropping both on (speculation discards) and off (fully independent).
    #[test]
    fn sharded_run_matches_serial_run() {
        let n = sample();
        let learned = LearnedData::from(
            &SequentialLearner::new(&n, LearnConfig::default())
                .learn()
                .unwrap(),
        );
        let faults = full_fault_list(&n);
        for dropping in [true, false] {
            let config = AtpgConfig {
                fault_dropping: dropping,
                ..AtpgConfig::default()
            }
            .learning(LearningMode::ForbiddenValue);
            let engine = AtpgEngine::new(&n, config)
                .unwrap()
                .with_learned(learned.clone());
            let reference = engine.run_with_threads(&faults, 1);
            for threads in [2, 3, 8] {
                let sharded = engine.run_with_threads(&faults, threads);
                assert_eq!(reference.status, sharded.status, "t={threads}");
                assert_eq!(reference.sequences, sharded.sequences, "t={threads}");
                assert_eq!(
                    reference.stats.backtracks, sharded.stats.backtracks,
                    "t={threads}"
                );
                assert_eq!(
                    reference.stats.decisions, sharded.stats.decisions,
                    "t={threads}"
                );
                assert_eq!(
                    reference.stats.untestable_from_ties, sharded.stats.untestable_from_ties,
                    "t={threads}"
                );
                assert_eq!(
                    reference.stats.test_vectors, sharded.stats.test_vectors,
                    "t={threads}"
                );
            }
        }
    }

    /// Cone-disjoint wave partitioning bounds speculation waste: faults with
    /// non-overlapping fault cones are rarely dropped by each other's
    /// sequences, so speculating them together wastes almost nothing. The
    /// counts are pinned — a deterministic function of the workload and
    /// thread count — so a regression in the partition (or a return to
    /// blind contiguous waves, which measurably wasted speculations on this
    /// workload during development) shows up here.
    #[test]
    fn cone_disjoint_waves_bound_speculation_waste() {
        let n = sample();
        let faults = full_fault_list(&n);
        let engine = AtpgEngine::new(&n, AtpgConfig::default()).unwrap();
        let serial = engine.run_with_threads(&faults, 1);
        assert_eq!(serial.stats.wasted_speculations, 0, "serial never wastes");
        for threads in [2, 4] {
            let sharded = engine.run_with_threads(&faults, threads);
            assert_eq!(serial.status, sharded.status, "t={threads}");
            assert_eq!(
                sharded.stats.wasted_speculations, 0,
                "cone-disjoint waves must not waste a single speculation on \
                 this workload (t={threads})"
            );
        }
    }

    #[test]
    fn stats_cover_the_whole_fault_list() {
        let n = sample();
        let faults = full_fault_list(&n);
        let run = AtpgEngine::new(&n, AtpgConfig::with_backtrack_limit(100))
            .unwrap()
            .run(&faults);
        assert_eq!(run.stats.total_faults, faults.len());
        assert!(run.stats.cpu.as_nanos() > 0);
        assert_eq!(run.stats.sequences, run.sequences.len());
    }
}
