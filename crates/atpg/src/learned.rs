//! Packaging of sequential learning results for ATPG consumption, and the
//! per-frame implication layer (forbidden / known values).
//!
//! The layer machinery is built for the test generator's hot loop:
//!
//! * [`LiteralAdjacency`] — a CSR-style adjacency view of the learned
//!   [`ImplicationDb`]: for every literal (node × polarity) the consequent
//!   literals, in two flat vectors with no per-lookup hashing,
//! * [`ImplicationLayer`] — a from-scratch layer over flat per-frame arrays;
//!   the reference implementation,
//! * [`IncrementalLayer`] — the same layer maintained incrementally across
//!   the decide/backtrack steps of a branch-and-bound search: every search
//!   point only processes the values that *became* binary since its parent
//!   (three-valued simulation is monotone in the assignments, so refinements
//!   never retract a binary value), and backtracking unwinds a trail instead
//!   of rebuilding. Property tests assert the incremental state always equals
//!   a from-scratch rebuild.

use crate::config::LearningMode;
use sla_core::{CrossImplication, ImplicationDb, LearnResult};
use sla_netlist::NodeId;
use sla_sim::Logic3;

/// Learned data in the form the test generator consumes: the implication
/// database, tied-gate constants and the cross-frame relations.
#[derive(Debug, Clone, Default)]
pub struct LearnedData {
    /// Same-frame implications (with contrapositive closure).
    implications: ImplicationDb,
    /// Tied gates as constants, sorted by node id for binary search.
    tied: Vec<(NodeId, bool)>,
    /// Cross-frame relations (`antecedent @ T → consequent @ T + offset`),
    /// sorted and deduplicated. Empty unless the learner ran with
    /// `learn_cross_frame` — the search works unchanged without them.
    cross_frame: Vec<CrossImplication>,
}

impl LearnedData {
    /// Creates an empty set of learned data (equivalent to no learning).
    pub fn new() -> Self {
        LearnedData::default()
    }

    /// Builds learned data from explicit parts.
    pub fn from_parts(implications: ImplicationDb, mut tied: Vec<(NodeId, bool)>) -> Self {
        tied.sort_by_key(|&(n, _)| n);
        tied.dedup_by_key(|&mut (n, _)| n);
        LearnedData {
            implications,
            tied,
            cross_frame: Vec::new(),
        }
    }

    /// Attaches cross-frame relations (sorted and deduplicated here, so any
    /// insertion order yields the same compiled adjacency).
    pub fn with_cross_frame(mut self, mut cross: Vec<CrossImplication>) -> Self {
        cross.sort_unstable();
        cross.dedup();
        self.cross_frame = cross;
        self
    }

    /// Extracts the ATPG-relevant part of a learning result, including any
    /// collected cross-frame relations (already in the canonical order of
    /// [`LearnResult::cross_frame_deduped`]; the re-sort in
    /// [`LearnedData::with_cross_frame`] is an idempotent guard).
    pub fn from_learn_result(result: &LearnResult) -> Self {
        LearnedData::from_parts(result.implications.clone(), result.tied_constants())
            .with_cross_frame(result.cross_frame_deduped())
    }

    /// The learned same-frame implications.
    pub fn implications(&self) -> &ImplicationDb {
        &self.implications
    }

    /// The cross-frame relations, sorted and deduplicated.
    pub fn cross_frame(&self) -> &[CrossImplication] {
        &self.cross_frame
    }

    /// The tied gates as `(node, value)` constants, sorted by node id.
    pub fn tied(&self) -> &[(NodeId, bool)] {
        &self.tied
    }

    /// Returns the tied value of `node` if the node is tied.
    pub fn tied_value(&self, node: NodeId) -> Option<bool> {
        self.tied
            .binary_search_by_key(&node, |&(n, _)| n)
            .ok()
            .map(|i| self.tied[i].1)
    }

    /// Returns `true` when there is nothing to use.
    pub fn is_empty(&self) -> bool {
        self.implications.is_empty() && self.tied.is_empty() && self.cross_frame.is_empty()
    }
}

impl From<&LearnResult> for LearnedData {
    fn from(result: &LearnResult) -> Self {
        LearnedData::from_learn_result(result)
    }
}

/// Compact literal code: `node.0 * 2 + value`.
#[inline]
fn code(node: NodeId, value: bool) -> u32 {
    node.0 * 2 + value as u32
}

/// CSR-style adjacency view of an [`ImplicationDb`] plus cross-frame
/// relations: for every literal, the consequent literals of its direct
/// implications (contrapositives included), as flat index arrays — the
/// same-frame consequents in `targets`, the cross-frame consequents in
/// `cross_targets` together with their frame offsets. Built once per
/// test-generation run so the search loop never hashes.
#[derive(Debug, Clone, Default)]
pub struct LiteralAdjacency {
    /// `offsets[lit] .. offsets[lit + 1]` indexes `targets`.
    offsets: Vec<u32>,
    /// Same-frame consequent literal codes.
    targets: Vec<u32>,
    /// `cross_offsets[lit] .. cross_offsets[lit + 1]` indexes `cross_targets`
    /// (empty when no cross-frame relations were supplied).
    cross_offsets: Vec<u32>,
    /// Cross-frame consequents: `(literal code, frame offset)` — the
    /// consequent holds `offset` frames after the antecedent's frame (the
    /// offset may be negative; a contrapositive negates it).
    cross_targets: Vec<(u32, i32)>,
    /// Nodes with at least one (same- or cross-frame) edge. Contrapositive
    /// closure makes the antecedent and consequent node sets identical, so
    /// these are exactly the nodes the implication layer can ever see events
    /// on.
    relevant: Vec<u32>,
}

impl LiteralAdjacency {
    /// Builds the adjacency for a netlist of `num_nodes` nodes from
    /// same-frame implications only.
    pub fn build(db: &ImplicationDb, num_nodes: usize) -> Self {
        LiteralAdjacency::build_with_cross(db, &[], num_nodes)
    }

    /// Builds the adjacency from same-frame implications and cross-frame
    /// relations. Each cross relation contributes its edge and its
    /// contrapositive (`¬consequent @ T → ¬antecedent @ T − offset`).
    pub fn build_with_cross(
        db: &ImplicationDb,
        cross: &[CrossImplication],
        num_nodes: usize,
    ) -> Self {
        let literals = num_nodes * 2;
        let edges = || {
            db.iter().flat_map(|(imp, _)| {
                let contra = imp.contrapositive();
                [
                    (imp.antecedent, imp.consequent),
                    (contra.antecedent, contra.consequent),
                ]
            })
        };
        let mut counts = vec![0u32; literals + 1];
        for (a, _) in edges() {
            counts[code(a.node, a.value) as usize + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let offsets = counts;
        let mut cursor = offsets.clone();
        let mut targets = vec![0u32; offsets[literals] as usize];
        for (a, c) in edges() {
            let slot = &mut cursor[code(a.node, a.value) as usize];
            targets[*slot as usize] = code(c.node, c.value);
            *slot += 1;
        }
        // Deterministic consequent order within each literal (the order the
        // old hash-map layer produced); the layer result does not depend on
        // it, but determinism keeps runs reproducible.
        for lit in 0..literals {
            let (s, e) = (offsets[lit] as usize, offsets[lit + 1] as usize);
            targets[s..e].sort_unstable();
        }

        // Cross-frame edges: flat `(antecedent code, consequent code, offset)`
        // triples including contrapositives, sorted for a deterministic CSR
        // and deduplicated (a relation and another's contrapositive can
        // coincide).
        let (cross_offsets, cross_targets) = if cross.is_empty() {
            (Vec::new(), Vec::new())
        } else {
            let mut edges: Vec<(u32, u32, i32)> = cross
                .iter()
                .flat_map(|ci| {
                    [
                        (
                            code(ci.antecedent.node, ci.antecedent.value),
                            code(ci.consequent.node, ci.consequent.value),
                            ci.offset,
                        ),
                        (
                            code(ci.consequent.node, !ci.consequent.value),
                            code(ci.antecedent.node, !ci.antecedent.value),
                            -ci.offset,
                        ),
                    ]
                })
                .filter(|&(_, _, off)| off != 0)
                .collect();
            edges.sort_unstable();
            edges.dedup();
            let mut cross_offsets = vec![0u32; literals + 1];
            for &(a, _, _) in &edges {
                cross_offsets[a as usize + 1] += 1;
            }
            for i in 1..cross_offsets.len() {
                cross_offsets[i] += cross_offsets[i - 1];
            }
            let cross_targets = edges.into_iter().map(|(_, c, off)| (c, off)).collect();
            (cross_offsets, cross_targets)
        };

        let has_cross = |n: u32| {
            if cross_offsets.is_empty() {
                return false;
            }
            let lit0 = n as usize * 2;
            cross_offsets[lit0 + 2] > cross_offsets[lit0]
        };
        let relevant = (0..num_nodes as u32)
            .filter(|&n| {
                let lit0 = n as usize * 2;
                offsets[lit0 + 2] > offsets[lit0] || has_cross(n)
            })
            .collect();
        LiteralAdjacency {
            offsets,
            targets,
            cross_offsets,
            cross_targets,
            relevant,
        }
    }

    /// Same-frame consequent literal codes of `lit`.
    #[inline]
    fn consequents(&self, lit: u32) -> &[u32] {
        let s = self.offsets[lit as usize] as usize;
        let e = self.offsets[lit as usize + 1] as usize;
        &self.targets[s..e]
    }

    /// Cross-frame consequents of `lit` as `(literal code, frame offset)`.
    #[inline]
    fn cross_consequents(&self, lit: u32) -> &[(u32, i32)] {
        if self.cross_offsets.is_empty() {
            return &[];
        }
        let s = self.cross_offsets[lit as usize] as usize;
        let e = self.cross_offsets[lit as usize + 1] as usize;
        &self.cross_targets[s..e]
    }

    /// Returns `true` when no implication is stored.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty() && self.cross_targets.is_empty()
    }

    /// Number of directed same-frame edges (a relation and its contrapositive
    /// count two).
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Number of directed cross-frame edges (contrapositives included).
    pub fn num_cross_edges(&self) -> usize {
        self.cross_targets.len()
    }

    /// Nodes with at least one edge, ascending.
    pub fn relevant_nodes(&self) -> &[u32] {
        &self.relevant
    }

    /// Returns `true` when `node` participates in at least one implication
    /// (as antecedent or consequent; the contrapositive closure makes the two
    /// sets identical).
    #[inline]
    pub fn node_has_edges(&self, node: u32) -> bool {
        let lit0 = node as usize * 2;
        self.offsets[lit0 + 2] > self.offsets[lit0]
            || (!self.cross_offsets.is_empty()
                && self.cross_offsets[lit0 + 2] > self.cross_offsets[lit0])
    }
}

/// Hint slot encoding of the flat layer arrays.
const NO_HINT: u8 = 0;

#[inline]
fn encode_hint(value: bool) -> u8 {
    1 + value as u8
}

#[inline]
fn decode_hint(slot: u8) -> Option<bool> {
    match slot {
        NO_HINT => None,
        h => Some(h == 2),
    }
}

/// The per-frame annotation layer derived from learned implications under the
/// current (good-machine) assignments of one search point.
///
/// * In *forbidden-value* mode, `hint(node) = v` means "the complement of `v`
///   is forbidden here": taking `¬v` is a conflict, and a backtrace that needs
///   a value on this node should pick `v`.
/// * In *known-value* mode, the hints are required values propagated with
///   transitive closure.
///
/// In both modes a binary simulated value that contradicts a hint is a
/// conflict that triggers an immediate backtrack.
///
/// This type rebuilds from scratch on every call and is the reference for the
/// [`IncrementalLayer`] the test generator uses.
#[derive(Debug, Clone, Default)]
pub struct ImplicationLayer {
    num_nodes: usize,
    /// Flat `(frame * num_nodes + node)` hint slots.
    hints: Vec<u8>,
    hint_count: usize,
    /// Set when a contradiction was found while building the layer.
    pub conflict: bool,
}

impl ImplicationLayer {
    /// Builds the layer for a whole iterative array from the good-machine
    /// values, under the given learning mode. Cross-frame edges of the
    /// adjacency derive hints in the antecedent's frame plus the edge offset
    /// (out-of-window frames are skipped).
    pub fn build(adj: &LiteralAdjacency, mode: LearningMode, good: &[Vec<Logic3>]) -> Self {
        let mut layer = ImplicationLayer::default();
        if !mode.uses_learning() || adj.is_empty() || good.is_empty() {
            return layer;
        }
        let num_nodes = good[0].len();
        layer.num_nodes = num_nodes;
        layer.hints = vec![NO_HINT; num_nodes * good.len()];
        let chase = mode == LearningMode::KnownValue;
        // Seed: every binary simulated value of every frame fires its
        // implications (one global queue — cross-frame edges hop between
        // frames, so a per-frame pass cannot contain the chase).
        let mut queue: Vec<(u32, u32)> = Vec::new();
        for (frame, values) in good.iter().enumerate() {
            for (idx, v) in values.iter().enumerate() {
                if let Some(b) = v.to_bool() {
                    queue.push((frame as u32, code(NodeId(idx as u32), b)));
                }
            }
        }
        let frames = i64::try_from(good.len()).expect("frame count fits i64");
        let mut head = 0;
        while head < queue.len() {
            let (frame, lit) = queue[head];
            head += 1;
            for &c in adj.consequents(lit) {
                layer.derive(frame, c, good, chase, &mut queue);
            }
            for &(c, off) in adj.cross_consequents(lit) {
                let tf = frame as i64 + off as i64;
                if (0..frames).contains(&tf) {
                    layer.derive(tf as u32, c, good, chase, &mut queue);
                }
            }
            if layer.conflict {
                return layer;
            }
        }
        layer
    }

    /// Derives one consequent literal `c` in `frame`: a contradicting binary
    /// simulated value or contradicting existing hint raises the conflict
    /// flag; a fresh hint is recorded (and queued in chase mode).
    fn derive(
        &mut self,
        frame: u32,
        c: u32,
        good: &[Vec<Logic3>],
        chase: bool,
        queue: &mut Vec<(u32, u32)>,
    ) {
        let c_node = (c >> 1) as usize;
        let c_value = c & 1 == 1;
        if let Some(b) = good[frame as usize][c_node].to_bool() {
            if b != c_value {
                self.conflict = true;
            }
            return;
        }
        let slot = &mut self.hints[frame as usize * self.num_nodes + c_node];
        match decode_hint(*slot) {
            Some(existing) if existing != c_value => {
                self.conflict = true;
            }
            Some(_) => {}
            None => {
                *slot = encode_hint(c_value);
                self.hint_count += 1;
                if chase {
                    queue.push((frame, c));
                }
            }
        }
    }

    /// The hinted value of `node` in `frame`, if any.
    pub fn hint(&self, frame: usize, node: NodeId) -> Option<bool> {
        self.hints
            .get(frame * self.num_nodes + node.index())
            .copied()
            .and_then(decode_hint)
    }

    /// Number of hinted `(frame, node)` pairs.
    pub fn len(&self) -> usize {
        self.hint_count
    }

    /// Returns `true` when the layer holds no hints.
    pub fn is_empty(&self) -> bool {
        self.hint_count == 0
    }
}

/// Marks the trail positions a search level starts at.
#[derive(Debug, Clone, Copy)]
struct LevelMark {
    hints: u32,
    seen: u32,
}

/// Read access to the good-machine window for the incremental layer's update
/// paths: the event path holds the flat `(frame × node)` array, the scan path
/// per-frame vectors. Static dispatch keeps the same-frame hot loop free of a
/// per-read branch.
trait GoodValues {
    fn at(&self, frame: usize, node: usize) -> Logic3;
}

struct FlatValues<'v> {
    values: &'v [Logic3],
    num_nodes: usize,
}

impl GoodValues for FlatValues<'_> {
    #[inline]
    fn at(&self, frame: usize, node: usize) -> Logic3 {
        self.values[frame * self.num_nodes + node]
    }
}

struct FrameValues<'v>(&'v [Vec<Logic3>]);

impl GoodValues for FrameValues<'_> {
    #[inline]
    fn at(&self, frame: usize, node: usize) -> Logic3 {
        self.0[frame][node]
    }
}

/// An [`ImplicationLayer`] maintained incrementally across the decide /
/// backtrack steps of a branch-and-bound search.
///
/// Protocol: after every (re)simulation of the good machine, call
/// [`IncrementalLayer::update`] with the current decision depth; before
/// re-deciding a flipped decision, call [`IncrementalLayer::pop_to`] with the
/// number of levels that remain valid (the base level plus one level per
/// unchanged decision). `update` only scans for values that became binary
/// since the parent level and fires the implications of exactly those
/// literals; `pop_to` unwinds the hint and seen trails.
#[derive(Debug, Clone)]
pub struct IncrementalLayer<'a> {
    adj: &'a LiteralAdjacency,
    mode: LearningMode,
    num_nodes: usize,
    frames: usize,
    /// Flat `(frame * num_nodes + node)` hint slots.
    hints: Vec<u8>,
    /// Flat flags: the slot's value became binary at some live level.
    seen: Vec<bool>,
    hint_trail: Vec<u32>,
    seen_trail: Vec<u32>,
    levels: Vec<LevelMark>,
    /// Level at which the current conflict was detected, if any.
    conflict_level: Option<usize>,
    /// Scratch queue of `(frame, literal)` events.
    queue: Vec<(u32, u32)>,
}

impl<'a> IncrementalLayer<'a> {
    /// Creates an empty layer over `frames × num_nodes` slots.
    pub fn new(
        adj: &'a LiteralAdjacency,
        mode: LearningMode,
        frames: usize,
        num_nodes: usize,
    ) -> Self {
        let slots = if mode.uses_learning() && !adj.is_empty() {
            frames * num_nodes
        } else {
            0 // inert layer: no learning to track
        };
        IncrementalLayer {
            adj,
            mode,
            num_nodes,
            frames,
            hints: vec![NO_HINT; slots],
            seen: vec![false; slots],
            hint_trail: Vec::new(),
            seen_trail: Vec::new(),
            levels: Vec::new(),
            conflict_level: None,
            queue: Vec::new(),
        }
    }

    /// Opens level `level` (which must equal the number of live levels) and
    /// processes every good-machine value that became binary since the parent
    /// level. Returns the conflict flag.
    ///
    /// `from_frame` is the earliest frame the triggering event (decision or
    /// flip) can influence: forward simulation never changes a frame before
    /// the frame of the assignment, so earlier frames need no rescan. Pass 0
    /// for the initial, decision-free search point.
    ///
    /// `parent_good` may carry the good-machine values of the *parent* level
    /// (sound only on plain decision steps, where the previous search point
    /// is the parent): frames with identical values hold no new events and
    /// are skipped with one slice compare.
    pub fn update(
        &mut self,
        level: usize,
        good: &[Vec<Logic3>],
        from_frame: usize,
        parent_good: Option<&[Logic3]>,
    ) -> bool {
        assert_eq!(level, self.levels.len(), "levels must be pushed in order");
        self.levels.push(LevelMark {
            hints: u32::try_from(self.hint_trail.len()).expect("hint trail fits u32"),
            seen: u32::try_from(self.seen_trail.len()).expect("seen trail fits u32"),
        });
        if self.hints.is_empty() {
            return false;
        }
        let mut conflict = self.conflict_level.is_some();
        let adj = self.adj;
        let chase = self.mode == LearningMode::KnownValue;
        self.queue.clear();
        let view = FrameValues(good);
        for (frame, values) in good.iter().enumerate().take(self.frames).skip(from_frame) {
            let base = frame * self.num_nodes;
            if let Some(parent) = parent_good {
                if parent[base..base + self.num_nodes] == values[..] {
                    continue; // value-identical frame: no new events
                }
            }
            // Only nodes with implication edges can fire events or carry
            // hints; the rest of the frame is irrelevant to the layer.
            for &nidx in adj.relevant_nodes() {
                if self.process_literal(frame as u32, nidx, &view, chase) {
                    conflict = true;
                }
            }
        }
        let mut head = 0;
        while head < self.queue.len() {
            let (frame, lit) = self.queue[head];
            head += 1;
            if self.fire_consequents(frame, lit, &view, true) {
                conflict = true;
            }
        }
        if conflict && self.conflict_level.is_none() {
            self.conflict_level = Some(level);
        }
        conflict
    }

    /// Event-driven variant of [`IncrementalLayer::update`]: instead of
    /// scanning the window for values that became binary since the parent
    /// level, processes exactly the given change events. `values` is the flat
    /// `(frame * num_nodes + node)` good-machine array and `events` lists the
    /// slots whose value became binary since the parent level (the change
    /// stream of [`sla_sim::EventSim::assign`], or its initial binary slots
    /// for level 0). Returns the conflict flag.
    pub fn update_events(&mut self, level: usize, values: &[Logic3], events: &[u32]) -> bool {
        assert_eq!(level, self.levels.len(), "levels must be pushed in order");
        self.levels.push(LevelMark {
            hints: u32::try_from(self.hint_trail.len()).expect("hint trail fits u32"),
            seen: u32::try_from(self.seen_trail.len()).expect("seen trail fits u32"),
        });
        if self.hints.is_empty() {
            return false;
        }
        let mut conflict = self.conflict_level.is_some();
        let chase = self.mode == LearningMode::KnownValue;
        self.queue.clear();
        let view = FlatValues {
            values,
            num_nodes: self.num_nodes,
        };
        for &slot in events {
            let slot = slot as usize;
            let node = (slot % self.num_nodes) as u32;
            let frame = slot / self.num_nodes;
            // Only nodes with implication edges can fire events or carry
            // hints; the rest of the change stream is irrelevant here.
            if !self.adj.node_has_edges(node) {
                continue;
            }
            if self.process_literal(frame as u32, node, &view, chase) {
                conflict = true;
            }
        }
        let mut head = 0;
        while head < self.queue.len() {
            let (frame, lit) = self.queue[head];
            head += 1;
            if self.fire_consequents(frame, lit, &view, true) {
                conflict = true;
            }
        }
        if conflict && self.conflict_level.is_none() {
            self.conflict_level = Some(level);
        }
        conflict
    }

    /// Processes one potentially newly binary value (`node` in `frame`):
    /// skips non-binary or already-seen slots, marks the seen trail, reports
    /// a conflict if a previously derived hint is contradicted, and fires the
    /// literal's consequents (queued for transitive chasing in known-value
    /// mode, inline otherwise). Shared by the scan path
    /// ([`IncrementalLayer::update`]) and the event path
    /// ([`IncrementalLayer::update_events`]) so the two cannot drift.
    /// Returns `true` when a contradiction was observed.
    fn process_literal<V: GoodValues>(
        &mut self,
        frame: u32,
        node: u32,
        values: &V,
        chase: bool,
    ) -> bool {
        let Some(b) = values.at(frame as usize, node as usize).to_bool() else {
            return false;
        };
        let slot = frame as usize * self.num_nodes + node as usize;
        if self.seen[slot] {
            return false;
        }
        self.seen[slot] = true;
        self.seen_trail.push(slot as u32);
        // A previously derived hint contradicted by the newly binary value is
        // a conflict (the rebuild would catch it when firing the hint's
        // antecedent).
        let mut conflict = matches!(decode_hint(self.hints[slot]), Some(h) if h != b);
        let lit = code(NodeId(node), b);
        if chase {
            // Known-value mode chases transitively: queue the event so
            // derived hints fire their own consequents.
            self.queue.push((frame, lit));
        } else if self.fire_consequents(frame, lit, values, false) {
            // Forbidden-value mode stops at direct consequents: fire inline,
            // no queue round-trip.
            conflict = true;
        }
        conflict
    }

    /// Fires the direct consequents of `lit` in `frame` over the good-machine
    /// values: the same-frame consequents, then the cross-frame consequents
    /// in their offset frames (skipping frames outside the window). Derived
    /// hints go on the trail; in chase mode a fresh hint is queued so its own
    /// consequents fire too. Returns `true` when a contradiction was
    /// observed.
    fn fire_consequents<V: GoodValues>(
        &mut self,
        frame: u32,
        lit: u32,
        values: &V,
        chase: bool,
    ) -> bool {
        let adj = self.adj;
        let mut conflict = false;
        for &c in adj.consequents(lit) {
            if self.derive(frame, c, values, chase) {
                conflict = true;
            }
        }
        for &(c, off) in adj.cross_consequents(lit) {
            let tf = frame as i64 + off as i64;
            if (0..self.frames as i64).contains(&tf) && self.derive(tf as u32, c, values, chase) {
                conflict = true;
            }
        }
        conflict
    }

    /// Derives one consequent literal `c` in `frame`. Returns `true` when a
    /// contradiction (binary value or existing hint against `c`) was
    /// observed.
    fn derive<V: GoodValues>(&mut self, frame: u32, c: u32, values: &V, chase: bool) -> bool {
        let c_node = (c >> 1) as usize;
        let c_value = c & 1 == 1;
        if let Some(b) = values.at(frame as usize, c_node).to_bool() {
            return b != c_value;
        }
        let slot = frame as usize * self.num_nodes + c_node;
        match decode_hint(self.hints[slot]) {
            Some(existing) if existing != c_value => true,
            Some(_) => false,
            None => {
                self.hints[slot] = encode_hint(c_value);
                self.hint_trail.push(slot as u32);
                if chase {
                    self.queue.push((frame, c));
                }
                false
            }
        }
    }

    /// Unwinds to the first `keep` levels, retracting every hint and seen flag
    /// recorded by the removed levels.
    pub fn pop_to(&mut self, keep: usize) {
        while self.levels.len() > keep {
            let mark = self.levels.pop().expect("non-empty level stack");
            while self.hint_trail.len() > mark.hints as usize {
                let slot = self.hint_trail.pop().expect("trail entry") as usize;
                self.hints[slot] = NO_HINT;
            }
            while self.seen_trail.len() > mark.seen as usize {
                let slot = self.seen_trail.pop().expect("trail entry") as usize;
                self.seen[slot] = false;
            }
        }
        if self.conflict_level.is_some_and(|l| l >= keep) {
            self.conflict_level = None;
        }
    }

    /// Returns `true` when the live levels contain a contradiction.
    pub fn conflict(&self) -> bool {
        self.conflict_level.is_some()
    }

    /// The hinted value of `node` in `frame`, if any.
    ///
    /// Hints are only meaningful for nodes that are `X` in the current good
    /// machine; a node that became binary keeps its (now redundant) hint slot
    /// until the level that derived it is popped.
    pub fn hint(&self, frame: usize, node: NodeId) -> Option<bool> {
        self.hints
            .get(frame * self.num_nodes + node.index())
            .copied()
            .and_then(decode_hint)
    }

    /// Number of frames the layer spans.
    pub fn frames(&self) -> usize {
        self.frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sla_core::{Implication, LearnConfig, Literal, SequentialLearner};
    use sla_netlist::{GateType, Netlist, NetlistBuilder};

    fn exclusive_pair() -> Netlist {
        let mut b = NetlistBuilder::new("pair");
        b.input("a");
        b.gate("na", GateType::Not, &["a"]).unwrap();
        b.gate("nf1", GateType::Not, &["f1"]).unwrap();
        b.gate("nf2", GateType::Not, &["f2"]).unwrap();
        b.gate("d1", GateType::And, &["a", "nf2"]).unwrap();
        b.gate("d2", GateType::And, &["na", "nf1"]).unwrap();
        b.dff("f1", "d1").unwrap();
        b.dff("f2", "d2").unwrap();
        b.output("f1").unwrap();
        b.output("f2").unwrap();
        b.build().unwrap()
    }

    fn learned_for(n: &Netlist) -> LearnedData {
        let result = SequentialLearner::new(n, LearnConfig::default())
            .learn()
            .unwrap();
        LearnedData::from(&result)
    }

    fn adjacency_for(n: &Netlist, learned: &LearnedData) -> LiteralAdjacency {
        LiteralAdjacency::build(learned.implications(), n.num_nodes())
    }

    #[test]
    fn from_learn_result_keeps_relations_and_ties() {
        let n = exclusive_pair();
        let learned = learned_for(&n);
        assert!(!learned.is_empty());
        let f1 = n.require("f1").unwrap();
        let f2 = n.require("f2").unwrap();
        assert!(learned.implications().implies(f1, true, f2, false));
        assert_eq!(learned.tied_value(f1), None);
    }

    #[test]
    fn tied_value_uses_binary_search_over_sorted_constants() {
        let tied = vec![
            (NodeId(9), true),
            (NodeId(2), false),
            (NodeId(40), true),
            (NodeId(7), false),
        ];
        let learned = LearnedData::from_parts(ImplicationDb::new(), tied);
        assert_eq!(learned.tied_value(NodeId(2)), Some(false));
        assert_eq!(learned.tied_value(NodeId(7)), Some(false));
        assert_eq!(learned.tied_value(NodeId(9)), Some(true));
        assert_eq!(learned.tied_value(NodeId(40)), Some(true));
        assert_eq!(learned.tied_value(NodeId(3)), None);
        assert!(learned.tied().windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn adjacency_matches_db_consequents() {
        let n = exclusive_pair();
        let learned = learned_for(&n);
        let adj = adjacency_for(&n, &learned);
        assert!(!adj.is_empty());
        assert_eq!(adj.num_edges(), 2 * learned.implications().len());
        for (id, _) in n.iter() {
            for value in [false, true] {
                let mut from_db: Vec<u32> = learned
                    .implications()
                    .consequents(Literal::new(id, value))
                    .map(|l| code(l.node, l.value))
                    .collect();
                from_db.sort_unstable();
                assert_eq!(adj.consequents(code(id, value)), from_db.as_slice());
            }
        }
    }

    #[test]
    fn layer_hints_follow_simulated_values() {
        let n = exclusive_pair();
        let learned = learned_for(&n);
        let adj = adjacency_for(&n, &learned);
        let f1 = n.require("f1").unwrap();
        let f2 = n.require("f2").unwrap();
        let mut frame = vec![Logic3::X; n.num_nodes()];
        frame[f1.index()] = Logic3::One;
        let good = vec![frame];
        let layer = ImplicationLayer::build(&adj, LearningMode::ForbiddenValue, &good);
        assert!(!layer.conflict);
        assert_eq!(layer.hint(0, f2), Some(false));
        assert_eq!(layer.hint(0, f1), None);
        assert!(!layer.is_empty());
    }

    #[test]
    fn contradicting_simulated_value_raises_conflict() {
        let n = exclusive_pair();
        let learned = learned_for(&n);
        let adj = adjacency_for(&n, &learned);
        let f1 = n.require("f1").unwrap();
        let f2 = n.require("f2").unwrap();
        let mut frame = vec![Logic3::X; n.num_nodes()];
        frame[f1.index()] = Logic3::One;
        frame[f2.index()] = Logic3::One;
        let layer = ImplicationLayer::build(&adj, LearningMode::ForbiddenValue, &[frame]);
        assert!(
            layer.conflict,
            "f1=1 and f2=1 violates the learned relation"
        );
    }

    #[test]
    fn none_mode_produces_no_hints() {
        let n = exclusive_pair();
        let learned = learned_for(&n);
        let adj = adjacency_for(&n, &learned);
        let f1 = n.require("f1").unwrap();
        let mut frame = vec![Logic3::X; n.num_nodes()];
        frame[f1.index()] = Logic3::One;
        let layer = ImplicationLayer::build(&adj, LearningMode::None, &[frame]);
        assert!(layer.is_empty());
        assert!(!layer.conflict);
    }

    #[test]
    fn known_value_mode_chases_chains() {
        // Handcrafted database: a=1 -> b=1 -> c=1 on three flip-flops.
        let mut b = NetlistBuilder::new("chain");
        b.input("i");
        b.dff("a", "i").unwrap();
        b.dff("bb", "a").unwrap();
        b.dff("c", "bb").unwrap();
        b.output("c").unwrap();
        let n = b.build().unwrap();
        let a = n.require("a").unwrap();
        let bbn = n.require("bb").unwrap();
        let c = n.require("c").unwrap();
        let mut db = ImplicationDb::new();
        db.add(
            Implication::new(Literal::new(a, true), Literal::new(bbn, true)),
            true,
        );
        db.add(
            Implication::new(Literal::new(bbn, true), Literal::new(c, true)),
            true,
        );
        let learned = LearnedData::from_parts(db, Vec::new());
        let adj = adjacency_for(&n, &learned);
        let mut frame = vec![Logic3::X; n.num_nodes()];
        frame[a.index()] = Logic3::One;
        let forbidden =
            ImplicationLayer::build(&adj, LearningMode::ForbiddenValue, &[frame.clone()]);
        let known = ImplicationLayer::build(&adj, LearningMode::KnownValue, &[frame]);
        assert_eq!(forbidden.hint(0, c), None, "forbidden mode stays direct");
        assert_eq!(known.hint(0, c), Some(true), "known mode chases the chain");
    }

    #[test]
    fn incremental_layer_tracks_updates_and_pops() {
        let n = exclusive_pair();
        let learned = learned_for(&n);
        let adj = adjacency_for(&n, &learned);
        let f1 = n.require("f1").unwrap();
        let f2 = n.require("f2").unwrap();
        let x_frame = vec![Logic3::X; n.num_nodes()];
        let mut one_frame = x_frame.clone();
        one_frame[f1.index()] = Logic3::One;

        let mut inc = IncrementalLayer::new(&adj, LearningMode::ForbiddenValue, 1, n.num_nodes());
        assert!(!inc.update(0, std::slice::from_ref(&x_frame), 0, None));
        assert_eq!(inc.hint(0, f2), None);
        assert!(!inc.update(1, std::slice::from_ref(&one_frame), 0, None));
        assert_eq!(inc.hint(0, f2), Some(false), "f1=1 forbids f2=1");
        inc.pop_to(1);
        assert_eq!(inc.hint(0, f2), None, "popping retracts the hint");
        // Re-deciding at the same level works after the pop.
        assert!(!inc.update(1, std::slice::from_ref(&one_frame), 0, None));
        assert_eq!(inc.hint(0, f2), Some(false));
    }

    #[test]
    fn event_updates_match_scan_updates() {
        let n = exclusive_pair();
        let learned = learned_for(&n);
        let adj = adjacency_for(&n, &learned);
        let f1 = n.require("f1").unwrap();
        let f2 = n.require("f2").unwrap();
        let nn = n.num_nodes();
        let x_frame = vec![Logic3::X; nn];
        let mut one_frame = x_frame.clone();
        one_frame[f1.index()] = Logic3::One;

        let mut inc = IncrementalLayer::new(&adj, LearningMode::ForbiddenValue, 1, nn);
        // Level 0: nothing binary, no events.
        assert!(!inc.update_events(0, &x_frame, &[]));
        // Level 1: f1 became binary — exactly one event.
        assert!(!inc.update_events(1, &one_frame, &[f1.0]));
        assert_eq!(inc.hint(0, f2), Some(false), "f1=1 forbids f2=1");
        inc.pop_to(1);
        assert_eq!(inc.hint(0, f2), None, "popping retracts the hint");
        // Contradicting event at the re-opened level: f1=1 and f2=1.
        let mut bad = one_frame.clone();
        bad[f2.index()] = Logic3::One;
        assert!(inc.update_events(1, &bad, &[f1.0, f2.0]));
        assert!(inc.conflict());
        inc.pop_to(1);
        assert!(!inc.conflict());
    }

    #[test]
    fn event_updates_chase_in_known_value_mode() {
        // Handcrafted chain a=1 -> b=1 -> c=1 over three flip-flops.
        let mut b = NetlistBuilder::new("chain");
        b.input("i");
        b.dff("a", "i").unwrap();
        b.dff("bb", "a").unwrap();
        b.dff("c", "bb").unwrap();
        b.output("c").unwrap();
        let n = b.build().unwrap();
        let a = n.require("a").unwrap();
        let bbn = n.require("bb").unwrap();
        let c = n.require("c").unwrap();
        let mut db = ImplicationDb::new();
        db.add(
            Implication::new(Literal::new(a, true), Literal::new(bbn, true)),
            true,
        );
        db.add(
            Implication::new(Literal::new(bbn, true), Literal::new(c, true)),
            true,
        );
        let learned = LearnedData::from_parts(db, Vec::new());
        let adj = adjacency_for(&n, &learned);
        let mut frame = vec![Logic3::X; n.num_nodes()];
        frame[a.index()] = Logic3::One;
        let mut inc = IncrementalLayer::new(&adj, LearningMode::KnownValue, 1, n.num_nodes());
        assert!(!inc.update_events(0, &frame, &[a.0]));
        assert_eq!(inc.hint(0, c), Some(true), "chase reaches the chain end");
    }

    /// A three-FF shift register for the cross-frame tests; `a` at frame `T`
    /// reaches `c` at frame `T+2`, which is what the handcrafted cross
    /// relations below encode.
    fn shift3() -> (Netlist, NodeId, NodeId) {
        let mut b = NetlistBuilder::new("shift3");
        b.input("i");
        b.dff("a", "i").unwrap();
        b.dff("bb", "a").unwrap();
        b.dff("c", "bb").unwrap();
        b.output("c").unwrap();
        let n = b.build().unwrap();
        let a = n.require("a").unwrap();
        let c = n.require("c").unwrap();
        (n, a, c)
    }

    fn cross_rel(a: NodeId, va: bool, c: NodeId, vc: bool, offset: i32) -> CrossImplication {
        CrossImplication {
            antecedent: Literal::new(a, va),
            consequent: Literal::new(c, vc),
            offset,
        }
    }

    #[test]
    fn cross_edges_hint_the_offset_frame() {
        let (n, a, c) = shift3();
        let cross = vec![cross_rel(a, true, c, true, 2)];
        let adj = LiteralAdjacency::build_with_cross(&ImplicationDb::new(), &cross, n.num_nodes());
        assert!(!adj.is_empty());
        assert_eq!(adj.num_edges(), 0);
        assert_eq!(adj.num_cross_edges(), 2, "relation plus contrapositive");

        let mut good = vec![vec![Logic3::X; n.num_nodes()]; 4];
        good[1][a.index()] = Logic3::One;
        let layer = ImplicationLayer::build(&adj, LearningMode::ForbiddenValue, &good);
        assert!(!layer.conflict);
        assert_eq!(layer.hint(3, c), Some(true), "a=1@1 hints c=1@3");
        assert_eq!(layer.hint(1, c), None);
        // The contrapositive hints backwards: c=0 @ T forbids a=1 @ T-2.
        let mut back = vec![vec![Logic3::X; n.num_nodes()]; 4];
        back[3][c.index()] = Logic3::Zero;
        let layer = ImplicationLayer::build(&adj, LearningMode::ForbiddenValue, &back);
        assert!(!layer.conflict);
        assert_eq!(layer.hint(1, a), Some(false));
    }

    #[test]
    fn cross_edges_skip_out_of_window_frames() {
        let (n, a, c) = shift3();
        let cross = vec![cross_rel(a, true, c, true, 2)];
        let adj = LiteralAdjacency::build_with_cross(&ImplicationDb::new(), &cross, n.num_nodes());
        let mut good = vec![vec![Logic3::X; n.num_nodes()]; 2];
        good[1][a.index()] = Logic3::One; // consequent frame 3 is out of window
        let layer = ImplicationLayer::build(&adj, LearningMode::ForbiddenValue, &good);
        assert!(!layer.conflict);
        assert!(layer.is_empty());
    }

    #[test]
    fn cross_conflict_on_contradicting_binary_value() {
        let (n, a, c) = shift3();
        let cross = vec![cross_rel(a, true, c, true, 2)];
        let adj = LiteralAdjacency::build_with_cross(&ImplicationDb::new(), &cross, n.num_nodes());
        let mut good = vec![vec![Logic3::X; n.num_nodes()]; 4];
        good[1][a.index()] = Logic3::One;
        good[3][c.index()] = Logic3::Zero;
        let layer = ImplicationLayer::build(&adj, LearningMode::ForbiddenValue, &good);
        assert!(layer.conflict, "a=1@1 with c=0@3 violates the relation");
    }

    #[test]
    fn incremental_cross_hints_fire_and_pop() {
        let (n, a, c) = shift3();
        let nn = n.num_nodes();
        let cross = vec![cross_rel(a, true, c, true, 2)];
        let adj = LiteralAdjacency::build_with_cross(&ImplicationDb::new(), &cross, nn);
        let mut inc = IncrementalLayer::new(&adj, LearningMode::ForbiddenValue, 4, nn);
        let values = vec![Logic3::X; 4 * nn];
        assert!(!inc.update_events(0, &values, &[]));
        let mut values = values;
        values[nn + a.index()] = Logic3::One;
        let event = (nn + a.index()) as u32;
        assert!(!inc.update_events(1, &values, &[event]));
        assert_eq!(inc.hint(3, c), Some(true), "event at frame 1 hints frame 3");
        inc.pop_to(1);
        assert_eq!(inc.hint(3, c), None, "popping retracts the cross hint");
        // A contradicting binary value at the offset frame is a conflict.
        values[3 * nn + c.index()] = Logic3::Zero;
        let conflict_event = (3 * nn + c.index()) as u32;
        assert!(inc.update_events(1, &values, &[event, conflict_event]));
        assert!(inc.conflict());
    }

    #[test]
    fn known_value_mode_chases_through_cross_edges() {
        let (n, a, c) = shift3();
        let bb = n.require("bb").unwrap();
        // a=1 @ T -> bb=1 @ T+1 (cross), bb=1 -> c=1 (same frame): the chase
        // must hop the frame boundary and keep going.
        let mut db = ImplicationDb::new();
        db.add(
            Implication::new(Literal::new(bb, true), Literal::new(c, true)),
            true,
        );
        let cross = vec![cross_rel(a, true, bb, true, 1)];
        let adj = LiteralAdjacency::build_with_cross(&db, &cross, n.num_nodes());
        let mut good = vec![vec![Logic3::X; n.num_nodes()]; 3];
        good[0][a.index()] = Logic3::One;
        let forbidden = ImplicationLayer::build(&adj, LearningMode::ForbiddenValue, &good);
        assert_eq!(forbidden.hint(1, bb), Some(true));
        assert_eq!(forbidden.hint(1, c), None, "forbidden mode stays direct");
        let known = ImplicationLayer::build(&adj, LearningMode::KnownValue, &good);
        assert_eq!(known.hint(1, bb), Some(true));
        assert_eq!(
            known.hint(1, c),
            Some(true),
            "known mode chases the derived cross hint's same-frame edge"
        );
    }

    #[test]
    fn learned_data_sorts_and_dedups_cross_relations() {
        let (n, a, c) = shift3();
        let r1 = cross_rel(a, true, c, true, 2);
        let r2 = cross_rel(c, false, a, false, -2);
        let learned = LearnedData::from_parts(ImplicationDb::new(), Vec::new())
            .with_cross_frame(vec![r1, r2, r1, r1]);
        assert_eq!(learned.cross_frame(), &[r1, r2], "sorted, duplicates gone");
        assert!(!learned.is_empty(), "cross relations alone count as data");
        let _ = n;
    }

    #[test]
    fn incremental_conflict_clears_on_pop() {
        let n = exclusive_pair();
        let learned = learned_for(&n);
        let adj = adjacency_for(&n, &learned);
        let f1 = n.require("f1").unwrap();
        let f2 = n.require("f2").unwrap();
        let x_frame = vec![Logic3::X; n.num_nodes()];
        let mut bad = x_frame.clone();
        bad[f1.index()] = Logic3::One;
        bad[f2.index()] = Logic3::One;

        let mut inc = IncrementalLayer::new(&adj, LearningMode::KnownValue, 1, n.num_nodes());
        assert!(!inc.update(0, std::slice::from_ref(&x_frame), 0, None));
        assert!(inc.update(1, std::slice::from_ref(&bad), 0, None));
        assert!(inc.conflict());
        inc.pop_to(1);
        assert!(!inc.conflict(), "conflict belongs to the popped level");
    }
}
