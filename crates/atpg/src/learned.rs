//! Packaging of sequential learning results for ATPG consumption, and the
//! per-frame implication layer (forbidden / known values).

use crate::config::LearningMode;
use sla_core::{ImplicationDb, LearnResult, Literal};
use sla_netlist::{Netlist, NodeId};
use sla_sim::Logic3;
use std::collections::HashMap;

/// Learned data in the form the test generator consumes: the implication
/// database plus tied-gate constants.
#[derive(Debug, Clone, Default)]
pub struct LearnedData {
    /// Same-frame implications (with contrapositive closure).
    pub implications: ImplicationDb,
    /// Tied gates as constants.
    pub tied: Vec<(NodeId, bool)>,
}

impl LearnedData {
    /// Creates an empty set of learned data (equivalent to no learning).
    pub fn new() -> Self {
        LearnedData::default()
    }

    /// Extracts the ATPG-relevant part of a learning result.
    pub fn from_learn_result(result: &LearnResult) -> Self {
        LearnedData {
            implications: result.implications.clone(),
            tied: result.tied_constants(),
        }
    }

    /// Returns the tied value of `node` if the node is tied.
    pub fn tied_value(&self, node: NodeId) -> Option<bool> {
        self.tied.iter().find(|&&(n, _)| n == node).map(|&(_, v)| v)
    }

    /// Returns `true` when there is nothing to use.
    pub fn is_empty(&self) -> bool {
        self.implications.is_empty() && self.tied.is_empty()
    }
}

impl From<&LearnResult> for LearnedData {
    fn from(result: &LearnResult) -> Self {
        LearnedData::from_learn_result(result)
    }
}

/// The per-frame annotation layer derived from learned implications under the
/// current (good-machine) assignments of one search point.
///
/// * In *forbidden-value* mode, `hint(node) = v` means "the complement of `v`
///   is forbidden here": taking `¬v` is a conflict, and a backtrace that needs
///   a value on this node should pick `v`.
/// * In *known-value* mode, the hints are required values propagated with
///   transitive closure.
///
/// In both modes a binary simulated value that contradicts a hint is a
/// conflict that triggers an immediate backtrack.
#[derive(Debug, Clone, Default)]
pub struct ImplicationLayer {
    /// `(frame, node) -> hinted value`.
    hints: HashMap<(usize, u32), bool>,
    /// Set when a contradiction was found while building the layer.
    pub conflict: bool,
}

impl ImplicationLayer {
    /// Builds the layer for a whole iterative array from the good-machine
    /// values, under the given learning mode.
    pub fn build(
        netlist: &Netlist,
        learned: &LearnedData,
        mode: LearningMode,
        good: &[Vec<Logic3>],
    ) -> Self {
        let mut layer = ImplicationLayer::default();
        if !mode.uses_learning() || learned.implications.is_empty() {
            return layer;
        }
        let _ = netlist;
        for (frame, values) in good.iter().enumerate() {
            // Seed: every binary simulated value fires its implications.
            let mut queue: Vec<Literal> = Vec::new();
            for (idx, v) in values.iter().enumerate() {
                if let Some(b) = v.to_bool() {
                    queue.push(Literal::new(NodeId(idx as u32), b));
                }
            }
            let mut head = 0;
            while head < queue.len() {
                let lit = queue[head];
                head += 1;
                for consequent in learned.implications.consequents(lit) {
                    let key = (frame, consequent.node.0);
                    let sim_value = values[consequent.node.index()];
                    if let Some(b) = sim_value.to_bool() {
                        if b != consequent.value {
                            layer.conflict = true;
                        }
                        continue;
                    }
                    match layer.hints.get(&key) {
                        Some(&existing) if existing != consequent.value => {
                            layer.conflict = true;
                        }
                        Some(_) => {}
                        None => {
                            layer.hints.insert(key, consequent.value);
                            // Known-value mode chases implications transitively;
                            // forbidden-value mode stops at direct consequents.
                            if mode == LearningMode::KnownValue {
                                queue.push(consequent);
                            }
                        }
                    }
                }
            }
            if layer.conflict {
                return layer;
            }
        }
        layer
    }

    /// The hinted value of `node` in `frame`, if any.
    pub fn hint(&self, frame: usize, node: NodeId) -> Option<bool> {
        self.hints.get(&(frame, node.0)).copied()
    }

    /// Number of hinted `(frame, node)` pairs.
    pub fn len(&self) -> usize {
        self.hints.len()
    }

    /// Returns `true` when the layer holds no hints.
    pub fn is_empty(&self) -> bool {
        self.hints.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sla_core::{Implication, LearnConfig, SequentialLearner};
    use sla_netlist::{GateType, NetlistBuilder};

    fn exclusive_pair() -> Netlist {
        let mut b = NetlistBuilder::new("pair");
        b.input("a");
        b.gate("na", GateType::Not, &["a"]).unwrap();
        b.gate("nf1", GateType::Not, &["f1"]).unwrap();
        b.gate("nf2", GateType::Not, &["f2"]).unwrap();
        b.gate("d1", GateType::And, &["a", "nf2"]).unwrap();
        b.gate("d2", GateType::And, &["na", "nf1"]).unwrap();
        b.dff("f1", "d1").unwrap();
        b.dff("f2", "d2").unwrap();
        b.output("f1").unwrap();
        b.output("f2").unwrap();
        b.build().unwrap()
    }

    fn learned_for(n: &Netlist) -> LearnedData {
        let result = SequentialLearner::new(n, LearnConfig::default())
            .learn()
            .unwrap();
        LearnedData::from(&result)
    }

    #[test]
    fn from_learn_result_keeps_relations_and_ties() {
        let n = exclusive_pair();
        let learned = learned_for(&n);
        assert!(!learned.is_empty());
        let f1 = n.require("f1").unwrap();
        let f2 = n.require("f2").unwrap();
        assert!(learned.implications.implies(f1, true, f2, false));
        assert_eq!(learned.tied_value(f1), None);
    }

    #[test]
    fn layer_hints_follow_simulated_values() {
        let n = exclusive_pair();
        let learned = learned_for(&n);
        let f1 = n.require("f1").unwrap();
        let f2 = n.require("f2").unwrap();
        let mut frame = vec![Logic3::X; n.num_nodes()];
        frame[f1.index()] = Logic3::One;
        let good = vec![frame];
        let layer = ImplicationLayer::build(&n, &learned, LearningMode::ForbiddenValue, &good);
        assert!(!layer.conflict);
        assert_eq!(layer.hint(0, f2), Some(false));
        assert_eq!(layer.hint(0, f1), None);
        assert!(!layer.is_empty());
    }

    #[test]
    fn contradicting_simulated_value_raises_conflict() {
        let n = exclusive_pair();
        let learned = learned_for(&n);
        let f1 = n.require("f1").unwrap();
        let f2 = n.require("f2").unwrap();
        let mut frame = vec![Logic3::X; n.num_nodes()];
        frame[f1.index()] = Logic3::One;
        frame[f2.index()] = Logic3::One;
        let layer = ImplicationLayer::build(&n, &learned, LearningMode::ForbiddenValue, &[frame]);
        assert!(
            layer.conflict,
            "f1=1 and f2=1 violates the learned relation"
        );
    }

    #[test]
    fn none_mode_produces_no_hints() {
        let n = exclusive_pair();
        let learned = learned_for(&n);
        let f1 = n.require("f1").unwrap();
        let mut frame = vec![Logic3::X; n.num_nodes()];
        frame[f1.index()] = Logic3::One;
        let layer = ImplicationLayer::build(&n, &learned, LearningMode::None, &[frame]);
        assert!(layer.is_empty());
        assert!(!layer.conflict);
    }

    #[test]
    fn known_value_mode_chases_chains() {
        // Handcrafted database: a=1 -> b=1 -> c=1 on three flip-flops.
        let mut b = NetlistBuilder::new("chain");
        b.input("i");
        b.dff("a", "i").unwrap();
        b.dff("bb", "a").unwrap();
        b.dff("c", "bb").unwrap();
        b.output("c").unwrap();
        let n = b.build().unwrap();
        let a = n.require("a").unwrap();
        let bbn = n.require("bb").unwrap();
        let c = n.require("c").unwrap();
        let mut db = ImplicationDb::new();
        db.add(
            Implication::new(Literal::new(a, true), Literal::new(bbn, true)),
            true,
        );
        db.add(
            Implication::new(Literal::new(bbn, true), Literal::new(c, true)),
            true,
        );
        let learned = LearnedData {
            implications: db,
            tied: Vec::new(),
        };
        let mut frame = vec![Logic3::X; n.num_nodes()];
        frame[a.index()] = Logic3::One;
        let forbidden =
            ImplicationLayer::build(&n, &learned, LearningMode::ForbiddenValue, &[frame.clone()]);
        let known = ImplicationLayer::build(&n, &learned, LearningMode::KnownValue, &[frame]);
        assert_eq!(forbidden.hint(0, c), None, "forbidden mode stays direct");
        assert_eq!(known.hint(0, c), Some(true), "known mode chases the chain");
    }
}
