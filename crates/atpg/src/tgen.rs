//! The per-fault sequential test generator: PODEM-style branch-and-bound over
//! primary-input assignments of an iterative logic array with unknown initial
//! state.
//!
//! The generator keeps two three-valued machines per search point — the good
//! machine and the faulty machine — instead of an explicit five-valued
//! algebra; a fault effect (`D`/`D̄`) is simply a node where both machines hold
//! opposite binary values. Decisions are primary-input assignments in specific
//! frames; objectives are found by fault excitation / D-frontier analysis and
//! mapped to decisions by backtracing through gates and backwards through
//! flip-flops into earlier frames. Learned implications participate through
//! the incrementally maintained [`IncrementalLayer`]: conflicts trigger
//! immediate backtracks and hints bias the backtrace (paper §4).

use crate::config::{AtpgConfig, LearningMode};
use crate::learned::{IncrementalLayer, LearnedData, LiteralAdjacency};
use crate::machines::{MachineMark, SearchMachines};
use crate::Result;
use sla_netlist::levelize::{levelize, Levelization};
use sla_netlist::{FastHashMap, GateType, Netlist, NodeId, NodeKind};
use sla_sim::{eval_gate3, EventSim, Fault, FaultSite, Logic3, TestSequence};

/// Outcome of test generation for one fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenOutcome {
    /// A test sequence was found (already in primary-input order).
    Detected(TestSequence),
    /// The search space was exhausted at the maximum window without reaching
    /// the backtrack limit: the fault is reported untestable (within the
    /// window, see DESIGN.md for the approximation). Under a learning mode
    /// the exhausted space excludes branches pruned by learned implications,
    /// so "untestable" additionally assumes the circuit operates from a
    /// state consistent with its learned invariants (the paper's §4
    /// semantics — a test relying on a power-up state the invariants exclude
    /// is not searched for).
    Untestable,
    /// The backtrack or decision limit was reached.
    Aborted,
}

/// Result of one [`TestGenerator::generate`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenResult {
    /// What happened.
    pub outcome: GenOutcome,
    /// Backtracks consumed.
    pub backtracks: usize,
    /// Decisions made.
    pub decisions: usize,
}

#[derive(Debug, Clone, Copy)]
struct Decision {
    frame: usize,
    pi: NodeId,
    value: bool,
    flipped: bool,
    /// Machine trail marks taken just before this decision was applied, so a
    /// backtrack restores the exact prior values.
    mark: MachineMark,
}

/// Sequential PODEM test generator.
#[derive(Debug)]
pub struct TestGenerator<'a> {
    netlist: &'a Netlist,
    levels: Levelization,
    config: AtpgConfig,
    /// CSR adjacency over the learned implications, built once per generator.
    adjacency: LiteralAdjacency,
}

impl<'a> TestGenerator<'a> {
    /// Builds a generator. The learned data is consulted only at construction
    /// time (it is compiled into the indexed implication adjacency).
    ///
    /// # Errors
    ///
    /// Returns an error when the combinational logic cannot be levelized.
    pub fn new(netlist: &'a Netlist, config: AtpgConfig, learned: &LearnedData) -> Result<Self> {
        Ok(Self::with_levels(
            netlist,
            levelize(netlist)?,
            config,
            learned,
        ))
    }

    /// Builds a generator from an existing levelization, infallibly.
    ///
    /// The ATPG engine validates a levelization once at construction and hands
    /// clones to every per-worker generator, so no fallible work remains here.
    pub fn with_levels(
        netlist: &'a Netlist,
        levels: Levelization,
        config: AtpgConfig,
        learned: &LearnedData,
    ) -> Self {
        let adjacency = if config.learning.uses_learning() {
            LiteralAdjacency::build_with_cross(
                learned.implications(),
                learned.cross_frame(),
                netlist.num_nodes(),
            )
        } else {
            LiteralAdjacency::default()
        };
        TestGenerator {
            netlist,
            levels,
            config,
            adjacency,
        }
    }

    /// Attempts to generate a test for `fault`.
    pub fn generate(&self, fault: &Fault) -> GenResult {
        let mut backtracks_left = self.config.backtrack_limit;
        let mut total_backtracks = 0usize;
        let mut total_decisions = 0usize;

        let mut window = if self.config.grow_window {
            1
        } else {
            self.config.max_window
        };
        // The pair of three-valued machines, maintained event-driven (see
        // `search_window`), lives across window growth: when a window is
        // exhausted, the machines are rewound to their base state and widened
        // in place — the base values of the already-filled prefix frames are
        // unchanged by widening, so only the appended frames are evaluated.
        let mut machines = SearchMachines::new(self.netlist, &self.levels, window, *fault);
        loop {
            let (outcome, used_bt, used_dec) = self.search_window(
                &mut machines,
                fault,
                backtracks_left,
                self.config.max_decisions,
            );
            total_backtracks += used_bt;
            total_decisions += used_dec;
            backtracks_left = backtracks_left.saturating_sub(used_bt);
            match outcome {
                WindowOutcome::Detected(seq) => {
                    return GenResult {
                        outcome: GenOutcome::Detected(seq),
                        backtracks: total_backtracks,
                        decisions: total_decisions,
                    }
                }
                WindowOutcome::Aborted => {
                    return GenResult {
                        outcome: GenOutcome::Aborted,
                        backtracks: total_backtracks,
                        decisions: total_decisions,
                    }
                }
                WindowOutcome::Exhausted => {
                    if window >= self.config.max_window {
                        return GenResult {
                            outcome: GenOutcome::Untestable,
                            backtracks: total_backtracks,
                            decisions: total_decisions,
                        };
                    }
                    window = (window * 2).min(self.config.max_window);
                    machines.rewind_to_base();
                    machines.grow(&self.levels, window);
                }
            }
        }
    }

    fn search_window(
        &self,
        machines: &mut SearchMachines<'_>,
        fault: &Fault,
        backtrack_budget: usize,
        decision_budget: usize,
    ) -> (WindowOutcome, usize, usize) {
        let window = machines.window();
        let mut decisions: Vec<Decision> = Vec::new();
        let mut backtracks = 0usize;
        let mut decision_count = 0usize;

        // Learned-implication layer, fed from the same change events: level 0
        // is the undecided search point, every decision opens one level, and
        // backtracking unwinds to the unchanged prefix before the flipped
        // decision re-opens its level. Values only *become* binary along a
        // decision path (three-valued simulation is monotone), so each update
        // processes exactly the newly binary values of the good machine.
        let mut layer = IncrementalLayer::new(
            &self.adjacency,
            self.config.learning,
            window,
            self.netlist.num_nodes(),
        );
        let mut conflict =
            layer.update_events(0, machines.good().values(), machines.good().changed());

        loop {
            if !conflict && machines.detected() {
                let seq = self.to_sequence(machines.good());
                return (WindowOutcome::Detected(seq), backtracks, decision_count);
            }

            let next = if conflict {
                None
            } else {
                self.objective(fault, machines)
                    .and_then(|(frame, node, value)| {
                        self.backtrace(frame, node, value, machines.good(), &layer)
                    })
            };

            match next {
                Some((frame, pi, value)) => {
                    decision_count += 1;
                    if decision_count > decision_budget {
                        return (WindowOutcome::Aborted, backtracks, decision_count);
                    }
                    let mark = machines.mark();
                    machines.assign(frame, pi, value);
                    decisions.push(Decision {
                        frame,
                        pi,
                        value,
                        flipped: false,
                        mark,
                    });
                    conflict = layer.update_events(
                        decisions.len(),
                        machines.good().values(),
                        machines.good().changed(),
                    );
                }
                None => {
                    // Conflict or no objective/backtrace possible: backtrack.
                    loop {
                        match decisions.pop() {
                            Some(mut d) if !d.flipped => {
                                backtracks += 1;
                                if backtracks > backtrack_budget {
                                    return (WindowOutcome::Aborted, backtracks, decision_count);
                                }
                                // Restore the machines to just before this
                                // decision; flipped decisions popped above it
                                // sit later on the same trails and unwind too.
                                machines.undo_to(d.mark);
                                d.value = !d.value;
                                d.flipped = true;
                                machines.assign(d.frame, d.pi, d.value);
                                decisions.push(d);
                                // Keep the base level plus the unchanged
                                // decisions before the flipped one; the flip
                                // re-opens its level.
                                layer.pop_to(decisions.len());
                                conflict = layer.update_events(
                                    decisions.len(),
                                    machines.good().values(),
                                    machines.good().changed(),
                                );
                                break;
                            }
                            Some(_) => continue,
                            None => {
                                return (WindowOutcome::Exhausted, backtracks, decision_count);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Simulates good and faulty machines over `window` frames under the
    /// given primary-input assignments (everything else `X`, initial state
    /// `X`), from scratch.
    ///
    /// This is the retained reference implementation of the event-driven
    /// [`SearchMachines`] state the search loop actually maintains; the
    /// property test `tests/incremental_sim_prop.rs` asserts the two are
    /// bit-exact under arbitrary decide/flip/backtrack scripts.
    pub fn simulate_reference(
        &self,
        fault: &Fault,
        window: usize,
        assigned: &FastHashMap<(usize, u32), bool>,
    ) -> (Vec<Vec<Logic3>>, Vec<Vec<Logic3>>) {
        let n = self.netlist.num_nodes();
        let mut good = Vec::with_capacity(window);
        let mut faulty = Vec::with_capacity(window);
        let mut state_g = vec![Logic3::X; n];
        let mut state_f = vec![Logic3::X; n];

        for frame in 0..window {
            let mut vg = vec![Logic3::X; n];
            let mut vf = vec![Logic3::X; n];
            for &pi in self.netlist.inputs() {
                if let Some(&b) = assigned.get(&(frame, pi.0)) {
                    vg[pi.index()] = Logic3::from_bool(b);
                    vf[pi.index()] = Logic3::from_bool(b);
                }
            }
            for s in self.netlist.sequential_elements() {
                vg[s.index()] = state_g[s.index()];
                vf[s.index()] = state_f[s.index()];
            }
            // Output faults on frame inputs.
            if let FaultSite::Output(node) = fault.site {
                let node_ref = self.netlist.node(node);
                if node_ref.is_input() || node_ref.is_sequential() {
                    vf[node.index()] = Logic3::from_bool(fault.stuck_at);
                }
            }
            // Combinational evaluation.
            for &id in self.levels.order() {
                let node = self.netlist.node(id);
                let NodeKind::Gate(gate) = node.kind else {
                    continue;
                };
                vg[id.index()] = eval_gate3(gate, node.fanins.iter().map(|f| vg[f.index()]));
                let faulty_value = eval_gate3(
                    gate,
                    node.fanins.iter().enumerate().map(|(pin, &d)| {
                        if fault.site == (FaultSite::Input { gate: id, pin }) {
                            Logic3::from_bool(fault.stuck_at)
                        } else {
                            vf[d.index()]
                        }
                    }),
                );
                vf[id.index()] = if fault.site == FaultSite::Output(id) {
                    Logic3::from_bool(fault.stuck_at)
                } else {
                    faulty_value
                };
            }
            // Next state.
            for s in self.netlist.sequential_elements() {
                let data = self.netlist.fanins(s)[0];
                state_g[s.index()] = vg[data.index()];
                state_f[s.index()] = if fault.site == FaultSite::Output(s) {
                    Logic3::from_bool(fault.stuck_at)
                } else {
                    vf[data.index()]
                };
            }
            good.push(vg);
            faulty.push(vf);
        }
        (good, faulty)
    }

    /// Picks the next objective: excite the fault if it is not excited yet,
    /// otherwise advance a D-frontier gate. The D-frontier comes from the
    /// incrementally maintained machines and is restricted to the fault cone.
    fn objective(
        &self,
        fault: &Fault,
        machines: &SearchMachines<'_>,
    ) -> Option<(usize, NodeId, bool)> {
        let window = machines.window();
        let good = machines.good();
        let excitation_node = match fault.site {
            FaultSite::Output(n) => n,
            FaultSite::Input { gate, pin } => self.netlist.fanins(gate)[pin],
        };
        let want = !fault.stuck_at;
        let excited =
            (0..window).any(|t| good.value(t, excitation_node) == Logic3::from_bool(want));
        if !excited {
            // Prefer the latest frame with an unknown value on the site: later
            // frames leave room to set up the required state in earlier frames.
            for t in (0..window).rev() {
                if good.value(t, excitation_node) == Logic3::X {
                    return Some((t, excitation_node, want));
                }
            }
            return None; // cannot excite under the current assignments
        }

        // D-frontier: a gate with a fault effect on an input whose output does
        // not yet show the effect; set one unknown input to the non-controlling
        // value to push the effect through.
        for (t, id) in machines.d_frontier_iter() {
            let node = self.netlist.node(id);
            let NodeKind::Gate(gate) = node.kind else {
                continue;
            };
            let noncontrolling = gate.controlling_value().map(|c| !c).unwrap_or(false);
            for &f in node.fanins {
                if good.value(t, f) == Logic3::X {
                    return Some((t, f, noncontrolling));
                }
            }
        }
        None
    }

    /// Maps an objective to a primary-input decision by walking backwards
    /// through unassigned gates and, across flip-flops, into earlier frames.
    /// The walk is a bounded depth-first search: when one unknown fanin leads
    /// to a dead end (for example the uncontrollable frame-0 state), the other
    /// candidates are tried before giving up.
    fn backtrace(
        &self,
        frame: usize,
        node: NodeId,
        value: bool,
        good: &EventSim<'_>,
        layer: &IncrementalLayer<'_>,
    ) -> Option<(usize, NodeId, bool)> {
        let mut budget = 4 * self.netlist.num_nodes() * (frame + 2);
        self.backtrace_dfs(frame, node, value, good, layer, &mut budget)
    }

    fn backtrace_dfs(
        &self,
        frame: usize,
        node: NodeId,
        value: bool,
        good: &EventSim<'_>,
        layer: &IncrementalLayer<'_>,
        budget: &mut usize,
    ) -> Option<(usize, NodeId, bool)> {
        if *budget == 0 {
            return None;
        }
        *budget -= 1;
        // A learned hint contradicting the needed value makes this branch
        // futile: the implication says no machine state consistent with the
        // current assignments lets `node` take `value`, so justifying it can
        // only end in a conflict (or dead Xs) — prune the subtree before
        // spending decisions on it. This is the paper's §4 forbidden-value
        // pruning; without it, circuit-enforced invariants never contradict
        // the simulation and learning cannot cut a single branch.
        if layer.hint(frame, node).is_some_and(|h| h != value) {
            return None;
        }
        match &self.netlist.node(node).kind {
            NodeKind::Input => {
                if good.value(frame, node) == Logic3::X {
                    Some((frame, node, value))
                } else {
                    None
                }
            }
            NodeKind::Seq(_) => {
                if frame == 0 {
                    None // the power-up state is not controllable
                } else {
                    self.backtrace_dfs(
                        frame - 1,
                        self.netlist.fanins(node)[0],
                        value,
                        good,
                        layer,
                        budget,
                    )
                }
            }
            NodeKind::Gate(gate) => {
                let fanins = self.netlist.fanins(node);
                if fanins.is_empty() {
                    return None; // constants cannot be justified
                }
                match gate {
                    GateType::Buf => {
                        self.backtrace_dfs(frame, fanins[0], value, good, layer, budget)
                    }
                    GateType::Not => {
                        self.backtrace_dfs(frame, fanins[0], !value, good, layer, budget)
                    }
                    GateType::And | GateType::Nand | GateType::Or | GateType::Nor => {
                        let under = value ^ gate.inverts();
                        let controlling = gate
                            .controlling_value()
                            .expect("and/or family has a controlling value");
                        let need_single =
                            under == gate.controlled_response().unwrap() ^ gate.inverts();
                        let target = if need_single {
                            controlling
                        } else {
                            !controlling
                        };
                        for pick in self.ranked_inputs(fanins, frame, target, good, layer) {
                            if let Some(found) =
                                self.backtrace_dfs(frame, pick, target, good, layer, budget)
                            {
                                return Some(found);
                            }
                        }
                        None
                    }
                    GateType::Xor | GateType::Xnor => {
                        let mut parity = gate.inverts();
                        let mut unknown = Vec::new();
                        for &f in fanins {
                            match good.value(frame, f).to_bool() {
                                Some(b) => parity ^= b,
                                None => unknown.push(f),
                            }
                        }
                        for pick in unknown {
                            if let Some(found) =
                                self.backtrace_dfs(frame, pick, value ^ parity, good, layer, budget)
                            {
                                return Some(found);
                            }
                        }
                        None
                    }
                    GateType::Const0 | GateType::Const1 => None,
                }
            }
        }
    }

    /// Ranks the unknown fanins of a gate for backtracing: learned hints that
    /// already agree with the needed value first, then primary inputs and
    /// gates, then sequential elements (which need earlier frames to control).
    fn ranked_inputs(
        &self,
        fanins: &[NodeId],
        frame: usize,
        target: bool,
        good: &EventSim<'_>,
        layer: &IncrementalLayer<'_>,
    ) -> Vec<NodeId> {
        let mut unknown: Vec<NodeId> = fanins
            .iter()
            .copied()
            .filter(|&f| good.value(frame, f) == Logic3::X)
            .collect();
        let score = |f: &NodeId| -> i32 {
            let mut s = 0;
            if self.config.learning != LearningMode::None && layer.hint(frame, *f) == Some(target) {
                s -= 4;
            }
            if self.netlist.node(*f).is_sequential() {
                s += 2;
            }
            s
        };
        unknown.sort_by_key(score);
        unknown
    }

    fn to_sequence(&self, good: &EventSim<'_>) -> TestSequence {
        let vectors = (0..good.window())
            .map(|frame| {
                self.netlist
                    .inputs()
                    .iter()
                    .map(|&pi| match good.value(frame, pi) {
                        // Unassigned inputs are filled with 0: a three-valued
                        // detection is preserved by any refinement of the Xs,
                        // and fully specified vectors drop more faults.
                        Logic3::X => Logic3::Zero,
                        v => v,
                    })
                    .collect()
            })
            .collect();
        TestSequence::new(vectors)
    }
}

#[derive(Debug)]
enum WindowOutcome {
    Detected(TestSequence),
    Exhausted,
    Aborted,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sla_netlist::NetlistBuilder;
    use sla_sim::FaultSimulator;

    fn generator(n: &Netlist, config: AtpgConfig) -> TestGenerator<'_> {
        TestGenerator::new(n, config, &LearnedData::new()).unwrap()
    }

    /// Combinational circuit: z = AND(a, b).
    fn and_circuit() -> Netlist {
        let mut b = NetlistBuilder::new("and");
        b.input("a");
        b.input("b");
        b.gate("z", GateType::And, &["a", "b"]).unwrap();
        b.output("z").unwrap();
        b.build().unwrap()
    }

    /// Sequential circuit: the fault effect must travel through a flip-flop.
    fn pipelined() -> Netlist {
        let mut b = NetlistBuilder::new("pipe");
        b.input("a");
        b.input("b");
        b.gate("g", GateType::Nand, &["a", "b"]).unwrap();
        b.dff("q", "g").unwrap();
        b.gate("o", GateType::Not, &["q"]).unwrap();
        b.output("o").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn detects_simple_combinational_fault() {
        let n = and_circuit();
        let gen = generator(&n, AtpgConfig::default());
        let z = n.require("z").unwrap();
        let result = gen.generate(&Fault::output(z, false));
        let GenOutcome::Detected(seq) = result.outcome else {
            panic!("expected a test, got {:?}", result.outcome);
        };
        // Validate with the reference fault simulator.
        let sim = FaultSimulator::new(&n).unwrap();
        assert!(sim.detects(&Fault::output(z, false), &seq));
    }

    #[test]
    fn propagates_through_flip_flops_by_growing_the_window() {
        let n = pipelined();
        let gen = generator(&n, AtpgConfig::default());
        let g = n.require("g").unwrap();
        let fault = Fault::output(g, true);
        let result = gen.generate(&fault);
        let GenOutcome::Detected(seq) = result.outcome else {
            panic!("expected a test, got {:?}", result.outcome);
        };
        assert!(seq.len() >= 2, "needs at least two frames");
        let sim = FaultSimulator::new(&n).unwrap();
        assert!(sim.detects(&fault, &seq));
    }

    #[test]
    fn redundant_fault_is_reported_untestable() {
        // z = OR(a, NOT a) is constant 1: z stuck-at-1 is undetectable.
        let mut b = NetlistBuilder::new("red");
        b.input("a");
        b.gate("na", GateType::Not, &["a"]).unwrap();
        b.gate("z", GateType::Or, &["a", "na"]).unwrap();
        b.output("z").unwrap();
        let n = b.build().unwrap();
        // Proving redundancy requires exhausting the search space, which needs
        // the larger backtrack budget (the paper's second experiment stage).
        let gen = generator(&n, AtpgConfig::builder().backtrack_limit(1000).build());
        let z = n.require("z").unwrap();
        let result = gen.generate(&Fault::output(z, true));
        assert_eq!(result.outcome, GenOutcome::Untestable);
    }

    #[test]
    fn zero_backtrack_budget_aborts_hard_faults() {
        let n = pipelined();
        let config = AtpgConfig::builder()
            .backtrack_limit(0)
            .max_decisions(3)
            .build();
        let gen = generator(&n, config);
        let g = n.require("g").unwrap();
        // With essentially no budget the generator must not claim untestable
        // for a testable fault; it either finds the test or aborts.
        let result = gen.generate(&Fault::output(g, true));
        assert_ne!(result.outcome, GenOutcome::Untestable);
    }

    #[test]
    fn input_pin_faults_are_handled() {
        let n = and_circuit();
        let gen = generator(&n, AtpgConfig::default());
        let z = n.require("z").unwrap();
        let fault = Fault::input(z, 0, true);
        let result = gen.generate(&fault);
        let GenOutcome::Detected(seq) = result.outcome else {
            panic!("expected a test, got {:?}", result.outcome);
        };
        let sim = FaultSimulator::new(&n).unwrap();
        assert!(sim.detects(&fault, &seq));
    }
}
