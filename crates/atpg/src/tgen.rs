//! The per-fault sequential test generator: PODEM-style branch-and-bound over
//! primary-input assignments of an iterative logic array with unknown initial
//! state.
//!
//! The generator keeps two three-valued machines per search point — the good
//! machine and the faulty machine — instead of an explicit five-valued
//! algebra; a fault effect (`D`/`D̄`) is simply a node where both machines hold
//! opposite binary values. Decisions are primary-input assignments in specific
//! frames; objectives are found by fault excitation / D-frontier analysis and
//! mapped to decisions by backtracing through gates and backwards through
//! flip-flops into earlier frames. Learned implications participate through
//! the incrementally maintained [`IncrementalLayer`]: conflicts trigger
//! immediate backtracks and hints bias the backtrace (paper §4).

use crate::config::{AtpgConfig, LearningMode};
use crate::learned::{IncrementalLayer, LearnedData, LiteralAdjacency};
use crate::Result;
use sla_netlist::levelize::{levelize, Levelization};
use sla_netlist::{GateType, Netlist, NodeId, NodeKind};
use sla_sim::{eval_gate3, Fault, FaultSite, Logic3, TestSequence};
use std::collections::HashMap;

/// Outcome of test generation for one fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenOutcome {
    /// A test sequence was found (already in primary-input order).
    Detected(TestSequence),
    /// The search space was exhausted at the maximum window without reaching
    /// the backtrack limit: the fault is reported untestable (within the
    /// window, see DESIGN.md for the approximation).
    Untestable,
    /// The backtrack or decision limit was reached.
    Aborted,
}

/// Result of one [`TestGenerator::generate`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenResult {
    /// What happened.
    pub outcome: GenOutcome,
    /// Backtracks consumed.
    pub backtracks: usize,
    /// Decisions made.
    pub decisions: usize,
}

#[derive(Debug, Clone, Copy)]
struct Decision {
    frame: usize,
    pi: NodeId,
    value: bool,
    flipped: bool,
}

/// Sequential PODEM test generator.
#[derive(Debug)]
pub struct TestGenerator<'a> {
    netlist: &'a Netlist,
    levels: Levelization,
    config: AtpgConfig,
    /// CSR adjacency over the learned implications, built once per generator.
    adjacency: LiteralAdjacency,
}

impl<'a> TestGenerator<'a> {
    /// Builds a generator. The learned data is consulted only at construction
    /// time (it is compiled into the indexed implication adjacency).
    ///
    /// # Errors
    ///
    /// Returns an error when the combinational logic cannot be levelized.
    pub fn new(netlist: &'a Netlist, config: AtpgConfig, learned: &LearnedData) -> Result<Self> {
        let adjacency = if config.learning.uses_learning() {
            LiteralAdjacency::build(learned.implications(), netlist.num_nodes())
        } else {
            LiteralAdjacency::default()
        };
        Ok(TestGenerator {
            netlist,
            levels: levelize(netlist)?,
            config,
            adjacency,
        })
    }

    /// Attempts to generate a test for `fault`.
    pub fn generate(&self, fault: &Fault) -> GenResult {
        let mut backtracks_left = self.config.backtrack_limit;
        let mut total_backtracks = 0usize;
        let mut total_decisions = 0usize;

        let mut window = if self.config.grow_window {
            1
        } else {
            self.config.max_window
        };
        loop {
            let (outcome, used_bt, used_dec) =
                self.search_window(fault, window, backtracks_left, self.config.max_decisions);
            total_backtracks += used_bt;
            total_decisions += used_dec;
            backtracks_left = backtracks_left.saturating_sub(used_bt);
            match outcome {
                WindowOutcome::Detected(seq) => {
                    return GenResult {
                        outcome: GenOutcome::Detected(seq),
                        backtracks: total_backtracks,
                        decisions: total_decisions,
                    }
                }
                WindowOutcome::Aborted => {
                    return GenResult {
                        outcome: GenOutcome::Aborted,
                        backtracks: total_backtracks,
                        decisions: total_decisions,
                    }
                }
                WindowOutcome::Exhausted => {
                    if window >= self.config.max_window {
                        return GenResult {
                            outcome: GenOutcome::Untestable,
                            backtracks: total_backtracks,
                            decisions: total_decisions,
                        };
                    }
                    window = (window * 2).min(self.config.max_window);
                }
            }
        }
    }

    fn search_window(
        &self,
        fault: &Fault,
        window: usize,
        backtrack_budget: usize,
        decision_budget: usize,
    ) -> (WindowOutcome, usize, usize) {
        let mut decisions: Vec<Decision> = Vec::new();
        let mut assigned: HashMap<(usize, u32), bool> = HashMap::new();
        let mut backtracks = 0usize;
        let mut decision_count = 0usize;

        // Learned-implication layer, maintained incrementally: level 0 is the
        // undecided search point, every decision opens one level, and
        // backtracking unwinds to the unchanged prefix before the flipped
        // decision re-opens its level. Values only *become* binary along a
        // decision path (three-valued simulation is monotone), so each update
        // processes the newly binary values alone.
        let mut layer = IncrementalLayer::new(
            &self.adjacency,
            self.config.learning,
            window,
            self.netlist.num_nodes(),
        );
        let mut pending_level = 0usize;
        let mut pending_frame = 0usize;
        // Good-machine values of the previous search point, as one flat
        // reusable buffer. On a plain decision step the previous point is the
        // parent level, so the layer can skip value-identical frames; after a
        // backtrack the previous point is unrelated and the snapshot is
        // invalidated.
        let n = self.netlist.num_nodes();
        let mut parent_buf: Vec<Logic3> = Vec::new();
        let mut parent_valid = false;

        loop {
            let (good, faulty) = self.simulate(fault, window, &assigned);

            // A contradiction with the learned implications is an early conflict.
            let parent = parent_valid.then_some(parent_buf.as_slice());
            let conflict = layer.update(pending_level, &good, pending_frame, parent);
            // Snapshot only when the layer can actually use it (mirrors the
            // inert condition of `IncrementalLayer::new`).
            if self.config.learning.uses_learning() && !self.adjacency.is_empty() {
                parent_buf.resize(window * n, Logic3::X);
                for (f, values) in good.iter().enumerate() {
                    parent_buf[f * n..(f + 1) * n].copy_from_slice(values);
                }
                parent_valid = true;
            }

            if !conflict && self.detected(&good, &faulty) {
                let seq = self.to_sequence(window, &assigned);
                return (WindowOutcome::Detected(seq), backtracks, decision_count);
            }

            let next = if conflict {
                None
            } else {
                self.objective(fault, window, &good, &faulty)
                    .and_then(|(frame, node, value)| {
                        self.backtrace(frame, node, value, &good, &layer)
                    })
            };

            match next {
                Some((frame, pi, value)) => {
                    decision_count += 1;
                    if decision_count > decision_budget {
                        return (WindowOutcome::Aborted, backtracks, decision_count);
                    }
                    assigned.insert((frame, pi.0), value);
                    decisions.push(Decision {
                        frame,
                        pi,
                        value,
                        flipped: false,
                    });
                    pending_level = decisions.len();
                    pending_frame = frame;
                }
                None => {
                    // Conflict or no objective/backtrace possible: backtrack.
                    loop {
                        match decisions.pop() {
                            Some(mut d) if !d.flipped => {
                                backtracks += 1;
                                if backtracks > backtrack_budget {
                                    return (WindowOutcome::Aborted, backtracks, decision_count);
                                }
                                d.value = !d.value;
                                d.flipped = true;
                                assigned.insert((d.frame, d.pi.0), d.value);
                                decisions.push(d);
                                // Keep the base level plus the unchanged
                                // decisions before the flipped one; the flip
                                // re-opens its level at the next update.
                                layer.pop_to(decisions.len());
                                pending_level = decisions.len();
                                pending_frame = d.frame;
                                parent_valid = false;
                                break;
                            }
                            Some(d) => {
                                assigned.remove(&(d.frame, d.pi.0));
                                continue;
                            }
                            None => {
                                return (WindowOutcome::Exhausted, backtracks, decision_count);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Simulates good and faulty machines over `window` frames under the
    /// current primary-input assignments (everything else `X`, initial state `X`).
    fn simulate(
        &self,
        fault: &Fault,
        window: usize,
        assigned: &HashMap<(usize, u32), bool>,
    ) -> (Vec<Vec<Logic3>>, Vec<Vec<Logic3>>) {
        let n = self.netlist.num_nodes();
        let mut good = Vec::with_capacity(window);
        let mut faulty = Vec::with_capacity(window);
        let mut state_g = vec![Logic3::X; n];
        let mut state_f = vec![Logic3::X; n];

        for frame in 0..window {
            let mut vg = vec![Logic3::X; n];
            let mut vf = vec![Logic3::X; n];
            for &pi in self.netlist.inputs() {
                if let Some(&b) = assigned.get(&(frame, pi.0)) {
                    vg[pi.index()] = Logic3::from_bool(b);
                    vf[pi.index()] = Logic3::from_bool(b);
                }
            }
            for s in self.netlist.sequential_elements() {
                vg[s.index()] = state_g[s.index()];
                vf[s.index()] = state_f[s.index()];
            }
            // Output faults on frame inputs.
            if let FaultSite::Output(node) = fault.site {
                let node_ref = self.netlist.node(node);
                if node_ref.is_input() || node_ref.is_sequential() {
                    vf[node.index()] = Logic3::from_bool(fault.stuck_at);
                }
            }
            // Combinational evaluation.
            for &id in self.levels.order() {
                let node = self.netlist.node(id);
                let NodeKind::Gate(gate) = node.kind else {
                    continue;
                };
                vg[id.index()] = eval_gate3(gate, node.fanins.iter().map(|f| vg[f.index()]));
                let faulty_value = eval_gate3(
                    gate,
                    node.fanins.iter().enumerate().map(|(pin, &d)| {
                        if fault.site == (FaultSite::Input { gate: id, pin }) {
                            Logic3::from_bool(fault.stuck_at)
                        } else {
                            vf[d.index()]
                        }
                    }),
                );
                vf[id.index()] = if fault.site == FaultSite::Output(id) {
                    Logic3::from_bool(fault.stuck_at)
                } else {
                    faulty_value
                };
            }
            // Next state.
            for s in self.netlist.sequential_elements() {
                let data = self.netlist.fanins(s)[0];
                state_g[s.index()] = vg[data.index()];
                state_f[s.index()] = if fault.site == FaultSite::Output(s) {
                    Logic3::from_bool(fault.stuck_at)
                } else {
                    vf[data.index()]
                };
            }
            good.push(vg);
            faulty.push(vf);
        }
        (good, faulty)
    }

    fn detected(&self, good: &[Vec<Logic3>], faulty: &[Vec<Logic3>]) -> bool {
        for (g, f) in good.iter().zip(faulty) {
            for &po in self.netlist.outputs() {
                if let (Some(a), Some(b)) = (g[po.index()].to_bool(), f[po.index()].to_bool()) {
                    if a != b {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Picks the next objective: excite the fault if it is not excited yet,
    /// otherwise advance a D-frontier gate.
    fn objective(
        &self,
        fault: &Fault,
        window: usize,
        good: &[Vec<Logic3>],
        faulty: &[Vec<Logic3>],
    ) -> Option<(usize, NodeId, bool)> {
        let excitation_node = match fault.site {
            FaultSite::Output(n) => n,
            FaultSite::Input { gate, pin } => self.netlist.fanins(gate)[pin],
        };
        let want = !fault.stuck_at;
        let excited =
            (0..window).any(|t| good[t][excitation_node.index()] == Logic3::from_bool(want));
        if !excited {
            // Prefer the latest frame with an unknown value on the site: later
            // frames leave room to set up the required state in earlier frames.
            for (t, frame) in good.iter().enumerate().rev() {
                if frame[excitation_node.index()] == Logic3::X {
                    return Some((t, excitation_node, want));
                }
            }
            return None; // cannot excite under the current assignments
        }

        // D-frontier: a gate with a fault effect on an input whose output does
        // not yet show the effect; set one unknown input to the non-controlling
        // value to push the effect through.
        for t in 0..window {
            for &id in self.levels.order() {
                let node = self.netlist.node(id);
                let NodeKind::Gate(gate) = node.kind else {
                    continue;
                };
                let out_d = is_d(good[t][id.index()], faulty[t][id.index()]);
                if out_d {
                    continue;
                }
                let has_d_input = node.fanins.iter().enumerate().any(|(pin, f)| {
                    if fault.site == (FaultSite::Input { gate: id, pin }) {
                        // The faulted pin carries a fault effect whenever its
                        // driver is at the opposite of the stuck value.
                        matches!(good[t][f.index()].to_bool(), Some(b) if b != fault.stuck_at)
                    } else {
                        is_d(good[t][f.index()], faulty[t][f.index()])
                    }
                });
                if !has_d_input {
                    continue;
                }
                let noncontrolling = gate.controlling_value().map(|c| !c).unwrap_or(false);
                for &f in &node.fanins {
                    if good[t][f.index()] == Logic3::X {
                        return Some((t, f, noncontrolling));
                    }
                }
            }
        }
        None
    }

    /// Maps an objective to a primary-input decision by walking backwards
    /// through unassigned gates and, across flip-flops, into earlier frames.
    /// The walk is a bounded depth-first search: when one unknown fanin leads
    /// to a dead end (for example the uncontrollable frame-0 state), the other
    /// candidates are tried before giving up.
    fn backtrace(
        &self,
        frame: usize,
        node: NodeId,
        value: bool,
        good: &[Vec<Logic3>],
        layer: &IncrementalLayer<'_>,
    ) -> Option<(usize, NodeId, bool)> {
        let mut budget = 4 * self.netlist.num_nodes() * (frame + 2);
        self.backtrace_dfs(frame, node, value, good, layer, &mut budget)
    }

    fn backtrace_dfs(
        &self,
        frame: usize,
        node: NodeId,
        value: bool,
        good: &[Vec<Logic3>],
        layer: &IncrementalLayer<'_>,
        budget: &mut usize,
    ) -> Option<(usize, NodeId, bool)> {
        if *budget == 0 {
            return None;
        }
        *budget -= 1;
        match &self.netlist.node(node).kind {
            NodeKind::Input => {
                if good[frame][node.index()] == Logic3::X {
                    Some((frame, node, value))
                } else {
                    None
                }
            }
            NodeKind::Seq(_) => {
                if frame == 0 {
                    None // the power-up state is not controllable
                } else {
                    self.backtrace_dfs(
                        frame - 1,
                        self.netlist.fanins(node)[0],
                        value,
                        good,
                        layer,
                        budget,
                    )
                }
            }
            NodeKind::Gate(gate) => {
                let fanins = self.netlist.fanins(node);
                if fanins.is_empty() {
                    return None; // constants cannot be justified
                }
                match gate {
                    GateType::Buf => {
                        self.backtrace_dfs(frame, fanins[0], value, good, layer, budget)
                    }
                    GateType::Not => {
                        self.backtrace_dfs(frame, fanins[0], !value, good, layer, budget)
                    }
                    GateType::And | GateType::Nand | GateType::Or | GateType::Nor => {
                        let under = value ^ gate.inverts();
                        let controlling = gate
                            .controlling_value()
                            .expect("and/or family has a controlling value");
                        let need_single =
                            under == gate.controlled_response().unwrap() ^ gate.inverts();
                        let target = if need_single {
                            controlling
                        } else {
                            !controlling
                        };
                        for pick in self.ranked_inputs(fanins, frame, target, good, layer) {
                            if let Some(found) =
                                self.backtrace_dfs(frame, pick, target, good, layer, budget)
                            {
                                return Some(found);
                            }
                        }
                        None
                    }
                    GateType::Xor | GateType::Xnor => {
                        let mut parity = gate.inverts();
                        let mut unknown = Vec::new();
                        for &f in fanins {
                            match good[frame][f.index()].to_bool() {
                                Some(b) => parity ^= b,
                                None => unknown.push(f),
                            }
                        }
                        for pick in unknown {
                            if let Some(found) =
                                self.backtrace_dfs(frame, pick, value ^ parity, good, layer, budget)
                            {
                                return Some(found);
                            }
                        }
                        None
                    }
                    GateType::Const0 | GateType::Const1 => None,
                }
            }
        }
    }

    /// Ranks the unknown fanins of a gate for backtracing: learned hints that
    /// already agree with the needed value first, then primary inputs and
    /// gates, then sequential elements (which need earlier frames to control).
    fn ranked_inputs(
        &self,
        fanins: &[NodeId],
        frame: usize,
        target: bool,
        good: &[Vec<Logic3>],
        layer: &IncrementalLayer<'_>,
    ) -> Vec<NodeId> {
        let mut unknown: Vec<NodeId> = fanins
            .iter()
            .copied()
            .filter(|f| good[frame][f.index()] == Logic3::X)
            .collect();
        let score = |f: &NodeId| -> i32 {
            let mut s = 0;
            if self.config.learning != LearningMode::None && layer.hint(frame, *f) == Some(target) {
                s -= 4;
            }
            if self.netlist.node(*f).is_sequential() {
                s += 2;
            }
            s
        };
        unknown.sort_by_key(score);
        unknown
    }

    fn to_sequence(&self, window: usize, assigned: &HashMap<(usize, u32), bool>) -> TestSequence {
        let vectors = (0..window)
            .map(|frame| {
                self.netlist
                    .inputs()
                    .iter()
                    .map(|pi| match assigned.get(&(frame, pi.0)) {
                        Some(&b) => Logic3::from_bool(b),
                        // Unassigned inputs are filled with 0: a three-valued
                        // detection is preserved by any refinement of the Xs,
                        // and fully specified vectors drop more faults.
                        None => Logic3::Zero,
                    })
                    .collect()
            })
            .collect();
        TestSequence::new(vectors)
    }
}

#[derive(Debug)]
enum WindowOutcome {
    Detected(TestSequence),
    Exhausted,
    Aborted,
}

fn is_d(good: Logic3, faulty: Logic3) -> bool {
    matches!((good.to_bool(), faulty.to_bool()), (Some(a), Some(b)) if a != b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sla_netlist::NetlistBuilder;
    use sla_sim::FaultSimulator;

    fn generator(n: &Netlist, config: AtpgConfig) -> TestGenerator<'_> {
        TestGenerator::new(n, config, &LearnedData::new()).unwrap()
    }

    /// Combinational circuit: z = AND(a, b).
    fn and_circuit() -> Netlist {
        let mut b = NetlistBuilder::new("and");
        b.input("a");
        b.input("b");
        b.gate("z", GateType::And, &["a", "b"]).unwrap();
        b.output("z").unwrap();
        b.build().unwrap()
    }

    /// Sequential circuit: the fault effect must travel through a flip-flop.
    fn pipelined() -> Netlist {
        let mut b = NetlistBuilder::new("pipe");
        b.input("a");
        b.input("b");
        b.gate("g", GateType::Nand, &["a", "b"]).unwrap();
        b.dff("q", "g").unwrap();
        b.gate("o", GateType::Not, &["q"]).unwrap();
        b.output("o").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn detects_simple_combinational_fault() {
        let n = and_circuit();
        let gen = generator(&n, AtpgConfig::default());
        let z = n.require("z").unwrap();
        let result = gen.generate(&Fault::output(z, false));
        let GenOutcome::Detected(seq) = result.outcome else {
            panic!("expected a test, got {:?}", result.outcome);
        };
        // Validate with the reference fault simulator.
        let sim = FaultSimulator::new(&n).unwrap();
        assert!(sim.detects(&Fault::output(z, false), &seq));
    }

    #[test]
    fn propagates_through_flip_flops_by_growing_the_window() {
        let n = pipelined();
        let gen = generator(&n, AtpgConfig::default());
        let g = n.require("g").unwrap();
        let fault = Fault::output(g, true);
        let result = gen.generate(&fault);
        let GenOutcome::Detected(seq) = result.outcome else {
            panic!("expected a test, got {:?}", result.outcome);
        };
        assert!(seq.len() >= 2, "needs at least two frames");
        let sim = FaultSimulator::new(&n).unwrap();
        assert!(sim.detects(&fault, &seq));
    }

    #[test]
    fn redundant_fault_is_reported_untestable() {
        // z = OR(a, NOT a) is constant 1: z stuck-at-1 is undetectable.
        let mut b = NetlistBuilder::new("red");
        b.input("a");
        b.gate("na", GateType::Not, &["a"]).unwrap();
        b.gate("z", GateType::Or, &["a", "na"]).unwrap();
        b.output("z").unwrap();
        let n = b.build().unwrap();
        // Proving redundancy requires exhausting the search space, which needs
        // the larger backtrack budget (the paper's second experiment stage).
        let gen = generator(&n, AtpgConfig::with_backtrack_limit(1000));
        let z = n.require("z").unwrap();
        let result = gen.generate(&Fault::output(z, true));
        assert_eq!(result.outcome, GenOutcome::Untestable);
    }

    #[test]
    fn zero_backtrack_budget_aborts_hard_faults() {
        let n = pipelined();
        let config = AtpgConfig {
            backtrack_limit: 0,
            max_decisions: 3,
            ..AtpgConfig::default()
        };
        let gen = generator(&n, config);
        let g = n.require("g").unwrap();
        // With essentially no budget the generator must not claim untestable
        // for a testable fault; it either finds the test or aborts.
        let result = gen.generate(&Fault::output(g, true));
        assert_ne!(result.outcome, GenOutcome::Untestable);
    }

    #[test]
    fn input_pin_faults_are_handled() {
        let n = and_circuit();
        let gen = generator(&n, AtpgConfig::default());
        let z = n.require("z").unwrap();
        let fault = Fault::input(z, 0, true);
        let result = gen.generate(&fault);
        let GenOutcome::Detected(seq) = result.outcome else {
            panic!("expected a test, got {:?}", result.outcome);
        };
        let sim = FaultSimulator::new(&n).unwrap();
        assert!(sim.detects(&fault, &seq));
    }
}
