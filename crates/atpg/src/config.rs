//! ATPG options.
//!
//! [`AtpgOptions`] is the session-facing configuration type: construct it
//! with [`AtpgOptions::builder`], tweak an existing value with
//! [`AtpgOptions::to_builder`]. The struct is `#[non_exhaustive]` so new
//! knobs can be added without breaking downstream construction sites; the
//! fields stay public for reading. `AtpgConfig` remains as an alias for the
//! pre-session name.

use sla_core::WorkBudget;

/// How learned relations are applied during test generation (paper §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LearningMode {
    /// Learned data is ignored entirely (the "No learning" columns of Table 5).
    #[default]
    None,
    /// Relations act as forbidden values: conflicts are detected when a signal
    /// takes a forbidden value, and backtrace prefers inputs whose complement
    /// is forbidden. No extra justification obligations are created.
    ForbiddenValue,
    /// Relations act as known values: consequents become required values with
    /// transitive closure, pruning decisions at the cost of possibly
    /// unnecessary requirements.
    KnownValue,
}

impl LearningMode {
    /// Returns `true` when learned relations are consulted at all.
    pub fn uses_learning(self) -> bool {
        self != LearningMode::None
    }
}

/// Tuning knobs of the sequential test generator.
///
/// Non-exhaustive: build one with [`AtpgOptions::builder`] (or start from an
/// existing value with [`AtpgOptions::to_builder`]); the fields are public
/// for reading only.
///
/// ```
/// use sla_atpg::{AtpgOptions, LearningMode};
///
/// let opts = AtpgOptions::builder()
///     .backtrack_limit(1000)
///     .learning(LearningMode::ForbiddenValue)
///     .build();
/// assert_eq!(opts.backtrack_limit, 1000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct AtpgOptions {
    /// Maximum number of backtracks per target fault (the paper uses 30 and
    /// 1000 in its two experiment stages).
    pub backtrack_limit: usize,
    /// Maximum number of time frames the iterative array may span.
    pub max_window: usize,
    /// Hard bound on decisions per fault, a safety net against degenerate
    /// search trees on large circuits.
    pub max_decisions: usize,
    /// How learned relations are used.
    pub learning: LearningMode,
    /// Grow the time-frame window geometrically (1, 2, 4, …, `max_window`)
    /// instead of starting at the maximum. Smaller windows are much cheaper
    /// and detect most faults.
    pub grow_window: bool,
    /// Fault-simulate each generated test against the remaining fault list and
    /// drop everything it detects.
    pub fault_dropping: bool,
    /// Deterministic work budget for the whole run: one unit per decision and
    /// one per backtrack, charged at the serial merge boundary so the stopping
    /// point is bit-identical for every `SLA_THREADS`. When the budget runs
    /// out, already-merged verdicts are kept and the unprocessed tail is
    /// classified `Aborted(Budget)`. Unlimited by default.
    pub budget: WorkBudget,
}

/// Pre-session name of [`AtpgOptions`], kept so existing code keeps reading.
pub type AtpgConfig = AtpgOptions;

impl Default for AtpgOptions {
    fn default() -> Self {
        AtpgOptions {
            backtrack_limit: 30,
            max_window: 8,
            max_decisions: 20_000,
            learning: LearningMode::None,
            grow_window: true,
            fault_dropping: true,
            budget: WorkBudget::unlimited(),
        }
    }
}

impl AtpgOptions {
    /// Starts a builder from the defaults.
    pub fn builder() -> AtpgOptionsBuilder {
        AtpgOptionsBuilder {
            opts: AtpgOptions::default(),
        }
    }

    /// Starts a builder from this value, for tweaking a knob or two.
    pub fn to_builder(self) -> AtpgOptionsBuilder {
        AtpgOptionsBuilder { opts: self }
    }

    /// Configuration with a given backtrack limit (other fields default).
    #[deprecated(note = "use AtpgOptions::builder().backtrack_limit(limit).build()")]
    pub fn with_backtrack_limit(limit: usize) -> Self {
        Self::builder().backtrack_limit(limit).build()
    }

    /// Returns a copy using the given learning mode.
    #[deprecated(note = "use to_builder().learning(mode).build()")]
    pub fn learning(self, mode: LearningMode) -> Self {
        self.to_builder().learning(mode).build()
    }

    /// Returns a copy using the given time-frame window bound.
    #[deprecated(note = "use to_builder().window(frames).build()")]
    pub fn window(self, frames: usize) -> Self {
        self.to_builder().window(frames).build()
    }

    /// Returns a copy using the given work budget.
    #[deprecated(note = "use to_builder().budget(budget).build()")]
    pub fn budget(self, budget: WorkBudget) -> Self {
        self.to_builder().budget(budget).build()
    }
}

/// Builder for [`AtpgOptions`]; see [`AtpgOptions::builder`].
#[derive(Debug, Clone, Copy)]
pub struct AtpgOptionsBuilder {
    opts: AtpgOptions,
}

impl AtpgOptionsBuilder {
    /// Maximum backtracks per target fault.
    pub fn backtrack_limit(mut self, limit: usize) -> Self {
        self.opts.backtrack_limit = limit;
        self
    }

    /// Maximum time-frame window (clamped to at least one frame).
    pub fn window(mut self, frames: usize) -> Self {
        self.opts.max_window = frames.max(1);
        self
    }

    /// Hard bound on decisions per fault.
    pub fn max_decisions(mut self, decisions: usize) -> Self {
        self.opts.max_decisions = decisions;
        self
    }

    /// How learned relations are used.
    pub fn learning(mut self, mode: LearningMode) -> Self {
        self.opts.learning = mode;
        self
    }

    /// Whether the time-frame window grows geometrically.
    pub fn grow_window(mut self, grow: bool) -> Self {
        self.opts.grow_window = grow;
        self
    }

    /// Whether generated tests fault-simulate and drop the rest of the list.
    pub fn fault_dropping(mut self, drop: bool) -> Self {
        self.opts.fault_dropping = drop;
        self
    }

    /// Deterministic work budget for the whole run.
    pub fn budget(mut self, budget: WorkBudget) -> Self {
        self.opts.budget = budget;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> AtpgOptions {
        self.opts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_first_stage() {
        let c = AtpgOptions::default();
        assert_eq!(c.backtrack_limit, 30);
        assert_eq!(c.learning, LearningMode::None);
        assert!(c.fault_dropping);
        assert!(c.grow_window);
        assert!(c.budget.is_unlimited());
    }

    #[test]
    fn builder_covers_every_knob() {
        let c = AtpgOptions::builder()
            .backtrack_limit(1000)
            .learning(LearningMode::ForbiddenValue)
            .window(0)
            .max_decisions(77)
            .grow_window(false)
            .fault_dropping(false)
            .budget(WorkBudget::units(100))
            .build();
        assert_eq!(c.backtrack_limit, 1000);
        assert_eq!(c.budget, WorkBudget::units(100));
        assert_eq!(c.learning, LearningMode::ForbiddenValue);
        assert_eq!(c.max_window, 1, "window clamps to at least one frame");
        assert_eq!(c.max_decisions, 77);
        assert!(!c.grow_window);
        assert!(!c.fault_dropping);
        assert!(LearningMode::ForbiddenValue.uses_learning());
        assert!(!LearningMode::None.uses_learning());
    }

    #[test]
    fn to_builder_round_trips() {
        let base = AtpgOptions::builder().backtrack_limit(5).build();
        assert_eq!(base.to_builder().build(), base);
        let tweaked = base.to_builder().window(2).build();
        assert_eq!(tweaked.backtrack_limit, 5);
        assert_eq!(tweaked.max_window, 2);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_constructors_forward_to_the_builder() {
        let old = AtpgConfig::with_backtrack_limit(1000)
            .learning(LearningMode::KnownValue)
            .window(3)
            .budget(WorkBudget::units(9));
        let new = AtpgOptions::builder()
            .backtrack_limit(1000)
            .learning(LearningMode::KnownValue)
            .window(3)
            .budget(WorkBudget::units(9))
            .build();
        assert_eq!(old, new);
    }
}
