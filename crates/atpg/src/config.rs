//! ATPG configuration.

use sla_core::WorkBudget;

/// How learned relations are applied during test generation (paper §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LearningMode {
    /// Learned data is ignored entirely (the "No learning" columns of Table 5).
    #[default]
    None,
    /// Relations act as forbidden values: conflicts are detected when a signal
    /// takes a forbidden value, and backtrace prefers inputs whose complement
    /// is forbidden. No extra justification obligations are created.
    ForbiddenValue,
    /// Relations act as known values: consequents become required values with
    /// transitive closure, pruning decisions at the cost of possibly
    /// unnecessary requirements.
    KnownValue,
}

impl LearningMode {
    /// Returns `true` when learned relations are consulted at all.
    pub fn uses_learning(self) -> bool {
        self != LearningMode::None
    }
}

/// Tuning knobs of the sequential test generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtpgConfig {
    /// Maximum number of backtracks per target fault (the paper uses 30 and
    /// 1000 in its two experiment stages).
    pub backtrack_limit: usize,
    /// Maximum number of time frames the iterative array may span.
    pub max_window: usize,
    /// Hard bound on decisions per fault, a safety net against degenerate
    /// search trees on large circuits.
    pub max_decisions: usize,
    /// How learned relations are used.
    pub learning: LearningMode,
    /// Grow the time-frame window geometrically (1, 2, 4, …, `max_window`)
    /// instead of starting at the maximum. Smaller windows are much cheaper
    /// and detect most faults.
    pub grow_window: bool,
    /// Fault-simulate each generated test against the remaining fault list and
    /// drop everything it detects.
    pub fault_dropping: bool,
    /// Deterministic work budget for the whole run: one unit per decision and
    /// one per backtrack, charged at the serial merge boundary so the stopping
    /// point is bit-identical for every `SLA_THREADS`. When the budget runs
    /// out, already-merged verdicts are kept and the unprocessed tail is
    /// classified `Aborted(Budget)`. Unlimited by default.
    pub budget: WorkBudget,
}

impl Default for AtpgConfig {
    fn default() -> Self {
        AtpgConfig {
            backtrack_limit: 30,
            max_window: 8,
            max_decisions: 20_000,
            learning: LearningMode::None,
            grow_window: true,
            fault_dropping: true,
            budget: WorkBudget::unlimited(),
        }
    }
}

impl AtpgConfig {
    /// Configuration with a given backtrack limit (other fields default).
    pub fn with_backtrack_limit(limit: usize) -> Self {
        AtpgConfig {
            backtrack_limit: limit,
            ..AtpgConfig::default()
        }
    }

    /// Returns a copy using the given learning mode.
    pub fn learning(mut self, mode: LearningMode) -> Self {
        self.learning = mode;
        self
    }

    /// Returns a copy using the given time-frame window bound.
    pub fn window(mut self, frames: usize) -> Self {
        self.max_window = frames.max(1);
        self
    }

    /// Returns a copy using the given work budget.
    pub fn budget(mut self, budget: WorkBudget) -> Self {
        self.budget = budget;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_first_stage() {
        let c = AtpgConfig::default();
        assert_eq!(c.backtrack_limit, 30);
        assert_eq!(c.learning, LearningMode::None);
        assert!(c.fault_dropping);
        assert!(c.grow_window);
        assert!(c.budget.is_unlimited());
    }

    #[test]
    fn builder_style_modifiers() {
        let c = AtpgConfig::with_backtrack_limit(1000)
            .learning(LearningMode::ForbiddenValue)
            .window(0)
            .budget(WorkBudget::units(100));
        assert_eq!(c.backtrack_limit, 1000);
        assert_eq!(c.budget, WorkBudget::units(100));
        assert_eq!(c.learning, LearningMode::ForbiddenValue);
        assert_eq!(c.max_window, 1);
        assert!(LearningMode::ForbiddenValue.uses_learning());
        assert!(!LearningMode::None.uses_learning());
    }
}
