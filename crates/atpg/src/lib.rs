//! Sequential automatic test pattern generation (ATPG) with learned-data
//! integration.
//!
//! This crate is the ATPG substrate of the DAC-1998 reproduction: a
//! backtrack-limited, PODEM-style sequential test generator working on an
//! iterative logic array with an unknown (all-`X`) initial state, plus the
//! integration of the sequential learning results of [`sla_core`] in the two
//! modes compared by the paper (§4):
//!
//! * **forbidden-value implications** — the learned relation `a=v → b=w` marks
//!   `b=¬w` *forbidden* whenever `a=v` holds; forbidden values detect conflicts
//!   early and bias backtrace choices, without creating new justification
//!   obligations;
//! * **known-value implications** — the consequents are treated as required
//!   values (with transitive closure), which prunes more decisions but can add
//!   unnecessary requirements;
//! * **tied gates** — faults stuck at the tied value are untestable and are
//!   classified without any search.
//!
//! Generated tests are always validated by sequential fault simulation
//! ([`sla_sim::FaultSimulator`]), and every test sequence is fault-simulated
//! against the remaining fault list so detected faults are dropped, exactly as
//! in the paper's experimental flow.
//!
//! # Example
//!
//! ```
//! use sla_netlist::{GateType, NetlistBuilder};
//! use sla_sim::collapsed_fault_list;
//! use sla_atpg::{AtpgConfig, AtpgEngine};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = NetlistBuilder::new("demo");
//! b.input("a");
//! b.gate("g", GateType::Not, &["a"])?;
//! b.dff("q", "g")?;
//! b.output("q")?;
//! let netlist = b.build()?;
//!
//! let engine = AtpgEngine::new(&netlist, AtpgConfig::default())?;
//! let faults = collapsed_fault_list(&netlist);
//! let run = engine.run(&faults);
//! assert!(run.stats.detected > 0);
//! # Ok(())
//! # }
//! ```

pub mod config;
pub mod engine;
pub mod learned;
pub mod machines;
pub mod tgen;

pub use config::{AtpgConfig, AtpgOptions, AtpgOptionsBuilder, LearningMode};
pub use engine::{AbortReason, AtpgEngine, AtpgRun, AtpgStats, FaultStatus, RunProgress};
pub use learned::{ImplicationLayer, IncrementalLayer, LearnedData, LiteralAdjacency};
pub use machines::{MachineMark, SearchMachines};
pub use tgen::{GenOutcome, GenResult, TestGenerator};

// The budget type lives in `sla-core` (the learner shares it); re-exported so
// ATPG-only callers need not depend on the learning crate directly.
pub use sla_core::WorkBudget;

/// Result alias: errors are structural netlist errors surfaced unchanged.
pub type Result<T> = std::result::Result<T, sla_netlist::NetlistError>;
