//! The incrementally maintained pair of three-valued machines (good and
//! faulty) the test generator searches over, plus the fault-cone restricted
//! D-frontier and detection state derived from them.
//!
//! One [`SearchMachines`] instance lives for the duration of one
//! `search_window` call: a decision assigns one primary input in one frame to
//! *both* machines and propagates only through the affected cone
//! ([`sla_sim::EventSim`]); a backtrack unwinds both value trails to the mark
//! taken before the flipped decision. Fault-effect queries (D-frontier,
//! detection) are restricted to the static fanout cone of the fault site —
//! outside that cone the two machines are structurally identical, so no
//! difference can ever appear there.
//!
//! The D-frontier and the detected-output set are **persistent**: instead of
//! rescanning the whole `window × cone` product on every objective call, both
//! are updated from the change-event streams of the two machines (a gate's
//! frontier membership depends only on its own slot and its same-frame fanin
//! slots, and every slot is itself an event source, so the dirty set of an
//! assignment is the changed slots plus their same-frame gate fanouts). Every
//! edit is recorded on a trail so a backtrack restores the exact prior sets.
//! The from-scratch cone scan is retained as [`SearchMachines::d_frontier_scan`]
//! — the reference the property tests in `tests/incremental_sim_prop.rs` hold
//! the persistent set to under random decide/flip/backtrack/grow scripts.

use sla_netlist::levelize::Levelization;
use sla_netlist::{Netlist, NetlistCsr, NodeId};
use sla_sim::{EventSim, Fault, FaultSite, Logic3};

/// Rank sentinel for nodes outside the fault cone (or non-gates).
const NOT_IN_CONE: u32 = u32::MAX;

/// One reversible edit of the fault-effect bookkeeping, recorded on the trail.
#[derive(Debug, Clone, Copy)]
enum FxOp {
    /// `(frame, cone rank)` entered the D-frontier.
    FrontierInsert(u32, u32),
    /// `(frame, cone rank)` left the D-frontier.
    FrontierRemove(u32, u32),
    /// The cone output at this slot started showing the fault effect.
    Detect(u32),
    /// The cone output at this slot stopped showing the fault effect.
    Undetect(u32),
}

/// Trail positions of both machines and the fault-effect trail, taken before
/// a decision so a backtrack can restore the exact prior state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineMark {
    good: usize,
    faulty: usize,
    fx: usize,
}

/// Paired good/faulty event-driven machines over one time-frame window.
#[derive(Debug, Clone)]
pub struct SearchMachines<'a> {
    netlist: &'a Netlist,
    /// Raw arena view; frontier maintenance walks fanouts/fanins off the CSR
    /// arrays directly.
    csr: NetlistCsr<'a>,
    fault: Fault,
    good: EventSim<'a>,
    faulty: EventSim<'a>,
    /// Gates in the transitive fanout cone of the fault site, in levelized
    /// order (the only gates that can ever sit on the D-frontier).
    cone_gates: Vec<NodeId>,
    /// Primary outputs inside the cone (the only ones that can detect).
    cone_outputs: Vec<NodeId>,
    /// Per-node position in `cone_gates` ([`NOT_IN_CONE`] outside), so an
    /// event maps to its frontier key without a search.
    cone_rank: Vec<u32>,
    /// Per-node flag: a cone primary output (detection can only change here).
    is_cone_output: Vec<bool>,
    /// Per-node relevance of a change event to the fault-effect bookkeeping:
    /// 0 means neither the node nor any of its same-frame gate fanouts can
    /// sit on the frontier or detect — the overwhelmingly common case, since
    /// an assignment's change cone spans the whole circuit while the fault
    /// cone is local. One byte load filters those out.
    fx_relevant: Vec<u8>,
    /// The persistent D-frontier as `(frame, cone rank)` keys, sorted — the
    /// exact visit order of the reference scan (frames ascending, levelized
    /// order within a frame).
    frontier: Vec<(u32, u32)>,
    /// Per-slot flag: this cone-output slot currently shows the fault effect.
    po_d: Vec<bool>,
    /// Number of set `po_d` flags (detection = any cone output slot shows
    /// the effect).
    detected_count: usize,
    /// Undo trail of frontier / detection edits.
    fx_trail: Vec<FxOp>,
    /// Scratch: dedup flags (per slot) for the dirty candidates of one update.
    dirty_flag: Vec<bool>,
    /// Scratch: dirty slot list of one update.
    dirty: Vec<u32>,
}

impl<'a> SearchMachines<'a> {
    /// Builds both machines for `fault` over `window` frames, reusing the
    /// caller's levelization.
    pub fn new(netlist: &'a Netlist, levels: &Levelization, window: usize, fault: Fault) -> Self {
        let good = EventSim::with_levels(netlist, levels, window, None);
        let faulty = EventSim::with_levels(netlist, levels, window, Some(fault));

        // Static fanout cone of the fault site. For an input-pin fault the
        // difference first appears at the faulted gate's output.
        let csr = netlist.csr();
        let mut in_cone = vec![false; netlist.num_nodes()];
        let start = fault.site.node();
        in_cone[start.index()] = true;
        let mut stack = vec![start];
        while let Some(x) = stack.pop() {
            for &fo in csr.fanouts(x) {
                if !in_cone[fo.index()] {
                    in_cone[fo.index()] = true;
                    stack.push(fo);
                }
            }
        }
        let cone_gates: Vec<NodeId> = levels
            .order()
            .iter()
            .copied()
            .filter(|id| in_cone[id.index()])
            .collect();
        let cone_outputs: Vec<NodeId> = netlist
            .outputs()
            .iter()
            .copied()
            .filter(|po| in_cone[po.index()])
            .collect();
        let mut cone_rank = vec![NOT_IN_CONE; netlist.num_nodes()];
        for (rank, &id) in cone_gates.iter().enumerate() {
            cone_rank[id.index()] = rank as u32;
        }
        let mut is_cone_output = vec![false; netlist.num_nodes()];
        for &po in &cone_outputs {
            is_cone_output[po.index()] = true;
        }
        let mut fx_relevant = vec![0u8; netlist.num_nodes()];
        for (idx, flag) in fx_relevant.iter_mut().enumerate() {
            let id = NodeId(idx as u32);
            let own = cone_rank[idx] != NOT_IN_CONE || is_cone_output[idx];
            let feeds_cone = csr
                .fanouts(id)
                .iter()
                .any(|&fo| cone_rank[fo.index()] != NOT_IN_CONE && !csr.kind(fo).is_sequential());
            *flag = u8::from(own || feeds_cone);
        }
        let slots = window * netlist.num_nodes();
        let mut machines = SearchMachines {
            netlist,
            csr,
            fault,
            good,
            faulty,
            cone_gates,
            cone_outputs,
            cone_rank,
            is_cone_output,
            fx_relevant,
            frontier: Vec::new(),
            po_d: vec![false; slots],
            detected_count: 0,
            fx_trail: Vec::new(),
            dirty_flag: vec![false; slots],
            dirty: Vec::new(),
        };
        machines.rebuild_fault_effects();
        machines
    }

    /// Number of frames in the window.
    pub fn window(&self) -> usize {
        self.good.window()
    }

    /// The good machine.
    pub fn good(&self) -> &EventSim<'a> {
        &self.good
    }

    /// The faulty machine.
    pub fn faulty(&self) -> &EventSim<'a> {
        &self.faulty
    }

    /// The fault both machines were built for.
    pub fn fault(&self) -> &Fault {
        &self.fault
    }

    /// Gates that can ever carry a fault effect, in levelized order.
    pub fn cone_gates(&self) -> &[NodeId] {
        &self.cone_gates
    }

    /// Current trail marks of both machines and the fault-effect trail.
    pub fn mark(&self) -> MachineMark {
        MachineMark {
            good: self.good.mark(),
            faulty: self.faulty.mark(),
            fx: self.fx_trail.len(),
        }
    }

    /// Assigns `pi = value` in `frame` to both machines, propagating each
    /// through its affected cone and folding the change events into the
    /// persistent D-frontier and detection state. The newly binary
    /// good-machine slots are available from [`EventSim::changed`] on
    /// [`SearchMachines::good`].
    pub fn assign(&mut self, frame: usize, pi: NodeId, value: bool) {
        self.good.assign(frame, pi, value);
        self.faulty.assign(frame, pi, value);
        self.update_fault_effects();
    }

    /// Unwinds both machines and the fault-effect sets to `mark` (taken
    /// before the decisions being retracted).
    pub fn undo_to(&mut self, mark: MachineMark) {
        self.good.undo_to(mark.good);
        self.faulty.undo_to(mark.faulty);
        self.undo_fx_to(mark.fx);
    }

    /// Unwinds both machines all the way to the undecided base state (the
    /// state right after construction).
    pub fn rewind_to_base(&mut self) {
        self.good.undo_to(0);
        self.faulty.undo_to(0);
        self.undo_fx_to(0);
    }

    /// Widens both machines to `new_window` frames in place, reusing the
    /// evaluated prefix frames (see [`EventSim::grow`]); bit-identical to
    /// constructing fresh machines at `new_window`, without re-simulating the
    /// frames the previous window already filled. The machines must be at
    /// their base state ([`SearchMachines::rewind_to_base`]). The fault cone
    /// is structural and unaffected by the window; the frontier and detection
    /// sets are rebuilt over the widened base values (the appended frames can
    /// carry base-state fault effects).
    pub fn grow(&mut self, levels: &Levelization, new_window: usize) {
        self.good.grow(levels, new_window);
        self.faulty.grow(levels, new_window);
        let slots = new_window * self.netlist.num_nodes();
        self.po_d.clear();
        self.po_d.resize(slots, false);
        self.dirty_flag.clear();
        self.dirty_flag.resize(slots, false);
        self.rebuild_fault_effects();
    }

    /// Returns `true` when `node` in `frame` carries a fault effect (both
    /// machines binary with opposite values).
    #[inline]
    pub fn is_d(&self, frame: usize, node: NodeId) -> bool {
        is_d(self.good.value(frame, node), self.faulty.value(frame, node))
    }

    /// Returns `true` when some primary output in some frame shows the fault
    /// effect under the current assignments. Maintained incrementally; the
    /// reference is the cone-output scan in `tests/incremental_sim_prop.rs`.
    #[inline]
    pub fn detected(&self) -> bool {
        self.detected_count > 0
    }

    /// Returns `true` when some fanin of gate `id` in frame `t` carries a
    /// fault effect. The faulted input pin itself carries an effect whenever
    /// its healthy driver is at the opposite of the stuck value.
    #[inline]
    pub fn has_d_input(&self, t: usize, id: NodeId) -> bool {
        self.csr.fanins(id).iter().enumerate().any(|(pin, &f)| {
            if self.fault.site == (FaultSite::Input { gate: id, pin }) {
                matches!(self.good.value(t, f).to_bool(), Some(b) if b != self.fault.stuck_at)
            } else {
                self.is_d(t, f)
            }
        })
    }

    /// The current D-frontier from the persistent set: every `(frame, gate)`
    /// whose output does not yet show the fault effect while some input
    /// carries one, frames ascending and gates in levelized order within a
    /// frame (the exact visit order of the reference scan).
    pub fn d_frontier_iter(&self) -> impl Iterator<Item = (usize, NodeId)> + '_ {
        self.frontier
            .iter()
            .map(|&(frame, rank)| (frame as usize, self.cone_gates[rank as usize]))
    }

    /// The current D-frontier as a materialized list (the search loop uses
    /// [`SearchMachines::d_frontier_iter`]).
    pub fn d_frontier(&self) -> Vec<(usize, NodeId)> {
        self.d_frontier_iter().collect()
    }

    /// The D-frontier recomputed by the retained from-scratch cone scan — the
    /// reference implementation the persistent set is property-tested
    /// against. Lazy, so a caller can stop at the first entry.
    pub fn d_frontier_scan_iter(&self) -> impl Iterator<Item = (usize, NodeId)> + '_ {
        (0..self.window()).flat_map(move |t| {
            self.cone_gates
                .iter()
                .filter(move |&&id| !self.is_d(t, id) && self.has_d_input(t, id))
                .map(move |&id| (t, id))
        })
    }

    /// The reference cone scan, materialized.
    pub fn d_frontier_scan(&self) -> Vec<(usize, NodeId)> {
        self.d_frontier_scan_iter().collect()
    }

    /// Recomputes the frontier and detection sets from scratch over the
    /// current values (construction and window growth; both happen at the
    /// base state, so the trail stays empty).
    fn rebuild_fault_effects(&mut self) {
        debug_assert!(self.fx_trail.is_empty(), "rebuild only at the base state");
        self.frontier.clear();
        self.detected_count = 0;
        let num_nodes = self.netlist.num_nodes();
        for t in 0..self.window() {
            for (rank, &id) in self.cone_gates.iter().enumerate() {
                if !self.is_d(t, id) && self.has_d_input(t, id) {
                    self.frontier.push((t as u32, rank as u32));
                }
            }
            for &po in &self.cone_outputs {
                if self.is_d(t, po) {
                    self.po_d[t * num_nodes + po.index()] = true;
                    self.detected_count += 1;
                }
            }
        }
        // Frames ascending, ranks ascending within a frame — already the push
        // order above; keep the invariant explicit for the incremental path.
        debug_assert!(self.frontier.windows(2).all(|w| w[0] < w[1]));
    }

    /// Folds the change events of the most recent assignment (both machines)
    /// into the frontier and detection sets. A slot's frontier membership
    /// depends only on its own values and its same-frame fanin values, so the
    /// dirty candidates are the changed slots themselves plus their
    /// same-frame gate fanouts (flip-flop fanouts surface as their own change
    /// events in the next frame).
    fn update_fault_effects(&mut self) {
        let csr = self.csr;
        let num_nodes = self.netlist.num_nodes();
        debug_assert!(self.dirty.is_empty());
        for source in 0..2 {
            let changed = if source == 0 {
                self.good.changed()
            } else {
                self.faulty.changed()
            };
            for &slot in changed {
                let node = slot as usize % num_nodes;
                if self.fx_relevant[node] == 0 {
                    continue; // cannot touch the frontier or detection
                }
                let frame = slot as usize / num_nodes;
                if (self.cone_rank[node] != NOT_IN_CONE || self.is_cone_output[node])
                    && !self.dirty_flag[slot as usize]
                {
                    self.dirty_flag[slot as usize] = true;
                    self.dirty.push(slot);
                }
                for &fo in csr.fanouts(NodeId(node as u32)) {
                    if csr.kind(fo).is_sequential() {
                        continue; // surfaces as its own event in frame + 1
                    }
                    if self.cone_rank[fo.index()] == NOT_IN_CONE {
                        continue;
                    }
                    let fo_slot = frame * num_nodes + fo.index();
                    if !self.dirty_flag[fo_slot] {
                        self.dirty_flag[fo_slot] = true;
                        self.dirty.push(fo_slot as u32);
                    }
                }
            }
        }
        let mut dirty = std::mem::take(&mut self.dirty);
        for &slot32 in &dirty {
            let slot = slot32 as usize;
            self.dirty_flag[slot] = false;
            let node = NodeId((slot % num_nodes) as u32);
            let frame = slot / num_nodes;
            let rank = self.cone_rank[node.index()];
            if rank != NOT_IN_CONE {
                let member = !self.is_d(frame, node) && self.has_d_input(frame, node);
                let key = (frame as u32, rank);
                match self.frontier.binary_search(&key) {
                    Ok(at) if !member => {
                        self.frontier.remove(at);
                        self.fx_trail.push(FxOp::FrontierRemove(key.0, key.1));
                    }
                    Err(at) if member => {
                        self.frontier.insert(at, key);
                        self.fx_trail.push(FxOp::FrontierInsert(key.0, key.1));
                    }
                    _ => {}
                }
            }
            if self.is_cone_output[node.index()] {
                let d = self.is_d(frame, node);
                if d != self.po_d[slot] {
                    self.po_d[slot] = d;
                    if d {
                        self.detected_count += 1;
                        self.fx_trail.push(FxOp::Detect(slot32));
                    } else {
                        self.detected_count -= 1;
                        self.fx_trail.push(FxOp::Undetect(slot32));
                    }
                }
            }
        }
        dirty.clear();
        self.dirty = dirty;
    }

    /// Reverses every frontier / detection edit recorded after `mark`
    /// (newest first).
    fn undo_fx_to(&mut self, mark: usize) {
        while self.fx_trail.len() > mark {
            match self.fx_trail.pop().expect("trail entry") {
                FxOp::FrontierInsert(frame, rank) => {
                    let at = self
                        .frontier
                        .binary_search(&(frame, rank))
                        .expect("inserted key present");
                    self.frontier.remove(at);
                }
                FxOp::FrontierRemove(frame, rank) => {
                    let at = self
                        .frontier
                        .binary_search(&(frame, rank))
                        .expect_err("removed key absent");
                    self.frontier.insert(at, (frame, rank));
                }
                FxOp::Detect(slot) => {
                    self.po_d[slot as usize] = false;
                    self.detected_count -= 1;
                }
                FxOp::Undetect(slot) => {
                    self.po_d[slot as usize] = true;
                    self.detected_count += 1;
                }
            }
        }
    }
}

/// A fault effect: good and faulty values binary and opposite.
pub(crate) fn is_d(good: Logic3, faulty: Logic3) -> bool {
    matches!((good.to_bool(), faulty.to_bool()), (Some(a), Some(b)) if a != b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sla_netlist::levelize::levelize;
    use sla_netlist::{GateType, NetlistBuilder};

    /// Two independent halves; only one is in the fault cone.
    fn split() -> Netlist {
        let mut b = NetlistBuilder::new("split");
        b.input("a");
        b.input("c");
        b.gate("g", GateType::Not, &["a"]).unwrap();
        b.gate("h", GateType::And, &["g", "a"]).unwrap();
        b.gate("k", GateType::Not, &["c"]).unwrap();
        b.output("h").unwrap();
        b.output("k").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn cone_restricts_frontier_and_outputs() {
        let n = split();
        let levels = levelize(&n).unwrap();
        let g = n.require("g").unwrap();
        let m = SearchMachines::new(&n, &levels, 1, Fault::output(g, true));
        let names: Vec<&str> = m.cone_gates().iter().map(|&id| n.node(id).name).collect();
        assert_eq!(names, vec!["g", "h"], "k is outside the fault cone");
        assert_eq!(m.cone_outputs.len(), 1);
    }

    #[test]
    fn frontier_appears_and_detection_follows() {
        let n = split();
        let levels = levelize(&n).unwrap();
        let g = n.require("g").unwrap();
        let h = n.require("h").unwrap();
        let a = n.require("a").unwrap();
        // g stuck-at-1: excite with a=1 (good g=0, faulty g=1).
        let mut m = SearchMachines::new(&n, &levels, 1, Fault::output(g, true));
        assert!(!m.detected());
        let mark = m.mark();
        m.assign(0, a, true);
        assert!(m.is_d(0, g));
        // h = AND(g, a): the effect propagated straight through (a=1 is
        // non-controlling), so h itself is a D and the frontier is empty.
        assert!(m.is_d(0, h));
        assert!(m.d_frontier().is_empty());
        assert!(m.detected());
        m.undo_to(mark);
        assert!(!m.detected());
        assert!(!m.is_d(0, g), "undo clears the excitation");
        assert_eq!(m.d_frontier(), m.d_frontier_scan(), "set ≡ scan after undo");
    }

    #[test]
    fn unexcited_fault_has_no_frontier() {
        let n = split();
        let levels = levelize(&n).unwrap();
        let g = n.require("g").unwrap();
        let a = n.require("a").unwrap();
        let mut m = SearchMachines::new(&n, &levels, 1, Fault::output(g, false));
        // a=1 makes the good g = 0 = stuck value: no effect anywhere.
        m.assign(0, a, true);
        assert!(!m.detected());
        assert!(m.d_frontier().is_empty());
    }

    /// A gate whose output stays `X` while one input carries the effect: the
    /// persistent set must hold exactly it, track the undo, and agree with
    /// the reference scan at every step.
    #[test]
    fn frontier_set_tracks_partial_propagation() {
        let mut b = NetlistBuilder::new("stall");
        b.input("a");
        b.input("en");
        b.gate("g", GateType::Not, &["a"]).unwrap();
        b.gate("h", GateType::And, &["g", "en"]).unwrap();
        b.output("h").unwrap();
        let n = b.build().unwrap();
        let levels = levelize(&n).unwrap();
        let g = n.require("g").unwrap();
        let h = n.require("h").unwrap();
        let a = n.require("a").unwrap();
        let en = n.require("en").unwrap();
        let mut m = SearchMachines::new(&n, &levels, 1, Fault::output(g, true));
        // Excite: a=1 → good g=0, faulty g=1; h blocked on en=X.
        let mark = m.mark();
        m.assign(0, a, true);
        assert_eq!(m.d_frontier(), vec![(0, h)]);
        assert_eq!(m.d_frontier(), m.d_frontier_scan());
        assert!(!m.detected());
        // en=1 pushes the effect through: h leaves the frontier, PO detects.
        let mark2 = m.mark();
        m.assign(0, en, true);
        assert!(m.d_frontier().is_empty());
        assert!(m.detected());
        m.undo_to(mark2);
        assert_eq!(m.d_frontier(), vec![(0, h)]);
        assert!(!m.detected());
        m.undo_to(mark);
        assert!(m.d_frontier().is_empty());
        assert_eq!(m.d_frontier(), m.d_frontier_scan());
    }
}
