//! The incrementally maintained pair of three-valued machines (good and
//! faulty) the test generator searches over, plus the fault-cone restricted
//! D-frontier derived from them.
//!
//! One [`SearchMachines`] instance lives for the duration of one
//! `search_window` call: a decision assigns one primary input in one frame to
//! *both* machines and propagates only through the affected cone
//! ([`sla_sim::EventSim`]); a backtrack unwinds both value trails to the mark
//! taken before the flipped decision. Fault-effect queries (D-frontier,
//! detection) are restricted to the static fanout cone of the fault site —
//! outside that cone the two machines are structurally identical, so no
//! difference can ever appear there.

use sla_netlist::levelize::Levelization;
use sla_netlist::{Netlist, NodeId};
use sla_sim::{EventSim, Fault, FaultSite, Logic3};

/// Trail positions of both machines, taken before a decision so a backtrack
/// can restore the exact prior state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineMark {
    good: usize,
    faulty: usize,
}

/// Paired good/faulty event-driven machines over one time-frame window.
#[derive(Debug, Clone)]
pub struct SearchMachines<'a> {
    netlist: &'a Netlist,
    fault: Fault,
    good: EventSim<'a>,
    faulty: EventSim<'a>,
    /// Gates in the transitive fanout cone of the fault site, in levelized
    /// order (the only gates that can ever sit on the D-frontier).
    cone_gates: Vec<NodeId>,
    /// Primary outputs inside the cone (the only ones that can detect).
    cone_outputs: Vec<NodeId>,
}

impl<'a> SearchMachines<'a> {
    /// Builds both machines for `fault` over `window` frames, reusing the
    /// caller's levelization.
    pub fn new(netlist: &'a Netlist, levels: &Levelization, window: usize, fault: Fault) -> Self {
        let good = EventSim::with_levels(netlist, levels, window, None);
        let faulty = EventSim::with_levels(netlist, levels, window, Some(fault));

        // Static fanout cone of the fault site. For an input-pin fault the
        // difference first appears at the faulted gate's output.
        let mut in_cone = vec![false; netlist.num_nodes()];
        let start = fault.site.node();
        in_cone[start.index()] = true;
        let mut stack = vec![start];
        while let Some(x) = stack.pop() {
            for &fo in netlist.fanouts(x) {
                if !in_cone[fo.index()] {
                    in_cone[fo.index()] = true;
                    stack.push(fo);
                }
            }
        }
        let cone_gates = levels
            .order()
            .iter()
            .copied()
            .filter(|id| in_cone[id.index()])
            .collect();
        let cone_outputs = netlist
            .outputs()
            .iter()
            .copied()
            .filter(|po| in_cone[po.index()])
            .collect();
        SearchMachines {
            netlist,
            fault,
            good,
            faulty,
            cone_gates,
            cone_outputs,
        }
    }

    /// Number of frames in the window.
    pub fn window(&self) -> usize {
        self.good.window()
    }

    /// The good machine.
    pub fn good(&self) -> &EventSim<'a> {
        &self.good
    }

    /// The faulty machine.
    pub fn faulty(&self) -> &EventSim<'a> {
        &self.faulty
    }

    /// The fault both machines were built for.
    pub fn fault(&self) -> &Fault {
        &self.fault
    }

    /// Gates that can ever carry a fault effect, in levelized order.
    pub fn cone_gates(&self) -> &[NodeId] {
        &self.cone_gates
    }

    /// Current trail marks of both machines.
    pub fn mark(&self) -> MachineMark {
        MachineMark {
            good: self.good.mark(),
            faulty: self.faulty.mark(),
        }
    }

    /// Assigns `pi = value` in `frame` to both machines, propagating each
    /// through its affected cone. The newly binary good-machine slots are
    /// available from [`EventSim::changed`] on [`SearchMachines::good`].
    pub fn assign(&mut self, frame: usize, pi: NodeId, value: bool) {
        self.good.assign(frame, pi, value);
        self.faulty.assign(frame, pi, value);
    }

    /// Unwinds both machines to `mark` (taken before the decisions being
    /// retracted).
    pub fn undo_to(&mut self, mark: MachineMark) {
        self.good.undo_to(mark.good);
        self.faulty.undo_to(mark.faulty);
    }

    /// Unwinds both machines all the way to the undecided base state (the
    /// state right after construction).
    pub fn rewind_to_base(&mut self) {
        self.good.undo_to(0);
        self.faulty.undo_to(0);
    }

    /// Widens both machines to `new_window` frames in place, reusing the
    /// evaluated prefix frames (see [`EventSim::grow`]); bit-identical to
    /// constructing fresh machines at `new_window`, without re-simulating the
    /// frames the previous window already filled. The machines must be at
    /// their base state ([`SearchMachines::rewind_to_base`]). The fault cone
    /// is structural and unaffected by the window.
    pub fn grow(&mut self, levels: &Levelization, new_window: usize) {
        self.good.grow(levels, new_window);
        self.faulty.grow(levels, new_window);
    }

    /// Returns `true` when `node` in `frame` carries a fault effect (both
    /// machines binary with opposite values).
    #[inline]
    pub fn is_d(&self, frame: usize, node: NodeId) -> bool {
        is_d(self.good.value(frame, node), self.faulty.value(frame, node))
    }

    /// Returns `true` when some primary output in some frame shows the fault
    /// effect under the current assignments.
    pub fn detected(&self) -> bool {
        for t in 0..self.window() {
            for &po in &self.cone_outputs {
                if self.is_d(t, po) {
                    return true;
                }
            }
        }
        false
    }

    /// Returns `true` when some fanin of gate `id` in frame `t` carries a
    /// fault effect. The faulted input pin itself carries an effect whenever
    /// its healthy driver is at the opposite of the stuck value.
    pub fn has_d_input(&self, t: usize, id: NodeId) -> bool {
        let node = self.netlist.node(id);
        node.fanins.iter().enumerate().any(|(pin, &f)| {
            if self.fault.site == (FaultSite::Input { gate: id, pin }) {
                matches!(self.good.value(t, f).to_bool(), Some(b) if b != self.fault.stuck_at)
            } else {
                self.is_d(t, f)
            }
        })
    }

    /// The current D-frontier, lazily: every `(frame, gate)` whose output
    /// does not yet show the fault effect while some input carries one,
    /// frames ascending and gates in levelized order within a frame (the
    /// exact visit order of the from-scratch reference scan). Lazy so the
    /// per-decision objective scan stops at its first usable entry instead
    /// of materializing the whole window × cone product.
    pub fn d_frontier_iter(&self) -> impl Iterator<Item = (usize, NodeId)> + '_ {
        (0..self.window()).flat_map(move |t| {
            self.cone_gates
                .iter()
                .filter(move |&&id| !self.is_d(t, id) && self.has_d_input(t, id))
                .map(move |&id| (t, id))
        })
    }

    /// The current D-frontier as a materialized list (test/reference
    /// comparisons; the search loop uses [`SearchMachines::d_frontier_iter`]).
    pub fn d_frontier(&self) -> Vec<(usize, NodeId)> {
        self.d_frontier_iter().collect()
    }
}

/// A fault effect: good and faulty values binary and opposite.
pub(crate) fn is_d(good: Logic3, faulty: Logic3) -> bool {
    matches!((good.to_bool(), faulty.to_bool()), (Some(a), Some(b)) if a != b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sla_netlist::levelize::levelize;
    use sla_netlist::{GateType, NetlistBuilder};

    /// Two independent halves; only one is in the fault cone.
    fn split() -> Netlist {
        let mut b = NetlistBuilder::new("split");
        b.input("a");
        b.input("c");
        b.gate("g", GateType::Not, &["a"]).unwrap();
        b.gate("h", GateType::And, &["g", "a"]).unwrap();
        b.gate("k", GateType::Not, &["c"]).unwrap();
        b.output("h").unwrap();
        b.output("k").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn cone_restricts_frontier_and_outputs() {
        let n = split();
        let levels = levelize(&n).unwrap();
        let g = n.require("g").unwrap();
        let m = SearchMachines::new(&n, &levels, 1, Fault::output(g, true));
        let names: Vec<&str> = m
            .cone_gates()
            .iter()
            .map(|&id| n.node(id).name.as_str())
            .collect();
        assert_eq!(names, vec!["g", "h"], "k is outside the fault cone");
        assert_eq!(m.cone_outputs.len(), 1);
    }

    #[test]
    fn frontier_appears_and_detection_follows() {
        let n = split();
        let levels = levelize(&n).unwrap();
        let g = n.require("g").unwrap();
        let h = n.require("h").unwrap();
        let a = n.require("a").unwrap();
        // g stuck-at-1: excite with a=1 (good g=0, faulty g=1).
        let mut m = SearchMachines::new(&n, &levels, 1, Fault::output(g, true));
        assert!(!m.detected());
        let mark = m.mark();
        m.assign(0, a, true);
        assert!(m.is_d(0, g));
        // h = AND(g, a): the effect propagated straight through (a=1 is
        // non-controlling), so h itself is a D and the frontier is empty.
        assert!(m.is_d(0, h));
        assert!(m.d_frontier().is_empty());
        assert!(m.detected());
        m.undo_to(mark);
        assert!(!m.detected());
        assert!(!m.is_d(0, g), "undo clears the excitation");
    }

    #[test]
    fn unexcited_fault_has_no_frontier() {
        let n = split();
        let levels = levelize(&n).unwrap();
        let g = n.require("g").unwrap();
        let a = n.require("a").unwrap();
        let mut m = SearchMachines::new(&n, &levels, 1, Fault::output(g, false));
        // a=1 makes the good g = 0 = stuck value: no effect anywhere.
        m.assign(0, a, true);
        assert!(!m.detected());
        assert!(m.d_frontier().is_empty());
    }
}
