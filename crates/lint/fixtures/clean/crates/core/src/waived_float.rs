//! Clean fixture: a properly waived finding (rule id + non-empty reason).

pub fn display_ratio(a: usize, b: usize) -> String {
    // sla-lint: allow(float-arith): display-only ratio for a log line, never compared or stored
    let r = a as f64 / b as f64;
    format!("{r:.2}")
}
