//! Fixture: the sanctioned fast-map discipline — lookups on
//! `FastHashMap`/`FastHashSet`, iteration only over ordered containers
//! (`BTreeMap`) or after collecting and sorting.

use std::collections::BTreeMap;

use sla_netlist::{FastHashMap, FastHashSet};

pub struct Db {
    index: FastHashMap<u32, usize>,
    ordered: BTreeMap<u32, u32>,
}

impl Db {
    /// The whole lookup vocabulary is fine.
    pub fn probe(&mut self, key: u32) -> Option<usize> {
        if self.index.contains_key(&key) {
            self.index.get(&key).copied()
        } else {
            self.index.entry(key).or_insert(0);
            self.index.remove(&key)
        }
    }

    /// Deterministic iteration goes through the ordered mirror.
    pub fn sum(&self) -> u64 {
        let mut total = 0u64;
        for (_, v) in &self.ordered {
            total += u64::from(*v);
        }
        total
    }
}

/// Collect-and-sort: the keys leave the fast set through a total order.
pub fn sorted_members(s: &FastHashSet<u32>, universe: &[u32]) -> Vec<u32> {
    let mut out: Vec<u32> = universe.iter().filter(|x| s.contains(x)).copied().collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_may_iterate_fast_maps() {
        // Assertions over iteration order live in tests, where a
        // nondeterministic failure is loud, not silent.
        let mut m: FastHashMap<u32, u32> = FastHashMap::default();
        m.insert(1, 2);
        assert_eq!(m.iter().count(), 1);
    }
}
