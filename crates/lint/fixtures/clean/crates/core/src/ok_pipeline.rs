//! Clean fixture: the sanctioned forms of everything the rules police.

use std::collections::BTreeMap;

pub type FastHashMap<K, V> = BTreeMap<K, V>; // stand-in for sla_netlist::FastHashMap

/// Integer basis points instead of float ratios.
pub fn coverage_bp(detected: usize, total: usize) -> u32 {
    if total == 0 {
        return 0;
    }
    (detected as u64 * 10_000 / total as u64) as u32
}

pub fn group(keys: &[u32]) -> BTreeMap<u32, usize> {
    keys.iter().enumerate().map(|(i, &k)| (k, i)).collect()
}

/// Comment markers and rule trigger words inside literals are not code:
/// "HashMap", "Instant::now", 'x', and // inside this string stay inert.
pub fn inert() -> (&'static str, char) {
    ("HashMap Instant::now std::env::var // 1.5", '/')
}
