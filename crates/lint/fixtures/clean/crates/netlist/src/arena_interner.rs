//! Fixture: the sanctioned replacement for the default-hasher rule in the
//! arena shape — an open-addressing symbol table over flat buffers instead
//! of a `std::collections::HashMap` keyed by `String`. Deterministic by
//! construction: probe order depends only on the interned bytes.

/// Interned names: one byte buffer, `(start, end)` spans, and a
/// power-of-two probe table of `sym + 1` (0 = empty).
#[derive(Default)]
pub struct Interner {
    buf: String,
    spans: Vec<(u32, u32)>,
    table: Vec<u32>,
}

fn fold_hash(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in name.as_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    // The probe index masks the LOW bits; fold the high half down so every
    // byte of the name reaches them.
    h ^ (h >> 32)
}

impl Interner {
    pub fn get(&self, sym: u32) -> &str {
        let (s, e) = self.spans[sym as usize];
        &self.buf[s as usize..e as usize]
    }

    pub fn intern(&mut self, name: &str) -> u32 {
        if (self.spans.len() + 1) * 2 > self.table.len() {
            self.grow();
        }
        let mask = self.table.len() - 1;
        let mut i = fold_hash(name) as usize & mask;
        loop {
            match self.table[i] {
                0 => break,
                v => {
                    if self.get(v - 1) == name {
                        return v - 1;
                    }
                }
            }
            i = (i + 1) & mask;
        }
        let sym = self.spans.len() as u32;
        let start = self.buf.len() as u32;
        self.buf.push_str(name);
        self.spans.push((start, self.buf.len() as u32));
        self.table[i] = sym + 1;
        sym
    }

    fn grow(&mut self) {
        let cap = (self.table.len() * 2).max(16);
        let mask = cap - 1;
        let mut table = vec![0u32; cap];
        for sym in 0..self.spans.len() as u32 {
            let mut i = {
                let (s, e) = self.spans[sym as usize];
                fold_hash(&self.buf[s as usize..e as usize]) as usize & mask
            };
            while table[i] != 0 {
                i = (i + 1) & mask;
            }
            table[i] = sym + 1;
        }
        self.table = table;
    }
}
