//! Fixture: the sanctioned form of the unwrap-in-lib rule in the refactored
//! parser shape — trailing-comment stripping and typed error propagation;
//! `.unwrap()` inside the `#[cfg(test)]` module is exempt (a failed test may
//! panic).

/// Everything from the first `#` on is a comment (the ISCAS-89 dialect).
pub fn strip_trailing_comment(line: &str) -> &str {
    match line.find('#') {
        Some(pos) => &line[..pos],
        None => line,
    }
}

pub fn parse_width(word: &str) -> Result<u32, String> {
    // Library code propagates the error instead of unwrapping. `unwrap_or`
    // never panics and is fine too.
    strip_trailing_comment(word)
        .trim()
        .parse::<u32>()
        .map_err(|_| format!("bad width `{word}`"))
        .map(|w| Some(w).unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses() {
        // Test code may unwrap freely.
        assert_eq!(parse_width("4 # comment").unwrap(), 4);
    }
}
