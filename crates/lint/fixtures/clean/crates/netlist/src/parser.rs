//! Fixture: the sanctioned form of the unwrap-in-lib rule — library code
//! propagates typed errors, and `.unwrap()` inside the `#[cfg(test)]` module
//! is exempt (a failed test may panic).

pub fn parse_width(word: &str) -> Result<u32, String> {
    // Library code propagates the error instead of unwrapping. `unwrap_or`
    // never panics and is fine too.
    word.parse::<u32>()
        .map_err(|_| format!("bad width `{word}`"))
        .map(|w| Some(w).unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses() {
        // Test code may unwrap freely.
        assert_eq!(parse_width("4").unwrap(), 4);
    }
}
