//! Fixture: the sanctioned form of the unwrap-in-lib and panic-index rules
//! in the refactored parser shape — trailing-comment stripping without
//! slice indexing, and typed error propagation; `.unwrap()` and `v[i]`
//! inside the `#[cfg(test)]` module are exempt (a failed test may panic).

/// Everything from the first `#` on is a comment (the ISCAS-89 dialect).
pub fn strip_trailing_comment(line: &str) -> &str {
    // `split_once` instead of `find` + `&line[..pos]`: no index expression,
    // so the no-panic contract holds by construction.
    match line.split_once('#') {
        Some((before, _)) => before,
        None => line,
    }
}

/// Checked element access: `.get()` propagates instead of panicking.
pub fn nth_word(line: &str, n: usize) -> Result<&str, String> {
    let words: Vec<&str> = line.split_whitespace().collect();
    words
        .get(n)
        .copied()
        .ok_or_else(|| format!("expected at least {} word(s) in `{line}`", n + 1))
}

pub fn parse_width(word: &str) -> Result<u32, String> {
    // Library code propagates the error instead of unwrapping. `unwrap_or`
    // never panics and is fine too.
    strip_trailing_comment(word)
        .trim()
        .parse::<u32>()
        .map_err(|_| format!("bad width `{word}`"))
        .map(|w| Some(w).unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses() {
        // Test code may unwrap and index freely.
        assert_eq!(parse_width("4 # comment").unwrap(), 4);
        let words = ["a", "b"];
        assert_eq!(words[1], nth_word("a b", 1).unwrap());
    }
}
