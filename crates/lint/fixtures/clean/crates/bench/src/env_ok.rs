//! Clean fixture: the bench crate is allow-listed for harness env knobs,
//! and std::env::args is explicit CLI input everywhere.

pub fn bench_json_path() -> Option<String> {
    std::env::var("SLA_BENCH_JSON").ok()
}

pub fn first_arg() -> Option<String> {
    std::env::args().nth(1)
}
