//! Fixture: the sanctioned integer-conversion discipline in a pipeline
//! crate — `try_from` with a typed error for narrowing, plain `as` only
//! when it provably widens.

/// Narrowing goes through `try_from` and surfaces a typed error.
pub fn checked_narrow(frames: u64) -> Result<u32, String> {
    u32::try_from(frames).map_err(|_| format!("frame count {frames} exceeds u32"))
}

/// Widening casts are lossless and stay `as`.
pub fn widen(n: u32, m: usize) -> (u64, u64, i64) {
    (u64::from(n), m as u64, n as i64)
}

/// An unprovable source type is out of scope by design: the rule never
/// guesses (the conservative boundary documented in the parser).
pub fn opaque(x: impl Into<u64>) -> u64 {
    let y = x.into();
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_may_narrow() {
        // A wrapped value in a test trips an assertion immediately.
        let n: u64 = 5;
        assert_eq!(n as u32, 5);
        assert_eq!(checked_narrow(5).unwrap(), 5);
    }
}
