//! Clean fixture: integration tests are not library code, so the
//! default-hasher rule does not apply to them.

use std::collections::HashMap;

#[test]
fn scratch_map() {
    let mut m: HashMap<u32, u32> = HashMap::new();
    m.insert(1, 2);
    assert_eq!(m.get(&1), Some(&2));
}
