//! Fixture: `.unwrap()` / `.expect()` in hardened library code
//! (unwrap-in-lib). The file path matters — the rule scopes to the real
//! workspace's hardened parser/engine files.

pub fn classify(raw: Option<u32>) -> u32 {
    // Both calls below violate unwrap-in-lib.
    let first = raw.unwrap();
    let second = Some(first).expect("always present");
    second
}
