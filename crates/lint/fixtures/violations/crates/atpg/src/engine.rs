//! Fixture: `.unwrap()` / `.expect()` in hardened library code
//! (unwrap-in-lib). The file path matters — the rule scopes to the real
//! workspace's hardened parser/engine files. The shape mirrors the arena-CSR
//! engine: flat offset/edge walks where a missed bounds contract panics.

pub fn first_fanin(fanin_off: &[u32], fanin_edges: &[u32], node: usize) -> u32 {
    // Both calls below violate unwrap-in-lib: a malformed CSR should surface
    // as a typed error, not a panic in the search loop.
    let start = fanin_off.get(node).unwrap();
    let edge = fanin_edges.get(*start as usize).expect("edge in range");
    *edge
}
