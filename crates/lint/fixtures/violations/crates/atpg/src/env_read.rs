//! Seeded violation: ambient environment reads outside sla-par/sla-bench.

pub fn budget() -> usize {
    std::env::var("SLA_BACKTRACK_LIMIT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100)
}
