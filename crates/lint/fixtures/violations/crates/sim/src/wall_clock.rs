//! Seeded violation: ad-hoc wall-clock reads.

use std::time::Instant;

pub fn timed<T>(f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    let _ = start.elapsed();
    out
}

pub fn epoch() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}
