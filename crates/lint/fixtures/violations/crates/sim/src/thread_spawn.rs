//! Seeded violation: ad-hoc threading and synchronization outside crates/par.

use std::sync::Mutex;
use std::thread;

pub fn racy_sum(items: &[u64]) -> u64 {
    let total = Mutex::new(0u64);
    thread::scope(|s| {
        for &x in items {
            s.spawn(|| *total.lock().unwrap() += x);
        }
    });
    let out = *total.lock().unwrap();
    out
}
