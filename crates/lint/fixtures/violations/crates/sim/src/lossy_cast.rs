//! Fixture: narrowing integer `as` casts in a pipeline crate — every
//! provable-source form the `lossy-cast` rule recognizes.

/// Annotated binding, narrowed.
pub fn narrow_binding(frames: u64) -> u32 {
    frames as u32
}

/// `.len()` is usize; usize is 64-bit by contract, so `as u32` narrows.
pub fn narrow_len(v: &[u8]) -> u32 {
    v.len() as u32
}

/// Signedness changes lose values in both directions.
pub fn sign_flips(s: i64, u: u64) -> (u64, i64) {
    (s as u64, u as i64)
}

/// Suffixed literals and inferred `let` types count too.
pub fn literal_and_inferred() -> u16 {
    let big = 70_000u32;
    let n = big as u16;
    n + 300u32 as u16
}
