//! Fixture: unchecked indexing in a hardened no-panic file — the forms the
//! `panic-index` rule recognizes (the path matters: this file stands in for
//! the real `crates/netlist/src/parser.rs`).

/// Direct element indexing panics on short input.
pub fn first_word(line: &str) -> &str {
    let words: Vec<&str> = line.split_whitespace().collect();
    words[0]
}

/// Range slicing panics when the bound is past the end.
pub fn before(line: &str, pos: usize) -> &str {
    &line[..pos]
}

/// Indexing a call result and a tuple field.
pub struct Wrap(pub Vec<u32>);

impl Wrap {
    pub fn pick(&self, i: usize) -> u32 {
        self.0[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_indexing_is_exempt() {
        let v = [1u32, 2];
        assert_eq!(v[0], 1);
        assert_eq!(first_word("a b"), "a");
    }
}
