//! Seeded violation: a waiver without a reason suppresses nothing.

// sla-lint: allow(float-arith)
pub fn ratio(a: usize, b: usize) -> f64 {
    a as f64 / b as f64
}
