//! Seeded violation: a waiver naming an unknown rule is itself a finding.

// sla-lint: allow(made-up-rule): this rule does not exist
pub fn nothing() {}
