//! Fixture: iteration over the lookup-only fast map types in library code —
//! every banned form the `fast-map-iteration` rule recognizes.

use sla_netlist::{FastHashMap, FastHashSet};

pub struct Db {
    forward: FastHashMap<u32, u32>,
}

impl Db {
    /// Iterating a fast-map struct field.
    pub fn drain_all(&mut self) -> Vec<(u32, u32)> {
        self.forward.iter().map(|(k, v)| (*k, *v)).collect()
    }
}

/// `for … in` over a fast-map binding.
pub fn sum_keys(m: &FastHashMap<u32, u32>) -> u64 {
    let mut total = 0u64;
    for (k, _) in m {
        total += u64::from(*k);
    }
    total
}

/// Method iteration over an annotated local.
pub fn collect_set() -> Vec<u32> {
    let mut s: FastHashSet<u32> = FastHashSet::default();
    s.insert(3);
    s.into_iter().collect()
}

/// `.keys()` / `.values()` / `.drain()` on an inferred construction.
pub fn leak_order() -> usize {
    let mut m = FastHashMap::<u32, u32>::default();
    m.insert(1, 2);
    let k = m.keys().count();
    let v = m.values().count();
    let d = m.drain().count();
    k + v + d
}
