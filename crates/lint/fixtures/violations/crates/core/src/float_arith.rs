//! Seeded violation: float arithmetic in a pipeline crate.

pub fn coverage(detected: usize, total: usize) -> f64 {
    detected as f64 / total as f64
}

pub fn near(x: f64) -> bool {
    (x - 1.0).abs() < 1e-9
}

pub fn scaled(x: f32) -> f32 {
    x * 2.5f32
}
