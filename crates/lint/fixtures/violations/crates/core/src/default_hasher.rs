//! Seeded violation: default-hasher maps in library code.

use std::collections::{HashMap, HashSet};

pub fn group(keys: &[u32]) -> HashMap<u32, usize> {
    let mut seen: HashSet<u32> = HashSet::new();
    let mut out = HashMap::new();
    for (i, &k) in keys.iter().enumerate() {
        if seen.insert(k) {
            out.insert(k, i);
        }
    }
    out
}
