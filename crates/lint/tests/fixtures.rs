//! Fixture-tree tests: the linter over miniature workspace roots under
//! `crates/lint/fixtures/`. The `violations/` tree seeds at least one
//! violation per rule (CI also runs the binary over it and requires a
//! nonzero exit); the `clean/` tree holds the sanctioned form of each
//! pattern, including a waiver with a reason, and must produce zero findings.

use std::path::PathBuf;

use sla_lint::{lint_tree, Report, RULES};

fn fixture(name: &str) -> Report {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    lint_tree(&root).expect("fixture tree readable")
}

#[test]
fn violations_tree_trips_every_rule() {
    let report = fixture("violations");
    assert!(!report.findings.is_empty());
    for rule in RULES {
        assert!(
            report.findings.iter().any(|f| f.rule == rule.id),
            "rule `{}` produced no finding on the violations tree",
            rule.id
        );
    }
    // The malformed waiver must not have suppressed the violation under it.
    assert!(report
        .findings
        .iter()
        .any(|f| f.file.ends_with("waiver_missing_reason.rs") && f.rule == "float-arith"));
    assert!(
        report.waivers.is_empty(),
        "no valid waiver exists in the tree"
    );
}

#[test]
fn violations_tree_expected_sites() {
    let report = fixture("violations");
    let expect: &[(&str, &str)] = &[
        ("crates/core/src/float_arith.rs", "float-arith"),
        ("crates/core/src/default_hasher.rs", "default-hasher"),
        ("crates/sim/src/wall_clock.rs", "wall-clock"),
        ("crates/atpg/src/env_read.rs", "env-read"),
        ("crates/sim/src/thread_spawn.rs", "thread-spawn"),
        ("crates/netlist/src/unsafe_block.rs", "unsafe-safety"),
        ("crates/atpg/src/engine.rs", "unwrap-in-lib"),
        ("crates/core/src/waiver_missing_reason.rs", "waiver-syntax"),
        ("crates/core/src/waiver_unknown_rule.rs", "waiver-syntax"),
    ];
    for (file, rule) in expect {
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.file == *file && f.rule == *rule),
            "expected a {rule} finding in {file}; got: {:#?}",
            report.findings
        );
    }
    // Findings come out in file order, lines ascending within a file.
    let keys: Vec<(&str, u32)> = report
        .findings
        .iter()
        .map(|f| (f.file.as_str(), f.line))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "findings must be deterministically ordered");
}

#[test]
fn clean_tree_is_clean_and_counts_its_waiver() {
    let report = fixture("clean");
    assert!(
        report.findings.is_empty(),
        "clean tree produced findings: {:#?}",
        report.findings
    );
    assert_eq!(report.waivers.len(), 1, "exactly the waived float");
    let w = &report.waivers[0];
    assert_eq!(w.rule, "float-arith");
    assert_eq!(w.file, "crates/core/src/waived_float.rs");
    assert!(!w.reason.is_empty());
}
