//! Fixture-tree tests: the linter over miniature workspace roots under
//! `crates/lint/fixtures/`. The `violations/` tree seeds at least one
//! violation per rule (CI also runs the binary over it and requires a
//! nonzero exit); the `clean/` tree holds the sanctioned form of each
//! pattern, including a waiver with a reason, and must produce zero findings.

use std::path::PathBuf;

use sla_lint::{lint_tree, Report, RULES};

fn fixture(name: &str) -> Report {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    lint_tree(&root).expect("fixture tree readable")
}

#[test]
fn violations_tree_trips_every_rule() {
    let report = fixture("violations");
    assert!(!report.findings.is_empty());
    for rule in RULES {
        assert!(
            report.findings.iter().any(|f| f.rule == rule.id),
            "rule `{}` produced no finding on the violations tree",
            rule.id
        );
    }
    // The malformed waiver must not have suppressed the violation under it.
    assert!(report
        .findings
        .iter()
        .any(|f| f.file.ends_with("waiver_missing_reason.rs") && f.rule == "float-arith"));
    assert!(
        report.waivers.is_empty(),
        "no valid waiver exists in the tree"
    );
}

#[test]
fn violations_tree_expected_sites() {
    let report = fixture("violations");
    let expect: &[(&str, &str)] = &[
        ("crates/core/src/float_arith.rs", "float-arith"),
        ("crates/core/src/default_hasher.rs", "default-hasher"),
        ("crates/sim/src/wall_clock.rs", "wall-clock"),
        ("crates/atpg/src/env_read.rs", "env-read"),
        ("crates/sim/src/thread_spawn.rs", "thread-spawn"),
        ("crates/netlist/src/unsafe_block.rs", "unsafe-safety"),
        ("crates/atpg/src/engine.rs", "unwrap-in-lib"),
        ("crates/core/src/waiver_missing_reason.rs", "waiver-syntax"),
        ("crates/core/src/waiver_unknown_rule.rs", "waiver-syntax"),
        (
            "crates/core/src/fast_map_iteration.rs",
            "fast-map-iteration",
        ),
        ("crates/netlist/src/parser.rs", "panic-index"),
        ("crates/sim/src/lossy_cast.rs", "lossy-cast"),
    ];
    for (file, rule) in expect {
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.file == *file && f.rule == *rule),
            "expected a {rule} finding in {file}; got: {:#?}",
            report.findings
        );
    }
    // Findings come out in file order, lines ascending within a file.
    let keys: Vec<(&str, u32)> = report
        .findings
        .iter()
        .map(|f| (f.file.as_str(), f.line))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "findings must be deterministically ordered");
}

#[test]
fn flow_aware_rules_catch_every_banned_form() {
    let report = fixture("violations");
    let count = |rule: &str| report.findings.iter().filter(|f| f.rule == rule).count();
    // fast_map_iteration.rs: .iter(), `for … in`, .into_iter(), .keys(),
    // .values(), .drain().
    assert_eq!(count("fast-map-iteration"), 6);
    // parser.rs: element index, range slice, tuple-field receiver — the
    // `#[cfg(test)]` indexing must not count.
    assert_eq!(count("panic-index"), 3);
    // lossy_cast.rs: annotated binding, .len(), both sign flips, inferred
    // binding, suffixed literal.
    assert_eq!(count("lossy-cast"), 6);
}

#[test]
fn cached_run_replays_identical_findings() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("violations");
    let cold = lint_tree(&root).expect("cold run");
    // Warm the cache with one pass, then rerun: every file is a hash hit,
    // and the replayed report must render byte-identically.
    let mut cache = sla_lint::cache::Cache::default();
    let first = sla_lint::lint_tree_with_cache(&root, &mut cache).expect("warming run");
    assert_eq!(cache.len(), first.files);
    let second = sla_lint::lint_tree_with_cache(&root, &mut cache).expect("cached run");
    let render = |r: &Report| {
        let mut out = String::new();
        for f in &r.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        for w in &r.waivers {
            out.push_str(&format!(
                "{}:{}: allow({}): {}\n",
                w.file, w.line, w.rule, w.reason
            ));
        }
        out
    };
    assert_eq!(render(&cold), render(&first));
    assert_eq!(render(&cold), render(&second));
    assert_eq!(cold.files, second.files);
}

#[test]
fn clean_tree_is_clean_and_counts_its_waiver() {
    let report = fixture("clean");
    assert!(
        report.findings.is_empty(),
        "clean tree produced findings: {:#?}",
        report.findings
    );
    assert_eq!(report.waivers.len(), 1, "exactly the waived float");
    let w = &report.waivers[0];
    assert_eq!(w.rule, "float-arith");
    assert_eq!(w.file, "crates/core/src/waived_float.rs");
    assert!(!w.reason.is_empty());
}
