//! `sla-lint` — the repo-native determinism-contract linter.
//!
//! The workspace's central promise (ROADMAP "Determinism contract") is that
//! `SLA_THREADS=N` runs are bit-identical to `SLA_THREADS=1` for every
//! pipeline. The property tests and the CI determinism matrix guard that
//! contract at *runtime*; this crate guards it at the *source* level, where
//! the classic leak paths are visible before they ever reach a run:
//! default-hasher map iteration, ad-hoc wall-clock reads, ambient environment
//! configuration, stray threading, and float arithmetic. See
//! [`rules::RULES`] for the registry and [`rules`] for the waiver syntax and
//! the recipe for adding a rule.
//!
//! Three entry points, all deterministic themselves (files are discovered in
//! sorted order, findings are reported in file/line order):
//!
//! * [`lint_tree`] — lint every `.rs` file under a root directory. In
//!   workspace mode the root is the workspace itself; the fixture trees under
//!   `crates/lint/fixtures/` are miniature workspace roots linted the same
//!   way (and skipped when linting the real one).
//! * [`lint_sources`] — the same over in-memory `(path, content)` pairs,
//!   for tests.
//! * the `sla-lint` binary — `--workspace`, `--list-rules`, or explicit
//!   fixture roots; exits nonzero on findings.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub mod cache;
pub mod lexer;
pub mod parser;
pub mod rules;

pub use rules::{Rule, RULES};

/// One diagnostic, printed as `file:line: rule-id: message`.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Path relative to the linted root, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Id of the violated rule.
    pub rule: &'static str,
    /// Human-readable explanation with the sanctioned alternative.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A waiver that suppressed at least one finding, for reporting.
#[derive(Debug, Clone)]
pub struct AppliedWaiver {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub reason: String,
}

/// Result of one lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that survived waiver filtering, in file/line order.
    pub findings: Vec<Finding>,
    /// Every syntactically valid waiver encountered, whether or not it
    /// suppressed anything (the zero-waiver checks of `tests/lint.rs` key on
    /// this).
    pub waivers: Vec<AppliedWaiver>,
    /// Number of `.rs` files linted.
    pub files: usize,
}

/// One tokenized source file plus its path-based classification.
pub struct SourceFile {
    /// Path relative to the linted root, `/`-separated.
    pub rel: String,
    /// Token stream (comments included; rules filter as needed).
    pub tokens: Vec<lexer::Token>,
}

impl SourceFile {
    /// Library code: a crate's `src/` tree or the root facade `src/`.
    /// Integration tests (`tests/`), examples and fixtures are not library
    /// code — rules scoped to libraries (the default-hasher rule) skip them.
    pub fn is_lib_code(&self) -> bool {
        if self.rel.starts_with("src/") {
            return true;
        }
        let Some(in_crates) = self.rel.strip_prefix("crates/") else {
            return false;
        };
        in_crates
            .split_once('/')
            .is_some_and(|(_, rest)| rest.starts_with("src/"))
    }

    fn finding(&self, line: u32, rule: &'static str, message: String) -> Finding {
        Finding {
            file: self.rel.clone(),
            line,
            rule,
            message,
        }
    }
}

/// Findings and waivers of one file — the unit the incremental cache stores.
/// Waiver filtering is per file (a waiver can only suppress findings in its
/// own file), so caching at this granularity is exact: a workspace report is
/// the concatenation of per-file reports in sorted path order.
#[derive(Debug, Clone, Default)]
pub struct FileReport {
    /// Findings that survived waiver filtering, in line/rule order.
    pub findings: Vec<Finding>,
    /// Every syntactically valid waiver, whether or not it suppressed
    /// anything.
    pub waivers: Vec<AppliedWaiver>,
}

/// Lints a single file: tokenize, collect waivers, run every applicable
/// rule, sort, waiver-filter. Pure — the output depends only on `rel` and
/// `content`, which is what makes [`cache`] keying sound.
pub fn lint_file(rel: &str, content: &str) -> FileReport {
    let file = SourceFile {
        rel: rel.to_string(),
        tokens: lexer::tokenize(content),
    };
    let mut raw = Vec::new();
    let waivers = rules::collect_waivers(&file, &mut raw);
    rules::check_file(&file, &mut raw);
    raw.sort_by_key(|f| (f.line, rule_order(f.rule)));
    let mut report = FileReport::default();
    for finding in raw {
        let waived = waivers.iter().any(|w| {
            w.rule == finding.rule && (finding.line == w.line || finding.line == w.line + 1)
        });
        if !waived {
            report.findings.push(finding);
        }
    }
    // Every syntactically valid waiver is reported exactly once, whether
    // or not it suppressed anything — the zero-waiver acceptance checks
    // of `tests/lint.rs` count these.
    for w in waivers {
        report.waivers.push(AppliedWaiver {
            file: file.rel.clone(),
            line: w.line,
            rule: w.rule,
            reason: w.reason,
        });
    }
    report
}

/// Lints in-memory sources. `sources` are `(relative_path, content)` pairs;
/// they are processed in sorted path order regardless of input order.
pub fn lint_sources(mut sources: Vec<(String, String)>) -> Report {
    sources.sort_by(|a, b| a.0.cmp(&b.0));
    let mut report = Report {
        files: sources.len(),
        ..Report::default()
    };
    for (rel, content) in sources {
        let file = lint_file(&rel, &content);
        report.findings.extend(file.findings);
        report.waivers.extend(file.waivers);
    }
    report
}

fn rule_order(id: &str) -> usize {
    RULES.iter().position(|r| r.id == id).unwrap_or(usize::MAX)
}

/// Lints every `.rs` file under `root`, skipping `target/`, `vendor/`,
/// `.git/` and the linter's own fixture trees (`crates/lint/fixtures/` —
/// they contain violations on purpose and are linted separately by pointing
/// `lint_tree` at them).
///
/// # Errors
///
/// Propagates filesystem errors (unreadable directories or files).
pub fn lint_tree(root: &Path) -> io::Result<Report> {
    Ok(lint_sources(collect_sources(root)?))
}

/// [`lint_tree`] with an incremental cache: files whose content hash matches
/// a cache entry reuse the stored per-file report instead of re-linting.
/// The report is identical to a cold [`lint_tree`] run by construction —
/// per-file reports are pure functions of `(rel, content)` and the
/// aggregation order is the same sorted path order. The cache is updated in
/// place (pruned to exactly the files seen this run); the caller persists it.
///
/// # Errors
///
/// Propagates filesystem errors (unreadable directories or files).
pub fn lint_tree_with_cache(root: &Path, cache: &mut cache::Cache) -> io::Result<Report> {
    let sources = collect_sources(root)?;
    let mut report = Report {
        files: sources.len(),
        ..Report::default()
    };
    let mut next = cache::Cache::default();
    for (rel, content) in sources {
        let hash = cache::content_hash(&content);
        let file = match cache.take(&rel, hash) {
            Some(cached) => cached,
            None => lint_file(&rel, &content),
        };
        next.put(rel, hash, file.clone());
        report.findings.extend(file.findings);
        report.waivers.extend(file.waivers);
    }
    *cache = next;
    Ok(report)
}

/// Collects `(relative_path, content)` pairs for every `.rs` file under
/// `root`, in sorted path order.
fn collect_sources(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    let mut sources = Vec::with_capacity(files.len());
    for path in files {
        let rel = path
            .strip_prefix(root)
            .expect("collected under root")
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        sources.push((rel, fs::read_to_string(&path)?));
    }
    Ok(sources)
}

const SKIP_DIRS: &[&str] = &["target", "vendor", ".git"];
const SKIP_RELS: &[&str] = &["crates/lint/fixtures"];

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    // Deterministic discovery order regardless of filesystem enumeration.
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            let rel = path.strip_prefix(root).expect("under root");
            let rel = rel
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            if SKIP_RELS.contains(&rel.as_str()) {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Walks upward from `start` looking for a `Cargo.toml` declaring
/// `[workspace]` — how the binary resolves `--workspace` from any
/// subdirectory.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_one(rel: &str, src: &str) -> Report {
        lint_sources(vec![(rel.to_string(), src.to_string())])
    }

    #[test]
    fn default_hasher_flags_lib_code_only() {
        let src = "use std::collections::HashMap;\n";
        let lib = lint_one("crates/core/src/x.rs", src);
        assert_eq!(lib.findings.len(), 1);
        assert_eq!(lib.findings[0].rule, "default-hasher");
        assert_eq!(lib.findings[0].line, 1);
        for exempt in ["tests/x.rs", "examples/x.rs", "crates/core/tests/x.rs"] {
            assert!(lint_one(exempt, src).findings.is_empty(), "{exempt}");
        }
        // The definition site is allow-listed.
        assert!(lint_one("crates/netlist/src/hash.rs", src)
            .findings
            .is_empty());
    }

    #[test]
    fn hashmap_in_strings_and_comments_is_ignored() {
        let src = "// HashMap in a comment\nfn f() -> &'static str { \"HashMap\" }\n";
        assert!(lint_one("crates/core/src/x.rs", src).findings.is_empty());
    }

    #[test]
    fn wall_clock_flags_everything_but_the_helper() {
        let src = "use std::time::Instant;\nfn f() { let _ = Instant::now(); }\n";
        let r = lint_one("crates/bench/src/x.rs", src);
        assert_eq!(
            r.findings.iter().filter(|f| f.rule == "wall-clock").count(),
            2
        );
        assert!(lint_one("crates/netlist/src/wallclock.rs", src)
            .findings
            .is_empty());
        let st = lint_one(
            "tests/x.rs",
            "fn f() { let _ = std::time::SystemTime::now(); }",
        );
        assert_eq!(st.findings[0].rule, "wall-clock");
    }

    #[test]
    fn env_reads_flagged_outside_par_and_bench() {
        let read = "fn f() { let _ = std::env::var(\"X\"); }\n";
        assert_eq!(
            lint_one("crates/core/src/x.rs", read).findings[0].rule,
            "env-read"
        );
        assert_eq!(lint_one("examples/x.rs", read).findings[0].rule, "env-read");
        assert!(lint_one("crates/par/src/lib.rs", read).findings.is_empty());
        assert!(lint_one("crates/bench/src/bin/t.rs", read)
            .findings
            .is_empty());
        // args is explicit CLI input, not an ambient read.
        assert!(lint_one(
            "crates/lint/src/main.rs",
            "fn f() { let _ = std::env::args(); }"
        )
        .findings
        .is_empty());
        // Importing the module wholesale is flagged: it hides later reads.
        assert_eq!(
            lint_one("src/lib.rs", "use std::env;\n").findings[0].rule,
            "env-read"
        );
        let grouped = lint_one("src/lib.rs", "use std::{env::var_os, fmt};\n");
        assert_eq!(grouped.findings.len(), 1);
    }

    #[test]
    fn thread_and_sync_flagged_outside_par() {
        let src = "use std::thread;\nuse std::sync::{Mutex, mpsc::channel};\n";
        let r = lint_one("crates/sim/src/x.rs", src);
        assert_eq!(
            r.findings
                .iter()
                .filter(|f| f.rule == "thread-spawn")
                .count(),
            3
        );
        assert!(lint_one("crates/par/src/pool.rs", src).findings.is_empty());
        let spawn = lint_one("tests/x.rs", "fn f() { std::thread::spawn(|| {}); }");
        assert_eq!(spawn.findings[0].rule, "thread-spawn");
    }

    #[test]
    fn float_rule_scoped_to_pipeline_crates() {
        let src = "fn f(x: f64) -> f64 { x * 1.5 }\n";
        let r = lint_one("crates/atpg/src/x.rs", src);
        assert_eq!(
            r.findings
                .iter()
                .filter(|f| f.rule == "float-arith")
                .count(),
            3
        );
        assert!(lint_one("crates/circuits/src/x.rs", src)
            .findings
            .is_empty());
        assert!(lint_one("crates/bench/src/x.rs", src).findings.is_empty());
        // Exponent literals count; integer-dot forms do not.
        assert_eq!(
            lint_one(
                "crates/par/src/x.rs",
                "const E: i64 = 0; fn g() { let _ = 1e-9; }"
            )
            .findings
            .len(),
            1
        );
        assert!(
            lint_one("crates/par/src/x.rs", "fn g(v: &[u8]) { let _ = v.len(); }")
                .findings
                .is_empty()
        );
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let bad = "fn f() { unsafe { core::hint::unreachable_unchecked() } }\n";
        assert_eq!(
            lint_one("crates/sim/src/x.rs", bad).findings[0].rule,
            "unsafe-safety"
        );
        let good = "fn f() {\n    // SAFETY: caller guarantees the invariant\n    unsafe { core::hint::unreachable_unchecked() }\n}\n";
        assert!(lint_one("crates/sim/src/x.rs", good).findings.is_empty());
    }

    #[test]
    fn waivers_suppress_with_reason_and_are_reported() {
        let src = "// sla-lint: allow(env-read): display-only stable-output switch\n\
                   fn f() { let _ = std::env::var_os(\"SLA_STABLE_OUTPUT\"); }\n";
        let r = lint_one("examples/util/stable.rs", src);
        assert!(r.findings.is_empty());
        assert_eq!(r.waivers.len(), 1);
        assert_eq!(r.waivers[0].rule, "env-read");
        assert!(r.waivers[0].reason.contains("display-only"));
    }

    #[test]
    fn waiver_without_reason_is_a_finding_and_suppresses_nothing() {
        let src = "// sla-lint: allow(env-read)\n\
                   fn f() { let _ = std::env::var(\"X\"); }\n";
        let r = lint_one("examples/x.rs", src);
        let rules: Vec<_> = r.findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"waiver-syntax"), "{rules:?}");
        assert!(rules.contains(&"env-read"), "{rules:?}");
        assert!(r.waivers.is_empty());
    }

    #[test]
    fn waiver_for_unknown_rule_is_a_finding() {
        let src = "// sla-lint: allow(no-such-rule): reasons\nfn f() {}\n";
        let r = lint_one("examples/x.rs", src);
        assert_eq!(r.findings[0].rule, "waiver-syntax");
        assert!(r.findings[0].message.contains("no-such-rule"));
    }

    #[test]
    fn doc_comments_do_not_waive() {
        let src = "/// `// sla-lint: allow(env-read): quoted syntax in docs`\n\
                   fn f() { let _ = std::env::var(\"X\"); }\n";
        let r = lint_one("examples/x.rs", src);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "env-read");
        assert!(r.waivers.is_empty());
    }

    #[test]
    fn trailing_waiver_covers_its_own_line() {
        let src =
            "fn f() { let _ = std::env::var(\"X\"); } // sla-lint: allow(env-read): harness knob\n";
        let r = lint_one("examples/x.rs", src);
        assert!(r.findings.is_empty());
        assert_eq!(r.waivers.len(), 1);
    }

    #[test]
    fn findings_sorted_and_rendered() {
        let r = lint_sources(vec![
            ("b.rs".into(), "use std::time::Instant;\n".into()),
            (
                "a.rs".into(),
                "\nfn f() { let _ = std::env::var(\"X\"); }\n".into(),
            ),
        ]);
        assert_eq!(r.findings.len(), 2);
        assert_eq!(r.findings[0].file, "a.rs");
        let line = r.findings[0].to_string();
        assert!(line.starts_with("a.rs:2: env-read: "), "{line}");
    }

    #[test]
    fn rule_registry_ids_are_unique() {
        for (i, a) in RULES.iter().enumerate() {
            assert!(!a.id.is_empty() && !a.summary.is_empty() && !a.rationale.is_empty());
            for b in &RULES[i + 1..] {
                assert_ne!(a.id, b.id);
            }
        }
    }
}
