//! A comment/string/char-literal-aware tokenizer for Rust source.
//!
//! The rules in [`crate::rules`] match *code* tokens (identifiers, literals,
//! punctuation) and read *comment* tokens for waivers and `SAFETY:` notes, so
//! the one job of this lexer is to never confuse the two: `"// not a
//! comment"` must stay a string, `/* outer /* nested */ */` must close at the
//! right depth, `'a'` must not start a string-like region while `'a` (a
//! lifetime) must not swallow the rest of the line. It is a scanner in the
//! same hand-rolled style as the `.bench` parser in `sla-netlist` — no `syn`,
//! no proc-macro machinery, because the build environment has no crates.io
//! access and the rules only need token-level syntax.
//!
//! Coverage is the published Rust token grammar subset the workspace uses:
//! line and (nested) block comments, string / raw string / byte string / raw
//! byte string literals with arbitrary `#` counts, char and byte-char
//! literals with escapes, lifetimes, raw identifiers, and integer vs float
//! literal classification (decimal point, exponent, or `f32`/`f64` suffix).

/// Lexical class of one [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (raw identifiers are reported by bare name).
    Ident,
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct,
    /// Integer literal, including its suffix if any.
    Int,
    /// Float literal: decimal point, exponent, or `f32`/`f64` suffix.
    Float,
    /// String, raw string, byte string or raw byte string literal.
    Str,
    /// Char or byte-char literal.
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// `//`-comment. `text` keeps the full comment including the slashes, so
    /// rules can distinguish plain `//` from doc `///` / `//!` forms.
    LineComment,
    /// `/* ... */` comment, nesting-aware. May span lines.
    BlockComment,
}

/// One lexed token with the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
    pub text: String,
}

impl Token {
    /// `true` for the comment kinds.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// `true` when this is an identifier with exactly this name.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// `true` when this is this exact punctuation character.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct
            && self.text.len() == ch.len_utf8()
            && self.text.starts_with(ch)
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Tokenizes `src`. Unterminated literals or comments consume the rest of the
/// input rather than erroring: the linter must degrade gracefully on code the
/// compiler would reject anyway.
pub fn tokenize(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    /// Advances one char, counting newlines.
    fn bump(&mut self) {
        if self.peek(0) == Some('\n') {
            self.line += 1;
        }
        self.i += 1;
    }

    fn push(&mut self, kind: TokenKind, line: u32, start: usize) {
        let text: String = self.chars[start..self.i].iter().collect();
        self.out.push(Token { kind, line, text });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            let start = self.i;
            match c {
                _ if c.is_whitespace() => self.bump(),
                '/' if self.peek(1) == Some('/') => {
                    while self.peek(0).is_some_and(|c| c != '\n') {
                        self.bump();
                    }
                    self.push(TokenKind::LineComment, line, start);
                }
                '/' if self.peek(1) == Some('*') => {
                    self.block_comment(line, start);
                }
                '"' => {
                    self.bump();
                    self.string_body();
                    self.push(TokenKind::Str, line, start);
                }
                'r' | 'b' if self.raw_or_byte_literal(line, start) => {}
                '\'' => self.char_or_lifetime(line, start),
                _ if c.is_ascii_digit() => self.number(line, start),
                _ if is_ident_start(c) => {
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.bump();
                    }
                    self.push(TokenKind::Ident, line, start);
                }
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct, line, start);
                }
            }
        }
        self.out
    }

    /// Nesting-aware `/* ... */`.
    fn block_comment(&mut self, line: u32, start: usize) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 && self.peek(0).is_some() {
            if self.peek(0) == Some('/') && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.peek(0) == Some('*') && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
        self.push(TokenKind::BlockComment, line, start);
    }

    /// Body of a non-raw string/byte-string after the opening `"`.
    fn string_body(&mut self) {
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => {
                    self.bump();
                    self.bump();
                }
                '"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Handles the `r` / `b` prefixed literal forms. Returns `false` when the
    /// prefix turns out to start a plain identifier (the caller then lexes
    /// it), consuming nothing in that case.
    fn raw_or_byte_literal(&mut self, line: u32, start: usize) -> bool {
        let c = self.peek(0).expect("caller checked");
        // b'x' — byte char.
        if c == 'b' && self.peek(1) == Some('\'') {
            self.bump();
            self.bump();
            self.char_body();
            self.push(TokenKind::Char, line, start);
            return true;
        }
        // b"..." — byte string.
        if c == 'b' && self.peek(1) == Some('"') {
            self.bump();
            self.bump();
            self.string_body();
            self.push(TokenKind::Str, line, start);
            return true;
        }
        // r"..." / r#"..."# / br"..." / br#"..."# — raw (byte) strings, and
        // r#ident — raw identifiers.
        let after_b = usize::from(c == 'b');
        if self.peek(after_b) != Some('r') {
            return false;
        }
        let mut j = after_b + 1;
        let mut hashes = 0usize;
        while self.peek(j) == Some('#') {
            hashes += 1;
            j += 1;
        }
        match self.peek(j) {
            Some('"') => {
                for _ in 0..=j {
                    self.bump();
                }
                self.raw_string_body(hashes);
                self.push(TokenKind::Str, line, start);
                true
            }
            Some(id) if c == 'r' && hashes == 1 && is_ident_start(id) => {
                // Raw identifier: skip `r#`, report the bare name so rules
                // match `r#HashMap` exactly like `HashMap`.
                self.bump();
                self.bump();
                let name_start = self.i;
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.bump();
                }
                self.push(TokenKind::Ident, line, name_start);
                true
            }
            _ => false,
        }
    }

    /// Raw-string body after the opening quote: runs to `"` followed by
    /// `hashes` `#` characters.
    fn raw_string_body(&mut self, hashes: usize) {
        while self.peek(0).is_some() {
            if self.peek(0) == Some('"') && (0..hashes).all(|k| self.peek(1 + k) == Some('#')) {
                for _ in 0..=hashes {
                    self.bump();
                }
                return;
            }
            self.bump();
        }
    }

    /// Body of a char literal after the opening `'`.
    fn char_body(&mut self) {
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => {
                    self.bump();
                    self.bump();
                }
                '\'' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// `'` starts either a char literal or a lifetime: it is a lifetime when
    /// an identifier follows and the char after that identifier run is not a
    /// closing `'` (so `'a'` is a char, `'a` and `'static` are lifetimes).
    fn char_or_lifetime(&mut self, line: u32, start: usize) {
        if self.peek(1).is_some_and(is_ident_start) && self.peek(1) != Some('\\') {
            let mut j = 2;
            while self.peek(j).is_some_and(is_ident_continue) {
                j += 1;
            }
            if self.peek(j) != Some('\'') {
                for _ in 0..j {
                    self.bump();
                }
                self.push(TokenKind::Lifetime, line, start);
                return;
            }
        }
        self.bump();
        self.char_body();
        self.push(TokenKind::Char, line, start);
    }

    /// Integer or float literal starting at an ASCII digit.
    fn number(&mut self, line: u32, start: usize) {
        let mut is_float = false;
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x' | 'o' | 'b')) {
            self.bump();
            self.bump();
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_hexdigit() || c == '_')
            {
                self.bump();
            }
        } else {
            while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                self.bump();
            }
            // A decimal point makes a float unless it starts a range (`0..9`),
            // a method call (`1.max(2)`) or a field access.
            if self.peek(0) == Some('.') {
                match self.peek(1) {
                    Some(c) if c.is_ascii_digit() => {
                        is_float = true;
                        self.bump();
                        while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                            self.bump();
                        }
                    }
                    Some(c) if c == '.' || is_ident_start(c) => {}
                    _ => {
                        // Trailing-dot float like `1.`.
                        is_float = true;
                        self.bump();
                    }
                }
            }
            // Exponent.
            if matches!(self.peek(0), Some('e' | 'E')) {
                let (sign, digit) = match self.peek(1) {
                    Some('+' | '-') => (1, self.peek(2)),
                    other => (0, other),
                };
                if digit.is_some_and(|c| c.is_ascii_digit()) {
                    is_float = true;
                    for _ in 0..=sign {
                        self.bump();
                    }
                    while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                        self.bump();
                    }
                }
            }
        }
        // Suffix (`u64`, `usize`, `f32`...).
        let suffix_start = self.i;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        let suffix: String = self.chars[suffix_start..self.i].iter().collect();
        if suffix == "f32" || suffix == "f64" {
            is_float = true;
        }
        let kind = if is_float {
            TokenKind::Float
        } else {
            TokenKind::Int
        };
        self.push(kind, line, start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn nested_block_comments_close_at_depth() {
        let toks = kinds("/* a /* b /* c */ */ still comment */ x");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert!(toks[0].1.contains("still comment"));
        assert_eq!(toks[1], (TokenKind::Ident, "x".to_string()));
    }

    #[test]
    fn comment_markers_inside_strings_and_chars_are_not_comments() {
        let toks = kinds("let s = \"// no\"; let c = '/'; let d = '/';");
        assert!(toks.iter().all(|t| t.0 != TokenKind::LineComment));
        assert_eq!(toks.iter().filter(|t| t.0 == TokenKind::Char).count(), 2);
        let s = toks.iter().find(|t| t.0 == TokenKind::Str).unwrap();
        assert_eq!(s.1, "\"// no\"");
    }

    #[test]
    fn raw_strings_with_hashes_and_quotes() {
        let toks = kinds(r###"let s = r#"quote " and // slashes"#; y"###);
        let s = toks.iter().find(|t| t.0 == TokenKind::Str).unwrap();
        assert!(s.1.contains("// slashes"));
        assert!(toks.iter().any(|t| t.1 == "y"));
        assert!(toks.iter().all(|t| t.0 != TokenKind::LineComment));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let toks = kinds("let a = b\"//x\"; let b2 = br#\"//y\"#; let c = b'z';");
        assert_eq!(toks.iter().filter(|t| t.0 == TokenKind::Str).count(), 2);
        assert_eq!(toks.iter().filter(|t| t.0 == TokenKind::Char).count(), 1);
        assert!(toks.iter().all(|t| t.0 != TokenKind::LineComment));
    }

    #[test]
    fn raw_identifiers_report_bare_name() {
        let toks = kinds("let r#type = 1;");
        assert!(toks
            .iter()
            .any(|t| t.0 == TokenKind::Ident && t.1 == "type"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'a' }");
        assert_eq!(
            toks.iter().filter(|t| t.0 == TokenKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|t| t.0 == TokenKind::Char).count(), 1);
        let esc = kinds(r"let q = '\''; let b = '\\';");
        assert_eq!(esc.iter().filter(|t| t.0 == TokenKind::Char).count(), 2);
    }

    #[test]
    fn float_vs_int_classification() {
        let cases: &[(&str, TokenKind)] = &[
            ("1.5", TokenKind::Float),
            ("1e9", TokenKind::Float),
            ("1E-9", TokenKind::Float),
            ("2f64", TokenKind::Float),
            ("3.0f32", TokenKind::Float),
            ("7", TokenKind::Int),
            ("0xff", TokenKind::Int),
            ("0b1010", TokenKind::Int),
            ("1_000", TokenKind::Int),
            ("10u64", TokenKind::Int),
        ];
        for (src, want) in cases {
            let toks = tokenize(src);
            assert_eq!(toks.len(), 1, "{src}");
            assert_eq!(toks[0].kind, *want, "{src}");
        }
        // Ranges, method calls and field/tuple access do not create floats.
        for src in ["0..10", "1.max(2)", "x.0", "sig.len()"] {
            assert!(
                tokenize(src).iter().all(|t| t.kind != TokenKind::Float),
                "{src}"
            );
        }
        // Trailing-dot float.
        assert_eq!(tokenize("1. ;")[0].kind, TokenKind::Float);
    }

    #[test]
    fn lines_are_tracked_through_multiline_tokens() {
        let src = "a\n/* c1\nc2 */\nb \"s1\ns2\" c";
        let toks = tokenize(src);
        let find = |name: &str| toks.iter().find(|t| t.text == name).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 4);
        assert_eq!(find("c"), 5);
        let comment = toks
            .iter()
            .find(|t| t.kind == TokenKind::BlockComment)
            .unwrap();
        assert_eq!(comment.line, 2);
    }

    #[test]
    fn doc_comments_are_line_comments_with_full_text() {
        let toks = tokenize("/// doc\n//! inner\n// plain");
        assert_eq!(toks.len(), 3);
        assert!(toks.iter().all(|t| t.kind == TokenKind::LineComment));
        assert_eq!(toks[0].text, "/// doc");
        assert_eq!(toks[1].text, "//! inner");
        assert_eq!(toks[2].text, "// plain");
    }
}
