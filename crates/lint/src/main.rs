//! The `sla-lint` command-line front end.
//!
//! ```text
//! sla-lint --workspace          lint the enclosing workspace's own sources
//! sla-lint --list-rules         print the rule registry
//! sla-lint --list-waivers       also print every counted waiver (sorted)
//! sla-lint --json               machine-readable findings on stdout
//! sla-lint --github             GitHub workflow ::error annotations
//! sla-lint --cache <path>       incremental mode: reuse per-file findings
//!                               keyed by content hash, update <path>
//! sla-lint <root-dir>...        lint the tree(s) under explicit roots
//!                               (fixture mode — how the test suite drives it)
//! ```
//!
//! Output modes compose with either target selection. `--json` replaces the
//! human findings listing (one sorted, compact JSON document, identical
//! bytes for identical reports — CI diffs cold vs cached runs with `cmp`);
//! `--github` adds one `::error` annotation per finding for workflow logs.
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use sla_lint::{cache::Cache, find_workspace_root, lint_tree, lint_tree_with_cache, Report, RULES};

struct Options {
    roots: Vec<PathBuf>,
    json: bool,
    github: bool,
    list_waivers: bool,
    cache: Option<PathBuf>,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        return ExitCode::from(2);
    }

    if args.iter().any(|a| a == "--list-rules") {
        for rule in RULES {
            println!("{:<20} {}", rule.id, rule.summary);
            println!("{:<20}   {}", "", rule.rationale);
        }
        return ExitCode::SUCCESS;
    }

    let mut opts = Options {
        roots: Vec::new(),
        json: false,
        github: false,
        list_waivers: false,
        cache: None,
    };
    let mut workspace = false;
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--json" => opts.json = true,
            "--github" => opts.github = true,
            "--list-waivers" => opts.list_waivers = true,
            "--cache" => match args.next() {
                Some(path) => opts.cache = Some(PathBuf::from(path)),
                None => {
                    eprintln!("sla-lint: --cache needs a path argument");
                    return ExitCode::from(2);
                }
            },
            other if other.starts_with("--") => {
                eprintln!("sla-lint: unknown flag `{other}`");
                usage();
                return ExitCode::from(2);
            }
            root => opts.roots.push(PathBuf::from(root)),
        }
    }

    if workspace {
        let cwd = match std::env::current_dir() {
            Ok(d) => d,
            Err(e) => {
                eprintln!("sla-lint: cannot resolve current directory: {e}");
                return ExitCode::from(2);
            }
        };
        match find_workspace_root(&cwd) {
            Some(root) => opts.roots.push(root),
            None => {
                eprintln!(
                    "sla-lint: no workspace root (Cargo.toml with [workspace]) above {}",
                    cwd.display()
                );
                return ExitCode::from(2);
            }
        }
    }
    if opts.roots.is_empty() {
        usage();
        return ExitCode::from(2);
    }

    let mut cache = match &opts.cache {
        Some(path) => match Cache::load(path) {
            Ok(cache) => Some(cache),
            Err(e) => {
                eprintln!("sla-lint: cannot read cache {}: {e}", path.display());
                return ExitCode::from(2);
            }
        },
        None => None,
    };

    let mut total = Report::default();
    for root in &opts.roots {
        let linted = match &mut cache {
            Some(cache) => lint_tree_with_cache(root, cache),
            None => lint_tree(root),
        };
        match linted {
            Ok(report) => {
                total.files += report.files;
                total.findings.extend(report.findings);
                total.waivers.extend(report.waivers);
            }
            Err(e) => {
                eprintln!("sla-lint: {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    }

    if let (Some(cache), Some(path)) = (&cache, &opts.cache) {
        if let Err(e) = cache.save(path) {
            eprintln!("sla-lint: cannot write cache {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if opts.json {
        println!("{}", to_json(&total));
    } else {
        for finding in &total.findings {
            println!("{finding}");
        }
    }
    if opts.github {
        for f in &total.findings {
            // One workflow annotation per finding; GitHub renders these
            // inline on the PR diff.
            println!(
                "::error file={},line={},title=sla-lint {}::{}",
                f.file,
                f.line,
                f.rule,
                github_escape(&f.message)
            );
        }
    }
    if opts.list_waivers {
        // Already in sorted (file, line) order: files are processed sorted
        // and waivers collected in line order within each file.
        for w in &total.waivers {
            println!("{}:{}: allow({}): {}", w.file, w.line, w.rule, w.reason);
        }
    }
    eprintln!(
        "sla-lint: {} file(s), {} finding(s), {} waiver(s)",
        total.files,
        total.findings.len(),
        total.waivers.len()
    );
    if total.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage() {
    eprintln!(
        "usage: sla-lint [--json] [--github] [--list-waivers] [--cache <path>] \
         (--workspace | <root-dir>...)\n       sla-lint --list-rules"
    );
}

/// Renders the report as one compact JSON document. Hand-rolled (the
/// workspace builds without serialization dependencies); findings and
/// waivers are already sorted, so equal reports give equal bytes.
fn to_json(report: &Report) -> String {
    let mut out = String::from("{\"files\":");
    out.push_str(&report.files.to_string());
    out.push_str(",\"findings\":[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":{},\"line\":{},\"rule\":{},\"message\":{}}}",
            json_string(&f.file),
            f.line,
            json_string(f.rule),
            json_string(&f.message)
        ));
    }
    out.push_str("],\"waivers\":[");
    for (i, w) in report.waivers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":{},\"line\":{},\"rule\":{},\"reason\":{}}}",
            json_string(&w.file),
            w.line,
            json_string(w.rule),
            json_string(&w.reason)
        ));
    }
    out.push_str("]}");
    out
}

/// JSON string literal with the mandatory escapes.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Workflow-command data escaping: `%`, `\r`, `\n` are the significant
/// characters in annotation messages.
fn github_escape(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}
