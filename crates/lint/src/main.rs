//! The `sla-lint` command-line front end.
//!
//! ```text
//! sla-lint --workspace          lint the enclosing workspace's own sources
//! sla-lint --list-rules         print the rule registry
//! sla-lint <root-dir>...        lint the tree(s) under explicit roots
//!                               (fixture mode — how the test suite drives it)
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use sla_lint::{find_workspace_root, lint_tree, Report, RULES};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: sla-lint --workspace | --list-rules | <root-dir>...");
        return ExitCode::from(2);
    }

    if args.iter().any(|a| a == "--list-rules") {
        for rule in RULES {
            println!("{:<16} {}", rule.id, rule.summary);
            println!("{:<16}   {}", "", rule.rationale);
        }
        return ExitCode::SUCCESS;
    }

    let roots: Vec<PathBuf> = if args.iter().any(|a| a == "--workspace") {
        let cwd = match std::env::current_dir() {
            Ok(d) => d,
            Err(e) => {
                eprintln!("sla-lint: cannot resolve current directory: {e}");
                return ExitCode::from(2);
            }
        };
        match find_workspace_root(&cwd) {
            Some(root) => vec![root],
            None => {
                eprintln!(
                    "sla-lint: no workspace root (Cargo.toml with [workspace]) above {}",
                    cwd.display()
                );
                return ExitCode::from(2);
            }
        }
    } else {
        args.iter().map(PathBuf::from).collect()
    };

    let mut total = Report::default();
    for root in &roots {
        match lint_tree(root) {
            Ok(report) => {
                total.files += report.files;
                total.findings.extend(report.findings);
                total.waivers.extend(report.waivers);
            }
            Err(e) => {
                eprintln!("sla-lint: {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    }

    for finding in &total.findings {
        println!("{finding}");
    }
    eprintln!(
        "sla-lint: {} file(s), {} finding(s), {} waiver(s)",
        total.files,
        total.findings.len(),
        total.waivers.len()
    );
    if total.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
