//! A lightweight syntactic layer on top of [`crate::lexer`] — the engine
//! behind the flow-aware rules (`fast-map-iteration`, `panic-index`,
//! `lossy-cast`).
//!
//! The PR-6 linter matched individual tokens, which is enough to ban an
//! identifier (`HashMap`) or a path (`std::thread`), but structurally blind
//! to anything that needs *context*: whether a `for` loop iterates a
//! `FastHashMap`, whether `[` opens an index expression or an array literal,
//! or what the source type of an `as` cast is. This module adds exactly the
//! context those rules need — no more. It is a single forward pass over the
//! token stream that maintains:
//!
//! * a **scope-stacked binding table**: `let` bindings, `fn` parameters and
//!   closure parameters, each classified as a fast map
//!   (`FastHashMap`/`FastHashSet`), a known-width integer, or unknown. Type
//!   propagation is deliberately simple and *conservative*: a binding gets a
//!   type only from an explicit annotation, a suffixed integer literal, a
//!   trailing `as <int>` cast with no top-level operators, a trailing
//!   `.len()`/`.count()` call (→ `usize`), or a
//!   `FastHashMap::…`/`FastHashSet::…` construction. Anything else is
//!   unknown, and unknown never produces a finding. Pattern bindings
//!   (`for (a, b) in …`, `if let Some(x) = …`, closure params) mask outer
//!   bindings of the same name, so shadowing cannot resurrect a stale type.
//! * a **struct-field table** for the file, so `self.field` receivers
//!   resolve (per file — the classic single-translation-unit approximation).
//! * **method-call**, **`for`-loop** and **index-expression** recognition.
//!   A `[` opens an index expression exactly when the previous code token
//!   can end an expression (identifier, literal, `)`, `]`, `?`); everything
//!   else — array literals, types, attributes, slice patterns, macros — is
//!   not flagged.
//!
//! What this layer intentionally does **not** see, so rule consumers (and
//! waiver reviewers) know where the blind spots are: cross-file type
//! aliases (`SupportMap`), field types of *other* files' structs, match-arm
//! pattern types, and expression types built from binary operators. A cast
//! whose source type is not provable here is simply not reported — the
//! overflow-checks CI lane and review cover the remainder. `usize`/`isize`
//! are treated as 64 bits wide: every supported target (and CI) is 64-bit.

use crate::lexer::{Token, TokenKind};

/// Everything the flow-aware rules need to know about one file.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Line of the first `#[cfg(test)]` attribute, `u32::MAX` when the file
    /// has no test module. Rules that exempt test code compare against this.
    pub test_start: u32,
    /// Iteration events on values known to be `FastHashMap`/`FastHashSet`.
    pub fast_map_iterations: Vec<MapIteration>,
    /// Index expressions `expr[…]` (both `x[i]` and `x[a..b]` forms).
    pub index_exprs: Vec<IndexExpr>,
    /// `as` casts between integer types whose source type is provable.
    pub int_casts: Vec<IntCast>,
}

/// One banned-iteration event on a fast map.
#[derive(Debug)]
pub struct MapIteration {
    pub line: u32,
    /// Human-readable description of the offending form, e.g.
    /// `` `for … in by_slot` `` or `` `self.forward.iter()` ``.
    pub what: String,
}

/// One index expression.
#[derive(Debug)]
pub struct IndexExpr {
    pub line: u32,
}

/// One integer `as` cast with a provable source type.
#[derive(Debug)]
pub struct IntCast {
    pub line: u32,
    pub src: IntTy,
    pub dst: IntTy,
    /// What proved the source type, for the diagnostic (`` `x: u64` `` or
    /// `` `.len()` ``).
    pub provenance: String,
}

/// A primitive integer type, with `usize`/`isize` pinned to 64 bits (the
/// workspace's only supported pointer width — see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntTy {
    pub name: &'static str,
    pub bits: u16,
    pub signed: bool,
}

const INT_TYS: &[IntTy] = &[
    IntTy {
        name: "u8",
        bits: 8,
        signed: false,
    },
    IntTy {
        name: "u16",
        bits: 16,
        signed: false,
    },
    IntTy {
        name: "u32",
        bits: 32,
        signed: false,
    },
    IntTy {
        name: "u64",
        bits: 64,
        signed: false,
    },
    IntTy {
        name: "u128",
        bits: 128,
        signed: false,
    },
    IntTy {
        name: "usize",
        bits: 64,
        signed: false,
    },
    IntTy {
        name: "i8",
        bits: 8,
        signed: true,
    },
    IntTy {
        name: "i16",
        bits: 16,
        signed: true,
    },
    IntTy {
        name: "i32",
        bits: 32,
        signed: true,
    },
    IntTy {
        name: "i64",
        bits: 64,
        signed: true,
    },
    IntTy {
        name: "i128",
        bits: 128,
        signed: true,
    },
    IntTy {
        name: "isize",
        bits: 64,
        signed: true,
    },
];

/// Looks up a primitive integer type by name.
pub fn int_ty(name: &str) -> Option<IntTy> {
    INT_TYS.iter().copied().find(|t| t.name == name)
}

impl IntTy {
    /// `true` when a cast into `dst` can lose information: any value of
    /// `self` that `dst` cannot represent makes the `as` cast wrap silently.
    pub fn loses_into(self, dst: IntTy) -> bool {
        if self.signed == dst.signed {
            self.bits > dst.bits
        } else if self.signed {
            // signed → unsigned always loses the negatives.
            true
        } else {
            // unsigned → signed needs one extra bit.
            self.bits >= dst.bits
        }
    }
}

/// What the binding table knows about one name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarTy {
    /// `FastHashMap` or `FastHashSet`.
    FastMap,
    Int(IntTy),
    /// Bound, but with an unprovable type. Masks outer bindings.
    Unknown,
}

/// The iteration methods banned on fast maps. `entry`, `get`, `insert`,
/// `remove`, `contains_key` — the lookup vocabulary — are all fine.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "into_iter",
    "drain",
    "retain",
];

/// Keywords that can directly precede `[` without ending an expression.
/// An identifier *not* in this set followed by `[` is an index expression.
const KEYWORDS: &[&str] = &[
    "as", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "fn", "for",
    "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref", "return",
    "static", "struct", "trait", "type", "unsafe", "use", "where", "while",
];

/// Runs the analysis over a file's full token stream (comments included —
/// they are filtered here).
pub fn analyze(tokens: &[Token]) -> Analysis {
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    Analyzer {
        code,
        fields: Vec::new(),
        scopes: vec![Vec::new()],
        pending: Vec::new(),
        out: Analysis {
            test_start: u32::MAX,
            ..Analysis::default()
        },
    }
    .run()
}

struct Analyzer<'a> {
    code: Vec<&'a Token>,
    /// Names of struct fields (of any struct in this file) typed
    /// `FastHashMap`/`FastHashSet`.
    fields: Vec<String>,
    /// Innermost scope last; lookups scan from the end.
    scopes: Vec<Vec<(String, VarTy)>>,
    /// Bindings waiting for the next `{` to open their scope (fn and
    /// for-loop bindings live in the body, not the enclosing block).
    pending: Vec<(String, VarTy)>,
    out: Analysis,
}

impl<'a> Analyzer<'a> {
    fn tok(&self, i: usize) -> Option<&'a Token> {
        self.code.get(i).copied()
    }

    fn is_kw(tok: &Token, kw: &str) -> bool {
        tok.kind == TokenKind::Ident && tok.text == kw
    }

    /// `true` when `tok` can be the last token of an expression, which is
    /// what distinguishes `expr[…]` (indexing) from `[…]` (array literal,
    /// slice pattern, attribute, type).
    fn ends_expression(tok: &Token) -> bool {
        match tok.kind {
            TokenKind::Ident => !KEYWORDS.contains(&tok.text.as_str()),
            TokenKind::Int | TokenKind::Float | TokenKind::Str | TokenKind::Char => true,
            TokenKind::Punct => tok.is_punct(')') || tok.is_punct(']') || tok.is_punct('?'),
            _ => false,
        }
    }

    fn bind(&mut self, name: String, ty: VarTy) {
        if let Some(scope) = self.scopes.last_mut() {
            scope.push((name, ty));
        }
    }

    fn lookup(&self, name: &str) -> Option<VarTy> {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.iter().rev().find(|(n, _)| n == name).map(|(_, t)| *t))
    }

    fn run(mut self) -> Analysis {
        self.collect_fields();
        let mut i = 0;
        while i < self.code.len() {
            let tok = self.code[i];
            // First #[cfg(test)] attribute: everything from here on is test
            // code for the rules that exempt it.
            if self.out.test_start == u32::MAX
                && tok.is_punct('#')
                && self.tok(i + 1).is_some_and(|t| t.is_punct('['))
                && self.tok(i + 2).is_some_and(|t| t.is_ident("cfg"))
                && self.tok(i + 3).is_some_and(|t| t.is_punct('('))
                && self.tok(i + 4).is_some_and(|t| t.is_ident("test"))
            {
                self.out.test_start = tok.line;
            }

            match tok.kind {
                TokenKind::Punct if tok.is_punct('{') => {
                    let scope = std::mem::take(&mut self.pending);
                    self.scopes.push(scope);
                    i += 1;
                }
                TokenKind::Punct if tok.is_punct('}') => {
                    if self.scopes.len() > 1 {
                        self.scopes.pop();
                    }
                    i += 1;
                }
                TokenKind::Punct if tok.is_punct('[') => {
                    if i > 0 && Self::ends_expression(self.code[i - 1]) {
                        self.out.index_exprs.push(IndexExpr { line: tok.line });
                    }
                    i += 1;
                }
                TokenKind::Punct if tok.is_punct('|') => {
                    // Closure-parameter list iff the `|` cannot continue an
                    // expression (otherwise it is bitwise/pattern or). A `|`
                    // directly after another `|` is the second half of `||`
                    // (logical or, or an empty closure the first `|` already
                    // consumed) — never a parameter-list opener.
                    let after_or = i > 0 && self.code[i - 1].is_punct('|');
                    if !after_or && (i == 0 || !Self::ends_expression(self.code[i - 1])) {
                        i = self.closure_params(i + 1);
                    } else {
                        i += 1;
                    }
                }
                TokenKind::Ident if tok.text == "fn" => {
                    i = self.fn_signature(i + 1);
                }
                TokenKind::Ident if tok.text == "let" => {
                    i = self.let_binding(i + 1);
                }
                TokenKind::Ident
                    if tok.text == "for"
                        && !self.tok(i + 1).is_some_and(|t| t.is_punct('<'))
                        && (i == 0 || !Self::ends_expression(self.code[i - 1])) =>
                {
                    // A `for` loop — not `impl Trait for Type` (preceded by
                    // the trait name) and not `for<'a>` bounds.
                    i = self.for_loop(i + 1);
                }
                TokenKind::Ident if tok.text == "as" => {
                    self.cast(i);
                    i += 1;
                }
                TokenKind::Ident
                    if ITER_METHODS.contains(&tok.text.as_str())
                        && self.tok(i + 1).is_some_and(|t| t.is_punct('('))
                        && i > 0
                        && self.code[i - 1].is_punct('.') =>
                {
                    self.method_call(i);
                    i += 1;
                }
                _ => i += 1,
            }
        }
        self.out
    }

    /// Pre-pass: record every `FastHashMap`/`FastHashSet`-typed named field
    /// of every struct in the file, so `self.field` receivers resolve.
    fn collect_fields(&mut self) {
        let mut i = 0;
        while i < self.code.len() {
            if Self::is_kw(self.code[i], "struct") {
                // Skip name and generics to the `{` (tuple structs end at
                // `(`/`;` and have no named fields).
                let mut j = i + 1;
                let mut angle = 0i32;
                while let Some(t) = self.tok(j) {
                    if t.is_punct('<') {
                        angle += 1;
                    } else if t.is_punct('>') {
                        angle -= 1;
                    } else if angle == 0 && (t.is_punct(';') || t.is_punct('(')) {
                        break;
                    } else if angle == 0 && t.is_punct('{') {
                        self.struct_fields(j + 1);
                        break;
                    }
                    j += 1;
                }
            }
            i += 1;
        }
    }

    /// Scans the named fields between a struct's braces (starting just past
    /// the `{`).
    fn struct_fields(&mut self, mut i: usize) {
        let mut depth = 0i32;
        while let Some(t) = self.tok(i) {
            if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if t.is_punct('}') {
                if depth == 0 {
                    return;
                }
                depth -= 1;
            } else if depth == 0
                && t.kind == TokenKind::Ident
                && self.tok(i + 1).is_some_and(|n| n.is_punct(':'))
                && !self.tok(i + 2).is_some_and(|n| n.is_punct(':'))
            {
                let (ty, next) = self.type_annotation(i + 2);
                if ty == VarTy::FastMap {
                    self.fields.push(t.text.clone());
                }
                i = next;
                continue;
            }
            i += 1;
        }
    }

    /// Classifies a type annotation starting at `i` (just past the `:`).
    /// Returns the classified type and the index one past the annotation
    /// (`,`, `)`, `=`, `;`, `{` or `|` at depth 0 end it).
    fn type_annotation(&self, mut i: usize) -> (VarTy, usize) {
        let mut angle = 0i32;
        let mut depth = 0i32;
        let mut ty = VarTy::Unknown;
        let mut single: Option<&str> = None;
        let mut tokens_seen = 0usize;
        while let Some(t) = self.tok(i) {
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                // `->` inside Fn-trait sugar does not close a generic list.
                if !(i > 0 && self.code[i - 1].is_punct('-')) {
                    angle -= 1;
                }
            } else if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            } else if angle <= 0
                && depth == 0
                && (t.is_punct(',')
                    || t.is_punct('=')
                    || t.is_punct(';')
                    || t.is_punct('{')
                    || t.is_punct('|'))
            {
                break;
            }
            if t.kind == TokenKind::Ident {
                if angle == 0 && (t.text == "FastHashMap" || t.text == "FastHashSet") {
                    ty = VarTy::FastMap;
                }
                tokens_seen += 1;
                single = if tokens_seen == 1 {
                    Some(t.text.as_str())
                } else {
                    None
                };
            } else if !t.is_punct('&') && !Self::is_kw(t, "mut") {
                // Any structural punctuation beyond `&mut` prefixes means
                // the type is not a bare integer ident.
                if !matches!(t.text.as_str(), "mut") {
                    tokens_seen += 1;
                    single = None;
                }
            }
            i += 1;
        }
        if ty == VarTy::Unknown {
            if let Some(name) = single.and_then(int_ty) {
                ty = VarTy::Int(name);
            }
        }
        (ty, i)
    }

    /// Parses `fn name [<generics>] (params)`, queueing parameter bindings
    /// for the body scope. Returns the index of the token after the `)` (the
    /// main loop then walks the return type and body normally).
    fn fn_signature(&mut self, mut i: usize) -> usize {
        // fn name
        if self.tok(i).is_some_and(|t| t.kind == TokenKind::Ident) {
            i += 1;
        }
        // generics
        if self.tok(i).is_some_and(|t| t.is_punct('<')) {
            let mut angle = 0i32;
            while let Some(t) = self.tok(i) {
                if t.is_punct('<') {
                    angle += 1;
                } else if t.is_punct('>') && !(i > 0 && self.code[i - 1].is_punct('-')) {
                    angle -= 1;
                    if angle == 0 {
                        i += 1;
                        break;
                    }
                }
                i += 1;
            }
        }
        let Some(t) = self.tok(i) else { return i };
        if !t.is_punct('(') {
            return i;
        }
        i += 1;
        // One parameter per iteration: `[mut] name: Type` binds; any other
        // pattern shape is skipped to the next `,` at depth 0.
        loop {
            match self.tok(i) {
                None => return i,
                Some(t) if t.is_punct(')') => return i + 1,
                Some(t) if t.is_punct(',') => {
                    i += 1;
                }
                Some(t) => {
                    let start = i;
                    let mut j = i;
                    if Self::is_kw(t, "mut") {
                        j += 1;
                    }
                    let named = self.tok(j).is_some_and(|n| {
                        n.kind == TokenKind::Ident && !KEYWORDS.contains(&n.text.as_str())
                    }) && self.tok(j + 1).is_some_and(|n| n.is_punct(':'))
                        && !self.tok(j + 2).is_some_and(|n| n.is_punct(':'));
                    if named {
                        let name = self.tok(j).expect("checked").text.clone();
                        let (ty, next) = self.type_annotation(j + 2);
                        self.pending.push((name, ty));
                        i = next;
                    } else {
                        // `self`, `&self`, pattern params: skip to `,`/`)`.
                        i = self.skip_to_comma(start);
                    }
                }
            }
        }
    }

    /// Advances to the next `,` or `)` at depth 0, starting inside a
    /// parameter list.
    fn skip_to_comma(&self, mut i: usize) -> usize {
        let mut depth = 0i32;
        let mut angle = 0i32;
        while let Some(t) = self.tok(i) {
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') {
                if depth == 0 {
                    return i;
                }
                depth -= 1;
            } else if t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            } else if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') && !(i > 0 && self.code[i - 1].is_punct('-')) {
                angle -= 1;
            } else if t.is_punct(',') && depth == 0 && angle <= 0 {
                return i;
            }
            i += 1;
        }
        i
    }

    /// Parses a `let` statement starting just past the `let` keyword: a
    /// plain `[mut] name` pattern gets a classified binding (annotation
    /// first, initializer inference second); any other pattern masks every
    /// identifier it binds.
    fn let_binding(&mut self, mut i: usize) -> usize {
        if self.tok(i).is_some_and(|t| Self::is_kw(t, "mut")) {
            i += 1;
        }
        let plain = self
            .tok(i)
            .is_some_and(|t| t.kind == TokenKind::Ident && !KEYWORDS.contains(&t.text.as_str()))
            && self
                .tok(i + 1)
                .is_some_and(|t| t.is_punct(':') || t.is_punct('=') || t.is_punct(';'))
            && !self.tok(i + 2).is_some_and(|t| t.is_punct(':'));
        if !plain {
            // Destructuring / `if let` pattern: mask each bound identifier
            // (conservatively, every identifier up to `=` or `;` at depth 0
            // that is not a path segment or enum/struct name in call
            // position).
            let mut depth = 0i32;
            while let Some(t) = self.tok(i) {
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth -= 1;
                } else if depth <= 0 && (t.is_punct('=') || t.is_punct(';')) {
                    return i;
                } else if t.kind == TokenKind::Ident
                    && !KEYWORDS.contains(&t.text.as_str())
                    && self
                        .tok(i + 1)
                        .is_none_or(|n| !n.is_punct('(') && !n.is_punct(':'))
                    && !(i > 0 && self.code[i - 1].is_punct(':'))
                {
                    self.bind(t.text.clone(), VarTy::Unknown);
                }
                i += 1;
            }
            return i;
        }
        let name = self.tok(i).expect("checked").text.clone();
        i += 1;
        let mut ty = VarTy::Unknown;
        if self.tok(i).is_some_and(|t| t.is_punct(':')) {
            let (t, next) = self.type_annotation(i + 1);
            ty = t;
            i = next;
        }
        if self.tok(i).is_some_and(|t| t.is_punct('=')) && ty == VarTy::Unknown {
            ty = self.infer_initializer(i + 1);
        }
        self.bind(name, ty);
        // Resume at the initializer so casts/calls inside it are analyzed.
        i
    }

    /// Infers the type of an initializer by lookahead (nothing is consumed):
    /// a `FastHashMap`/`FastHashSet` construction, a suffixed integer
    /// literal, a trailing `as <int>` cast, or a trailing `.len()`/`.count()`
    /// call — each only when no top-level binary operator makes the overall
    /// type something else.
    fn infer_initializer(&self, start: usize) -> VarTy {
        // Find the terminating `;` at depth 0 and scan for top-level
        // operators on the way.
        let mut depth = 0i32;
        let mut end = start;
        let mut has_operator = false;
        while let Some(t) = self.tok(end) {
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            } else if depth == 0 && t.is_punct(';') {
                break;
            } else if depth == 0
                && t.kind == TokenKind::Punct
                && matches!(
                    t.text.as_str(),
                    "+" | "-" | "*" | "/" | "%" | "^" | "&" | "|" | "<" | ">" | "="
                )
            {
                // `&` as a leading reference is fine; any operator after the
                // first token makes the expression type unprovable here.
                if end > start {
                    has_operator = true;
                }
            }
            end += 1;
        }
        if end == start {
            return VarTy::Unknown;
        }
        // FastHashMap::default() and friends (with or without a path prefix).
        let mut j = start;
        while j < end {
            let t = self.code[j];
            if t.kind == TokenKind::Ident && (t.text == "FastHashMap" || t.text == "FastHashSet") {
                return VarTy::FastMap;
            }
            if t.is_punct('(') {
                break;
            }
            j += 1;
        }
        if has_operator {
            return VarTy::Unknown;
        }
        // Single suffixed integer literal.
        if end == start + 1 && self.code[start].kind == TokenKind::Int {
            if let Some(ty) = int_suffix(&self.code[start].text) {
                return VarTy::Int(ty);
            }
        }
        // Trailing `as <int>`.
        if end >= start + 2
            && Self::is_kw(self.code[end - 2], "as")
            && self.code[end - 1].kind == TokenKind::Ident
        {
            if let Some(ty) = int_ty(&self.code[end - 1].text) {
                return VarTy::Int(ty);
            }
        }
        // Trailing `.len()` / `.count()`.
        if end >= start + 4
            && self.code[end - 1].is_punct(')')
            && self.code[end - 2].is_punct('(')
            && (self.code[end - 3].is_ident("len") || self.code[end - 3].is_ident("count"))
            && self.code[end - 4].is_punct('.')
        {
            return VarTy::Int(int_ty("usize").expect("usize is registered"));
        }
        VarTy::Unknown
    }

    /// Parses `for <pattern> in <expr> {`: pattern identifiers are queued as
    /// masking bindings for the body scope, and the iterated expression is
    /// checked against the fast-map table when it is a bare binding or
    /// `self.field` reference (method-call iteration like `.keys()` is
    /// caught by the method-call recognizer instead).
    fn for_loop(&mut self, mut i: usize) -> usize {
        // Pattern, up to the `in` at depth 0.
        let mut depth = 0i32;
        while let Some(t) = self.tok(i) {
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if depth == 0 && Self::is_kw(t, "in") {
                i += 1;
                break;
            } else if t.kind == TokenKind::Ident && !KEYWORDS.contains(&t.text.as_str()) {
                self.pending.push((t.text.clone(), VarTy::Unknown));
            }
            i += 1;
        }
        // Iterated expression, up to the body `{` at depth 0.
        let expr_start = i;
        let mut depth = 0i32;
        while let Some(t) = self.tok(i) {
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if depth == 0 && t.is_punct('{') {
                break;
            }
            i += 1;
        }
        if let Some((name, line)) = self.simple_operand(expr_start, i) {
            if self.operand_is_fast_map(&name) {
                self.out.fast_map_iterations.push(MapIteration {
                    line,
                    what: format!("`for … in {name}`"),
                });
            }
        }
        // Resume at the iterated expression so method calls, casts and
        // index expressions inside it are analyzed; the main loop reaches
        // the body `{` afterwards and opens the scope that receives the
        // queued pattern bindings.
        expr_start
    }

    /// Recognizes `[&[mut]] name` and `[&[mut]] self.field` between `start`
    /// and `end`, returning the printable name and its line.
    fn simple_operand(&self, mut start: usize, end: usize) -> Option<(String, u32)> {
        while start < end
            && (self.code[start].is_punct('&') || Self::is_kw(self.code[start], "mut"))
        {
            start += 1;
        }
        let toks = &self.code[start..end];
        match toks {
            [t] if t.kind == TokenKind::Ident => Some((t.text.clone(), t.line)),
            [s, dot, f]
                if Self::is_kw(s, "self") && dot.is_punct('.') && f.kind == TokenKind::Ident =>
            {
                Some((format!("self.{}", f.text), f.line))
            }
            _ => None,
        }
    }

    /// `true` when `name` (a bare binding or `self.field` from
    /// [`Analyzer::simple_operand`]) resolves to a fast map.
    fn operand_is_fast_map(&self, name: &str) -> bool {
        if let Some(field) = name.strip_prefix("self.") {
            self.fields.iter().any(|f| f == field)
        } else {
            self.lookup(name) == Some(VarTy::FastMap)
        }
    }

    /// Handles a banned iteration method name at `i` (already known to be
    /// preceded by `.` and followed by `(`): resolves the receiver and
    /// records the event when it is a fast map.
    fn method_call(&mut self, i: usize) {
        let method = &self.code[i].text;
        // Receiver ends at i-2 (the token before the `.`).
        if i < 2 {
            return;
        }
        let recv = self.code[i - 2];
        if recv.kind != TokenKind::Ident {
            return;
        }
        let (name, resolved) = if i >= 4
            && self.code[i - 3].is_punct('.')
            && Self::is_kw(self.code[i - 4], "self")
            && !self.fields.is_empty()
        {
            let name = format!("self.{}", recv.text);
            let hit = self.fields.contains(&recv.text);
            (name, hit)
        } else {
            // A bare identifier receiver, not itself a field/path segment.
            if i >= 3 && (self.code[i - 3].is_punct('.') || self.code[i - 3].is_punct(':')) {
                return;
            }
            let hit = self.lookup(&recv.text) == Some(VarTy::FastMap);
            (recv.text.clone(), hit)
        };
        if resolved {
            self.out.fast_map_iterations.push(MapIteration {
                line: self.code[i].line,
                what: format!("`{name}.{method}()`"),
            });
        }
    }

    /// Parses a closure parameter list starting just past the opening `|`:
    /// `name [: Type]` bindings go into the current scope (slightly wider
    /// than the closure body — harmless, since a stale binding would not
    /// compile in real code). Returns the index past the closing `|`.
    fn closure_params(&mut self, mut i: usize) -> usize {
        loop {
            match self.tok(i) {
                None => return i,
                Some(t) if t.is_punct('|') => return i + 1,
                Some(t) if t.is_punct(',') => i += 1,
                Some(t) => {
                    let mut j = i;
                    if Self::is_kw(t, "mut") {
                        j += 1;
                    }
                    let named = self.tok(j).is_some_and(|n| {
                        n.kind == TokenKind::Ident && !KEYWORDS.contains(&n.text.as_str())
                    });
                    if named {
                        let name = self.tok(j).expect("checked").text.clone();
                        if self.tok(j + 1).is_some_and(|n| n.is_punct(':')) {
                            let (ty, next) = self.type_annotation(j + 2);
                            self.bind(name, ty);
                            i = next;
                            continue;
                        }
                        self.bind(name, VarTy::Unknown);
                        i = j + 1;
                    } else {
                        // Pattern parameter: mask its identifiers up to the
                        // next `,`/`|` at depth 0.
                        let mut depth = 0i32;
                        while let Some(t) = self.tok(i) {
                            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                                depth += 1;
                            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                                depth -= 1;
                            } else if depth == 0 && (t.is_punct(',') || t.is_punct('|')) {
                                break;
                            } else if t.kind == TokenKind::Ident
                                && !KEYWORDS.contains(&t.text.as_str())
                            {
                                self.bind(t.text.clone(), VarTy::Unknown);
                            }
                            i += 1;
                        }
                    }
                }
            }
        }
    }

    /// Handles an `as` keyword at `i`: when the destination is an integer
    /// type and the source type is provable, records the cast.
    fn cast(&mut self, i: usize) {
        let Some(dst) = self
            .tok(i + 1)
            .filter(|t| t.kind == TokenKind::Ident)
            .and_then(|t| int_ty(&t.text))
        else {
            return;
        };
        if i == 0 {
            return;
        }
        let prev = self.code[i - 1];
        let (src, provenance) = match prev.kind {
            // Suffixed integer literal: `5u64 as u32`.
            TokenKind::Int => match int_suffix(&prev.text) {
                Some(ty) => (ty, format!("literal `{}`", prev.text)),
                None => return,
            },
            // `x.len() as T` / `x.count() as T`.
            TokenKind::Punct
                if prev.is_punct(')')
                    && i >= 5
                    && self.code[i - 2].is_punct('(')
                    && (self.code[i - 3].is_ident("len") || self.code[i - 3].is_ident("count"))
                    && self.code[i - 4].is_punct('.') =>
            {
                (
                    int_ty("usize").expect("usize is registered"),
                    format!("`.{}()` returns usize", self.code[i - 3].text),
                )
            }
            // A bare binding with a known integer type (not a field access
            // or path segment).
            TokenKind::Ident if !KEYWORDS.contains(&prev.text.as_str()) => {
                if i >= 2 && (self.code[i - 2].is_punct('.') || self.code[i - 2].is_punct(':')) {
                    return;
                }
                match self.lookup(&prev.text) {
                    Some(VarTy::Int(ty)) => (ty, format!("`{}: {}`", prev.text, ty.name)),
                    _ => return,
                }
            }
            _ => return,
        };
        if src.loses_into(dst) {
            self.out.int_casts.push(IntCast {
                line: self.code[i + 1].line,
                src,
                dst,
                provenance,
            });
        }
    }
}

/// Integer-type suffix of an integer literal (`10u64` → `u64`), if any.
fn int_suffix(text: &str) -> Option<IntTy> {
    INT_TYS
        .iter()
        .copied()
        .find(|t| text.ends_with(t.name) && text.len() > t.name.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn run(src: &str) -> Analysis {
        analyze(&tokenize(src))
    }

    // --- binding table and type propagation ---

    #[test]
    fn annotated_let_bindings_propagate_integer_types() {
        let a = run("fn f() { let x: u64 = g(); let _ = x as u32; }");
        assert_eq!(a.int_casts.len(), 1);
        assert_eq!(a.int_casts[0].src.name, "u64");
        assert_eq!(a.int_casts[0].dst.name, "u32");
        assert!(a.int_casts[0].provenance.contains("x: u64"));
    }

    #[test]
    fn fn_params_propagate_and_widening_is_clean() {
        // usize -> u64 is lossless under the 64-bit contract; usize -> u32
        // is not.
        let a = run("fn f(n: usize, m: u32) { let _ = n as u64 + m as u64; let _ = n as u32; }");
        assert_eq!(a.int_casts.len(), 1);
        assert_eq!(a.int_casts[0].src.name, "usize");
        assert_eq!(a.int_casts[0].dst.name, "u32");
    }

    #[test]
    fn initializer_inference_covers_suffix_cast_and_len() {
        let a = run("fn f(v: &[u8]) {\n\
             let a = 5u64; let _ = a as u16;\n\
             let b = v.len(); let _ = b as u32;\n\
             let c = compute() as i64; let _ = c as i32;\n\
             }");
        let srcs: Vec<&str> = a.int_casts.iter().map(|c| c.src.name).collect();
        assert_eq!(srcs, ["u64", "usize", "i64"]);
    }

    #[test]
    fn operator_initializers_are_not_inferred() {
        // `frame as i64 + off as i64` has a top-level operator: the overall
        // type is not provable by the trailing-cast heuristic alone.
        let a = run("fn f() { let tf = frame as i64 + off as i64; let _ = tf as u32; }");
        assert!(a.int_casts.is_empty(), "{:?}", a.int_casts);
    }

    #[test]
    fn direct_len_cast_is_provable() {
        let a = run("fn f(v: &[u8]) { let _ = v.len() as u32; let _ = v.len() as u64; }");
        assert_eq!(a.int_casts.len(), 1, "{:?}", a.int_casts);
        assert!(a.int_casts[0].provenance.contains("len"));
    }

    #[test]
    fn signedness_changes_are_lossy_both_ways() {
        let a = run("fn f(s: i64, u: u64) { let _ = s as u64; let _ = u as i64; }");
        assert_eq!(a.int_casts.len(), 2);
        // Same-width signed->wider-signed is fine.
        let b = run("fn f(s: i32) { let _ = s as i64; }");
        assert!(b.int_casts.is_empty());
        // unsigned -> strictly wider signed is fine.
        let c = run("fn f(u: u32) { let _ = u as i64; }");
        assert!(c.int_casts.is_empty());
    }

    #[test]
    fn shadowing_masks_outer_types() {
        // The `for` pattern rebinds x with an unknown type; the cast inside
        // the body must not resolve against the outer u64.
        let a = run("fn f() { let x: u64 = g(); for x in 0..3 { let _ = x as u32; } }");
        assert!(a.int_casts.is_empty(), "{:?}", a.int_casts);
        // Closure params mask too.
        let b = run("fn f() { let x: u64 = g(); h(|x| x as u32); }");
        assert!(b.int_casts.is_empty(), "{:?}", b.int_casts);
        // ... but an annotated closure param resolves with its own type.
        let c = run("fn f() { h(|x: u64| x as u32); }");
        assert_eq!(c.int_casts.len(), 1);
    }

    #[test]
    fn scopes_close_with_their_block() {
        let a = run("fn f() { { let x: u64 = g(); } let _ = x as u32; }");
        // The binding died with its block; the outer x is unknown.
        assert!(a.int_casts.is_empty());
    }

    #[test]
    fn field_access_casts_are_not_resolved_against_locals() {
        let a = run("fn f(detected: u64) { let _ = self.detected as u32; }");
        assert!(a.int_casts.is_empty(), "{:?}", a.int_casts);
    }

    // --- fast-map recognition ---

    #[test]
    fn fast_map_constructions_and_annotations_are_tracked() {
        let src = "fn f() {\n\
                   let mut m: FastHashMap<u32, u32> = FastHashMap::default();\n\
                   for k in m.keys() { g(k); }\n\
                   }";
        let a = run(src);
        assert_eq!(a.fast_map_iterations.len(), 1);
        assert!(a.fast_map_iterations[0].what.contains("m.keys()"));
        assert_eq!(a.fast_map_iterations[0].line, 3);
    }

    #[test]
    fn for_loop_over_fast_map_binding_is_caught() {
        let src = "fn f() { let m = sla_netlist::FastHashSet::default(); for x in &m { g(x); } }";
        let a = run(src);
        assert_eq!(a.fast_map_iterations.len(), 1);
        assert!(a.fast_map_iterations[0].what.contains("for … in m"));
    }

    #[test]
    fn self_field_iteration_resolves_through_struct_fields() {
        let src = "struct Db { forward: FastHashMap<u32, u32>, n: usize }\n\
                   impl Db { fn f(&self) { let _ = self.forward.iter(); } }";
        let a = run(src);
        assert_eq!(a.fast_map_iterations.len(), 1);
        assert!(a.fast_map_iterations[0]
            .what
            .contains("self.forward.iter()"));
    }

    #[test]
    fn lookups_on_fast_maps_are_fine() {
        let src = "fn f(m: &FastHashMap<u32, u32>) {\n\
                   let _ = m.get(&1); m.entry(1).or_default(); let _ = m.contains_key(&2);\n\
                   }";
        assert!(run(src).fast_map_iterations.is_empty());
    }

    #[test]
    fn iteration_over_other_containers_is_fine() {
        let src = "fn f(m: &BTreeMap<u32, u32>, v: Vec<FastHashMap<u32, u32>>) {\n\
                   for x in m.iter() { g(x); }\n\
                   for m2 in v.iter() { g(m2); }\n\
                   }";
        // `v` is a Vec *of* maps (FastHashMap at angle depth 1): iterating
        // the vec is fine.
        assert!(run(src).fast_map_iterations.is_empty());
    }

    #[test]
    fn into_values_and_drain_are_banned_forms() {
        let src = "fn f() {\n\
                   let mut g2: FastHashMap<u32, u32> = FastHashMap::default();\n\
                   let _ = g2.into_values();\n\
                   let mut s: FastHashSet<u32> = FastHashSet::default();\n\
                   s.drain();\n\
                   }";
        assert_eq!(run(src).fast_map_iterations.len(), 2);
    }

    // --- index expressions ---

    #[test]
    fn index_expressions_are_distinguished_from_array_forms() {
        let a = run("#[derive(Debug)]\n\
             fn f(v: &[u8], w: [u8; 4]) -> u8 {\n\
             let a = [0u8; 4];\n\
             let [x, y] = [1, 2];\n\
             v[0] + a[1]\n\
             }");
        assert_eq!(a.index_exprs.len(), 2, "{:?}", a.index_exprs);
        assert!(a.index_exprs.iter().all(|e| e.line == 5));
    }

    #[test]
    fn logical_or_is_not_a_closure_opener() {
        // Before the `||` fix, the second `|` of a logical or opened a
        // bogus parameter list that swallowed the following tokens — and
        // the index expression with them.
        let a = run("fn f(line: &str, v: &[u8]) {\n\
             if line.is_empty() || line.starts_with('#') { return; }\n\
             let _ = v[0];\n\
             }");
        assert_eq!(a.index_exprs.len(), 1, "{:?}", a.index_exprs);
        // Empty closures still parse.
        let b = run("fn f() { g(|| h()); let _: u64 = k(); }");
        assert!(b.index_exprs.is_empty());
    }

    #[test]
    fn range_slicing_counts_as_indexing() {
        let a = run("fn f(s: &str, p: usize) { let _ = &s[..p]; }");
        assert_eq!(a.index_exprs.len(), 1);
    }

    #[test]
    fn tuple_field_and_call_results_can_be_indexed() {
        let a = run("fn f(&self) { let _ = self.0[1]; let _ = g()[2]; }");
        assert_eq!(a.index_exprs.len(), 2);
    }

    #[test]
    fn macros_attributes_and_types_are_not_indexing() {
        let a = run("#![allow(dead_code)]\n\
             fn f() -> Vec<[u8; 2]> { vec![[0, 0]; 3] }");
        assert!(a.index_exprs.is_empty(), "{:?}", a.index_exprs);
    }

    // --- test-module boundary ---

    #[test]
    fn test_start_marks_the_cfg_test_attribute() {
        let a = run("fn f() {}\n#[cfg(test)]\nmod tests { fn g(v: &[u8]) { v[0]; } }");
        assert_eq!(a.test_start, 2);
        // Index expressions are still *collected* inside the test module —
        // the rules filter by line, so scoping stays with them.
        assert_eq!(a.index_exprs.len(), 1);
        assert!(a.index_exprs[0].line > a.test_start);
    }

    #[test]
    fn files_without_test_module_report_max() {
        assert_eq!(run("fn f() {}").test_start, u32::MAX);
    }
}
