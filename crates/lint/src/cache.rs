//! The incremental findings cache behind `sla-lint --cache <path>`.
//!
//! The cache stores one entry per linted file, keyed by the file's relative
//! path and the FNV-1a hash of its content, holding the complete per-file
//! [`FileReport`]. Because [`crate::lint_file`] is a pure function of
//! `(path, content)` and waiver filtering never crosses file boundaries, a
//! hash hit can replay the stored report verbatim and the aggregate output
//! is byte-identical to a cold run — CI asserts exactly that.
//!
//! Staleness is handled two ways:
//!
//! * the header carries a **rule-set fingerprint** (hash over every rule id,
//!   summary and rationale plus a format version); any change to the
//!   registry or the on-disk format invalidates the whole cache, so a new
//!   or reworded rule forces a cold re-lint;
//! * [`crate::lint_tree_with_cache`] rebuilds the entry set from the files
//!   it actually saw, so deleted files cannot leave ghost findings behind.
//!
//! The format is a plain text file (one header line, then per-file blocks)
//! written with `\n`/`\\` escaping — no serialization dependency, stable
//! under version control diffing, and any parse irregularity simply degrades
//! to an empty cache (a cold run), never to wrong findings.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::rules::{rule, RULES};
use crate::{AppliedWaiver, FileReport, Finding};

/// Bump on any change to the on-disk format.
const FORMAT_VERSION: u32 = 1;

/// 64-bit FNV-1a over `bytes` — dependency-free and deterministic across
/// platforms and processes (unlike the std hasher, which is seeded).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Cache key for one file's content.
pub fn content_hash(content: &str) -> u64 {
    fnv1a(content.as_bytes())
}

/// Fingerprint of the rule registry (and cache format): cached findings are
/// only replayed when the rules that produced them are byte-for-byte the
/// rules in this binary.
pub fn rules_fingerprint() -> u64 {
    let mut acc = String::new();
    let _ = write!(acc, "sla-lint-cache v{FORMAT_VERSION}");
    for r in RULES {
        let _ = write!(acc, "\x1f{}\x1e{}\x1e{}", r.id, r.summary, r.rationale);
    }
    fnv1a(acc.as_bytes())
}

/// One file's cached state.
#[derive(Debug, Clone)]
struct Entry {
    hash: u64,
    report: FileReport,
}

/// A loaded (or empty) findings cache.
#[derive(Debug, Default)]
pub struct Cache {
    entries: BTreeMap<String, Entry>,
}

impl Cache {
    /// Loads a cache from `path`. A missing file, a fingerprint mismatch or
    /// any malformed content yields an empty cache — the run is then simply
    /// cold.
    ///
    /// # Errors
    ///
    /// Propagates only genuine I/O errors other than "not found".
    pub fn load(path: &Path) -> io::Result<Cache> {
        let text = match fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Cache::default()),
            Err(e) => return Err(e),
        };
        Ok(parse(&text).unwrap_or_default())
    }

    /// Serializes the cache to `path` (entries in sorted path order, so the
    /// bytes are deterministic for a given state).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "sla-lint-cache {} {:016x}",
            FORMAT_VERSION,
            rules_fingerprint()
        );
        for (rel, entry) in &self.entries {
            let _ = writeln!(
                out,
                "file {:016x} {} {} {}",
                entry.hash,
                entry.report.findings.len(),
                entry.report.waivers.len(),
                rel
            );
            for f in &entry.report.findings {
                let _ = writeln!(out, "f {} {} {}", f.line, f.rule, escape(&f.message));
            }
            for w in &entry.report.waivers {
                let _ = writeln!(out, "w {} {} {}", w.line, w.rule, escape(&w.reason));
            }
        }
        fs::write(path, out)
    }

    /// Removes and returns the stored report for `rel` when its hash still
    /// matches the current content.
    pub fn take(&mut self, rel: &str, hash: u64) -> Option<FileReport> {
        match self.entries.get(rel) {
            Some(entry) if entry.hash == hash => self.entries.remove(rel).map(|e| e.report),
            _ => None,
        }
    }

    /// Stores `report` for `rel` at `hash`.
    pub fn put(&mut self, rel: String, hash: u64, report: FileReport) {
        self.entries.insert(rel, Entry { hash, report });
    }

    /// Number of cached files.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => {}
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Parses the cache text; `None` on any irregularity (treated as empty).
fn parse(text: &str) -> Option<Cache> {
    let mut lines = text.lines();
    let header = lines.next()?;
    let expected = format!(
        "sla-lint-cache {} {:016x}",
        FORMAT_VERSION,
        rules_fingerprint()
    );
    if header != expected {
        return None;
    }
    let mut cache = Cache::default();
    while let Some(line) = lines.next() {
        let rest = line.strip_prefix("file ")?;
        // `file <hash> <nf> <nw> <rel>` — rel last, since paths may contain
        // spaces.
        let mut parts = rest.splitn(4, ' ');
        let hash = u64::from_str_radix(parts.next()?, 16).ok()?;
        let nf: usize = parts.next()?.parse().ok()?;
        let nw: usize = parts.next()?.parse().ok()?;
        let rel = parts.next()?.to_string();
        let mut report = FileReport::default();
        for _ in 0..nf {
            let (l, r, text) = item(lines.next()?, "f ")?;
            report.findings.push(Finding {
                file: rel.clone(),
                line: l,
                rule: r,
                message: text,
            });
        }
        for _ in 0..nw {
            let (l, r, text) = item(lines.next()?, "w ")?;
            report.waivers.push(AppliedWaiver {
                file: rel.clone(),
                line: l,
                rule: r,
                reason: text,
            });
        }
        cache.put(rel, hash, report);
    }
    Some(cache)
}

/// Parses one `f <line> <rule> <text>` / `w <line> <rule> <text>` line. The
/// rule id is resolved through the registry: an id this binary doesn't know
/// invalidates the cache (the fingerprint should have caught it, but the
/// resolution is what makes `rule: &'static str` sound).
fn item(line: &str, prefix: &str) -> Option<(u32, &'static str, String)> {
    let rest = line.strip_prefix(prefix)?;
    let mut parts = rest.splitn(3, ' ');
    let l: u32 = parts.next()?.parse().ok()?;
    let r = rule(parts.next()?)?;
    let text = unescape(parts.next()?);
    Some((l, r.id, text))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> FileReport {
        FileReport {
            findings: vec![Finding {
                file: "crates/core/src/x.rs".into(),
                line: 3,
                rule: "env-read",
                message: "line one\nline two \\ backslash".into(),
            }],
            waivers: vec![AppliedWaiver {
                file: "crates/core/src/x.rs".into(),
                line: 7,
                rule: "float-arith",
                reason: "display only".into(),
            }],
        }
    }

    #[test]
    fn roundtrip_preserves_reports_and_hashes() {
        let dir = std::env::temp_dir().join(format!("sla-lint-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("roundtrip.cache");
        let mut cache = Cache::default();
        cache.put("crates/core/src/x.rs".into(), 0xdead_beef, report());
        cache.save(&path).expect("save");
        let mut loaded = Cache::load(&path).expect("load");
        assert_eq!(loaded.len(), 1);
        // Wrong hash: miss.
        assert!(loaded.take("crates/core/src/x.rs", 1).is_none());
        // Right hash: full report back, escaping intact.
        let r = loaded
            .take("crates/core/src/x.rs", 0xdead_beef)
            .expect("hit");
        assert_eq!(r.findings[0].message, "line one\nline two \\ backslash");
        assert_eq!(r.findings[0].rule, "env-read");
        assert_eq!(r.waivers[0].reason, "display only");
        assert!(loaded.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_and_stale_fingerprint_load_empty() {
        let dir = std::env::temp_dir().join(format!("sla-lint-cache2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let missing = Cache::load(&dir.join("nope.cache")).expect("missing is fine");
        assert!(missing.is_empty());
        let stale = dir.join("stale.cache");
        std::fs::write(&stale, "sla-lint-cache 1 0000000000000000\n").expect("write");
        assert!(Cache::load(&stale).expect("load").is_empty());
        std::fs::write(&stale, "garbage\n").expect("write");
        assert!(Cache::load(&stale).expect("load").is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_is_stable_within_a_binary() {
        assert_eq!(rules_fingerprint(), rules_fingerprint());
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_eq!(content_hash("x"), fnv1a(b"x"));
    }
}
