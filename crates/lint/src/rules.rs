//! The determinism-contract rule registry and per-rule checks.
//!
//! # The registry
//!
//! Every rule is one [`Rule`] entry in [`RULES`]: a stable kebab-case id (the
//! one diagnostics print and waivers name), a one-line summary for
//! `--list-rules`, and the rationale tying it to the workspace's determinism
//! contract (ROADMAP "Determinism contract"). Rules are checked per file over
//! the token stream of [`crate::lexer`]; scopes are path-based (see
//! [`crate::SourceFile`] for the classification) with explicit allow-lists
//! for the sanctioned definition sites.
//!
//! # Adding a rule
//!
//! 1. Add a `Rule` entry to [`RULES`] (id, summary, rationale, and which
//!    paths it applies to / allow-lists).
//! 2. Pick the analysis depth the rule needs, cheapest first:
//!    * **Token-level** (an identifier or `std::…` path is banned
//!      outright): match over the code tokens in [`check_file`] — comments
//!      and string contents are already separated by the lexer — and push
//!      [`Finding`]s with the line of the offending token.
//!    * **Flow-aware** (the rule depends on *what an expression is* — a
//!      receiver's type, an index position, a cast source): consume the
//!      per-file [`crate::parser::Analysis`] that [`check_file`] already
//!      computes. If the events the rule needs aren't collected yet, extend
//!      `parser.rs` (one forward pass; keep new inference *conservative*:
//!      an unprovable type must yield no event, because a false positive in
//!      a zero-waiver crate forces a code change). Add parser unit tests
//!      for every new propagation path, positive and negative.
//! 3. Filter by scope: path lists (`allowed`), library code
//!    (`SourceFile::is_lib_code`), and — for rules that exempt test
//!    modules — lines `>= Analysis::test_start`.
//! 4. Add a positive fixture under `crates/lint/fixtures/violations/` and,
//!    when the rule has a sanctioned form, a negative one under
//!    `crates/lint/fixtures/clean/`; extend `crates/lint/tests/fixtures.rs`
//!    (the `violations_tree_trips_every_rule` test fails until the fixture
//!    tree trips the new rule).
//! 5. Document the rule in ROADMAP.md ("Determinism contract enforcement").
//!    Cached runs invalidate themselves: the cache key includes the rule
//!    registry fingerprint, so a new rule forces a cold re-lint.
//!
//! # Waivers
//!
//! A finding is suppressed by a *plain* `//` comment (never a doc comment —
//! documentation quoting the syntax must not waive anything) on the same
//! line or the line directly above, naming the rule and a non-empty reason:
//!
//! ```text
//! // sla-lint: allow(env-read): examples read SLA_STABLE_OUTPUT, display only
//! ```
//!
//! A waiver without a reason, or naming an unknown rule, is itself a finding
//! (`waiver-syntax`) and suppresses nothing.

use crate::lexer::{Token, TokenKind};
use crate::parser;
use crate::{Finding, SourceFile};

/// One registered rule.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable kebab-case id used in diagnostics and waivers.
    pub id: &'static str,
    /// One-line summary (what `--list-rules` prints).
    pub summary: &'static str,
    /// Why the determinism contract needs the rule, and what the sanctioned
    /// alternative is.
    pub rationale: &'static str,
}

/// The registry. Order is the order `--list-rules` prints and findings are
/// reported in within one line.
pub const RULES: &[Rule] = &[
    Rule {
        id: "default-hasher",
        summary: "no std::collections::HashMap/HashSet in library code",
        rationale: "the default SipHash hasher is seeded per process, so map iteration order \
                    varies run to run; use sla_netlist::FastHashMap/FastHashSet (deterministic \
                    iteration for a fixed insertion sequence) or BTreeMap/BTreeSet (sorted) \
                    instead. Allow-listed: crates/netlist/src/hash.rs, the definition site.",
    },
    Rule {
        id: "wall-clock",
        summary: "wall-clock reads only via sla_netlist::wallclock",
        rationale: "Instant/SystemTime values must never influence a verdict; the sanctioned \
                    helper hands out an opaque stats-only timestamp that can produce nothing \
                    but an elapsed Duration for reporting. Allow-listed: \
                    crates/netlist/src/wallclock.rs.",
    },
    Rule {
        id: "env-read",
        summary: "std::env reads only in sla-par, sla-bench and the inject hook",
        rationale: "ambient configuration may pick a schedule, never a result; scheduling \
                    knobs go through sla_par::env_threads() and harness knobs live in the \
                    bench crate. Allow-listed: crates/par/src/lib.rs (the documented \
                    accessor), crates/bench/, and crates/snapshot/src/inject.rs (the \
                    SLA_FAULT_INJECT test hook, which only ever breaks a run on purpose). \
                    std::env::args (explicit CLI input) is not an ambient read and stays \
                    allowed.",
    },
    Rule {
        id: "thread-spawn",
        summary: "std::thread/std::sync only in crates/par",
        rationale: "all parallelism flows through the sla-par runtime, whose ordered merges \
                    are what keep SLA_THREADS=N bit-identical to SLA_THREADS=1; ad-hoc \
                    threading or shared-state synchronization elsewhere bypasses that \
                    contract. Allow-listed: crates/par/.",
    },
    Rule {
        id: "float-arith",
        summary: "no f32/f64 in the deterministic pipeline crates",
        rationale: "float arithmetic invites rounding that varies with evaluation order, \
                    which parallel merges must never observe; pipeline results use integer \
                    or fixed-point arithmetic (e.g. basis points, see \
                    AtpgStats::fault_coverage_bp). Applies to crates/{core,sim,atpg,par}.",
    },
    Rule {
        id: "unsafe-safety",
        summary: "every `unsafe` carries a `// SAFETY:` comment",
        rationale: "the workspace is currently unsafe-free; if that changes, each unsafe \
                    block must document its invariant on the line or directly above, so the \
                    audit surface stays enumerable.",
    },
    Rule {
        id: "unwrap-in-lib",
        summary: "no .unwrap()/.expect() in hardened parser/engine library code",
        rationale: "the resilience contract promises that malformed netlists and interrupted \
                    runs surface typed errors, never panics; the hardened files \
                    (crates/netlist/src/parser.rs, crates/atpg/src/engine.rs) must propagate \
                    Results instead of unwrapping. Test modules (`#[cfg(test)]` onward) are \
                    exempt — a failed test may panic.",
    },
    Rule {
        id: "fast-map-iteration",
        summary: "no iteration over FastHashMap/FastHashSet in library code",
        rationale: "FastHashMap/FastHashSet iteration order depends on insertion history and \
                    capacity, so any iterated result leaks that history into outputs; the \
                    types are lookup-only — iterate a BTreeMap/BTreeSet, or collect keys and \
                    sort first. Banned forms: `for … in`, .iter(), .iter_mut(), .keys(), \
                    .values(), .values_mut(), .into_iter(), .into_keys(), .into_values(), \
                    .drain(), .retain(). Test modules are exempt. Allow-listed: \
                    crates/netlist/src/hash.rs, the definition site.",
    },
    Rule {
        id: "panic-index",
        summary: "no unchecked slice/array indexing in hardened no-panic files",
        rationale: "`x[i]` panics on an out-of-range index, which breaks the same resilience \
                    contract `unwrap-in-lib` protects: the hardened files \
                    (crates/netlist/src/parser.rs, crates/atpg/src/engine.rs) must surface \
                    typed errors on malformed input, never panic; use .get()/.get_mut() (or \
                    .get(a..b) for slicing) and propagate. Test modules are exempt.",
    },
    Rule {
        id: "lossy-cast",
        summary: "no narrowing integer `as` casts in the pipeline crates",
        rationale: "a narrowing `as` cast wraps silently even under overflow-checks, so a \
                    result-carrying value that outgrows the target type corrupts output \
                    instead of failing loudly; use try_from/try_into with a typed error (or \
                    .expect() outside the hardened files, where an invariant makes overflow \
                    unreachable). Applies to crates/{core,sim,atpg,par}; flagged only when \
                    the source type is provable (annotation, suffixed literal, .len()); test \
                    modules are exempt. usize/isize are treated as 64-bit — the workspace's \
                    only supported pointer width.",
    },
    Rule {
        id: "waiver-syntax",
        summary: "waivers name a known rule and a non-empty reason",
        rationale: "`// sla-lint: allow(rule-id): reason` is the only suppression mechanism; \
                    a waiver with no reason or an unknown rule id is noise that would rot \
                    silently, so it is a finding itself and suppresses nothing.",
    },
];

/// Looks up a rule by id.
pub fn rule(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// A successfully parsed waiver comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Rule id it suppresses.
    pub rule: &'static str,
    /// Line of the waiver comment; it covers this line and the next.
    pub line: u32,
    /// The stated reason (non-empty by construction).
    pub reason: String,
}

/// Parses the waivers of a file from its plain `//` comments. Malformed
/// waivers are reported as `waiver-syntax` findings.
pub fn collect_waivers(file: &SourceFile, findings: &mut Vec<Finding>) -> Vec<Waiver> {
    let mut waivers = Vec::new();
    for tok in &file.tokens {
        if tok.kind != TokenKind::LineComment {
            continue;
        }
        // Only plain `//` comments: doc comments (`///`, `//!`) are
        // documentation and must be able to quote the syntax verbatim.
        if tok.text.starts_with("///") || tok.text.starts_with("//!") {
            continue;
        }
        let Some(pos) = tok.text.find("sla-lint:") else {
            continue;
        };
        let rest = tok.text[pos + "sla-lint:".len()..].trim_start();
        let Some(args) = rest.strip_prefix("allow(") else {
            findings.push(file.finding(
                tok.line,
                "waiver-syntax",
                "malformed waiver: expected `sla-lint: allow(rule-id): reason`".to_string(),
            ));
            continue;
        };
        let Some(close) = args.find(')') else {
            findings.push(file.finding(
                tok.line,
                "waiver-syntax",
                "malformed waiver: unclosed `allow(`".to_string(),
            ));
            continue;
        };
        let id = args[..close].trim();
        let Some(known) = rule(id) else {
            findings.push(file.finding(
                tok.line,
                "waiver-syntax",
                format!("waiver names unknown rule `{id}`"),
            ));
            continue;
        };
        let after = args[close + 1..].trim_start();
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            findings.push(file.finding(
                tok.line,
                "waiver-syntax",
                format!("waiver for `{id}` is missing a reason: `sla-lint: allow({id}): reason`"),
            ));
            continue;
        }
        waivers.push(Waiver {
            rule: known.id,
            line: tok.line,
            reason: reason.to_string(),
        });
    }
    waivers
}

/// `path` matching for allow-lists: an entry ending in `/` is a directory
/// prefix, anything else must match exactly.
fn allowed(rel: &str, list: &[&str]) -> bool {
    list.iter().any(|entry| {
        entry.strip_suffix('/').map_or(*entry == rel, |dir| {
            rel.strip_prefix(dir).is_some_and(|r| r.starts_with('/'))
        })
    })
}

const DEFAULT_HASHER_ALLOW: &[&str] = &["crates/netlist/src/hash.rs"];
const WALL_CLOCK_ALLOW: &[&str] = &["crates/netlist/src/wallclock.rs"];
const ENV_READ_ALLOW: &[&str] = &[
    "crates/par/src/lib.rs",
    "crates/bench/",
    "crates/snapshot/src/inject.rs",
];
const THREAD_SPAWN_ALLOW: &[&str] = &["crates/par/"];
/// Files under the no-panic contract (`unwrap-in-lib` and `panic-index`).
const UNWRAP_SCOPE: &[&str] = &["crates/netlist/src/parser.rs", "crates/atpg/src/engine.rs"];
/// The deterministic pipeline crates (`float-arith` and `lossy-cast`).
const FLOAT_SCOPE: &[&str] = &["crates/core/", "crates/sim/", "crates/atpg/", "crates/par/"];
/// `fast-map-iteration` exempts the type's own definition site.
const FAST_MAP_ALLOW: &[&str] = &["crates/netlist/src/hash.rs"];

/// Runs every applicable rule over one file, appending findings (not yet
/// waiver-filtered — the engine applies waivers afterwards so it can report
/// which were used).
pub fn check_file(file: &SourceFile, findings: &mut Vec<Finding>) {
    let code: Vec<&Token> = file.tokens.iter().filter(|t| !t.is_comment()).collect();

    if file.is_lib_code() && !allowed(&file.rel, DEFAULT_HASHER_ALLOW) {
        for tok in &code {
            if tok.is_ident("HashMap") || tok.is_ident("HashSet") {
                findings.push(file.finding(
                    tok.line,
                    "default-hasher",
                    format!(
                        "`{}` uses the per-process-seeded default hasher; use \
                         sla_netlist::Fast{} (deterministic) or BTree{} (sorted)",
                        tok.text,
                        tok.text,
                        tok.text.trim_start_matches("Hash")
                    ),
                ));
            }
        }
    }

    if !allowed(&file.rel, WALL_CLOCK_ALLOW) {
        for tok in &code {
            if tok.is_ident("Instant") || tok.is_ident("SystemTime") {
                findings.push(file.finding(
                    tok.line,
                    "wall-clock",
                    format!(
                        "direct `{}` use; stats-only timing goes through \
                         sla_netlist::wallclock::now()",
                        tok.text
                    ),
                ));
            }
        }
    }

    let std_paths = std_paths(&code);

    if !allowed(&file.rel, ENV_READ_ALLOW) {
        for path in &std_paths {
            if path.segs.first().map(String::as_str) != Some("env") {
                continue;
            }
            match path.segs.get(1) {
                // `std::env::var*` / `vars*`: an ambient configuration read.
                Some(seg) if seg.starts_with("var") => findings.push(file.finding(
                    path.line,
                    "env-read",
                    format!(
                        "environment read `std::env::{seg}` outside sla-par/sla-bench; \
                         scheduling knobs go through sla_par::env_threads()"
                    ),
                )),
                // A bare `use std::env;` hides later `env::var` calls from
                // this token-level check, so importing the module is flagged
                // in itself.
                None => findings.push(
                    file.finding(
                        path.line,
                        "env-read",
                        "`use std::env` outside sla-par/sla-bench hides ambient reads; \
                     name the item (std::env::args) or move the read"
                            .to_string(),
                    ),
                ),
                _ => {}
            }
        }
    }

    if !allowed(&file.rel, THREAD_SPAWN_ALLOW) {
        for path in &std_paths {
            let first = path.segs.first().map(String::as_str);
            if first == Some("thread") || first == Some("sync") {
                findings.push(file.finding(
                    path.line,
                    "thread-spawn",
                    format!(
                        "`std::{}` outside crates/par; all threading goes through the \
                         sla-par runtime (run_indexed / with_pool)",
                        path.segs.join("::")
                    ),
                ));
            }
        }
    }

    if FLOAT_SCOPE.iter().any(|dir| file.rel.starts_with(dir)) {
        for tok in &code {
            let hit = match tok.kind {
                TokenKind::Float => Some(format!("float literal `{}`", tok.text)),
                TokenKind::Ident if tok.text == "f32" || tok.text == "f64" => {
                    Some(format!("`{}`", tok.text))
                }
                _ => None,
            };
            if let Some(what) = hit {
                findings.push(file.finding(
                    tok.line,
                    "float-arith",
                    format!(
                        "{what} in a deterministic pipeline crate; use integer/fixed-point \
                         arithmetic (e.g. basis points)"
                    ),
                ));
            }
        }
    }

    if UNWRAP_SCOPE.contains(&file.rel.as_str()) {
        // Library code only: everything before the file's `#[cfg(test)]`
        // module. A failed test asserting panics is fine; the lib path is not.
        let test_line = test_module_line(&code);
        for (i, tok) in code.iter().enumerate() {
            if tok.line >= test_line {
                break;
            }
            if (tok.is_ident("unwrap") || tok.is_ident("expect"))
                && i > 0
                && code[i - 1].is_punct('.')
            {
                findings.push(file.finding(
                    tok.line,
                    "unwrap-in-lib",
                    format!(
                        "`.{}(…)` in hardened library code; propagate a typed error \
                         (NetlistError / SnapshotError) instead of panicking",
                        tok.text
                    ),
                ));
            }
        }
    }

    // The flow-aware rules share one syntactic pass (see crate::parser).
    let analysis = parser::analyze(&file.tokens);

    if file.is_lib_code() && !allowed(&file.rel, FAST_MAP_ALLOW) {
        for it in &analysis.fast_map_iterations {
            if it.line >= analysis.test_start {
                continue;
            }
            findings.push(file.finding(
                it.line,
                "fast-map-iteration",
                format!(
                    "{} iterates a fast map whose order is insertion-dependent; \
                     FastHashMap/FastHashSet are lookup-only — iterate a BTreeMap/BTreeSet \
                     or collect and sort first",
                    it.what
                ),
            ));
        }
    }

    if UNWRAP_SCOPE.contains(&file.rel.as_str()) {
        for ix in &analysis.index_exprs {
            if ix.line >= analysis.test_start {
                continue;
            }
            findings.push(
                file.finding(
                    ix.line,
                    "panic-index",
                    "unchecked index `…[…]` in hardened no-panic code; use .get()/.get_mut() \
                 and propagate a typed error"
                        .to_string(),
                ),
            );
        }
    }

    if FLOAT_SCOPE.iter().any(|dir| file.rel.starts_with(dir)) {
        for cast in &analysis.int_casts {
            if cast.line >= analysis.test_start {
                continue;
            }
            findings.push(file.finding(
                cast.line,
                "lossy-cast",
                format!(
                    "narrowing `as {}` from {} ({}) can wrap silently; use \
                     {}::try_from with a typed error",
                    cast.dst.name, cast.src.name, cast.provenance, cast.dst.name
                ),
            ));
        }
    }

    for tok in &code {
        if tok.is_ident("unsafe") && !has_safety_comment(file, tok.line) {
            findings.push(
                file.finding(
                    tok.line,
                    "unsafe-safety",
                    "`unsafe` without a `// SAFETY:` comment on the line or directly above it"
                        .to_string(),
                ),
            );
        }
    }
}

/// Line of the first `#[cfg(test)]` attribute in `code`, or `u32::MAX` when
/// the file has no test module.
fn test_module_line(code: &[&Token]) -> u32 {
    let mut i = 0;
    while i + 4 < code.len() {
        if code[i].is_punct('#')
            && code[i + 1].is_punct('[')
            && code[i + 2].is_ident("cfg")
            && code[i + 3].is_punct('(')
            && code[i + 4].is_ident("test")
        {
            return code[i].line;
        }
        i += 1;
    }
    u32::MAX
}

/// `true` when a comment containing `SAFETY:` sits on `line` or up to three
/// lines above it (attribute lines may sit between the comment and the
/// keyword).
fn has_safety_comment(file: &SourceFile, line: u32) -> bool {
    file.tokens.iter().any(|t| {
        t.is_comment()
            && t.text.contains("SAFETY:")
            && t.line <= line
            && line.saturating_sub(t.line) <= 3
    })
}

/// A `std::…` path reference found in the code tokens: the segments after
/// `std::`, brace-group-aware one level deep per `use` tree.
struct StdPath {
    segs: Vec<String>,
    line: u32,
}

/// Collects every `std::…` path in `code`, expanding `use std::{a, b::c}`
/// trees into one entry per leaf. `::std::…` is found too (the scan keys on
/// the `std` identifier itself).
fn std_paths(code: &[&Token]) -> Vec<StdPath> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if code[i].is_ident("std")
            && code.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && code.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            i = collect_path(code, i + 3, &[], &mut out);
        } else {
            i += 1;
        }
    }
    out
}

/// Parses one path tree starting at `i` (just past a `::`), appending every
/// leaf to `out` with `prefix` prepended. Returns the index to resume at.
fn collect_path(code: &[&Token], i: usize, prefix: &[String], out: &mut Vec<StdPath>) -> usize {
    match code.get(i) {
        Some(tok) if tok.kind == TokenKind::Ident => {
            let mut segs = prefix.to_vec();
            segs.push(tok.text.clone());
            let more = code.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && code.get(i + 2).is_some_and(|t| t.is_punct(':'));
            if more {
                collect_path(code, i + 3, &segs, out)
            } else {
                out.push(StdPath {
                    segs,
                    line: tok.line,
                });
                i + 1
            }
        }
        Some(tok) if tok.is_punct('{') => {
            let mut j = i + 1;
            loop {
                match code.get(j) {
                    None => return j,
                    Some(t) if t.is_punct('}') => return j + 1,
                    Some(t) if t.is_punct(',') => j += 1,
                    _ => j = collect_path(code, j, prefix, out),
                }
            }
        }
        Some(tok) if tok.is_punct('*') => {
            let mut segs = prefix.to_vec();
            segs.push("*".to_string());
            out.push(StdPath {
                segs,
                line: tok.line,
            });
            i + 1
        }
        _ => {
            if !prefix.is_empty() {
                out.push(StdPath {
                    segs: prefix.to_vec(),
                    line: code.get(i.saturating_sub(1)).map_or(0, |t| t.line),
                });
            }
            i + 1
        }
    }
}
