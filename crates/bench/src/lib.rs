//! Shared helpers of the experiment harness: command-line options common to
//! the `table1`…`table5` binaries, per-experiment default scales and a tiny
//! fixed-width table printer.
//!
//! Every binary regenerates one table of the paper:
//!
//! | binary | paper content |
//! |--------|----------------|
//! | `table1` | Figure 1 stem simulation results (Table 1) |
//! | `table2` | learned invalid-state relations per learning mode (Table 2) |
//! | `table3` | sequential learning results across the circuit suite (Table 3) |
//! | `table4` | untestable faults from tie gates vs. the FIRE baseline (Table 4) |
//! | `table5` | ATPG with and without learning, two backtrack limits (Table 5) |
//!
//! Absolute numbers differ from the paper because the circuits are generated
//! substitutes (see `DESIGN.md` §3); the shapes — learning cost scaling, who
//! wins and by roughly how much — are what the harness reproduces.

use std::time::Duration;

/// Options shared by the table binaries, parsed from `std::env::args`.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessOptions {
    /// Circuit scale relative to the original benchmark sizes.
    pub scale: f64,
    /// Run the complete, unscaled sweep (slow).
    pub full: bool,
    /// Upper bound on instantiated gate count; larger circuits are skipped
    /// (reported as `skipped`) unless `--full` is given.
    pub max_gates: usize,
    /// Upper bound on the number of target faults per circuit in ATPG runs.
    pub max_faults: usize,
    /// Backtrack limits exercised by the ATPG harness.
    pub backtrack_limits: Vec<usize>,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            scale: 0.04,
            full: false,
            max_gates: 2_500,
            max_faults: 300,
            backtrack_limits: vec![30],
        }
    }
}

impl HarnessOptions {
    /// Parses the common flags: `--scale <f>`, `--full`, `--max-gates <n>`,
    /// `--max-faults <n>`, `--limits <a,b>`. Unknown flags are ignored so the
    /// binaries can add their own.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut opts = HarnessOptions::default();
        let args: Vec<String> = args.into_iter().collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.scale = v;
                        i += 1;
                    }
                }
                "--max-gates" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.max_gates = v;
                        i += 1;
                    }
                }
                "--max-faults" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.max_faults = v;
                        i += 1;
                    }
                }
                "--limits" => {
                    if let Some(v) = args.get(i + 1) {
                        let parsed: Vec<usize> =
                            v.split(',').filter_map(|p| p.trim().parse().ok()).collect();
                        if !parsed.is_empty() {
                            opts.backtrack_limits = parsed;
                        }
                        i += 1;
                    }
                }
                "--full" => {
                    opts.full = true;
                    opts.scale = 1.0;
                    opts.max_gates = usize::MAX;
                    opts.max_faults = usize::MAX;
                    opts.backtrack_limits = vec![30, 1000];
                }
                _ => {}
            }
            i += 1;
        }
        opts
    }
}

/// Formats a duration as fractional seconds, the unit the paper reports.
pub fn seconds(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

/// Prints a row of fixed-width cells.
pub fn print_row(widths: &[usize], cells: &[String]) {
    let line: Vec<String> = widths
        .iter()
        .zip(cells)
        .map(|(w, c)| format!("{c:>w$}", w = w))
        .collect();
    println!("{}", line.join("  "));
}

/// Prints a header row followed by a separator line.
pub fn print_header(widths: &[usize], cells: &[&str]) {
    print_row(
        widths,
        &cells.iter().map(|c| c.to_string()).collect::<Vec<_>>(),
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    println!("{}", "-".repeat(total));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_fast_settings() {
        let o = HarnessOptions::default();
        assert!(o.scale < 1.0);
        assert!(!o.full);
        assert_eq!(o.backtrack_limits, vec![30]);
    }

    #[test]
    fn parses_flags() {
        let o = HarnessOptions::from_args(
            [
                "--scale",
                "0.5",
                "--limits",
                "30,1000",
                "--max-faults",
                "50",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        assert!((o.scale - 0.5).abs() < 1e-9);
        assert_eq!(o.backtrack_limits, vec![30, 1000]);
        assert_eq!(o.max_faults, 50);
    }

    #[test]
    fn full_flag_unlocks_everything() {
        let o = HarnessOptions::from_args(["--full".to_string()]);
        assert!(o.full);
        assert_eq!(o.scale, 1.0);
        assert_eq!(o.backtrack_limits, vec![30, 1000]);
    }

    #[test]
    fn seconds_formats_two_decimals() {
        assert_eq!(seconds(Duration::from_millis(1500)), "1.50");
    }
}
