//! Table 5 — sequential ATPG with and without sequential learning, with
//! learned relations used either as forbidden-value or known-value
//! implications, at one or more backtrack limits.
//!
//! Flags: `--scale <f>` (default 0.04), `--limits 30,1000`, `--max-faults <n>`,
//! `--max-gates <n>`, `--full`.

use sla_atpg::{AtpgConfig, AtpgEngine, LearnedData, LearningMode};
use sla_bench::{print_header, print_row, seconds, HarnessOptions};
use sla_circuits::{build_profile, profile_by_name, TABLE5_PROFILES};
use sla_core::{LearnConfig, SequentialLearner};
use sla_netlist::Netlist;
use sla_sim::{collapsed_fault_list, Fault};

struct ModeResult {
    detected: usize,
    untestable: usize,
    cpu: String,
}

fn run_mode(
    netlist: &Netlist,
    faults: &[Fault],
    limit: usize,
    mode: LearningMode,
    learned: &LearnedData,
) -> ModeResult {
    let config = AtpgConfig::builder()
        .backtrack_limit(limit)
        .learning(mode)
        .build();
    let engine = AtpgEngine::new(netlist, config).expect("netlist levelizes");
    let engine = if mode.uses_learning() {
        engine.with_learned(learned.clone())
    } else {
        engine
    };
    let run = engine.run(faults);
    ModeResult {
        detected: run.stats.detected,
        untestable: run.stats.untestable,
        cpu: seconds(run.stats.cpu),
    }
}

fn main() {
    let opts = HarnessOptions::from_args(std::env::args().skip(1));
    println!(
        "Table 5: ATPG with and without sequential learning (scale {}, max {} faults/circuit)\n",
        opts.scale, opts.max_faults
    );
    let widths = [12, 6, 7, 6, 7, 7, 8, 7, 7, 8, 7, 7, 8];
    print_header(
        &widths,
        &[
            "Circuit", "Flts", "Limit", "Det", "Untst", "CPU", "|", "Det", "Untst", "CPU", "Det",
            "Untst", "CPU",
        ],
    );
    println!(
        "{:>12}  {:>6}  {:>7}  {:^22}  {:^24}  {:>24}",
        "", "", "", "(no learning)", "(forbidden values)", "(known values)"
    );

    for name in TABLE5_PROFILES {
        let profile = profile_by_name(name).expect("profile exists");
        let netlist = build_profile(profile, opts.scale);
        if netlist.num_gates() > opts.max_gates && !opts.full {
            println!("{name:>12}  skipped ({} gates)", netlist.num_gates());
            continue;
        }
        let mut faults = collapsed_fault_list(&netlist);
        faults.truncate(opts.max_faults);

        let learned = LearnedData::from(
            &SequentialLearner::new(&netlist, LearnConfig::default())
                .learn()
                .expect("learning succeeds"),
        );

        for &limit in &opts.backtrack_limits {
            let none = run_mode(&netlist, &faults, limit, LearningMode::None, &learned);
            let forbidden = run_mode(
                &netlist,
                &faults,
                limit,
                LearningMode::ForbiddenValue,
                &learned,
            );
            let known = run_mode(&netlist, &faults, limit, LearningMode::KnownValue, &learned);
            print_row(
                &widths,
                &[
                    name.to_string(),
                    faults.len().to_string(),
                    limit.to_string(),
                    none.detected.to_string(),
                    none.untestable.to_string(),
                    none.cpu,
                    "|".to_string(),
                    forbidden.detected.to_string(),
                    forbidden.untestable.to_string(),
                    forbidden.cpu,
                    known.detected.to_string(),
                    known.untestable.to_string(),
                    known.cpu,
                ],
            );
        }
    }
    println!("\nAll three columns share the same fault list and fault-simulation-based dropping;");
    println!("the difference between them is only the use of sequentially learned relations.");
}
