//! Table 4 — untestable faults identified from tie gates (a by-product of
//! sequential learning) compared against the FIRE stem-conflict baseline.
//!
//! Flags: `--scale <f>` (default 0.04), `--max-gates <n>`, `--full`.

use sla_bench::{print_header, print_row, seconds, HarnessOptions};
use sla_circuits::{build_profile, profile_by_name, TABLE4_PROFILES};
use sla_core::{LearnConfig, SequentialLearner};
use sla_netlist::Netlist;
use sla_sim::{full_fault_list, FaultSite};

/// Untestable faults implied by the learned tied gates, counted over the full
/// fault list (a line tied to `v` makes every `stuck-at-v` fault on it and on
/// its branches undetectable).
fn tie_untestable_count(netlist: &Netlist, tied: &[(sla_netlist::NodeId, bool)]) -> usize {
    full_fault_list(netlist)
        .iter()
        .filter(|fault| {
            let line = match fault.site {
                FaultSite::Output(node) => node,
                FaultSite::Input { gate, pin } => netlist.fanins(gate)[pin],
            };
            tied.iter()
                .any(|&(node, value)| node == line && value == fault.stuck_at)
        })
        .count()
}

fn main() {
    let opts = HarnessOptions::from_args(std::env::args().skip(1));
    println!(
        "Table 4: untestable faults from tie gates vs. the FIRE baseline (scale {})\n",
        opts.scale
    );
    let widths = [12, 7, 8, 11, 11, 9, 9];
    print_header(
        &widths,
        &[
            "Circuit", "FFs", "Gates", "TieGates", "FIRE", "Learn(s)", "FIRE(s)",
        ],
    );

    for name in TABLE4_PROFILES {
        let profile = profile_by_name(name).expect("profile exists");
        let netlist = build_profile(profile, opts.scale);
        if netlist.num_gates() > opts.max_gates && !opts.full {
            print_row(
                &widths,
                &[
                    name.to_string(),
                    netlist.num_sequential().to_string(),
                    netlist.num_gates().to_string(),
                    "skipped".into(),
                    "skipped".into(),
                    "-".into(),
                    "-".into(),
                ],
            );
            continue;
        }
        let learn = SequentialLearner::new(&netlist, LearnConfig::default())
            .learn()
            .expect("learning succeeds");
        let tie_count = tie_untestable_count(&netlist, &learn.tied_constants());
        let fire = sla_redundancy::identify_untestable(&netlist).expect("FIRE succeeds");
        print_row(
            &widths,
            &[
                name.to_string(),
                netlist.num_sequential().to_string(),
                netlist.num_gates().to_string(),
                tie_count.to_string(),
                fire.count().to_string(),
                seconds(learn.stats.cpu),
                seconds(fire.cpu),
            ],
        );
    }
    println!(
        "\nAs in the paper, neither method dominates: tie gates are a free by-product of learning,"
    );
    println!("while FIRE targets the broader class of stem-conflict untestable faults.");
}
