//! Table 1 — per-stem forward simulation results of the Figure-1-style
//! circuit: for every fanout stem and both injected values, the nodes implied
//! in each time frame.

use sla_circuits::paper_style_figure1;
use sla_netlist::stems::fanout_stems;
use sla_sim::{Injection, InjectionSim, SimOptions};

fn main() {
    let netlist = paper_style_figure1();
    let sim = InjectionSim::new(&netlist).expect("figure 1 levelizes");
    let options = SimOptions::default();
    let stems = fanout_stems(&netlist);

    println!("Table 1: simulation results for stems of the Figure-1-style circuit");
    println!("(implied assignments per time frame; X entries omitted)\n");

    for &stem in &stems {
        for value in [false, true] {
            let trace = sim.run(&[Injection::new(stem, value, 0)], &options);
            let label = format!("{}={}", netlist.node(stem).name, if value { 1 } else { 0 });
            let mut cells = Vec::new();
            for frame in 0..trace.num_frames() {
                let mut assigns: Vec<String> = trace
                    .assignments(frame)
                    .filter(|(node, _)| *node != stem || frame > 0)
                    .map(|(node, v)| {
                        format!("{}={}", netlist.node(node).name, if v { 1 } else { 0 })
                    })
                    .collect();
                assigns.sort();
                cells.push(if assigns.is_empty() {
                    "{}".to_string()
                } else {
                    assigns.join(", ")
                });
            }
            println!("{label:>8}  | {}", cells.join("  |  "));
        }
    }
    println!("\n(simulation stops at 50 frames or when the state repeats, as in the paper)");
}
