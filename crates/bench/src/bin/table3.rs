//! Table 3 — sequential learning experiments: for every circuit of the suite,
//! the number of FF-FF and gate-FF relations learned by sequential analysis
//! and the learning CPU time.
//!
//! Flags: `--scale <f>` (default 0.04), `--max-gates <n>`, `--full`.

use sla_bench::{print_header, print_row, seconds, HarnessOptions};
use sla_circuits::{build_profile, TABLE3_PROFILES};
use sla_core::{LearnConfig, SequentialLearner};

fn main() {
    let opts = HarnessOptions::from_args(std::env::args().skip(1));
    println!(
        "Table 3: sequential learning experiments (scale {}, generated substitutes)\n",
        opts.scale
    );
    let widths = [12, 7, 8, 8, 9, 9, 8];
    print_header(
        &widths,
        &[
            "Circuit", "FFs", "Gates", "Stems", "FF-FF", "Gate-FF", "CPU(s)",
        ],
    );

    for profile in TABLE3_PROFILES {
        let netlist = build_profile(profile, opts.scale);
        if netlist.num_gates() > opts.max_gates && !opts.full {
            print_row(
                &widths,
                &[
                    profile.name.to_string(),
                    netlist.num_sequential().to_string(),
                    netlist.num_gates().to_string(),
                    "-".into(),
                    "skipped".into(),
                    "skipped".into(),
                    "-".into(),
                ],
            );
            continue;
        }
        let config = LearnConfig::builder()
            .max_multi_node_targets(if opts.full { 0 } else { 400 })
            .build();
        let result = SequentialLearner::new(&netlist, config)
            .learn()
            .expect("learning succeeds on generated circuits");
        print_row(
            &widths,
            &[
                profile.name.to_string(),
                netlist.num_sequential().to_string(),
                netlist.num_gates().to_string(),
                result.stats.stems.to_string(),
                result.stats.sequential.ff_ff.to_string(),
                result.stats.sequential.gate_ff.to_string(),
                seconds(result.stats.cpu),
            ],
        );
    }
    println!(
        "\nFF-FF / Gate-FF count only relations requiring sequential analysis, as in the paper."
    );
}
