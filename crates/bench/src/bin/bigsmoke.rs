//! Large-circuit smoke check for CI: the arena-CSR pipeline at ≥1M gates.
//!
//! Generates the layered [`ScaleConfig`] workload at three doubling sizes,
//! ingests each through the full text front-end (`write_bench` → `parse_bench`
//! → `levelize`) and checks that per-gate ingest time stays flat (linear-time
//! ingest — a reallocation storm or quadratic name lookup shows up as the
//! largest size paying a multiple per gate). On the ≥1M-gate circuit it then
//! runs budget-limited sequential learning and budget-limited ATPG end to
//! end, and finally asserts a peak-RSS sanity bound read from
//! `/proc/self/status` (`VmHWM`). Any violation exits non-zero.
//!
//! Wall-clock is read only through `sla_netlist::wallclock` (stats-only by
//! construction); the linearity check compares elapsed times of this one
//! process against each other, never against an absolute threshold, so slow
//! CI hardware cannot fail it.

use sla_atpg::{AtpgConfig, AtpgEngine, WorkBudget};
use sla_circuits::{scale_circuit, ScaleConfig};
use sla_core::{LearnConfig, SequentialLearner};
use sla_netlist::levelize::levelize;
use sla_netlist::parser::parse_bench;
use sla_netlist::wallclock;
use sla_netlist::writer::write_bench;
use sla_sim::collapsed_fault_list;
use std::process::ExitCode;

/// Peak-RSS sanity bound for the whole smoke run. The 1M-gate pipeline
/// measures ~340 MiB peak (arena + bench text + learning scratch + ATPG
/// machines); 2 GiB leaves ample headroom for allocator and toolchain
/// variance while still catching a per-node-allocation regression — a
/// boxed-Vec-per-node representation pays several hundred extra bytes per
/// node at this scale.
const MAX_RSS_KIB: u64 = 2 * 1024 * 1024;

/// Largest size must not pay more than this multiple of the smallest size's
/// per-gate ingest cost. Linear ingest gives a ratio near 1.0; the bound is
/// generous because CI boxes throttle, but a quadratic term at 4× size would
/// overshoot it immediately.
const MAX_PER_GATE_RATIO: f64 = 3.0;

fn vm_hwm_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn main() -> ExitCode {
    let sizes = [1usize << 18, 1 << 19, 1 << 20];
    let mut per_gate_ns: Vec<f64> = Vec::new();
    let mut largest = None;

    for &gates in &sizes {
        let cfg = ScaleConfig::sized(&format!("smoke{gates}"), gates, 16, 8);
        let t_gen = wallclock::now();
        let generated = scale_circuit(&cfg);
        let text = write_bench(&generated);
        let gen_ms = t_gen.elapsed().as_millis();

        let t_ingest = wallclock::now();
        let parsed = match parse_bench(cfg.name.as_str(), &text) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("bigsmoke: parse failed at {gates} gates: {e}");
                return ExitCode::FAILURE;
            }
        };
        let levels = match levelize(&parsed) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("bigsmoke: levelize failed at {gates} gates: {e}");
                return ExitCode::FAILURE;
            }
        };
        let ingest = t_ingest.elapsed();

        let ns = ingest.as_nanos() as f64 / parsed.num_gates() as f64;
        per_gate_ns.push(ns);
        println!(
            "ingest {:>9} gates  depth {:>2}  gen+write {:>6} ms  parse+levelize {:>6} ms  {:>6.1} ns/gate",
            parsed.num_gates(),
            levels.max_level(),
            gen_ms,
            ingest.as_millis(),
            ns
        );
        if gates == *sizes.last().expect("sizes is non-empty") {
            largest = Some(parsed);
        }
    }

    let ratio = per_gate_ns[per_gate_ns.len() - 1] / per_gate_ns[0];
    println!("per-gate ingest ratio (largest/smallest): {ratio:.2}");
    if ratio > MAX_PER_GATE_RATIO {
        eprintln!(
            "bigsmoke: ingest is superlinear — per-gate cost grew {ratio:.2}x \
             across a {}x size range (bound {MAX_PER_GATE_RATIO})",
            sizes[sizes.len() - 1] / sizes[0]
        );
        return ExitCode::FAILURE;
    }

    let netlist = largest.expect("largest size was ingested");

    // Budget-limited learning: one unit per stem injection / multi-node
    // target keeps the pass deterministic and minutes-free at this scale.
    // Gate-equivalence extraction is off because it sweeps every gate before
    // the budget applies, and the frame window is shortened — the smoke
    // exercises the injection machinery on the arena, not learning quality.
    let t_learn = wallclock::now();
    let learn_cfg = LearnConfig::builder()
        .budget(WorkBudget::units(256))
        .gate_equivalence(false)
        .max_frames(8)
        .build();
    let learned = match SequentialLearner::new(&netlist, learn_cfg).learn() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bigsmoke: learning failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "learning: {} relations in {} ms (budgeted)",
        learned.stats.total.total(),
        t_learn.elapsed().as_millis()
    );

    // Budget-limited ATPG over a fault sample: exercises the search machine
    // construction and event loops on the arena without chasing coverage.
    let t_atpg = wallclock::now();
    let mut faults = collapsed_fault_list(&netlist);
    faults.truncate(24);
    let config = AtpgConfig::builder()
        .backtrack_limit(8)
        .budget(WorkBudget::units(50_000))
        .build();
    let engine = match AtpgEngine::new(&netlist, config) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("bigsmoke: engine construction failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let run = engine.run(&faults);
    println!(
        "atpg: {} faults -> {} detected, {} untestable, {} aborted in {} ms (budgeted)",
        faults.len(),
        run.stats.detected,
        run.stats.untestable,
        run.stats.aborted,
        t_atpg.elapsed().as_millis()
    );

    match vm_hwm_kib() {
        Some(kib) => {
            println!(
                "peak RSS: {} MiB (bound {} MiB)",
                kib / 1024,
                MAX_RSS_KIB / 1024
            );
            if kib > MAX_RSS_KIB {
                eprintln!("bigsmoke: peak RSS {kib} KiB exceeds the {MAX_RSS_KIB} KiB bound");
                return ExitCode::FAILURE;
            }
        }
        None => println!("peak RSS: unavailable (not linux?) — bound skipped"),
    }

    println!("bigsmoke: OK");
    ExitCode::SUCCESS
}
