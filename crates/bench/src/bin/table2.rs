//! Table 2 — learned invalid-state relations of the Figure-1-style circuit,
//! split by learning mode: single-node only, plus multiple-node learning, plus
//! gate-equivalence assistance. Pass `--figure2` to run the Figure-2-style
//! circuit instead (the multiple-node-only relation).

use sla_circuits::{paper_style_figure1, paper_style_figure2};
use sla_core::{Implication, LearnConfig, SequentialLearner};
use sla_netlist::Netlist;
use std::collections::BTreeSet;

fn relations(netlist: &Netlist, config: LearnConfig) -> BTreeSet<String> {
    let result = SequentialLearner::new(netlist, config)
        .learn()
        .expect("learning succeeds on the figure circuits");
    result
        .invalid_state_relations(netlist)
        .iter()
        .map(|imp: &Implication| imp.describe(netlist))
        .collect()
}

fn main() {
    let use_figure2 = std::env::args().any(|a| a == "--figure2");
    let netlist = if use_figure2 {
        paper_style_figure2()
    } else {
        paper_style_figure1()
    };
    println!(
        "Table 2: learned invalid-state relations for the {} circuit\n",
        netlist.name()
    );

    let single = relations(&netlist, LearnConfig::single_node_only());
    let multi = relations(&netlist, LearnConfig::without_equivalence());
    let full = relations(&netlist, LearnConfig::default());

    println!("Single-node relations ({}):", single.len());
    for r in &single {
        println!("  {r}");
    }
    println!(
        "\nAdditional multiple-node relations ({}):",
        multi.difference(&single).count()
    );
    for r in multi.difference(&single) {
        println!("  {r}");
    }
    println!(
        "\nAdditional gate-equivalence relations ({}):",
        full.difference(&multi).count()
    );
    for r in full.difference(&multi) {
        println!("  {r}");
    }

    // Tied gates learned along the way (the paper's G3 / G15 walk-through).
    let result = SequentialLearner::new(&netlist, LearnConfig::default())
        .learn()
        .expect("learning succeeds");
    println!("\nTied gates ({}):", result.tied.len());
    for tie in &result.tied {
        println!("  {}", tie.describe(&netlist));
    }
}
