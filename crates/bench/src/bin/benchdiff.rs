//! Compares two benchmark result files and prints per-bench median deltas,
//! with an optional regression gate for CI.
//!
//! Usage:
//!
//! ```text
//! benchdiff <baseline> <current> [--fail-above <pct>]
//! ```
//!
//! Both inputs may be either the JSON-lines output written by
//! `SLA_BENCH_JSON=<path> cargo bench -p sla-bench` (one object per line) or a
//! committed baseline file like `BENCH_baseline.json` that wraps the same
//! records in a `"results"` array with toolchain metadata. Records are matched
//! by `group/bench`; benches only in the current run are listed as `new` and
//! never fail the gate. With `--fail-above <pct>`, the process exits non-zero
//! when any common bench's median regressed by more than `pct` percent, when
//! a baseline bench is missing from the current run (the gate would silently
//! lose coverage), when a baseline median is zero (the relative delta is
//! undefined), or when there is no common bench at all, which would make the
//! gate vacuous. Records naming a bench without a usable `median_ns` abort
//! the diff with a message.

use std::process::ExitCode;

/// One parsed benchmark record.
#[derive(Debug, Clone, PartialEq)]
struct Record {
    group: String,
    bench: String,
    median_ns: f64,
    /// Worker-thread count the record was measured under. Records written
    /// before the field existed default to 1: every committed baseline up to
    /// and including `BENCH_pr3.json` was recorded single-threaded.
    threads: usize,
}

/// Extracts the quoted string value following `"key":` in a flat JSON object.
fn str_field(object: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\"");
    let at = object.find(&pat)? + pat.len();
    let rest = object[at..].trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// Extracts the numeric value following `"key":` in a flat JSON object.
fn num_field(object: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\"");
    let at = object.find(&pat)? + pat.len();
    let rest = object[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses every benchmark record in `text`. Works for both supported formats
/// because records are flat objects: each `{…}` span containing a `"group"`
/// key is treated as one record; enclosing metadata objects have no `"group"`
/// and are skipped. Records naming a bench but carrying no parseable
/// `median_ns` are returned separately so the caller can refuse to gate on a
/// file with holes instead of silently ignoring them.
fn parse_records(text: &str) -> (Vec<Record>, Vec<String>) {
    let mut records = Vec::new();
    let mut malformed = Vec::new();
    for chunk in text.split('{').skip(1) {
        let object = chunk.split('}').next().unwrap_or("");
        let (Some(group), Some(bench)) = (str_field(object, "group"), str_field(object, "bench"))
        else {
            continue;
        };
        let threads = num_field(object, "threads")
            .map(|t| t as usize)
            .unwrap_or(1);
        match num_field(object, "median_ns") {
            Some(median_ns) => records.push(Record {
                group,
                bench,
                median_ns,
                threads,
            }),
            None => malformed.push(format!("{group}/{bench}")),
        }
    }
    (records, malformed)
}

fn format_ms(ns: f64) -> String {
    format!("{:.3}", ns / 1e6)
}

/// Folds one result file's failure modes — unreadable path, malformed
/// records, or no records at all (an empty JSONL from an interrupted bench
/// run parses to nothing) — into a single one-line diagnostic, so CI logs
/// show exactly which input is broken and why.
fn gather(path: &str, text: Result<String, String>) -> Result<Vec<Record>, String> {
    let text = text.map_err(|e| format!("cannot read {path}: {e}"))?;
    let (records, malformed) = parse_records(&text);
    if !malformed.is_empty() {
        return Err(format!(
            "{path}: {} record(s) without a usable median_ns ({}); refusing to diff",
            malformed.len(),
            malformed.join(", ")
        ));
    }
    if records.is_empty() {
        return Err(format!(
            "{path}: no benchmark records found (empty or non-benchmark file); \
             regenerate it with SLA_BENCH_JSON=<path> cargo bench -p sla-bench"
        ));
    }
    Ok(records)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&str> = Vec::new();
    let mut fail_above: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fail-above" => {
                let Some(pct) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                    eprintln!("--fail-above requires a numeric percentage");
                    return ExitCode::from(2);
                };
                fail_above = Some(pct);
                i += 1;
            }
            other => paths.push(other),
        }
        i += 1;
    }
    let [baseline_path, current_path] = paths[..] else {
        eprintln!("usage: benchdiff <baseline> <current> [--fail-above <pct>]");
        return ExitCode::from(2);
    };

    let read = |path: &str| std::fs::read_to_string(path).map_err(|e| e.to_string());
    let baseline = match gather(baseline_path, read(baseline_path)) {
        Ok(records) => records,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let current = match gather(current_path, read(current_path)) {
        Ok(records) => records,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    println!(
        "{:<44} {:>12} {:>12} {:>9}",
        "bench", "base (ms)", "curr (ms)", "delta"
    );
    let mut worst: Option<(String, f64)> = None;
    let mut zero_based: Vec<String> = Vec::new();
    let mut missing: Vec<String> = Vec::new();
    let mut thread_mismatch: Vec<String> = Vec::new();
    for base in &baseline {
        let name = format!("{}/{}", base.group, base.bench);
        match current
            .iter()
            .find(|c| c.group == base.group && c.bench == base.bench)
        {
            Some(curr) => {
                // Medians measured under different worker-thread counts are
                // not comparable: a faster parallel run would mask a kernel
                // regression (and vice versa). Collect the mismatch; gating
                // on it fails below.
                if curr.threads != base.threads {
                    thread_mismatch.push(format!(
                        "{name} (baseline {} thread(s), current {})",
                        base.threads, curr.threads
                    ));
                }
                // A zero (or negative) baseline median makes the relative
                // delta undefined; collect it instead of dividing by zero and
                // letting a NaN/inf slip through the gate comparisons.
                if base.median_ns <= 0.0 {
                    println!(
                        "{:<44} {:>12} {:>12} {:>9}",
                        name,
                        format_ms(base.median_ns),
                        format_ms(curr.median_ns),
                        "zero-base"
                    );
                    zero_based.push(name);
                    continue;
                }
                let delta = (curr.median_ns - base.median_ns) / base.median_ns * 100.0;
                println!(
                    "{:<44} {:>12} {:>12} {:>+8.1}%",
                    name,
                    format_ms(base.median_ns),
                    format_ms(curr.median_ns),
                    delta
                );
                if worst.as_ref().is_none_or(|(_, w)| delta > *w) {
                    worst = Some((name, delta));
                }
            }
            None => {
                println!(
                    "{:<44} {:>12} {:>12} {:>9}",
                    name,
                    format_ms(base.median_ns),
                    "-",
                    "missing"
                );
                missing.push(name);
            }
        }
    }
    for curr in &current {
        if !baseline
            .iter()
            .any(|b| b.group == curr.group && b.bench == curr.bench)
        {
            println!(
                "{:<44} {:>12} {:>12} {:>9}",
                format!("{}/{}", curr.group, curr.bench),
                "-",
                format_ms(curr.median_ns),
                "new"
            );
        }
    }

    if !thread_mismatch.is_empty() && fail_above.is_some() {
        // Refuse to gate across thread counts entirely: rerun the current
        // benches under the baseline's SLA_THREADS (or record a new baseline
        // at the new count deliberately).
        eprintln!(
            "FAIL: thread-count mismatch between baseline and current run for {} \
             — rerun with the baseline's SLA_THREADS or refresh the baseline",
            thread_mismatch.join(", ")
        );
        return ExitCode::from(1);
    }
    if !zero_based.is_empty() && fail_above.is_some() {
        // A zero-median baseline bench cannot be judged against a relative
        // limit; a broken baseline must be regenerated, not gated around.
        eprintln!(
            "FAIL: baseline median is zero for {} — regenerate the baseline before gating",
            zero_based.join(", ")
        );
        return ExitCode::from(1);
    }
    if !missing.is_empty() && fail_above.is_some() {
        // A baseline bench absent from the current run means the gate lost
        // coverage (renamed or deleted bench): refresh the baseline
        // deliberately instead of letting the comparison silently shrink.
        eprintln!(
            "FAIL: baseline bench(es) missing from the current run: {} — \
             refresh the baseline if the removal is intentional",
            missing.join(", ")
        );
        return ExitCode::from(1);
    }
    match (&worst, fail_above) {
        (Some((name, delta)), Some(limit)) => {
            println!("\nworst regression: {name} at {delta:+.1}%");
            if *delta > limit {
                eprintln!("FAIL: {name} regressed {delta:+.1}% (> {limit}%)");
                return ExitCode::from(1);
            }
            println!("gate: all common benches within +{limit}%");
        }
        (Some((name, delta)), None) => {
            println!("\nworst regression: {name} at {delta:+.1}%");
        }
        (None, Some(_)) => {
            // A gate over an empty intersection would pass vacuously — e.g.
            // after a bench rename — and hide real regressions.
            eprintln!("FAIL: no common benches between baseline and current; gate is vacuous");
            return ExitCode::from(1);
        }
        (None, None) => {}
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    const JSONL: &str = r#"{"group": "g", "bench": "a", "samples": 10, "mean_ns": 100, "median_ns": 90, "min_ns": 80, "max_ns": 120}
{"group": "g", "bench": "b/5", "samples": 10, "mean_ns": 2000, "median_ns": 1800, "min_ns": 1500, "max_ns": 2500}
"#;

    const WRAPPED: &str = r#"{
  "schema": "sla-bench-baseline/v1",
  "toolchain": "rustc",
  "results": [
    {
      "group": "g",
      "bench": "a",
      "samples": 10,
      "median_ns": 100
    },
    {
      "group": "h",
      "bench": "c",
      "median_ns": 50
    }
  ]
}"#;

    #[test]
    fn parses_json_lines() {
        let (records, malformed) = parse_records(JSONL);
        assert_eq!(records.len(), 2);
        assert!(malformed.is_empty());
        assert_eq!(records[0].group, "g");
        assert_eq!(records[0].bench, "a");
        assert_eq!(records[0].median_ns, 90.0);
        assert_eq!(records[1].bench, "b/5");
        assert_eq!(records[1].median_ns, 1800.0);
    }

    #[test]
    fn parses_wrapped_baseline() {
        let (records, malformed) = parse_records(WRAPPED);
        assert_eq!(records.len(), 2, "metadata object must not parse");
        assert!(malformed.is_empty());
        assert_eq!(records[0].median_ns, 100.0);
        assert_eq!(records[1].group, "h");
    }

    #[test]
    fn records_without_median_are_reported_not_dropped() {
        let text = r#"{"group": "g", "bench": "a", "median_ns": 90}
{"group": "g", "bench": "broken", "samples": 10}
{"group": "g", "bench": "nan", "median_ns": "oops"}
"#;
        let (records, malformed) = parse_records(text);
        assert_eq!(records.len(), 1);
        assert_eq!(malformed, vec!["g/broken".to_string(), "g/nan".to_string()]);
    }

    #[test]
    fn zero_median_parses_but_is_not_gateable() {
        // The parser keeps a 0 median (it is the gate logic that refuses it);
        // this pins the contract the main-path guard relies on.
        let (records, malformed) = parse_records(r#"{"group": "g", "bench": "z", "median_ns": 0}"#);
        assert!(malformed.is_empty());
        assert_eq!(records[0].median_ns, 0.0);
        assert!(records[0].median_ns <= 0.0, "guard condition must trip");
    }

    #[test]
    fn threads_field_parses_and_defaults_to_one() {
        let text = r#"{"group": "g", "bench": "a", "median_ns": 90, "threads": 4, "available_parallelism": 8}
{"group": "g", "bench": "legacy", "median_ns": 50}
"#;
        let (records, malformed) = parse_records(text);
        assert!(malformed.is_empty());
        assert_eq!(records[0].threads, 4);
        assert_eq!(
            records[1].threads, 1,
            "pre-PR4 records were single-threaded"
        );
    }

    #[test]
    fn gather_reports_unreadable_files_in_one_line() {
        let err = gather("missing.json", Err("No such file or directory".into())).unwrap_err();
        assert!(err.starts_with("cannot read missing.json:"), "{err}");
        assert!(!err.contains('\n'), "diagnostic must be one line: {err}");
    }

    #[test]
    fn gather_reports_empty_input_in_one_line() {
        for text in ["", "\n\n", "not json at all"] {
            let err = gather("empty.jsonl", Ok(text.to_string())).unwrap_err();
            assert!(err.contains("no benchmark records"), "{err}");
            assert!(err.contains("empty.jsonl"), "{err}");
            assert!(!err.contains('\n'), "diagnostic must be one line: {err}");
        }
    }

    #[test]
    fn gather_refuses_malformed_records() {
        let text = r#"{"group": "g", "bench": "a", "median_ns": 90}
{"group": "g", "bench": "broken", "samples": 10}
"#;
        let err = gather("holes.jsonl", Ok(text.to_string())).unwrap_err();
        assert!(err.contains("g/broken"), "{err}");
        assert!(err.contains("refusing to diff"), "{err}");
        let ok = gather(
            "fine.jsonl",
            Ok(r#"{"group": "g", "bench": "a", "median_ns": 90}"#.to_string()),
        )
        .unwrap();
        assert_eq!(ok.len(), 1);
    }

    #[test]
    fn field_extractors_handle_spacing() {
        let obj = r#""group" : "x",  "median_ns" :  12.5e3"#;
        assert_eq!(str_field(obj, "group").as_deref(), Some("x"));
        assert_eq!(num_field(obj, "median_ns"), Some(12.5e3));
    }

    #[test]
    fn missing_fields_yield_none() {
        assert_eq!(str_field("\"a\": 1", "b"), None);
        assert_eq!(num_field("\"a\": \"str\"", "a"), None);
    }
}
