//! Criterion ablation benches for the design choices called out in DESIGN.md:
//! the frame limit of the forward simulation, the multiple-node phase and the
//! gate-equivalence assistance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sla_circuits::{build_profile, profile_by_name};
use sla_core::{LearnConfig, SequentialLearner};

fn frame_limit_sweep(c: &mut Criterion) {
    let netlist = build_profile(profile_by_name("s953").expect("profile"), 0.25);
    let mut group = c.benchmark_group("frame_limit");
    group.sample_size(10);
    for frames in [1usize, 5, 20, 50] {
        group.bench_with_input(
            BenchmarkId::from_parameter(frames),
            &frames,
            |b, &frames| {
                b.iter(|| {
                    SequentialLearner::new(
                        &netlist,
                        LearnConfig::builder().max_frames(frames).build(),
                    )
                    .learn()
                    .expect("learning succeeds")
                })
            },
        );
    }
    group.finish();
}

fn equivalence_ablation(c: &mut Criterion) {
    let netlist = build_profile(profile_by_name("s1269").expect("profile"), 0.25);
    let mut group = c.benchmark_group("gate_equivalence");
    group.sample_size(10);
    group.bench_function("with_equivalence", |b| {
        b.iter(|| {
            SequentialLearner::new(&netlist, LearnConfig::default())
                .learn()
                .expect("learning succeeds")
        })
    });
    group.bench_function("without_equivalence", |b| {
        b.iter(|| {
            SequentialLearner::new(&netlist, LearnConfig::without_equivalence())
                .learn()
                .expect("learning succeeds")
        })
    });
    group.finish();
}

criterion_group!(benches, frame_limit_sweep, equivalence_ablation);
criterion_main!(benches);
