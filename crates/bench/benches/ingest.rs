//! Criterion bench: real-netlist ingestion — `.bench` text to a levelized
//! arena. The three sizes double each time, so linear-time ingest shows up
//! as medians that double too; superlinear drift (reallocation storms,
//! quadratic name lookups) bends the curve and trips the benchdiff gate.
//! The full ≥1M-gate linearity assertion lives in the `bigsmoke` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sla_circuits::{scale_circuit, ScaleConfig};
use sla_netlist::levelize::levelize;
use sla_netlist::parser::parse_bench;
use sla_netlist::writer::write_bench;

/// Bench text for a layered circuit with `gates` gates at fixed depth 8.
fn bench_text(gates: usize) -> String {
    let cfg = ScaleConfig::sized(&format!("ingest{gates}"), gates, 8, 11);
    write_bench(&scale_circuit(&cfg))
}

fn ingest_parse_levelize(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest");
    group.sample_size(10);
    for gates in [16_384usize, 32_768, 65_536] {
        let text = bench_text(gates);
        group.bench_with_input(
            BenchmarkId::new("parse_levelize", format!("{}k", gates / 1024)),
            &text,
            |b, text| {
                b.iter(|| {
                    let n = parse_bench("ingest", text).expect("generated text parses");
                    levelize(&n).expect("layered circuit is acyclic")
                })
            },
        );
    }
    group.finish();
}

/// The generator itself (arena construction without the text front-end), so
/// parser cost and builder cost stay separable in the records.
fn ingest_generate(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest");
    group.sample_size(10);
    let cfg = ScaleConfig::sized("gen64k", 65_536, 8, 11);
    group.bench_function("generate/64k", |b| b.iter(|| scale_circuit(&cfg)));
    group.finish();
}

criterion_group!(benches, ingest_parse_levelize, ingest_generate);
criterion_main!(benches);
