//! Criterion bench: sequential learning cost vs. circuit size (the scaling
//! claim behind Table 3 — learning time grows roughly linearly with gates and
//! stays far below ATPG time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sla_circuits::{build_profile, industrial_circuit, profile_by_name, IndustrialConfig};
use sla_core::{LearnConfig, SequentialLearner};

fn learning_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sequential_learning");
    group.sample_size(10);
    for name in ["s400", "s953", "s1423"] {
        let profile = profile_by_name(name).expect("profile exists");
        let netlist = build_profile(profile, 0.25);
        group.bench_with_input(
            BenchmarkId::new("learn", format!("{name}-{}g", netlist.num_gates())),
            &netlist,
            |b, netlist| {
                b.iter(|| {
                    SequentialLearner::new(netlist, LearnConfig::default())
                        .learn()
                        .expect("learning succeeds")
                })
            },
        );
    }
    group.finish();
}

/// The industrial-style generator: multiple clock domains, latches and
/// set/reset lines — the workload of the batched-learning acceptance target.
fn learning_industrial(c: &mut Criterion) {
    let netlist = industrial_circuit(&IndustrialConfig::default());
    let mut group = c.benchmark_group("sequential_learning");
    group.sample_size(10);
    group.bench_function("industrial", |b| {
        b.iter(|| {
            SequentialLearner::new(&netlist, LearnConfig::default())
                .learn()
                .expect("learning succeeds")
        })
    });
    group.finish();
}

/// Thread scaling of the sharded learning pipeline on the industrial
/// workload. The `threads/1` lane is the exact serial path; the others must
/// produce bit-identical results (property-tested in `tests/par_prop.rs`),
/// so any delta here is pure scheduling. Explicit counts are passed through
/// `learn_with_threads`, independent of the `SLA_THREADS` environment the
/// JSON metadata records.
fn learning_thread_scaling(c: &mut Criterion) {
    let netlist = industrial_circuit(&IndustrialConfig::default());
    let mut group = c.benchmark_group("sequential_learning");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("industrial/threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    SequentialLearner::new(&netlist, LearnConfig::default())
                        .learn_with_threads(threads)
                        .expect("learning succeeds")
                })
            },
        );
    }
    group.finish();
}

fn learning_single_vs_multi(c: &mut Criterion) {
    let mut group = c.benchmark_group("learning_phases");
    group.sample_size(10);
    let profile = profile_by_name("s953").expect("profile exists");
    let netlist = build_profile(profile, 0.25);
    group.bench_function("single_node_only", |b| {
        b.iter(|| {
            SequentialLearner::new(&netlist, LearnConfig::single_node_only())
                .learn()
                .expect("learning succeeds")
        })
    });
    group.bench_function("with_multiple_node", |b| {
        b.iter(|| {
            SequentialLearner::new(&netlist, LearnConfig::default())
                .learn()
                .expect("learning succeeds")
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    learning_scaling,
    learning_industrial,
    learning_thread_scaling,
    learning_single_vs_multi
);
criterion_main!(benches);
