//! Criterion bench: ATPG time with and without sequential learning on a
//! retimed-style (low density of encoding) circuit — the Table 5 comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use sla_atpg::{AtpgConfig, AtpgEngine, LearnedData, LearningMode};
use sla_circuits::{retimed_circuit, RetimedConfig};
use sla_core::{LearnConfig, SequentialLearner};
use sla_sim::collapsed_fault_list;

fn atpg_with_and_without_learning(c: &mut Criterion) {
    let netlist = retimed_circuit(&RetimedConfig {
        master_bits: 3,
        derived_bits: 8,
        extra_gates: 24,
        inputs: 4,
        ..RetimedConfig::default()
    });
    let mut faults = collapsed_fault_list(&netlist);
    faults.truncate(60);
    let learned = LearnedData::from(
        &SequentialLearner::new(&netlist, LearnConfig::default())
            .learn()
            .expect("learning succeeds"),
    );

    let mut group = c.benchmark_group("atpg_retimed");
    group.sample_size(10);
    group.bench_function("no_learning", |b| {
        b.iter(|| {
            AtpgEngine::new(&netlist, AtpgConfig::with_backtrack_limit(30))
                .expect("levelizes")
                .run(&faults)
        })
    });
    group.bench_function("forbidden_values", |b| {
        b.iter(|| {
            AtpgEngine::new(
                &netlist,
                AtpgConfig::with_backtrack_limit(30).learning(LearningMode::ForbiddenValue),
            )
            .expect("levelizes")
            .with_learned(learned.clone())
            .run(&faults)
        })
    });
    group.bench_function("known_values", |b| {
        b.iter(|| {
            AtpgEngine::new(
                &netlist,
                AtpgConfig::with_backtrack_limit(30).learning(LearningMode::KnownValue),
            )
            .expect("levelizes")
            .with_learned(learned.clone())
            .run(&faults)
        })
    });
    group.finish();
}

criterion_group!(benches, atpg_with_and_without_learning);
criterion_main!(benches);
