//! Criterion bench: ATPG time with and without sequential learning on a
//! retimed-style (low density of encoding) circuit — the Table 5 comparison.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sla_atpg::{AtpgConfig, AtpgEngine, LearnedData, LearningMode, SearchMachines};
use sla_circuits::{retimed_circuit, table5_circuit, RetimedConfig, Table5Config};
use sla_core::{LearnConfig, SequentialLearner};
use sla_netlist::levelize::levelize;
use sla_sim::{collapsed_fault_list, FaultSimulator, Logic3, TestSequence};

fn atpg_with_and_without_learning(c: &mut Criterion) {
    let netlist = retimed_circuit(&RetimedConfig {
        master_bits: 3,
        derived_bits: 8,
        extra_gates: 24,
        inputs: 4,
        ..RetimedConfig::default()
    });
    let mut faults = collapsed_fault_list(&netlist);
    faults.truncate(60);
    let learned = LearnedData::from(
        &SequentialLearner::new(&netlist, LearnConfig::default())
            .learn()
            .expect("learning succeeds"),
    );

    let mut group = c.benchmark_group("atpg_retimed");
    group.sample_size(10);
    group.bench_function("no_learning", |b| {
        b.iter(|| {
            AtpgEngine::new(&netlist, AtpgConfig::builder().backtrack_limit(30).build())
                .expect("levelizes")
                .run(&faults)
        })
    });
    group.bench_function("forbidden_values", |b| {
        b.iter(|| {
            AtpgEngine::new(
                &netlist,
                AtpgConfig::builder()
                    .backtrack_limit(30)
                    .learning(LearningMode::ForbiddenValue)
                    .build(),
            )
            .expect("levelizes")
            .with_learned(learned.clone())
            .run(&faults)
        })
    });
    group.bench_function("known_values", |b| {
        b.iter(|| {
            AtpgEngine::new(
                &netlist,
                AtpgConfig::builder()
                    .backtrack_limit(30)
                    .learning(LearningMode::KnownValue)
                    .build(),
            )
            .expect("levelizes")
            .with_learned(learned.clone())
            .run(&faults)
        })
    });
    group.finish();
}

/// The event-driven incremental search loop on the Table-5 workload: deep
/// redundant select stacks mean long decide/backtrack sequences per fault,
/// which is exactly the path the incrementally maintained good/faulty
/// machines (and the event-fed implication layer) accelerate.
fn atpg_search_incremental(c: &mut Criterion) {
    let netlist = table5_circuit(&Table5Config::default());
    let faults = collapsed_fault_list(&netlist);
    let learned = LearnedData::from(
        &SequentialLearner::new(&netlist, LearnConfig::default())
            .learn()
            .expect("learning succeeds"),
    );

    let mut group = c.benchmark_group("atpg_search");
    group.sample_size(10);
    group.bench_function("incremental", |b| {
        b.iter(|| {
            AtpgEngine::new(
                &netlist,
                AtpgConfig::builder()
                    .backtrack_limit(100)
                    .learning(LearningMode::ForbiddenValue)
                    .build(),
            )
            .expect("levelizes")
            .with_learned(learned.clone())
            .run(&faults)
        })
    });
    group.finish();
}

/// Thread scaling of the wave-sharded ATPG loop on the Table-5 workload
/// (learning mode, fault dropping on — the worst case for speculation). The
/// `threads/1` lane is the exact serial path; the others produce
/// bit-identical verdicts, backtracks and sequences (property-tested in
/// `tests/par_prop.rs`). Explicit counts are passed through
/// `run_with_threads`, independent of the `SLA_THREADS` environment the JSON
/// metadata records.
fn atpg_thread_scaling(c: &mut Criterion) {
    let netlist = table5_circuit(&Table5Config::default());
    let faults = collapsed_fault_list(&netlist);
    let learned = LearnedData::from(
        &SequentialLearner::new(&netlist, LearnConfig::default())
            .learn()
            .expect("learning succeeds"),
    );
    let engine = AtpgEngine::new(
        &netlist,
        AtpgConfig::builder()
            .backtrack_limit(100)
            .learning(LearningMode::ForbiddenValue)
            .build(),
    )
    .expect("levelizes")
    .with_learned(learned);

    let mut group = c.benchmark_group("atpg_search");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            criterion::BenchmarkId::new("incremental/threads", threads),
            &threads,
            |b, &threads| b.iter(|| engine.run_with_threads(&faults, threads)),
        );
    }
    group.finish();
}

/// Word-parallel fault dropping: one test sequence fault-simulated against
/// the whole collapsed fault list (the per-test inner loop of
/// `AtpgEngine::run`).
///
/// This is a ~30 µs microbench whose median historically moved ±30% with the
/// code layout of the bench binary (ROADMAP "fault_dropping layout
/// instability"). Two mitigations: the hot inputs pass through `black_box`
/// so the optimizer cannot specialize the call site against the concrete
/// statics, and the sample count is 60 (not 10) so the median sits on a
/// dense part of the distribution instead of a handful of samples straddling
/// a layout-sensitive cliff. Measured after the fix: repeated runs of one
/// build agree to ≤±1% (was ±30%); across builds, layout can still step the
/// median by ~25% with no algorithmic change — see the benchdiff-gate note
/// in CI for the refresh-the-baseline rule.
fn fault_dropping(c: &mut Criterion) {
    let netlist = retimed_circuit(&RetimedConfig {
        master_bits: 4,
        derived_bits: 10,
        extra_gates: 40,
        inputs: 4,
        ..RetimedConfig::default()
    });
    let faults = collapsed_fault_list(&netlist);
    // A deterministic pseudo-random 8-frame sequence.
    let mut state = 0x5eed_u64;
    let vectors: Vec<Vec<Logic3>> = (0..8)
        .map(|_| {
            (0..netlist.inputs().len())
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    Logic3::from_bool(state >> 33 & 1 == 1)
                })
                .collect()
        })
        .collect();
    let sequence = TestSequence::new(vectors);
    let sim = FaultSimulator::new(&netlist).expect("levelizes");

    let mut group = c.benchmark_group("fault_dropping");
    group.sample_size(60);
    group.bench_function("detected_faults/retimed", |b| {
        b.iter(|| black_box(&sim).detected_faults(black_box(&faults), black_box(&sequence)))
    });
    group.finish();
}

/// The persistent D-frontier in isolation: one `SearchMachines` pair driven
/// through a deterministic decide / frontier-read / undo script over the
/// Table-5 workload (wide cones, deep windows). This is the bookkeeping the
/// per-objective cone scan used to redo from scratch; the lane pins its cost
/// separately from the full search loop so frontier regressions are not
/// masked by search-order changes.
fn atpg_frontier(c: &mut Criterion) {
    let netlist = table5_circuit(&Table5Config::default());
    let levels = levelize(&netlist).expect("levelizes");
    let faults = collapsed_fault_list(&netlist);
    // The fault with the widest cone: every gate its effects can reach is
    // frontier-relevant, making this the heaviest maintenance case.
    let fault = *faults
        .iter()
        .max_by_key(|f| {
            SearchMachines::new(&netlist, &levels, 1, **f)
                .cone_gates()
                .len()
        })
        .expect("non-empty fault list");
    let pis = netlist.inputs().to_vec();

    let mut group = c.benchmark_group("atpg_search");
    group.sample_size(20);
    group.bench_function("frontier", |b| {
        b.iter(|| {
            let mut machines = SearchMachines::new(&netlist, &levels, 8, fault);
            let mut acc = 0usize;
            for frame in 0..machines.window() {
                for (k, &pi) in pis.iter().enumerate() {
                    if machines.good().value(frame, pi) != Logic3::X {
                        continue;
                    }
                    let mark = machines.mark();
                    machines.assign(frame, pi, (frame + k) % 2 == 0);
                    acc += machines.d_frontier_iter().count();
                    acc += usize::from(machines.detected());
                    if (frame + k) % 3 == 0 {
                        machines.undo_to(mark);
                    }
                }
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    atpg_with_and_without_learning,
    fault_dropping,
    atpg_search_incremental,
    atpg_thread_scaling,
    atpg_frontier
);
criterion_main!(benches);
