//! Checkpoint/resume snapshots for the ATPG pipeline, plus the seeded
//! fault-injection harness ([`inject`]).
//!
//! A snapshot captures the resumable state of a partially executed ATPG run
//! ([`sla_atpg::RunProgress`]) together with everything needed to validate
//! that a resume is sound: a structural hash of the netlist, a hash of the
//! fault list, the full configuration (budget included) and the learned
//! database in insertion order. Snapshots are taken at **deterministic
//! fault-index boundaries** (the `stop_before` argument of
//! [`sla_atpg::AtpgEngine::advance`]), so a run interrupted at any boundary
//! and resumed is bit-identical to an uninterrupted one — the resume
//! property tests in the workspace root assert exactly that.
//!
//! # Format
//!
//! The codec is a hand-rolled binary format — no serde, the workspace vendors
//! no such dependency — designed for integrity checking, not compactness:
//!
//! ```text
//! magic   b"SLAS"                      4 bytes
//! version u32 little-endian            currently 1
//! payload netlist hash, fault-list hash, config, learned data, progress
//! check   u64 little-endian            FastHasher over all preceding bytes
//! ```
//!
//! Every multi-byte integer is little-endian; variable-length lists carry a
//! `u32` count. Decoding is total: corrupted, truncated or version-mismatched
//! bytes produce a typed [`SnapshotError`], never a panic, and
//! [`resume_or_fresh`] degrades to a fresh run while reporting the error.
//!
//! The version policy is deliberately simple: the version is bumped on any
//! layout change and old versions are **not** migrated — a snapshot is a
//! resumable cache, not an archival format; a stale one costs a recompute.

pub mod codec;
pub mod inject;

use codec::Writer;
use sla_atpg::{
    AbortReason, AtpgConfig, AtpgEngine, AtpgRun, FaultStatus, LearnedData, RunProgress,
};
use sla_core::{CrossImplication, ImplicationDb};
use sla_netlist::{FastHasher, Netlist, NetlistError, NodeId};
use sla_sim::{Fault, FaultSite, Logic3, TestSequence};
use std::fmt;
use std::hash::Hasher;

const MAGIC: &[u8; 4] = b"SLAS";
/// Current snapshot format version. Bumped on any layout change.
pub const FORMAT_VERSION: u32 = 1;

/// Why a snapshot could not be decoded or resumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The bytes do not start with the snapshot magic.
    BadMagic,
    /// The snapshot was written by an unsupported format version.
    UnsupportedVersion {
        /// Version found in the snapshot.
        found: u32,
        /// Version this build reads.
        supported: u32,
    },
    /// The byte stream ended before the payload was complete.
    Truncated,
    /// Decoding finished with unconsumed payload bytes.
    TrailingBytes,
    /// The trailing checksum does not match the content.
    ChecksumMismatch,
    /// The snapshot was taken on a structurally different netlist.
    NetlistMismatch,
    /// The snapshot was taken on a different fault list.
    FaultListMismatch,
    /// A field holds a value outside its encoding (a targeted corruption
    /// that happens to keep the checksum valid cannot reach this in
    /// practice, but the decoder is total anyway).
    Corrupt(&'static str),
    /// Rebuilding the engine from the snapshot failed structurally.
    Netlist(NetlistError),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a snapshot: bad magic"),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot version {found} (this build reads {supported})"
            ),
            SnapshotError::Truncated => write!(f, "snapshot is truncated"),
            SnapshotError::TrailingBytes => write!(f, "snapshot has trailing bytes"),
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::NetlistMismatch => {
                write!(f, "snapshot was taken on a different netlist")
            }
            SnapshotError::FaultListMismatch => {
                write!(f, "snapshot was taken on a different fault list")
            }
            SnapshotError::Corrupt(what) => write!(f, "snapshot field corrupt: {what}"),
            SnapshotError::Netlist(e) => write!(f, "snapshot resume failed: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

/// Structural hash of a netlist: name, node arena (kind, fanins, names),
/// input/output lists and clock table. Two netlists with the same hash are
/// the same circuit for resume purposes.
///
/// Thin delegate of [`Netlist::structural_hash`], kept so snapshot callers
/// need not know the hash moved into the netlist crate.
pub fn structural_hash(netlist: &Netlist) -> u64 {
    netlist.structural_hash()
}

/// Hash of a fault list (site, pin and polarity of every fault, in order).
pub fn faults_hash(faults: &[Fault]) -> u64 {
    let mut h = FastHasher::default();
    h.write_usize(faults.len());
    for f in faults {
        match f.site {
            FaultSite::Output(n) => {
                h.write_u8(0);
                h.write_u32(n.0);
            }
            FaultSite::Input { gate, pin } => {
                h.write_u8(1);
                h.write_u32(gate.0);
                h.write_usize(pin);
            }
        }
        h.write_u8(f.stuck_at as u8);
    }
    h.finish()
}

/// A versioned, checksummed snapshot of a partially executed ATPG run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtpgSnapshot {
    netlist_hash: u64,
    faults_hash: u64,
    config: AtpgConfig,
    implications: Vec<(sla_core::Implication, bool)>,
    cross_frame: Vec<CrossImplication>,
    tied: Vec<(NodeId, bool)>,
    next_fault: usize,
    status: Vec<Option<FaultStatus>>,
    sequences: Vec<TestSequence>,
    backtracks: usize,
    decisions: usize,
    test_vectors: usize,
    untestable_from_ties: usize,
    budget_spent: u64,
    panics: Vec<(usize, String)>,
}

impl AtpgSnapshot {
    /// Captures the resumable state of `progress` for `engine` on
    /// `netlist`/`faults`. The learned database is recorded in insertion
    /// order so the rebuilt engine searches identically.
    pub fn capture(
        netlist: &Netlist,
        engine: &AtpgEngine<'_>,
        faults: &[Fault],
        progress: &RunProgress,
    ) -> AtpgSnapshot {
        let learned = engine.learned();
        AtpgSnapshot {
            netlist_hash: structural_hash(netlist),
            faults_hash: faults_hash(faults),
            config: *engine.config(),
            implications: learned.implications().iter().collect(),
            cross_frame: learned.cross_frame().to_vec(),
            tied: learned.tied().to_vec(),
            next_fault: progress.next_fault(),
            status: progress.status().to_vec(),
            sequences: progress.sequences().to_vec(),
            backtracks: progress.backtracks(),
            decisions: progress.decisions(),
            test_vectors: progress.test_vectors(),
            untestable_from_ties: progress.untestable_from_ties(),
            budget_spent: progress.budget_spent(),
            panics: progress.panics().to_vec(),
        }
    }

    /// Serializes the snapshot (magic + version + payload + checksum).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes_raw(MAGIC);
        w.u32(FORMAT_VERSION);
        w.u64(self.netlist_hash);
        w.u64(self.faults_hash);
        // Configuration (budget included: a resumed run keeps its limits).
        codec::write_atpg_options(&mut w, &self.config);
        // Learned data, in insertion order.
        codec::write_relations(&mut w, &self.implications, &self.cross_frame, &self.tied);
        // Progress.
        w.u64(self.next_fault as u64);
        w.u32(self.status.len() as u32);
        for s in &self.status {
            w.u8(match s {
                None => 0,
                Some(FaultStatus::Detected) => 1,
                Some(FaultStatus::Untestable) => 2,
                Some(FaultStatus::Aborted(AbortReason::Limit)) => 3,
                Some(FaultStatus::Aborted(AbortReason::Budget)) => 4,
                Some(FaultStatus::Aborted(AbortReason::Panic)) => 5,
            });
        }
        w.u32(self.sequences.len() as u32);
        for seq in &self.sequences {
            w.u32(seq.vectors.len() as u32);
            for frame in &seq.vectors {
                w.u32(frame.len() as u32);
                for v in frame {
                    w.u8(match v {
                        Logic3::Zero => 0,
                        Logic3::One => 1,
                        Logic3::X => 2,
                    });
                }
            }
        }
        w.u64(self.backtracks as u64);
        w.u64(self.decisions as u64);
        w.u64(self.test_vectors as u64);
        w.u64(self.untestable_from_ties as u64);
        w.u64(self.budget_spent);
        w.u32(self.panics.len() as u32);
        for (idx, msg) in &self.panics {
            w.u64(*idx as u64);
            w.str(msg);
        }
        w.seal()
    }

    /// Decodes and integrity-checks a snapshot.
    ///
    /// # Errors
    ///
    /// Typed [`SnapshotError`] for bad magic, unsupported version,
    /// truncation, checksum mismatch, out-of-range fields or trailing bytes.
    /// Never panics on arbitrary input.
    pub fn decode(bytes: &[u8]) -> Result<AtpgSnapshot, SnapshotError> {
        let mut r = codec::check_frame(bytes, MAGIC, FORMAT_VERSION)?;

        let netlist_hash = r.u64()?;
        let faults_hash = r.u64()?;
        let config = codec::read_atpg_options(&mut r)?;
        let (implications, cross_frame, tied) = codec::read_relations(&mut r)?;

        let next_fault = r.u64()? as usize;
        let n = r.count()?;
        let mut status = Vec::with_capacity(n);
        for _ in 0..n {
            status.push(match r.u8()? {
                0 => None,
                1 => Some(FaultStatus::Detected),
                2 => Some(FaultStatus::Untestable),
                3 => Some(FaultStatus::Aborted(AbortReason::Limit)),
                4 => Some(FaultStatus::Aborted(AbortReason::Budget)),
                5 => Some(FaultStatus::Aborted(AbortReason::Panic)),
                _ => return Err(SnapshotError::Corrupt("fault status")),
            });
        }
        let n = r.count()?;
        let mut sequences = Vec::with_capacity(n);
        for _ in 0..n {
            let frames = r.count()?;
            let mut vectors = Vec::with_capacity(frames);
            for _ in 0..frames {
                let width = r.count()?;
                let mut frame = Vec::with_capacity(width);
                for _ in 0..width {
                    frame.push(match r.u8()? {
                        0 => Logic3::Zero,
                        1 => Logic3::One,
                        2 => Logic3::X,
                        _ => return Err(SnapshotError::Corrupt("logic value")),
                    });
                }
                vectors.push(frame);
            }
            sequences.push(TestSequence::new(vectors));
        }
        let backtracks = r.u64()? as usize;
        let decisions = r.u64()? as usize;
        let test_vectors = r.u64()? as usize;
        let untestable_from_ties = r.u64()? as usize;
        let budget_spent = r.u64()?;
        let n = r.count()?;
        let mut panics = Vec::with_capacity(n);
        for _ in 0..n {
            let idx = r.u64()? as usize;
            panics.push((idx, r.str()?));
        }
        if !r.at_end() {
            return Err(SnapshotError::TrailingBytes);
        }

        Ok(AtpgSnapshot {
            netlist_hash,
            faults_hash,
            config,
            implications,
            cross_frame,
            tied,
            next_fault,
            status,
            sequences,
            backtracks,
            decisions,
            test_vectors,
            untestable_from_ties,
            budget_spent,
            panics,
        })
    }

    /// The configuration the snapshotted run was using.
    pub fn config(&self) -> &AtpgConfig {
        &self.config
    }

    /// First fault index the resumed run will process.
    pub fn next_fault(&self) -> usize {
        self.next_fault
    }

    /// Rebuilds an engine and progress so the run can continue with
    /// [`AtpgEngine::advance`]. Validates that `netlist` and `faults` are
    /// the ones the snapshot was taken on.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::NetlistMismatch`] / [`SnapshotError::FaultListMismatch`]
    /// when the workload differs, and any structural error from rebuilding
    /// the engine.
    pub fn resume<'a>(
        &self,
        netlist: &'a Netlist,
        faults: &[Fault],
    ) -> Result<(AtpgEngine<'a>, RunProgress), SnapshotError> {
        if structural_hash(netlist) != self.netlist_hash {
            return Err(SnapshotError::NetlistMismatch);
        }
        if faults_hash(faults) != self.faults_hash {
            return Err(SnapshotError::FaultListMismatch);
        }
        if self.status.len() != faults.len() || self.next_fault > faults.len() {
            return Err(SnapshotError::Corrupt("progress shape"));
        }
        let mut db = ImplicationDb::new();
        for (imp, seq) in &self.implications {
            // `add` canonicalizes; the stored form is already canonical, so
            // re-adding reproduces the exact insertion order.
            db.add(*imp, *seq);
        }
        let learned = LearnedData::from_parts(db, self.tied.clone())
            .with_cross_frame(self.cross_frame.clone());
        let engine = AtpgEngine::new(netlist, self.config)
            .map_err(SnapshotError::Netlist)?
            .with_learned(learned);
        let progress = RunProgress::from_parts(
            self.next_fault,
            self.status.clone(),
            self.sequences.clone(),
            self.backtracks,
            self.decisions,
            self.test_vectors,
            self.untestable_from_ties,
            self.budget_spent,
            self.panics.clone(),
        );
        Ok((engine, progress))
    }
}

/// Decodes `bytes` and finishes the snapshotted run; on **any** snapshot
/// error falls back to a fresh full run with `config`/`learned`. Returns the
/// run and the snapshot error (if one occurred) — the caller decides whether
/// a degraded resume is worth reporting. Never panics on corrupt snapshots.
pub fn resume_or_fresh(
    bytes: &[u8],
    netlist: &Netlist,
    config: AtpgConfig,
    learned: &LearnedData,
    faults: &[Fault],
    threads: usize,
) -> (AtpgRun, Option<SnapshotError>) {
    match AtpgSnapshot::decode(bytes).and_then(|s| s.resume(netlist, faults)) {
        Ok((engine, mut progress)) => {
            engine.advance(faults, threads, &mut progress, None);
            (engine.finish(progress), None)
        }
        Err(e) => match AtpgEngine::new(netlist, config) {
            Ok(engine) => (
                engine
                    .with_learned(learned.clone())
                    .run_with_threads(faults, threads),
                Some(e),
            ),
            Err(structural) => (AtpgRun::default(), Some(SnapshotError::Netlist(structural))),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sla_netlist::{GateType, NetlistBuilder};
    use sla_sim::collapsed_fault_list;

    fn sample() -> Netlist {
        let mut b = NetlistBuilder::new("snap");
        b.input("a");
        b.input("b");
        b.gate("g", GateType::Nand, &["a", "b"]).unwrap();
        b.dff("q", "g").unwrap();
        b.gate("o", GateType::Xor, &["q", "b"]).unwrap();
        b.output("o").unwrap();
        b.build().unwrap()
    }

    fn snapshot_mid_run(netlist: &Netlist) -> (AtpgSnapshot, Vec<Fault>) {
        let faults = collapsed_fault_list(netlist);
        let engine = AtpgEngine::new(netlist, AtpgConfig::default()).unwrap();
        let mut progress = engine.start(&faults);
        engine.advance(&faults, 1, &mut progress, Some(faults.len() / 2));
        (
            AtpgSnapshot::capture(netlist, &engine, &faults, &progress),
            faults,
        )
    }

    #[test]
    fn encode_decode_round_trips() {
        let n = sample();
        let (snapshot, _) = snapshot_mid_run(&n);
        let bytes = snapshot.encode();
        let decoded = AtpgSnapshot::decode(&bytes).unwrap();
        assert_eq!(snapshot, decoded);
    }

    #[test]
    fn resume_continues_to_the_identical_result() {
        let n = sample();
        let (snapshot, faults) = snapshot_mid_run(&n);
        let engine = AtpgEngine::new(&n, AtpgConfig::default()).unwrap();
        let mut reference = engine.run_with_threads(&faults, 1);
        reference.stats.cpu = std::time::Duration::ZERO;

        let bytes = snapshot.encode();
        let decoded = AtpgSnapshot::decode(&bytes).unwrap();
        let (resumed_engine, mut progress) = decoded.resume(&n, &faults).unwrap();
        resumed_engine.advance(&faults, 1, &mut progress, None);
        let resumed = resumed_engine.finish(progress);
        assert_eq!(reference, resumed);
    }

    #[test]
    fn every_single_byte_corruption_is_detected_or_equal() {
        let n = sample();
        let (snapshot, _) = snapshot_mid_run(&n);
        let bytes = snapshot.encode();
        // Flipping any single bit must either fail decoding with a typed
        // error (the checksum makes this overwhelmingly likely) — it must
        // never panic. Exhaustive over every byte, one bit each.
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 1 << (i % 8);
            assert!(
                AtpgSnapshot::decode(&corrupt).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncation_and_framing_errors_are_typed() {
        let n = sample();
        let (snapshot, _) = snapshot_mid_run(&n);
        let bytes = snapshot.encode();
        for len in 0..bytes.len() {
            let err = AtpgSnapshot::decode(&bytes[..len]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated | SnapshotError::ChecksumMismatch
                ),
                "prefix of {len} bytes gave {err:?}"
            );
        }
        assert_eq!(
            AtpgSnapshot::decode(b"nope").unwrap_err(),
            SnapshotError::BadMagic
        );
        let mut future = bytes.clone();
        future[4] = 0xEE; // version bytes sit right after the magic
        future[5] = 0xFF;
        assert!(matches!(
            AtpgSnapshot::decode(&future).unwrap_err(),
            SnapshotError::UnsupportedVersion { .. }
        ));
    }

    #[test]
    fn mismatched_workload_is_rejected_on_resume() {
        let n = sample();
        let (snapshot, faults) = snapshot_mid_run(&n);
        let mut other = NetlistBuilder::new("other");
        other.input("a");
        other.gate("o", GateType::Not, &["a"]).unwrap();
        other.output("o").unwrap();
        let other = other.build().unwrap();
        let other_faults = collapsed_fault_list(&other);
        assert_eq!(
            snapshot.resume(&other, &other_faults).unwrap_err(),
            SnapshotError::NetlistMismatch
        );
        let mut short = faults.clone();
        short.pop();
        assert_eq!(
            snapshot.resume(&n, &short).unwrap_err(),
            SnapshotError::FaultListMismatch
        );
    }

    #[test]
    fn resume_or_fresh_degrades_to_a_fresh_run() {
        let n = sample();
        let (snapshot, faults) = snapshot_mid_run(&n);
        let mut bytes = snapshot.encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let baseline = AtpgEngine::new(&n, AtpgConfig::default())
            .unwrap()
            .run_with_threads(&faults, 1);
        let (run, err) = resume_or_fresh(
            &bytes,
            &n,
            AtpgConfig::default(),
            &LearnedData::new(),
            &faults,
            1,
        );
        assert!(err.is_some(), "corruption must be reported");
        assert_eq!(run.status, baseline.status);
        assert_eq!(run.sequences, baseline.sequences);

        // A healthy snapshot resumes without an error.
        let (run, err) = resume_or_fresh(
            &snapshot.encode(),
            &n,
            AtpgConfig::default(),
            &LearnedData::new(),
            &faults,
            1,
        );
        assert!(err.is_none());
        assert_eq!(run.status, baseline.status);
    }

    #[test]
    fn structural_hash_tracks_structure() {
        let a = sample();
        let b = sample();
        assert_eq!(structural_hash(&a), structural_hash(&b));
        let mut c = NetlistBuilder::new("snap");
        c.input("a");
        c.input("b");
        c.gate("g", GateType::And, &["a", "b"]).unwrap(); // Nand -> And
        c.dff("q", "g").unwrap();
        c.gate("o", GateType::Xor, &["q", "b"]).unwrap();
        c.output("o").unwrap();
        let c = c.build().unwrap();
        assert_ne!(structural_hash(&a), structural_hash(&c));
        let fa = collapsed_fault_list(&a);
        assert_eq!(faults_hash(&fa), faults_hash(&collapsed_fault_list(&b)));
        assert_ne!(faults_hash(&fa), faults_hash(&fa[1..]));
    }
}
