//! The shared binary codec: an append-only [`Writer`], a bounds-checked
//! [`Reader`], checksum framing ([`check_frame`]) and the encoders for the
//! payload shapes that appear in more than one artifact (ATPG options,
//! learned relations, fault lists).
//!
//! Snapshots, the persistent learned-knowledge store and the `sla-serve`
//! wire protocol all speak this codec, so they share one integrity
//! discipline: a 4-byte magic, a little-endian `u32` version, the payload,
//! and a trailing [`FastHasher`] checksum over everything before it. Every
//! decoder is total — corrupt bytes produce a typed [`SnapshotError`], never
//! a panic — and every list count is bounded by the bytes remaining so a
//! corrupt count cannot trigger a huge allocation.

use crate::SnapshotError;
use sla_atpg::{AtpgOptions, LearningMode};
use sla_core::{CrossImplication, Implication, Literal, WorkBudget};
use sla_netlist::{FastHasher, NodeId};
use sla_sim::{Fault, FaultSite};
use std::hash::Hasher;

/// Append-only byte sink of the codec.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer { buf: Vec::new() }
    }

    /// Appends raw bytes with no length prefix (magic values).
    pub fn bytes_raw(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` length prefix followed by the string bytes.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.bytes_raw(s.as_bytes());
    }

    /// Appends the checksum and returns the finished frame bytes.
    pub fn seal(mut self) -> Vec<u8> {
        let mut h = FastHasher::default();
        h.write(&self.buf);
        let sum = h.finish();
        self.buf.extend_from_slice(&sum.to_le_bytes());
        self.buf
    }
}

/// Bounds-checked byte source of the codec.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    end: usize,
}

impl<'a> Reader<'a> {
    /// A reader over all of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader {
            bytes,
            pos: 0,
            end: bytes.len(),
        }
    }

    /// A reader over `bytes[pos..end]` (checksum-excluded payload).
    pub fn with_limit(bytes: &'a [u8], pos: usize, end: usize) -> Reader<'a> {
        Reader { bytes, pos, end }
    }

    /// Takes the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.end - self.pos < n {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Skips `n` bytes.
    pub fn skip(&mut self, n: usize) -> Result<(), SnapshotError> {
        self.take(n).map(|_| ())
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads one byte as a strict boolean (0 or 1).
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Corrupt("boolean")),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// A `u32` list count, sanity-bounded by the bytes remaining so a
    /// corrupt count cannot trigger a huge allocation.
    pub fn count(&mut self) -> Result<usize, SnapshotError> {
        let n = self.u32()? as usize;
        if n > self.end - self.pos {
            return Err(SnapshotError::Truncated);
        }
        Ok(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapshotError> {
        let n = self.count()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError::Corrupt("string"))
    }

    /// `true` once every payload byte has been consumed.
    pub fn at_end(&self) -> bool {
        self.pos == self.end
    }
}

/// Validates the framing of a sealed frame — magic, version, trailing
/// checksum — and returns a [`Reader`] limited to the payload between the
/// header and the checksum.
///
/// # Errors
///
/// [`SnapshotError::Truncated`] when the bytes are too short for the frame
/// skeleton, [`SnapshotError::BadMagic`] / [`SnapshotError::UnsupportedVersion`]
/// on header mismatches, [`SnapshotError::ChecksumMismatch`] when the
/// trailing checksum disagrees with the content.
pub fn check_frame<'a>(
    bytes: &'a [u8],
    magic: &[u8; 4],
    version: u32,
) -> Result<Reader<'a>, SnapshotError> {
    if bytes.len() < magic.len() {
        return Err(SnapshotError::Truncated);
    }
    if &bytes[..magic.len()] != magic {
        return Err(SnapshotError::BadMagic);
    }
    let mut r = Reader::new(bytes);
    r.skip(magic.len())?;
    let found = r.u32()?;
    if found != version {
        return Err(SnapshotError::UnsupportedVersion {
            found,
            supported: version,
        });
    }
    if bytes.len() < magic.len() + 4 + 8 {
        return Err(SnapshotError::Truncated);
    }
    let body_len = bytes.len() - 8;
    let mut h = FastHasher::default();
    h.write(&bytes[..body_len]);
    let want = u64::from_le_bytes(
        bytes[body_len..]
            .try_into()
            .map_err(|_| SnapshotError::Truncated)?,
    );
    if h.finish() != want {
        return Err(SnapshotError::ChecksumMismatch);
    }
    Ok(Reader::with_limit(bytes, magic.len() + 4, body_len))
}

/// Encodes an [`AtpgOptions`] (budget included: a resumed or replayed run
/// keeps its limits).
pub fn write_atpg_options(w: &mut Writer, opts: &AtpgOptions) {
    w.u64(opts.backtrack_limit as u64);
    w.u64(opts.max_window as u64);
    w.u64(opts.max_decisions as u64);
    w.u8(match opts.learning {
        LearningMode::None => 0,
        LearningMode::ForbiddenValue => 1,
        LearningMode::KnownValue => 2,
    });
    w.u8(opts.grow_window as u8);
    w.u8(opts.fault_dropping as u8);
    w.u64(opts.budget.limit());
}

/// Decodes an [`AtpgOptions`] written by [`write_atpg_options`].
pub fn read_atpg_options(r: &mut Reader<'_>) -> Result<AtpgOptions, SnapshotError> {
    let backtrack_limit = r.u64()? as usize;
    let max_window = r.u64()? as usize;
    let max_decisions = r.u64()? as usize;
    let learning = match r.u8()? {
        0 => LearningMode::None,
        1 => LearningMode::ForbiddenValue,
        2 => LearningMode::KnownValue,
        _ => return Err(SnapshotError::Corrupt("learning mode")),
    };
    let grow_window = r.bool()?;
    let fault_dropping = r.bool()?;
    let budget = WorkBudget::units(r.u64()?);
    Ok(AtpgOptions::builder()
        .backtrack_limit(backtrack_limit)
        .window(max_window)
        .max_decisions(max_decisions)
        .learning(learning)
        .grow_window(grow_window)
        .fault_dropping(fault_dropping)
        .budget(budget)
        .build())
}

/// Encodes a learned-relation triple — implications in insertion order,
/// cross-frame relations, tied gates — the payload shared by snapshots and
/// store entries.
pub fn write_relations(
    w: &mut Writer,
    implications: &[(Implication, bool)],
    cross_frame: &[CrossImplication],
    tied: &[(NodeId, bool)],
) {
    w.u32(implications.len() as u32);
    for (imp, seq) in implications {
        w.u32(imp.antecedent.node.0);
        w.u8(imp.antecedent.value as u8);
        w.u32(imp.consequent.node.0);
        w.u8(imp.consequent.value as u8);
        w.u8(*seq as u8);
    }
    w.u32(cross_frame.len() as u32);
    for c in cross_frame {
        w.u32(c.antecedent.node.0);
        w.u8(c.antecedent.value as u8);
        w.u32(c.consequent.node.0);
        w.u8(c.consequent.value as u8);
        w.u32(c.offset as u32);
    }
    w.u32(tied.len() as u32);
    for (node, value) in tied {
        w.u32(node.0);
        w.u8(*value as u8);
    }
}

/// Learned relations decoded by [`read_relations`].
pub type Relations = (
    Vec<(Implication, bool)>,
    Vec<CrossImplication>,
    Vec<(NodeId, bool)>,
);

/// Decodes the triple written by [`write_relations`].
pub fn read_relations(r: &mut Reader<'_>) -> Result<Relations, SnapshotError> {
    let n = r.count()?;
    let mut implications = Vec::with_capacity(n);
    for _ in 0..n {
        let ant = Literal::new(NodeId(r.u32()?), r.bool()?);
        let con = Literal::new(NodeId(r.u32()?), r.bool()?);
        implications.push((Implication::new(ant, con), r.bool()?));
    }
    let n = r.count()?;
    let mut cross_frame = Vec::with_capacity(n);
    for _ in 0..n {
        let antecedent = Literal::new(NodeId(r.u32()?), r.bool()?);
        let consequent = Literal::new(NodeId(r.u32()?), r.bool()?);
        let offset = r.u32()? as i32;
        cross_frame.push(CrossImplication {
            antecedent,
            consequent,
            offset,
        });
    }
    let n = r.count()?;
    let mut tied = Vec::with_capacity(n);
    for _ in 0..n {
        tied.push((NodeId(r.u32()?), r.bool()?));
    }
    Ok((implications, cross_frame, tied))
}

/// Encodes a fault list (site, pin and polarity of every fault, in order).
pub fn write_faults(w: &mut Writer, faults: &[Fault]) {
    w.u32(faults.len() as u32);
    for f in faults {
        match f.site {
            FaultSite::Output(n) => {
                w.u8(0);
                w.u32(n.0);
            }
            FaultSite::Input { gate, pin } => {
                w.u8(1);
                w.u32(gate.0);
                w.u32(pin as u32);
            }
        }
        w.u8(f.stuck_at as u8);
    }
}

/// Decodes a fault list written by [`write_faults`].
pub fn read_faults(r: &mut Reader<'_>) -> Result<Vec<Fault>, SnapshotError> {
    let n = r.count()?;
    let mut faults = Vec::with_capacity(n);
    for _ in 0..n {
        let fault = match r.u8()? {
            0 => {
                let node = NodeId(r.u32()?);
                Fault::output(node, r.bool()?)
            }
            1 => {
                let gate = NodeId(r.u32()?);
                let pin = r.u32()? as usize;
                Fault::input(gate, pin, r.bool()?)
            }
            _ => return Err(SnapshotError::Corrupt("fault site")),
        };
        faults.push(fault);
    }
    Ok(faults)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip_and_framing_errors() {
        const MAGIC: &[u8; 4] = b"TSTF";
        let mut w = Writer::new();
        w.bytes_raw(MAGIC);
        w.u32(7);
        w.str("payload");
        let bytes = w.seal();

        let mut r = check_frame(&bytes, MAGIC, 7).unwrap();
        assert_eq!(r.str().unwrap(), "payload");
        assert!(r.at_end());

        assert_eq!(
            check_frame(&bytes, b"XXXX", 7).unwrap_err(),
            SnapshotError::BadMagic
        );
        assert!(matches!(
            check_frame(&bytes, MAGIC, 8).unwrap_err(),
            SnapshotError::UnsupportedVersion { found: 7, .. }
        ));
        let mut corrupt = bytes.clone();
        *corrupt.last_mut().unwrap() ^= 1;
        assert_eq!(
            check_frame(&corrupt, MAGIC, 7).unwrap_err(),
            SnapshotError::ChecksumMismatch
        );
        for len in 0..bytes.len() {
            assert!(check_frame(&bytes[..len], MAGIC, 7).is_err());
        }
    }

    #[test]
    fn atpg_options_round_trip() {
        let opts = AtpgOptions::builder()
            .backtrack_limit(1000)
            .learning(LearningMode::KnownValue)
            .window(3)
            .grow_window(false)
            .budget(WorkBudget::units(42))
            .build();
        let mut w = Writer::new();
        write_atpg_options(&mut w, &opts);
        let bytes = w.seal();
        let mut r = Reader::with_limit(&bytes, 0, bytes.len() - 8);
        assert_eq!(read_atpg_options(&mut r).unwrap(), opts);
        assert!(r.at_end());
    }

    #[test]
    fn fault_list_round_trip() {
        let faults = vec![
            Fault::output(NodeId(3), true),
            Fault::input(NodeId(7), 1, false),
        ];
        let mut w = Writer::new();
        write_faults(&mut w, &faults);
        let bytes = w.seal();
        let mut r = Reader::with_limit(&bytes, 0, bytes.len() - 8);
        assert_eq!(read_faults(&mut r).unwrap(), faults);
        assert!(r.at_end());
    }
}
