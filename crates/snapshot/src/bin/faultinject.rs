//! Seeded fault-injection harness for the resilient run layer.
//!
//! Usage: `faultinject <mode>:<seed>` (or set `SLA_FAULT_INJECT=mode:seed`).
//! Modes: `panic` (worker panic quarantine), `corrupt` (snapshot bit flip
//! plus fresh-run fallback), `budget` (mid-run budget exhaustion). Each mode
//! runs the table5 workload, injects the failure at seed-chosen points and
//! verifies the documented degradation; the process exits 0 when the
//! resilience contract held and 1 with a one-line diagnostic when it did
//! not.

use sla_atpg::{
    AbortReason, AtpgConfig, AtpgEngine, AtpgRun, FaultStatus, LearnedData, WorkBudget,
};
use sla_circuits::{table5_circuit, Table5Config};
use sla_netlist::Netlist;
use sla_sim::{collapsed_fault_list, Fault};
use sla_snapshot::inject::{corrupt, plan_from_env, InjectMode, InjectPlan};
use sla_snapshot::{resume_or_fresh, AtpgSnapshot, SnapshotError};
use std::process::ExitCode;

/// Thread counts every injected run must agree across.
const THREADS: [usize; 2] = [1, 4];

fn main() -> ExitCode {
    // Injected panics are expected; keep their default backtrace spew out of
    // the harness output so real diagnostics stay visible.
    std::panic::set_hook(Box::new(|_| {}));

    let plan = match std::env::args().nth(1) {
        Some(spec) => match InjectPlan::parse(&spec) {
            Ok(plan) => plan,
            Err(e) => return fail(&e),
        },
        None => match plan_from_env() {
            Ok(Some(plan)) => plan,
            Ok(None) => {
                return fail("no injection requested: pass `mode:seed` or set SLA_FAULT_INJECT")
            }
            Err(e) => return fail(&e),
        },
    };

    let netlist = table5_circuit(&Table5Config::default());
    let faults = collapsed_fault_list(&netlist);
    let result = match plan.mode {
        InjectMode::WorkerPanic => check_panic(&netlist, &faults, plan),
        InjectMode::SnapshotCorrupt => check_corrupt(&netlist, &faults, plan),
        InjectMode::BudgetExhaust => check_budget(&netlist, &faults, plan),
    };
    match result {
        Ok(report) => {
            println!(
                "faultinject {plan_mode}:{seed} ok: {report}",
                plan_mode = plan.mode,
                seed = plan.seed
            );
            ExitCode::SUCCESS
        }
        Err(e) => fail(&format!(
            "{mode}:{seed} {e}",
            mode = plan.mode,
            seed = plan.seed
        )),
    }
}

fn fail(message: &str) -> ExitCode {
    eprintln!("faultinject: {message}");
    ExitCode::FAILURE
}

/// Normalizes the documented thread-variant fields so runs can be compared
/// bit-for-bit.
fn canonical(mut run: AtpgRun) -> AtpgRun {
    run.stats.cpu = std::time::Duration::ZERO;
    run.stats.wasted_speculations = 0;
    run
}

fn run_with(
    netlist: &Netlist,
    faults: &[Fault],
    config: AtpgConfig,
    panic_at: Option<usize>,
    threads: usize,
) -> Result<AtpgRun, String> {
    let mut engine =
        AtpgEngine::new(netlist, config).map_err(|e| format!("engine build failed: {e}"))?;
    if let Some(idx) = panic_at {
        engine = engine.with_panic_at(idx);
    }
    Ok(canonical(engine.run_with_threads(faults, threads)))
}

/// A panicking speculative fault search must poison only its own fault, be
/// recorded in strict fault order, and leave every thread count with the
/// identical run.
fn check_panic(netlist: &Netlist, faults: &[Fault], plan: InjectPlan) -> Result<String, String> {
    let target = plan.pick(faults.len());
    // Fault dropping could classify the target from an earlier test before
    // its own search runs, in which case the injected panic never fires;
    // disable it so every seed actually exercises the quarantine.
    let config = AtpgConfig::builder().fault_dropping(false).build();
    let mut runs = Vec::new();
    for threads in THREADS {
        runs.push(run_with(netlist, faults, config, Some(target), threads)?);
    }
    if runs[1] != runs[0] {
        return Err("panicked runs differ across thread counts".to_string());
    }
    let run = &runs[0];
    if run.status[target] != FaultStatus::Aborted(AbortReason::Panic) {
        return Err(format!(
            "fault {target} should be Aborted(Panic), got {:?}",
            run.status[target]
        ));
    }
    if run.panics.len() != 1 || run.panics[0].0 != target {
        return Err(format!(
            "expected exactly one panic at {target}, got {:?}",
            run.panics
        ));
    }
    let others = run
        .status
        .iter()
        .enumerate()
        .filter(|(i, s)| *i != target && **s == FaultStatus::Aborted(AbortReason::Panic))
        .count();
    if others != 0 {
        return Err(format!("{others} unrelated faults were poisoned"));
    }
    Ok(format!(
        "panic at fault {target} quarantined, other {n} faults classified",
        n = faults.len() - 1
    ))
}

/// A bit-flipped snapshot must fail decoding with a typed error and
/// `resume_or_fresh` must fall back to a run identical to a fresh one.
fn check_corrupt(netlist: &Netlist, faults: &[Fault], plan: InjectPlan) -> Result<String, String> {
    let engine = AtpgEngine::new(netlist, AtpgConfig::default())
        .map_err(|e| format!("engine build failed: {e}"))?;
    let boundary = 1 + plan.pick(faults.len() - 1);
    let mut progress = engine.start(faults);
    engine.advance(faults, 1, &mut progress, Some(boundary));
    let mut bytes = AtpgSnapshot::capture(netlist, &engine, faults, &progress).encode();
    corrupt(&mut bytes, plan.seed);

    match AtpgSnapshot::decode(&bytes) {
        Err(_) => {}
        Ok(_) => {
            return Err(format!(
                "bit flip (seed {}) went undetected by decode",
                plan.seed
            ))
        }
    }
    let fresh = run_with(netlist, faults, AtpgConfig::default(), None, 1)?;
    let (run, err) = resume_or_fresh(
        &bytes,
        netlist,
        AtpgConfig::default(),
        &LearnedData::new(),
        faults,
        1,
    );
    let err = match err {
        Some(e) => e,
        None => return Err("fallback did not report the snapshot error".to_string()),
    };
    if matches!(err, SnapshotError::Netlist(_)) {
        return Err(format!("fallback itself failed: {err}"));
    }
    if canonical(run) != fresh {
        return Err("fallback run differs from a fresh run".to_string());
    }
    Ok(format!("snapshot at boundary {boundary} corrupted, decode rejected ({err}), fresh fallback identical"))
}

/// A budget-limited run must stop at the same classified prefix for every
/// thread count, with the unprocessed tail marked `Aborted(Budget)`.
fn check_budget(netlist: &Netlist, faults: &[Fault], plan: InjectPlan) -> Result<String, String> {
    let unlimited = run_with(netlist, faults, AtpgConfig::default(), None, 1)?;
    let total = unlimited.stats.budget_spent;
    if total == 0 {
        return Err("workload spent no budget; harness cannot exhaust it".to_string());
    }
    let units = 1 + plan.pick(total as usize) as u64;
    let config = AtpgConfig::builder()
        .budget(WorkBudget::units(units))
        .build();
    let mut runs = Vec::new();
    for threads in THREADS {
        runs.push(run_with(netlist, faults, config, None, threads)?);
    }
    if runs[1] != runs[0] {
        return Err(format!(
            "budget-limited runs differ across thread counts (units {units})"
        ));
    }
    let run = &runs[0];
    let aborted = run
        .status
        .iter()
        .filter(|s| **s == FaultStatus::Aborted(AbortReason::Budget))
        .count();
    if aborted == 0 {
        return Err(format!("budget of {units}/{total} units exhausted nothing"));
    }
    for (i, s) in run.status.iter().enumerate() {
        if *s != FaultStatus::Aborted(AbortReason::Budget) && *s != unlimited.status[i] {
            return Err(format!(
                "classified verdict {i} diverged from the unlimited run: {s:?} vs {:?}",
                unlimited.status[i]
            ));
        }
    }
    Ok(format!(
        "budget {units}/{total} units: {aborted} faults aborted, classified prefix matches unlimited run"
    ))
}
