//! Seeded, deterministic fault injection for resilience testing.
//!
//! An [`InjectPlan`] is a `(mode, seed)` pair. The seed drives a SplitMix64
//! stream, so every injection point — which fault panics, which snapshot bit
//! flips, where the budget runs out — is a pure function of the plan and the
//! workload size. The same plan always breaks the run in the same place,
//! which is what lets CI assert the documented degradation instead of just
//! "something went wrong".
//!
//! Plans are parsed from `mode:seed` strings (`panic:3`, `corrupt:7`,
//! `budget:5`), either from a CLI argument or from the `SLA_FAULT_INJECT`
//! environment hook via [`plan_from_env`].

use std::fmt;

/// What the harness breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectMode {
    /// Panic inside one speculative fault search; the quarantine must
    /// contain it to that fault.
    WorkerPanic,
    /// Flip one bit of an encoded snapshot; decode must fail typed and
    /// resume must fall back to a fresh run.
    SnapshotCorrupt,
    /// Exhaust the work budget mid-run; the classified prefix must be
    /// bit-identical at every thread count.
    BudgetExhaust,
}

impl fmt::Display for InjectMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            InjectMode::WorkerPanic => "panic",
            InjectMode::SnapshotCorrupt => "corrupt",
            InjectMode::BudgetExhaust => "budget",
        })
    }
}

/// A seeded injection: one failure mode at seed-chosen points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectPlan {
    /// Failure mode to inject.
    pub mode: InjectMode,
    /// Seed of the SplitMix64 stream choosing the injection points.
    pub seed: u64,
}

impl InjectPlan {
    /// Parses a `mode:seed` spec (`panic:3`, `corrupt:7`, `budget:5`).
    ///
    /// # Errors
    ///
    /// A one-line human-readable diagnostic for unknown modes or
    /// non-numeric seeds.
    pub fn parse(spec: &str) -> Result<InjectPlan, String> {
        let (mode, seed) = spec
            .split_once(':')
            .ok_or_else(|| format!("bad inject spec `{spec}`: expected `mode:seed`"))?;
        let mode = match mode {
            "panic" => InjectMode::WorkerPanic,
            "corrupt" => InjectMode::SnapshotCorrupt,
            "budget" => InjectMode::BudgetExhaust,
            other => {
                return Err(format!(
                    "unknown inject mode `{other}` (expected panic, corrupt or budget)"
                ))
            }
        };
        let seed = seed
            .parse::<u64>()
            .map_err(|_| format!("bad inject seed `{seed}`: expected an unsigned integer"))?;
        Ok(InjectPlan { mode, seed })
    }

    /// Deterministic point stream for this plan. The n-th call with the same
    /// plan always returns the same value.
    pub fn points(&self) -> InjectRng {
        InjectRng {
            state: self.seed ^ 0x6a09_e667_f3bc_c909,
        }
    }

    /// Convenience: the first point of the stream reduced into `[0, bound)`.
    /// `bound` must be nonzero.
    pub fn pick(&self, bound: usize) -> usize {
        (self.points().next_u64() as usize) % bound.max(1)
    }
}

/// Reads an injection plan from the `SLA_FAULT_INJECT` environment hook.
/// Unset means no injection; a malformed value is an error, not a silent
/// no-op, so CI typos cannot fake a passing run.
pub fn plan_from_env() -> Result<Option<InjectPlan>, String> {
    match std::env::var("SLA_FAULT_INJECT") {
        Ok(spec) => InjectPlan::parse(&spec).map(Some),
        Err(_) => Ok(None),
    }
}

/// SplitMix64 stream of injection points — tiny, seedable, and identical on
/// every platform.
#[derive(Debug, Clone)]
pub struct InjectRng {
    state: u64,
}

impl InjectRng {
    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next value reduced into `[0, bound)`. `bound` must be nonzero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() as usize) % bound.max(1)
    }
}

/// Flips one seed-chosen bit of `bytes` (no-op on an empty slice). Used to
/// corrupt encoded snapshots in a reproducible way.
pub fn corrupt(bytes: &mut [u8], seed: u64) {
    if bytes.is_empty() {
        return;
    }
    let mut rng = InjectPlan {
        mode: InjectMode::SnapshotCorrupt,
        seed,
    }
    .points();
    let bit = rng.below(bytes.len() * 8);
    bytes[bit / 8] ^= 1 << (bit % 8);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse_and_reject() {
        assert_eq!(
            InjectPlan::parse("panic:3").unwrap(),
            InjectPlan {
                mode: InjectMode::WorkerPanic,
                seed: 3
            }
        );
        assert_eq!(
            InjectPlan::parse("corrupt:7").unwrap().mode,
            InjectMode::SnapshotCorrupt
        );
        assert_eq!(
            InjectPlan::parse("budget:5").unwrap().mode,
            InjectMode::BudgetExhaust
        );
        assert!(InjectPlan::parse("panic")
            .unwrap_err()
            .contains("mode:seed"));
        assert!(InjectPlan::parse("fire:1").unwrap_err().contains("unknown"));
        assert!(InjectPlan::parse("panic:x").unwrap_err().contains("seed"));
    }

    #[test]
    fn point_streams_are_deterministic() {
        let plan = InjectPlan::parse("panic:42").unwrap();
        let a: Vec<u64> = {
            let mut r = plan.points();
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = plan.points();
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_eq!(plan.pick(17), plan.pick(17));
        let other = InjectPlan::parse("panic:43").unwrap();
        assert_ne!(
            plan.points().next_u64(),
            other.points().next_u64(),
            "different seeds must give different streams"
        );
    }

    #[test]
    fn corrupt_flips_exactly_one_bit() {
        let clean = vec![0u8; 64];
        for seed in 0..32 {
            let mut dirty = clean.clone();
            corrupt(&mut dirty, seed);
            let flipped: u32 = clean
                .iter()
                .zip(&dirty)
                .map(|(a, b)| (a ^ b).count_ones())
                .sum();
            assert_eq!(flipped, 1, "seed {seed} flipped {flipped} bits");
        }
        let mut empty: [u8; 0] = [];
        corrupt(&mut empty, 1); // must not panic
    }
}
