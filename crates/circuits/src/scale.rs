//! Scalable layered circuit generator for multi-million-gate workloads.
//!
//! [`synthesize`](crate::synthesize) biases fanins toward recent gates, which
//! produces logic whose depth grows with gate count — realistic at table-5
//! scale, pathological at a million gates (the event simulator's level
//! buckets and the ATPG window both scale with depth). This generator instead
//! builds a *layered* DAG: gates are arranged in `layers` rows of
//! `layer_width` gates, a gate in layer `k` reads only signals of layer
//! `k - 1` (layer 0 reads primary inputs and flip-flop outputs), and the
//! flip-flops capture the last layer. Logic depth is exactly `layers`
//! regardless of width, so scaling to any gate count is a matter of widening
//! the rows — the shape of industrial designs, where depth grows far slower
//! than area.
//!
//! Generation is a single linear pass with a splitmix-style inline generator
//! (no allocation beyond the names), deterministic in the seed.

use sla_netlist::{GateType, Netlist, NetlistBuilder};

/// Parameters of the layered scale generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScaleConfig {
    /// Circuit name.
    pub name: String,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of flip-flops (state feeding layer 0, capturing the last layer).
    pub flip_flops: usize,
    /// Number of combinational layers (= exact logic depth).
    pub layers: usize,
    /// Gates per layer; total gates = `layers * layer_width`.
    pub layer_width: usize,
    /// Number of primary outputs, observing the last layer.
    pub outputs: usize,
    /// Seed of the deterministic generator.
    pub seed: u64,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            name: "scale".to_string(),
            inputs: 64,
            flip_flops: 128,
            layers: 8,
            layer_width: 256,
            outputs: 32,
            seed: 1,
        }
    }
}

impl ScaleConfig {
    /// Total combinational gate count of the configuration.
    pub fn gates(&self) -> usize {
        self.layers * self.layer_width
    }

    /// A configuration with ~`gates` gates at depth `layers`, sized like the
    /// committed workloads (inputs/outputs/state scale with the square root
    /// of area, as in placed designs).
    pub fn sized(name: &str, gates: usize, layers: usize, seed: u64) -> Self {
        let layers = layers.max(1);
        let layer_width = gates.div_ceil(layers).max(1);
        let side = (gates as f64).sqrt() as usize;
        ScaleConfig {
            name: name.to_string(),
            inputs: (side / 2).clamp(4, 4096),
            flip_flops: side.clamp(4, 8192),
            layers,
            layer_width,
            outputs: (side / 4).clamp(2, 2048),
            seed,
        }
    }

    /// The ≥1M-gate CI smoke workload: 16 layers × 65536 gates.
    pub fn million(seed: u64) -> Self {
        ScaleConfig::sized("scale1m", 1 << 20, 16, seed)
    }
}

/// Splitmix64 step — cheap, deterministic, and good enough for fanin picks.
#[inline]
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

const GATE_CHOICES: [GateType; 6] = [
    GateType::And,
    GateType::Nand,
    GateType::Or,
    GateType::Nor,
    GateType::Xor,
    GateType::Not,
];

/// Generates the layered circuit. Runs in time and memory linear in
/// `gates + flip_flops + inputs`.
pub fn scale_circuit(config: &ScaleConfig) -> Netlist {
    let mut rng = config.seed ^ 0x5ca1_e000;
    let mut b = NetlistBuilder::new(config.name.clone());

    let inputs = config.inputs.max(1);
    let width = config.layer_width.max(1);
    let layers = config.layers.max(1);
    let ffs = config.flip_flops;
    // ~2.2 fanins per gate on average; names are short (`g<idx>`).
    b.reserve(
        inputs + ffs + layers * width,
        layers * width * 3 + ffs,
        (inputs + ffs + layers * width) * 9,
    );

    let input_names: Vec<String> = (0..inputs).map(|i| format!("i{i}")).collect();
    for name in &input_names {
        b.input(name);
    }
    let ff_names: Vec<String> = (0..ffs).map(|i| format!("f{i}")).collect();

    // Layer 0 reads the frame inputs: primary inputs + flip-flop outputs
    // (flip-flops are declared later; forward references resolve at build).
    let mut prev: Vec<String> = input_names.iter().chain(ff_names.iter()).cloned().collect();
    let mut gate_idx = 0usize;
    for _layer in 0..layers {
        let mut cur: Vec<String> = Vec::with_capacity(width);
        for _ in 0..width {
            let name = format!("g{gate_idx}");
            gate_idx += 1;
            let gate = GATE_CHOICES[(splitmix(&mut rng) % GATE_CHOICES.len() as u64) as usize];
            let arity = match gate {
                GateType::Not => 1,
                _ => 2 + (splitmix(&mut rng) % 2) as usize,
            };
            // A contiguous window of the previous layer plus one random far
            // pick: local routing with occasional long wires, which makes
            // most prev-layer signals multi-fanout stems without destroying
            // locality.
            let start = (splitmix(&mut rng) % prev.len() as u64) as usize;
            let fanins: Vec<&str> = (0..arity)
                .map(|k| {
                    if k + 1 == arity && arity > 1 {
                        prev[(splitmix(&mut rng) % prev.len() as u64) as usize].as_str()
                    } else {
                        prev[(start + k) % prev.len()].as_str()
                    }
                })
                .collect();
            b.gate(&name, gate, &fanins)
                .expect("generated gate arity is always legal");
            cur.push(name);
        }
        prev = cur;
    }

    // Flip-flops capture the last layer (round-robin with a random stride so
    // every flip-flop has a well-defined, seed-stable source).
    let stride = 1 + (splitmix(&mut rng) % 7) as usize;
    for (f, name) in ff_names.iter().enumerate() {
        let source = &prev[(f * stride) % prev.len()];
        b.dff(name, source).expect("flip-flop names are unique");
    }

    // Primary outputs observe the last layer.
    for o in 0..config.outputs.max(1) {
        let pick = &prev[(o * 31 + (splitmix(&mut rng) % prev.len() as u64) as usize) % prev.len()];
        b.output(pick).expect("output references an existing node");
    }

    b.build()
        .expect("generator produces structurally valid circuits")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sla_netlist::levelize::levelize;

    #[test]
    fn generator_is_deterministic() {
        let cfg = ScaleConfig::default();
        let a = scale_circuit(&cfg);
        let b = scale_circuit(&cfg);
        assert_eq!(
            sla_netlist::writer::write_bench(&a),
            sla_netlist::writer::write_bench(&b)
        );
        let c = scale_circuit(&ScaleConfig { seed: 99, ..cfg });
        assert_ne!(
            sla_netlist::writer::write_bench(&a),
            sla_netlist::writer::write_bench(&c)
        );
    }

    #[test]
    fn depth_is_exactly_the_layer_count() {
        let cfg = ScaleConfig {
            layers: 5,
            layer_width: 40,
            ..ScaleConfig::default()
        };
        let n = scale_circuit(&cfg);
        assert_eq!(n.num_gates(), 200);
        let lv = levelize(&n).expect("layered DAG is acyclic");
        assert_eq!(lv.max_level(), 5, "depth equals the layer count");
    }

    #[test]
    fn sized_hits_the_requested_gate_count() {
        let cfg = ScaleConfig::sized("s", 10_000, 10, 3);
        let n = scale_circuit(&cfg);
        assert_eq!(n.num_gates(), 10_000);
        assert!(n.validate().is_ok());
        assert!(n.num_sequential() >= 4);
        let million = ScaleConfig::million(1);
        assert!(million.gates() >= 1 << 20);
        assert_eq!(million.layers, 16);
    }

    #[test]
    fn generated_circuits_have_stems_and_round_trip() {
        let n = scale_circuit(&ScaleConfig {
            layers: 3,
            layer_width: 16,
            inputs: 6,
            flip_flops: 8,
            outputs: 4,
            ..ScaleConfig::default()
        });
        assert!(!sla_netlist::stems::fanout_stems(&n).is_empty());
        let text = sla_netlist::writer::write_bench(&n);
        let reparsed = sla_netlist::parser::parse_bench(n.name(), &text).unwrap();
        assert_eq!(reparsed.num_nodes(), n.num_nodes());
        assert_eq!(sla_netlist::writer::write_bench(&reparsed), text);
    }
}
