//! The ISCAS-89 `s27` benchmark, the standard tiny sequential test case.

use sla_netlist::parser::parse_bench;
use sla_netlist::Netlist;

/// The `.bench` source of s27 (4 inputs, 1 output, 3 flip-flops, 10 gates).
pub const S27_BENCH: &str = "\
# s27 - ISCAS-89 sequential benchmark
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
";

/// Parses and returns the s27 netlist.
pub fn s27() -> Netlist {
    parse_bench("s27", S27_BENCH).expect("embedded s27 source is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s27_statistics_match_the_benchmark() {
        let n = s27();
        assert_eq!(n.inputs().len(), 4);
        assert_eq!(n.outputs().len(), 1);
        assert_eq!(n.num_sequential(), 3);
        assert_eq!(n.num_gates(), 10);
        assert!(n.validate().is_ok());
    }

    #[test]
    fn s27_round_trips_through_the_writer() {
        let n = s27();
        let text = sla_netlist::writer::write_bench(&n);
        let n2 = parse_bench("s27", &text).unwrap();
        assert_eq!(n.num_nodes(), n2.num_nodes());
    }
}
