//! Reconstructions of the running examples of the paper (Figures 1 and 2).
//!
//! The figures are only partially specified in the paper text, so these
//! circuits are *reconstructions that exhibit the same phenomena* rather than
//! gate-for-gate copies (see DESIGN.md §3):
//!
//! * a combinational tie learned from a single stem (`G3` in the paper),
//! * invalid-state relations between flip-flops learned by single-node
//!   learning (`F6=1 → F4=0`-style),
//! * a pair of combinationally equivalent gates (`G2`/`G4`) that lets values
//!   propagate further,
//! * relations only reachable by multiple-node learning (`G9=0 → F2=0` of
//!   Figure 2),
//! * a gate that is sequentially tied and is only proven so by the conflict
//!   criterion during multiple-node learning (`G15`).

use sla_netlist::{GateType, Netlist, NetlistBuilder};

/// A Figure-1-style circuit: five primary inputs, six flip-flops, a tied gate,
/// an equivalent-gate pair and several invalid-state relations.
///
/// Node names follow the paper's conventions (`I*` inputs, `F*` flip-flops,
/// `G*` gates) to keep the Table 1 / Table 2 harness output readable.
pub fn paper_style_figure1() -> Netlist {
    let mut b = NetlistBuilder::new("figure1");
    for i in 1..=5 {
        b.input(&format!("I{i}"));
    }
    // G3 = AND(I1, NOT I1): combinationally tied to 0 (the paper's G3).
    b.gate("G1", GateType::Not, &["I1"]).unwrap();
    b.gate("G3", GateType::And, &["I1", "G1"]).unwrap();

    // F1/F2: a mutually exclusive pair controlled by I2 (invalid state F1=F2=1).
    b.gate("G2", GateType::Not, &["F2"]).unwrap();
    b.gate("G4", GateType::Not, &["F2"]).unwrap(); // equivalent to G2
    b.gate("G5", GateType::Not, &["F1"]).unwrap();
    b.gate("G6", GateType::And, &["I2", "G4"]).unwrap();
    b.gate("G7", GateType::And, &["G14", "G5"]).unwrap();
    b.gate("G14", GateType::Not, &["I2"]).unwrap();
    b.dff("F1", "G6").unwrap();
    b.dff("F2", "G7").unwrap();

    // F3/F4: F3 follows I2 through a buffer chain, F4 is the complement of F3's
    // data, so F3=1 and F4=1 is invalid.
    b.gate("G8", GateType::Buf, &["I2"]).unwrap();
    b.gate("G9", GateType::Nor, &["I2", "G3"]).unwrap();
    b.dff("F3", "G8").unwrap();
    b.dff("F4", "G9").unwrap();

    // F5/F6: driven by gates over F1..F4, creating further invalid states that
    // need the earlier relations (and the G2/G4 equivalence) to be learned.
    b.gate("G10", GateType::And, &["F1", "F3"]).unwrap();
    b.gate("G11", GateType::And, &["F2", "F4"]).unwrap();
    b.dff("F5", "G10").unwrap();
    b.dff("F6", "G11").unwrap();

    // G15 = AND(F5, F6): F5=1 needs F1=1 (hence I2=1 earlier) while F6=1 needs
    // F2=1 (hence I2=0 earlier at the same frame) - sequentially tied to 0.
    b.gate("G15", GateType::And, &["F5", "F6"]).unwrap();
    b.gate("G12", GateType::Or, &["G15", "F5"]).unwrap();
    b.gate("G13", GateType::Or, &["G12", "F6"]).unwrap();

    for po in ["G13", "F3", "F4", "G3"] {
        b.output(po).unwrap();
    }
    b.build().expect("figure 1 circuit is structurally valid")
}

/// A Figure-2-style circuit: the relation `G9=0 → F2=0` exists but cannot be
/// learned by injecting values on `G9` and propagating backward/forward; only
/// multiple-node learning (combining the `I2` and `I3` stems) finds it.
pub fn paper_style_figure2() -> Netlist {
    let mut b = NetlistBuilder::new("figure2");
    for i in 1..=6 {
        b.input(&format!("I{i}"));
    }
    // F3 and F4 capture the complements of I2 and I3.
    b.gate("G1", GateType::Not, &["I2"]).unwrap();
    b.gate("G2", GateType::Not, &["I3"]).unwrap();
    b.dff("F3", "G1").unwrap();
    b.dff("F4", "G2").unwrap();
    // G9 = OR(F3, F4): each of I2=0, I3=0 alone forces G9=1 one frame later.
    b.gate("G9", GateType::Or, &["F3", "F4"]).unwrap();
    // F2 captures NAND(I2, I3): G9=0 implies I2=1 and I3=1 a frame earlier,
    // hence F2=0 in the same frame as G9.
    b.gate("G3", GateType::Nand, &["I2", "I3"]).unwrap();
    b.dff("F2", "G3").unwrap();
    // Justification structure from the paper's §4 walk-through: G6 and G7 are
    // the decision nodes whose solutions overlap on F2.
    b.gate("G6", GateType::And, &["F1", "F2"]).unwrap();
    b.gate("G7", GateType::And, &["F2", "F5"]).unwrap();
    b.gate("G8", GateType::Or, &["G6", "G7"]).unwrap();
    b.dff("F1", "I1").unwrap();
    b.dff("F5", "I4").unwrap();
    // Extra fanout so I2/I3 are stems, plus observation logic.
    b.gate("G4", GateType::Xor, &["I5", "G9"]).unwrap();
    b.gate("G5", GateType::Xor, &["I6", "G8"]).unwrap();
    b.output("G4").unwrap();
    b.output("G5").unwrap();
    b.output("F2").unwrap();
    b.build().expect("figure 2 circuit is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_has_the_documented_shape() {
        let n = paper_style_figure1();
        assert_eq!(n.inputs().len(), 5);
        assert_eq!(n.num_sequential(), 6);
        assert!(n.num_gates() >= 14);
        assert!(n.validate().is_ok());
        assert!(sla_netlist::stems::fanout_stems(&n).len() >= 4);
    }

    #[test]
    fn figure2_has_the_documented_shape() {
        let n = paper_style_figure2();
        assert_eq!(n.inputs().len(), 6);
        assert_eq!(n.num_sequential(), 5);
        assert!(n.validate().is_ok());
        // I2 and I3 must be stems for the multiple-node example to exist.
        let stems = sla_netlist::stems::fanout_stems(&n);
        assert!(stems.contains(&n.require("I2").unwrap()));
        assert!(stems.contains(&n.require("I3").unwrap()));
    }

    #[test]
    fn figure1_g3_is_structurally_constant() {
        // Sanity: AND(I1, NOT I1) is 0 for both values of I1.
        let n = paper_style_figure1();
        let oracle = sla_sim::StateOracle::build(&n, 24).unwrap();
        assert!(oracle.tie_holds(n.require("G3").unwrap(), false));
        assert!(oracle.tie_holds(n.require("G15").unwrap(), false));
    }

    #[test]
    fn figure1_invalid_states_exist() {
        let n = paper_style_figure1();
        let oracle = sla_sim::StateOracle::build(&n, 24).unwrap();
        assert!(oracle.density_of_encoding_bp() < 10_000);
        let f1 = n.require("F1").unwrap();
        let f2 = n.require("F2").unwrap();
        assert!(oracle.implication_holds(f1, true, f2, false));
    }
}
