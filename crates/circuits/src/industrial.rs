//! Generator of "industrial-style" circuits: multiple clock domains, gated
//! clocks, latches, multi-port latches and partial set/reset.
//!
//! The paper's three industrial circuits exist to demonstrate that the
//! learning technique survives real-circuit features (§3.3). This generator
//! composes several synthetic blocks, each on its own clock domain (some on
//! the falling edge, one as latches), sprinkles unconstrained set/reset lines
//! over a fraction of the registers and adds a multi-port latch, exercising
//! every special-case rule of the learning engine.

use crate::synth::{synthesize, SynthConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sla_netlist::parser::parse_bench;
use sla_netlist::writer::write_bench;
use sla_netlist::Netlist;

/// Parameters of the industrial-style generator.
#[derive(Debug, Clone, PartialEq)]
pub struct IndustrialConfig {
    /// Circuit name.
    pub name: String,
    /// Number of clock domains (at least 2).
    pub clock_domains: usize,
    /// Flip-flops per domain.
    pub flip_flops_per_domain: usize,
    /// Gates per domain.
    pub gates_per_domain: usize,
    /// Fraction (0..=1) of registers that receive an unconstrained set or reset.
    pub set_reset_fraction: f64,
    /// Seed of the deterministic generator.
    pub seed: u64,
}

impl Default for IndustrialConfig {
    fn default() -> Self {
        IndustrialConfig {
            name: "industrial".to_string(),
            clock_domains: 3,
            flip_flops_per_domain: 12,
            gates_per_domain: 90,
            set_reset_fraction: 0.2,
            seed: 23,
        }
    }
}

impl IndustrialConfig {
    /// A configuration named after and sized like a benchmark row.
    pub fn sized(name: &str, flip_flops: usize, gates: usize, seed: u64) -> Self {
        let domains = 3usize;
        IndustrialConfig {
            name: name.to_string(),
            clock_domains: domains,
            flip_flops_per_domain: (flip_flops / domains).max(2),
            gates_per_domain: (gates / domains).max(8),
            set_reset_fraction: 0.2,
            seed,
        }
    }
}

/// Generates an industrial-style circuit.
///
/// The circuit is produced by emitting extended `.bench` text (the per-domain
/// synthetic blocks plus clock/latch/set/reset pragmas) and re-parsing it, so
/// it also doubles as an end-to-end exercise of the parser extensions.
pub fn industrial_circuit(config: &IndustrialConfig) -> Netlist {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let domains = config.clock_domains.max(2);
    let mut text = String::new();
    text.push_str(&format!(
        "# {} (generated industrial-style circuit)\n",
        config.name
    ));

    for d in 0..domains {
        let block = synthesize(&SynthConfig {
            name: format!("{}_blk{d}", config.name),
            inputs: 4,
            outputs: 3,
            flip_flops: config.flip_flops_per_domain.max(1),
            gates: config.gates_per_domain.max(4),
            max_fanin: 3,
            seed: config.seed.wrapping_add(d as u64 * 7919),
        });
        let bench = write_bench(&block);
        // Prefix every node name with the domain so the blocks can coexist.
        let prefixed = prefix_names(&bench, &format!("c{d}_"));
        text.push_str(&prefixed);
        // Clock-domain pragmas: domain 0 keeps the default clock; the others
        // get their own clocks, one of them on the falling edge, the last one
        // as latches.
        for i in 0..config.flip_flops_per_domain.max(1) {
            let ff = format!("c{d}_f{i}");
            if d > 0 {
                let edge = if d % 2 == 0 { "falling" } else { "rising" };
                text.push_str(&format!("#pragma clock {ff} clk_{d} {edge}\n"));
            }
            if d == domains - 1 {
                text.push_str(&format!("#pragma latch {ff} 1\n"));
            }
            if rng.gen_bool(config.set_reset_fraction.clamp(0.0, 1.0)) {
                if rng.gen_bool(0.5) {
                    text.push_str(&format!("#pragma set {ff} unconstrained\n"));
                } else {
                    text.push_str(&format!("#pragma reset {ff} unconstrained\n"));
                }
            }
        }
    }
    // One multiple-port latch bridging domain 0 and domain 1.
    text.push_str("mpl = LATCH(c0_g0)\n");
    text.push_str("#pragma latch mpl 2\n");
    text.push_str("OUTPUT(mpl)\n");

    parse_bench(&config.name, &text).expect("generated industrial source is valid")
}

/// Prefixes every identifier in a `.bench` body with `prefix` (keywords and
/// pragma directives are left untouched).
fn prefix_names(bench: &str, prefix: &str) -> String {
    let keywords = ["INPUT", "OUTPUT", "DFF", "LATCH"];
    let mut out = String::new();
    for line in bench.lines() {
        if line.trim_start().starts_with('#') {
            continue; // drop the block's own comments/pragmas
        }
        let mut rebuilt = String::new();
        let mut ident = String::new();
        for ch in line.chars().chain(std::iter::once('\n')) {
            if ch.is_alphanumeric() || ch == '_' {
                ident.push(ch);
            } else {
                if !ident.is_empty() {
                    let upper = ident.to_ascii_uppercase();
                    if keywords.contains(&upper.as_str())
                        || sla_netlist::GateType::from_bench_name(&ident).is_some()
                    {
                        rebuilt.push_str(&ident);
                    } else {
                        rebuilt.push_str(prefix);
                        rebuilt.push_str(&ident);
                    }
                    ident.clear();
                }
                if ch != '\n' {
                    rebuilt.push(ch);
                }
            }
        }
        out.push_str(rebuilt.trim_end());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sla_netlist::{LineConstraint, SeqKind};

    #[test]
    fn builds_with_multiple_clock_domains_and_features() {
        let n = industrial_circuit(&IndustrialConfig::default());
        assert!(n.validate().is_ok());
        assert!(
            n.clocks().len() >= 3,
            "default clock plus two extra domains"
        );
        let mut latches = 0;
        let mut set_reset = 0;
        let mut multiport = 0;
        for s in n.sequential_elements() {
            let info = n.seq_info(s).unwrap();
            if info.kind == SeqKind::Latch {
                latches += 1;
            }
            if info.ports > 1 {
                multiport += 1;
            }
            if info.set == LineConstraint::Unconstrained
                || info.reset == LineConstraint::Unconstrained
            {
                set_reset += 1;
            }
        }
        assert!(latches >= 1);
        assert!(multiport >= 1);
        assert!(set_reset >= 1);
    }

    #[test]
    fn generator_is_deterministic() {
        let cfg = IndustrialConfig::default();
        let a = industrial_circuit(&cfg);
        let b = industrial_circuit(&cfg);
        assert_eq!(
            sla_netlist::writer::write_bench(&a),
            sla_netlist::writer::write_bench(&b)
        );
    }

    #[test]
    fn sized_configuration_scales() {
        let cfg = IndustrialConfig::sized("indust1-like", 60, 600, 3);
        let n = industrial_circuit(&cfg);
        assert!(n.num_sequential() >= 60);
        assert!(n.num_gates() >= 500);
    }
}
