//! Benchmark circuits for the sequential-learning / ATPG experiments.
//!
//! The paper evaluates on ISCAS-89/93 netlists, four retimed circuits and
//! three proprietary industrial designs, none of which can be redistributed
//! here. This crate provides the substitution documented in `DESIGN.md`:
//!
//! * [`figures`] — reconstructions of the paper's Figure 1 / Figure 2 running
//!   examples that exhibit every learning phenomenon the text walks through,
//! * [`s27`](mod@s27) — the classic tiny ISCAS-89 sequential benchmark,
//! * [`synth`] — a deterministic random sequential circuit generator
//!   parameterized by input/output/flip-flop/gate counts,
//! * [`retimed`] — a generator of circuits with a very low density of encoding
//!   (many invalid states), the regime in which the paper's retimed circuits
//!   make sequential ATPG hard,
//! * [`industrial`] — a generator exercising the real-circuit features
//!   (multiple clock domains, partial set/reset, multi-port latches),
//! * [`table5`] — redundant logic guarded by mutually exclusive derived
//!   state behind mixed-depth flip-flop chains: the workload on which
//!   learned implications strictly prune the ATPG search (Table 5 regime),
//! * [`profiles`] — named circuit profiles mirroring the rows of Table 3 /
//!   Table 5, mapped onto the generators with a scale factor,
//! * [`scale`] — a layered generator whose logic depth is fixed while the
//!   area scales to millions of gates (the ingest / large-smoke workload).

pub mod figures;
pub mod industrial;
pub mod profiles;
pub mod retimed;
pub mod s27;
pub mod scale;
pub mod synth;
pub mod table5;

pub use figures::{paper_style_figure1, paper_style_figure2};
pub use industrial::{industrial_circuit, IndustrialConfig};
pub use profiles::{
    build_profile, profile_by_name, CircuitClass, CircuitProfile, TABLE3_PROFILES, TABLE4_PROFILES,
    TABLE5_PROFILES,
};
pub use retimed::{retimed_circuit, RetimedConfig};
pub use s27::s27;
pub use scale::{scale_circuit, ScaleConfig};
pub use synth::{synthesize, SynthConfig};
pub use table5::{table5_circuit, Table5Config};
