//! Circuit profiles mirroring the rows of the paper's experiment tables.
//!
//! Each profile records the flip-flop and gate count of the original benchmark
//! (Table 3 of the paper) and which generator class substitutes it (see
//! DESIGN.md §3). [`build_profile`] instantiates the profile at a given scale:
//! scale 1.0 matches the original size, smaller scales keep the experiment
//! harness fast while preserving the relative ordering of circuit sizes.

use crate::industrial::{industrial_circuit, IndustrialConfig};
use crate::retimed::{retimed_circuit, RetimedConfig};
use crate::synth::{synthesize, SynthConfig};
use sla_netlist::Netlist;

/// Which generator substitutes the original circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CircuitClass {
    /// ISCAS-89/93 style benchmark: plain synthetic generator.
    Benchmark,
    /// Retimed circuit with a low density of encoding.
    Retimed,
    /// Industrial circuit with multiple clock domains and partial set/reset.
    Industrial,
}

/// One row of Table 3: the original circuit's size and its substitute class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitProfile {
    /// Benchmark name as used in the paper.
    pub name: &'static str,
    /// Flip-flop count reported in Table 3.
    pub flip_flops: usize,
    /// Gate count reported in Table 3.
    pub gates: usize,
    /// Substitute generator class.
    pub class: CircuitClass,
}

impl CircuitProfile {
    const fn new(name: &'static str, flip_flops: usize, gates: usize, class: CircuitClass) -> Self {
        CircuitProfile {
            name,
            flip_flops,
            gates,
            class,
        }
    }
}

/// All 29 rows of Table 3 of the paper.
pub const TABLE3_PROFILES: &[CircuitProfile] = &[
    CircuitProfile::new("s382", 21, 158, CircuitClass::Benchmark),
    CircuitProfile::new("s386", 6, 159, CircuitClass::Benchmark),
    CircuitProfile::new("s400", 21, 164, CircuitClass::Benchmark),
    CircuitProfile::new("s444", 21, 181, CircuitClass::Benchmark),
    CircuitProfile::new("s641", 19, 377, CircuitClass::Benchmark),
    CircuitProfile::new("s713", 19, 393, CircuitClass::Benchmark),
    CircuitProfile::new("s953", 29, 424, CircuitClass::Benchmark),
    CircuitProfile::new("s967", 29, 395, CircuitClass::Benchmark),
    CircuitProfile::new("s1196", 18, 529, CircuitClass::Benchmark),
    CircuitProfile::new("s1238", 18, 508, CircuitClass::Benchmark),
    CircuitProfile::new("s1269", 37, 569, CircuitClass::Benchmark),
    CircuitProfile::new("s1423", 74, 657, CircuitClass::Benchmark),
    CircuitProfile::new("s3330", 132, 1789, CircuitClass::Benchmark),
    CircuitProfile::new("s3384", 183, 1685, CircuitClass::Benchmark),
    CircuitProfile::new("s4863", 104, 2342, CircuitClass::Benchmark),
    CircuitProfile::new("s5378", 179, 2779, CircuitClass::Benchmark),
    CircuitProfile::new("s6669", 239, 3080, CircuitClass::Benchmark),
    CircuitProfile::new("s9234", 228, 5597, CircuitClass::Benchmark),
    CircuitProfile::new("s13207", 638, 7951, CircuitClass::Benchmark),
    CircuitProfile::new("s15850", 597, 9772, CircuitClass::Benchmark),
    CircuitProfile::new("s38417", 1636, 22179, CircuitClass::Benchmark),
    CircuitProfile::new("s38584", 1452, 19253, CircuitClass::Benchmark),
    CircuitProfile::new("s510jcsrre", 26, 243, CircuitClass::Retimed),
    CircuitProfile::new("s510josrre", 28, 243, CircuitClass::Retimed),
    CircuitProfile::new("s832jcsrre", 27, 195, CircuitClass::Retimed),
    CircuitProfile::new("scfjisdre", 20, 764, CircuitClass::Retimed),
    CircuitProfile::new("indust1", 460, 8693, CircuitClass::Industrial),
    CircuitProfile::new("indust2", 7068, 63156, CircuitClass::Industrial),
    CircuitProfile::new("indust3", 15689, 681595, CircuitClass::Industrial),
];

/// The seven circuits of Table 4 (tie gates vs. FIRES).
pub const TABLE4_PROFILES: &[&str] = &[
    "s5378", "s3330", "s9234", "s13207", "s15850", "s38417", "s38584",
];

/// The eleven circuits of Table 5 (ATPG with and without learning).
pub const TABLE5_PROFILES: &[&str] = &[
    "s1423",
    "s3330",
    "s3384",
    "s4863",
    "s5378",
    "s6669",
    "s13207",
    "s510jcsrre",
    "s510josrre",
    "s832jcsrre",
    "scfjisdre",
];

/// Looks up a profile by its paper name.
pub fn profile_by_name(name: &str) -> Option<&'static CircuitProfile> {
    TABLE3_PROFILES.iter().find(|p| p.name == name)
}

/// Instantiates a profile at the given scale (`1.0` = the original size,
/// `0.1` = one tenth of the flip-flops and gates, never below a small floor).
pub fn build_profile(profile: &CircuitProfile, scale: f64) -> Netlist {
    let scale = scale.clamp(0.001, 4.0);
    let flip_flops = ((profile.flip_flops as f64 * scale).round() as usize).max(4);
    let gates = ((profile.gates as f64 * scale).round() as usize).max(16);
    let seed = name_seed(profile.name);
    match profile.class {
        CircuitClass::Benchmark => {
            synthesize(&SynthConfig::sized(profile.name, flip_flops, gates, seed))
        }
        CircuitClass::Retimed => {
            retimed_circuit(&RetimedConfig::sized(profile.name, flip_flops, gates, seed))
        }
        CircuitClass::Industrial => industrial_circuit(&IndustrialConfig::sized(
            profile.name,
            flip_flops,
            gates,
            seed,
        )),
    }
}

/// Deterministic per-name seed (FNV-1a) so every profile gets its own but
/// reproducible circuit.
fn name_seed(name: &str) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_has_all_29_rows() {
        assert_eq!(TABLE3_PROFILES.len(), 29);
        assert_eq!(
            TABLE3_PROFILES
                .iter()
                .filter(|p| p.class == CircuitClass::Retimed)
                .count(),
            4
        );
        assert_eq!(
            TABLE3_PROFILES
                .iter()
                .filter(|p| p.class == CircuitClass::Industrial)
                .count(),
            3
        );
    }

    #[test]
    fn table4_and_table5_reference_known_profiles() {
        for name in TABLE4_PROFILES.iter().chain(TABLE5_PROFILES.iter()) {
            assert!(profile_by_name(name).is_some(), "{name}");
        }
    }

    #[test]
    fn build_profile_scales_sizes() {
        let p = profile_by_name("s1423").unwrap();
        let full = build_profile(p, 1.0);
        let small = build_profile(p, 0.1);
        assert_eq!(full.num_sequential(), 74);
        assert!(small.num_sequential() < full.num_sequential());
        assert!(small.num_gates() < full.num_gates());
        assert!(full.validate().is_ok());
        assert!(small.validate().is_ok());
    }

    #[test]
    fn retimed_profiles_build_as_retimed_circuits() {
        let p = profile_by_name("s832jcsrre").unwrap();
        assert_eq!(p.class, CircuitClass::Retimed);
        let n = build_profile(p, 0.5);
        assert!(n.validate().is_ok());
        assert!(n.num_sequential() >= 4);
    }

    #[test]
    fn profiles_are_deterministic() {
        let p = profile_by_name("s400").unwrap();
        let a = build_profile(p, 0.5);
        let b = build_profile(p, 0.5);
        assert_eq!(
            sla_netlist::writer::write_bench(&a),
            sla_netlist::writer::write_bench(&b)
        );
    }
}
