//! Generator of Table-5-style workloads: retimed-redundant logic whose
//! conflicts are only visible through learned implications.
//!
//! The paper's Table 5 shows sequential learning paying off on retimed
//! circuits, where most of the search effort without learning goes into
//! justifying *invalid* state combinations frame by frame. The
//! [`retimed`](crate::retimed) generator reproduces the low-density-of-
//! encoding regime, but every invariant it creates is re-derivable by plain
//! three-valued window simulation the moment the supporting values are
//! assigned — so the implication layer never sees a hint on an `X` node and
//! learning cannot prune a single branch (the measured zero backtrack
//! reduction).
//!
//! This generator closes that gap with invariants that three-valued
//! simulation *loses* but the learning procedure (which runs with
//! gate-equivalence value forwarding, paper §3.1) still proves. The core
//! cell recomputes a data signal `bb` through a stack of select-case splits
//!
//! ```text
//! g0 = bb
//! gi = OR(AND(sel_i, g{i-1}), AND(NOT sel_i, g{i-1}))   // ≡ bb for any sel
//! ```
//!
//! Functionally `g_m ≡ bb`, and the learner's equivalence forwarding sees
//! that; but with any select unassigned, three-valued simulation evaluates
//! `g_m = X`. Delaying both `bb` and `g_m` through flip-flop chains of depth
//! `d` yields a pair `fb/fg` with the learned same-frame relations
//! `fb=1 → fg=1` and `fb=0 → fg=0` — relations the window simulation cannot
//! re-derive. In the ATPG search, justifying `fb` places a hint on the
//! still-`X` node `fg`, and every branch that tries to drive `fg` against
//! the hint (to excite or propagate through the redundant payload
//! `AND(fb, NOT fg)`) is a learned conflict: without learning the search
//! walks the full `2^m` select tree — per frame, per window — before giving
//! up; with learning the branch dies at the backtrace.
//!
//! Some cells draw their selects from a master shift register instead of
//! primary inputs, so a select justification drags earlier time frames into
//! the search — the retimed flavour of the same waste.

use sla_netlist::{GateType, Netlist, NetlistBuilder};

/// Parameters of the Table-5-style workload generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table5Config {
    /// Circuit name.
    pub name: String,
    /// Number of redundant `fb/fg` cells (clamped to at least 2, so the
    /// cross-cell observation payload is genuinely satisfiable).
    pub cells: usize,
    /// Flip-flop chain depths, cycled over the cells.
    pub depths: Vec<usize>,
    /// Number of mux case-split layers per cell (search-tree width without
    /// learning is exponential in this).
    pub select_layers: usize,
    /// Number of primary data/select inputs.
    pub inputs: usize,
    /// Number of master shift-register bits feeding the state-driven selects.
    pub master_bits: usize,
    /// Number of cross cells appended after the plain cells. A cross cell
    /// carries an invariant that is *temporally asymmetric* in the search:
    /// exciting its XOR probe gate pins the data stem one frame back, while
    /// propagating the fault effect requires the opaque chain end
    /// (`FF^d(stack(bb))`) to take the opposite value `d − 1` frames later —
    /// impossible, but provable only by relating two *different* time
    /// frames. Same-frame learning has no anchor for it (the XOR probe is
    /// never binary in any single-stem polarity trace), so the select-tree
    /// walk is cut by cross-frame forbidden-value pruning or not at all.
    /// Zero (the default) keeps the classic workload unchanged.
    pub cross_cells: usize,
}

impl Default for Table5Config {
    fn default() -> Self {
        Table5Config {
            name: "table5".to_string(),
            cells: 4,
            depths: vec![1, 2],
            select_layers: 3,
            inputs: 4,
            master_bits: 3,
            cross_cells: 0,
        }
    }
}

impl Table5Config {
    /// The cross-frame flavour of the workload: the classic cells plus
    /// `cross` double-stack cells. The added search waste is invisible to
    /// window simulation *and* unprunable by same-frame learning — the
    /// workload where cross-frame forbidden-value pruning is the only thing
    /// that can cut the select-tree walks.
    pub fn with_cross_cells(cross: usize) -> Self {
        Table5Config {
            name: "table5x".to_string(),
            cross_cells: cross,
            ..Table5Config::default()
        }
    }
}

/// Generates a Table-5-style workload circuit. See the module docs for the
/// structure and the reasoning behind it.
pub fn table5_circuit(config: &Table5Config) -> Netlist {
    let mut b = NetlistBuilder::new(config.name.clone());
    let num_inputs = config.inputs.max(2);
    let inputs: Vec<String> = (0..num_inputs).map(|i| format!("i{i}")).collect();
    for name in &inputs {
        b.input(name);
    }
    b.input("obs");

    // Master shift register: initialisable from the inputs, provides the
    // state-driven selects (justifying one costs earlier-frame decisions).
    let masters: Vec<String> = (0..config.master_bits.max(1))
        .map(|i| format!("m{i}"))
        .collect();
    for (i, name) in masters.iter().enumerate() {
        if i == 0 {
            b.gate(
                "m_in",
                GateType::And,
                &[inputs[0].as_str(), inputs[1 % num_inputs].as_str()],
            )
            .unwrap();
            b.dff(name, "m_in").unwrap();
        } else {
            b.dff(name, &masters[i - 1]).unwrap();
        }
    }

    // At least two cells: with a single cell the cross-cell payload
    // x0 = AND(fb0, NOT fg0) would collapse onto the redundant payload p0
    // and the workload would have no honestly detectable observation path.
    let cells = config.cells.max(2);
    let depths = if config.depths.is_empty() {
        &[1usize][..]
    } else {
        &config.depths[..]
    };
    let layers = config.select_layers.max(1);
    let mut fb_names = Vec::with_capacity(cells);
    let mut nfg_names = Vec::with_capacity(cells);
    for j in 0..cells {
        let depth = depths[j % depths.len()].max(1);
        // The data signal, buffered so the redundant recomputation is
        // gate-to-gate equivalent (equivalence classes only span gates).
        let bb = format!("bb{j}");
        b.gate(&bb, GateType::Buf, &[inputs[j % num_inputs].as_str()])
            .unwrap();

        // Stack of select-case splits, each layer functionally the identity.
        let mut g_prev = bb.clone();
        for l in 0..layers {
            // Odd cells draw every other select from the master state.
            let sel = if j % 2 == 1 && l % 2 == 1 {
                masters[l % masters.len()].clone()
            } else {
                inputs[(j + l + 1) % num_inputs].clone()
            };
            let nsel = format!("ns{j}_{l}");
            let hi = format!("hi{j}_{l}");
            let lo = format!("lo{j}_{l}");
            let g = format!("g{j}_{l}");
            b.gate(&nsel, GateType::Not, &[sel.as_str()]).unwrap();
            b.gate(&hi, GateType::And, &[sel.as_str(), g_prev.as_str()])
                .unwrap();
            b.gate(&lo, GateType::And, &[nsel.as_str(), g_prev.as_str()])
                .unwrap();
            b.gate(&g, GateType::Or, &[hi.as_str(), lo.as_str()])
                .unwrap();
            g_prev = g;
        }

        // Delay both recomputations through chains of the same depth; the
        // learned relations relate the chain ends within one frame.
        let mut fb_prev = bb.clone();
        let mut fg_prev = g_prev;
        for level in 0..depth {
            let fb_ff = format!("fb{j}_{level}");
            let fg_ff = format!("fg{j}_{level}");
            b.dff(&fb_ff, &fb_prev).unwrap();
            b.dff(&fg_ff, &fg_prev).unwrap();
            fb_prev = fb_ff;
            fg_prev = fg_ff;
        }

        // Redundant payload: fb and fg are equal in operation, so
        // p = AND(fb, NOT fg) is constant 0 — but the window simulation only
        // knows that through the learned relations.
        let nfg = format!("nfg{j}");
        let p = format!("p{j}");
        b.gate(&nfg, GateType::Not, &[fg_prev.as_str()]).unwrap();
        b.gate(&p, GateType::And, &[fb_prev.as_str(), nfg.as_str()])
            .unwrap();
        fb_names.push(fb_prev);
        nfg_names.push(nfg);
    }

    // Observation: each cell's payload ORed with a *testable* cross-cell
    // payload (fb of cell j with NOT fg of cell k — independent data inputs,
    // so it is satisfiable and keeps the detected count honest).
    for (j, fb) in fb_names.iter().enumerate() {
        let k = (j + 1) % cells;
        let x = format!("x{j}");
        let o = format!("o{j}");
        b.gate(&x, GateType::And, &[fb.as_str(), nfg_names[k].as_str()])
            .unwrap();
        b.gate(
            &o,
            GateType::Or,
            &[format!("p{j}").as_str(), x.as_str(), "obs"],
        )
        .unwrap();
        b.output(&o).unwrap();
    }

    // Cross cells (appended after the classic cells so their node order is
    // untouched). Each cell carries one invariant that is *temporally
    // asymmetric* in the search:
    //
    // ```text
    // cd   = dedicated data input
    // bb   = Buf(cd)                      // the stem the relations anchor to
    // w    = XOR(bb, ce)                  // excitation probe (ce dedicated)
    // wd   = FF^do(w)                     // carries w's fault effect forward
    // fx   = FF^do(stack(bb))             // opaque: stack before the chain
    // o    = OR(wd, fx, obs)              // observation
    // ```
    //
    // Exciting a `w` fault at frame `u` decides the data input at `u`;
    // propagating the effect through `o` at frame `v = u + do` requires
    // `fx = 0 @ v` — with `bb=1@u` that is impossible (`fx@v ≡ bb@v−do`),
    // but provable only by relating frame `u` to frame `v`. Window
    // simulation never sees it (the stack keeps `fx` at `X` until every
    // dedicated select is assigned), and same-frame learning has no anchor:
    // `w` is an XOR, so it is binary in no single-stem polarity trace (no
    // carrier relation is ever extracted), and the data input is dedicated,
    // so no foreign transparent chain aligns with any depth of the `fx`
    // chain. The one fact that kills the doomed `fx = 0` select-tree walk
    // is the cross-frame relation `bb=1 @ T → fx=1 @ T+do` — forbidden-
    // value pruning from cross-frame learning, or nothing.
    if config.cross_cells > 0 {
        let chain_do = depths.iter().copied().max().unwrap_or(1).max(1) + 1;
        for j in 0..config.cross_cells {
            let s = cells + j;
            let cd = format!("cd{s}");
            b.input(&cd);
            let bb = format!("bb{s}");
            b.gate(&bb, GateType::Buf, &[cd.as_str()]).unwrap();
            let ce = format!("ce{s}");
            b.input(&ce);
            let w = format!("w{s}");
            b.gate(&w, GateType::Xor, &[bb.as_str(), ce.as_str()])
                .unwrap();
            let mut wd_prev = w.clone();
            for level in 0..chain_do {
                let wd = format!("wd{s}_{level}");
                b.dff(&wd, &wd_prev).unwrap();
                wd_prev = wd;
            }
            // The opaque recomputation: select stack on dedicated inputs,
            // then the delay chain — no transparent tap at any depth.
            let mut g_prev = bb.clone();
            for l in 0..layers {
                let sel = format!("cs{s}_{l}");
                b.input(&sel);
                let nsel = format!("nsb{s}_{l}");
                let hi = format!("hib{s}_{l}");
                let lo = format!("lob{s}_{l}");
                let g = format!("gb{s}_{l}");
                b.gate(&nsel, GateType::Not, &[sel.as_str()]).unwrap();
                b.gate(&hi, GateType::And, &[sel.as_str(), g_prev.as_str()])
                    .unwrap();
                b.gate(&lo, GateType::And, &[nsel.as_str(), g_prev.as_str()])
                    .unwrap();
                b.gate(&g, GateType::Or, &[hi.as_str(), lo.as_str()])
                    .unwrap();
                g_prev = g;
            }
            let mut fx_prev = g_prev;
            for level in 0..chain_do {
                let fx = format!("fx{s}_{level}");
                b.dff(&fx, &fx_prev).unwrap();
                fx_prev = fx;
            }
            let o = format!("o{s}");
            b.gate(
                &o,
                GateType::Or,
                &[wd_prev.as_str(), fx_prev.as_str(), "obs"],
            )
            .unwrap();
            b.output(&o).unwrap();
        }
    }
    b.build().expect("table5 generator produces valid circuits")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_configuration_builds_and_is_sequential() {
        let n = table5_circuit(&Table5Config::default());
        assert!(n.validate().is_ok());
        // Masters (3) plus per-cell chains: depths cycle 1,2,1,2 → 2*(1+2+1+2).
        assert_eq!(n.num_sequential(), 3 + 12);
        assert_eq!(n.outputs().len(), 4);
        assert!(!sla_netlist::stems::fanout_stems(&n).is_empty());
    }

    #[test]
    fn generator_is_deterministic() {
        let cfg = Table5Config {
            cells: 3,
            ..Table5Config::default()
        };
        assert_eq!(
            sla_netlist::writer::write_bench(&table5_circuit(&cfg)),
            sla_netlist::writer::write_bench(&table5_circuit(&cfg))
        );
    }
}
