//! Deterministic synthetic sequential circuit generator.
//!
//! The generator builds a levelizable random DAG: each gate only references
//! primary inputs, flip-flop outputs and previously created gates, and each
//! flip-flop's data input is one of the gates, so the result is always a valid
//! sequential circuit without combinational cycles. The statistics (gate
//! count, flip-flop count, fanin distribution) are controlled by the
//! configuration so the Table 3 / Table 5 profiles can mirror the paper's
//! benchmark sizes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sla_netlist::{GateType, Netlist, NetlistBuilder};

/// Parameters of the synthetic generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthConfig {
    /// Circuit name.
    pub name: String,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of flip-flops.
    pub flip_flops: usize,
    /// Number of combinational gates.
    pub gates: usize,
    /// Maximum gate fanin (at least 2).
    pub max_fanin: usize,
    /// Seed of the deterministic generator.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            name: "synthetic".to_string(),
            inputs: 8,
            outputs: 8,
            flip_flops: 16,
            gates: 120,
            max_fanin: 3,
            seed: 1,
        }
    }
}

impl SynthConfig {
    /// A configuration named after and sized like a benchmark row.
    pub fn sized(name: &str, flip_flops: usize, gates: usize, seed: u64) -> Self {
        SynthConfig {
            name: name.to_string(),
            inputs: (gates / 20).clamp(4, 64),
            outputs: (gates / 25).clamp(2, 64),
            flip_flops: flip_flops.max(1),
            gates: gates.max(4),
            max_fanin: 3,
            seed,
        }
    }
}

const GATE_CHOICES: [GateType; 7] = [
    GateType::And,
    GateType::Nand,
    GateType::Or,
    GateType::Nor,
    GateType::Not,
    GateType::Xor,
    GateType::Buf,
];

/// Generates a synthetic sequential circuit.
pub fn synthesize(config: &SynthConfig) -> Netlist {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = NetlistBuilder::new(config.name.clone());

    let input_names: Vec<String> = (0..config.inputs.max(1)).map(|i| format!("i{i}")).collect();
    for name in &input_names {
        b.input(name);
    }
    let ff_names: Vec<String> = (0..config.flip_flops).map(|i| format!("f{i}")).collect();
    let gate_names: Vec<String> = (0..config.gates).map(|i| format!("g{i}")).collect();

    // Signals a gate may use: inputs and flip-flops are always available
    // (forward references are resolved at build time); gates only reference
    // earlier gates so the combinational logic stays acyclic.
    let mut available: Vec<String> = input_names.clone();
    available.extend(ff_names.iter().cloned());

    for (idx, name) in gate_names.iter().enumerate() {
        let gate = GATE_CHOICES[rng.gen_range(0..GATE_CHOICES.len())];
        let fanin_count = match gate {
            GateType::Not | GateType::Buf => 1,
            _ => rng.gen_range(2..=config.max_fanin.max(2)),
        };
        let mut fanins: Vec<&str> = Vec::with_capacity(fanin_count);
        for _ in 0..fanin_count {
            // Bias toward recent gates to create deeper logic and reconvergence.
            let pick = if idx > 0 && rng.gen_bool(0.6) {
                let lo = available.len().saturating_sub(idx.min(20));
                rng.gen_range(lo..available.len())
            } else {
                rng.gen_range(0..available.len())
            };
            fanins.push(available[pick].as_str());
        }
        b.gate(name, gate, &fanins)
            .expect("generated gate arity is always legal");
        available.push(name.clone());
    }

    // Flip-flop data inputs come from the generated gates (or inputs when the
    // circuit is tiny).
    for name in &ff_names {
        let source = if gate_names.is_empty() {
            input_names[rng.gen_range(0..input_names.len())].clone()
        } else {
            gate_names[rng.gen_range(0..gate_names.len())].clone()
        };
        b.dff(name, &source).expect("flip-flop names are unique");
    }

    // Primary outputs observe random gates and flip-flops.
    let mut po_pool: Vec<&String> = gate_names.iter().chain(ff_names.iter()).collect();
    if po_pool.is_empty() {
        po_pool = input_names.iter().collect();
    }
    for _ in 0..config.outputs.max(1) {
        let pick = po_pool[rng.gen_range(0..po_pool.len())];
        b.output(pick).expect("output references an existing node");
    }

    b.build()
        .expect("generator produces structurally valid circuits")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sla_netlist::levelize::levelize;

    #[test]
    fn generator_is_deterministic() {
        let cfg = SynthConfig::default();
        let a = synthesize(&cfg);
        let b = synthesize(&cfg);
        assert_eq!(
            sla_netlist::writer::write_bench(&a),
            sla_netlist::writer::write_bench(&b)
        );
    }

    #[test]
    fn different_seeds_give_different_circuits() {
        let a = synthesize(&SynthConfig::default());
        let b = synthesize(&SynthConfig {
            seed: 99,
            ..SynthConfig::default()
        });
        assert_ne!(
            sla_netlist::writer::write_bench(&a),
            sla_netlist::writer::write_bench(&b)
        );
    }

    #[test]
    fn statistics_match_the_configuration() {
        let cfg = SynthConfig::sized("s400-like", 21, 164, 7);
        let n = synthesize(&cfg);
        assert_eq!(n.num_sequential(), 21);
        assert_eq!(n.num_gates(), 164);
        assert!(n.validate().is_ok());
        assert!(levelize(&n).is_ok(), "no combinational cycles");
    }

    #[test]
    fn tiny_configurations_still_build() {
        let cfg = SynthConfig {
            inputs: 1,
            outputs: 1,
            flip_flops: 1,
            gates: 4,
            ..SynthConfig::default()
        };
        let n = synthesize(&cfg);
        assert!(n.validate().is_ok());
        assert_eq!(n.num_sequential(), 1);
    }

    #[test]
    fn generated_circuits_have_fanout_stems() {
        let n = synthesize(&SynthConfig::default());
        assert!(!sla_netlist::stems::fanout_stems(&n).is_empty());
    }
}
