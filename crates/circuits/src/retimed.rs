//! Generator of "retimed-style" circuits with a low density of encoding.
//!
//! The paper shows that retiming moves registers into positions where most
//! state combinations become unreachable (invalid), which makes sequential
//! ATPG dramatically harder and sequential learning dramatically more useful.
//! This generator reproduces that regime directly: a small *master* register
//! bank evolves freely, while a larger bank of *derived* flip-flops captures
//! combinational functions of the master bits. Every derived state bit is a
//! deterministic function of the previous master state, so only a tiny
//! fraction of the `2^n` state combinations is reachable — exactly the
//! low-density-of-encoding profile of the paper's `s510jcsrre`-class circuits.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sla_netlist::{GateType, Netlist, NetlistBuilder};

/// Parameters of the retimed-style generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetimedConfig {
    /// Circuit name.
    pub name: String,
    /// Number of freely evolving master flip-flops.
    pub master_bits: usize,
    /// Number of derived flip-flops (functions of the master bits).
    pub derived_bits: usize,
    /// Extra random observation/mixing gates.
    pub extra_gates: usize,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Seed of the deterministic generator.
    pub seed: u64,
}

impl Default for RetimedConfig {
    fn default() -> Self {
        RetimedConfig {
            name: "retimed".to_string(),
            master_bits: 4,
            derived_bits: 12,
            extra_gates: 40,
            inputs: 4,
            seed: 11,
        }
    }
}

impl RetimedConfig {
    /// A configuration named after and sized like a benchmark row: the derived
    /// bank holds most of the flip-flops, the master bank stays small.
    pub fn sized(name: &str, flip_flops: usize, gates: usize, seed: u64) -> Self {
        let master = flip_flops.clamp(2, 6).min(flip_flops);
        RetimedConfig {
            name: name.to_string(),
            master_bits: master,
            derived_bits: flip_flops.saturating_sub(master).max(1),
            extra_gates: gates.saturating_sub(2 * flip_flops).max(8),
            inputs: (gates / 30).clamp(3, 32),
            seed,
        }
    }
}

/// Generates a retimed-style circuit.
pub fn retimed_circuit(config: &RetimedConfig) -> Netlist {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = NetlistBuilder::new(config.name.clone());

    let inputs: Vec<String> = (0..config.inputs.max(1)).map(|i| format!("i{i}")).collect();
    for name in &inputs {
        b.input(name);
    }

    // Master bank: a shift-register-with-feedback over the inputs, every state
    // of which is reachable.
    let master: Vec<String> = (0..config.master_bits.max(2))
        .map(|i| format!("m{i}"))
        .collect();
    for (i, name) in master.iter().enumerate() {
        if i == 0 {
            // The first master bit loads directly from an input so the whole
            // register is initialisable under three-valued simulation (a real
            // retimed circuit keeps an initialisation path too); the feedback
            // term only mixes once the state is known.
            b.gate(
                "m_in",
                GateType::And,
                &[inputs[0].as_str(), inputs[1 % inputs.len()].as_str()],
            )
            .unwrap();
            b.gate(
                "m_fb",
                GateType::Or,
                &["m_in", master.last().unwrap().as_str()],
            )
            .unwrap();
            b.dff(name, "m_fb").unwrap();
        } else {
            b.dff(name, &master[i - 1]).unwrap();
        }
    }

    // Derived bank: each flip-flop captures a small AND/NOR/NOT function of the
    // master bits, so most combinations of derived bits are invalid states.
    let derived: Vec<String> = (0..config.derived_bits.max(1))
        .map(|i| format!("d{i}"))
        .collect();
    for (i, name) in derived.iter().enumerate() {
        let a = &master[rng.gen_range(0..master.len())];
        let bsig = &master[rng.gen_range(0..master.len())];
        let gate_name = format!("dg{i}");
        match rng.gen_range(0..3) {
            0 => b.gate(&gate_name, GateType::And, &[a, bsig]).unwrap(),
            1 => b.gate(&gate_name, GateType::Nor, &[a, bsig]).unwrap(),
            _ => b.gate(&gate_name, GateType::Not, &[a]).unwrap(),
        }
        b.dff(name, &gate_name).unwrap();
    }

    // Mixing / observation logic over derived bits and inputs; this is where
    // the target faults live, and detecting them requires justifying derived
    // states — easy with the learned invalid-state relations, hard without.
    let mut available: Vec<String> = inputs.clone();
    available.extend(derived.iter().cloned());
    available.extend(master.iter().cloned());
    let mut last = Vec::new();
    for i in 0..config.extra_gates.max(4) {
        let name = format!("x{i}");
        let gate = match rng.gen_range(0..5) {
            0 => GateType::And,
            1 => GateType::Or,
            2 => GateType::Nand,
            3 => GateType::Nor,
            _ => GateType::Xor,
        };
        let a = available[rng.gen_range(0..available.len())].clone();
        let c = available[rng.gen_range(0..available.len())].clone();
        b.gate(&name, gate, &[a.as_str(), c.as_str()]).unwrap();
        available.push(name.clone());
        last.push(name);
    }

    // Observe a spread of the mixing gates and a few derived bits.
    for (i, name) in last.iter().rev().take(6).enumerate() {
        let _ = i;
        b.output(name).unwrap();
    }
    for name in derived.iter().take(2) {
        b.output(name).unwrap();
    }
    b.build()
        .expect("retimed generator produces valid circuits")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sla_sim::StateOracle;

    #[test]
    fn density_of_encoding_is_low() {
        let cfg = RetimedConfig {
            master_bits: 3,
            derived_bits: 8,
            extra_gates: 12,
            inputs: 3,
            ..RetimedConfig::default()
        };
        let n = retimed_circuit(&cfg);
        assert!(n.validate().is_ok());
        let oracle = StateOracle::build(&n, 24).unwrap();
        assert!(
            oracle.density_of_encoding_bp() < 2_500,
            "expected a low density of encoding, got {} bp",
            oracle.density_of_encoding_bp()
        );
    }

    #[test]
    fn generator_is_deterministic_and_sized() {
        let cfg = RetimedConfig::sized("s832-like", 27, 195, 5);
        let a = retimed_circuit(&cfg);
        let b2 = retimed_circuit(&cfg);
        assert_eq!(
            sla_netlist::writer::write_bench(&a),
            sla_netlist::writer::write_bench(&b2)
        );
        assert_eq!(a.num_sequential(), 27);
        assert!(a.num_gates() >= 27);
    }

    #[test]
    fn default_configuration_builds() {
        let n = retimed_circuit(&RetimedConfig::default());
        assert!(n.validate().is_ok());
        assert!(n.num_sequential() >= 10);
        assert!(!sla_netlist::stems::fanout_stems(&n).is_empty());
    }
}
