//! The on-disk learned-knowledge cache.
//!
//! Layout: a directory holding one `index` file plus one `<key>.slal` file
//! per entry. Both are framed with the snapshot codec — 4-byte magic, `u32`
//! version, payload, trailing checksum — so corrupt or foreign bytes decode
//! to a typed [`StoreError`] instead of panicking.
//!
//! The index records keys in insertion order; that order is the eviction
//! order (FIFO at capacity) and the iteration order, so every replica of a
//! store that saw the same inserts holds the same entries. Writes go through
//! a temporary file plus rename, so a crash mid-write leaves the previous
//! index/entry intact rather than a torn file.

use crate::{StoreError, StoreKey};
use sla_atpg::LearnedData;
use sla_core::ImplicationDb;
use sla_snapshot::codec::{self, Reader, Writer};
use sla_snapshot::SnapshotError;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Magic of the index file.
const INDEX_MAGIC: &[u8; 4] = b"SLAI";
/// Magic of an entry file.
const ENTRY_MAGIC: &[u8; 4] = b"SLAL";
/// On-disk format version of both files.
const STORE_FORMAT_VERSION: u32 = 1;

/// A persistent cache of learned databases keyed by [`StoreKey`].
///
/// The in-memory state is just the key list (insertion order); entry
/// payloads stay on disk until [`LearnedStore::lookup`] reads them.
#[derive(Debug)]
pub struct LearnedStore {
    dir: PathBuf,
    capacity: usize,
    keys: Vec<StoreKey>,
}

impl LearnedStore {
    /// Opens (or creates) the store at `dir`, holding at most `capacity`
    /// entries. A missing directory or index means an empty store; a
    /// present-but-corrupt index is a typed error (use
    /// [`LearnedStore::open_or_reset`] to fall back to empty instead).
    pub fn open(dir: impl Into<PathBuf>, capacity: usize) -> Result<LearnedStore, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|source| StoreError::Io {
            op: "create",
            path: dir.clone(),
            source,
        })?;
        let index = dir.join("index");
        let keys = match fs::read(&index) {
            Ok(bytes) => decode_index(&bytes).map_err(|source| StoreError::Codec {
                path: index.clone(),
                source,
            })?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(source) => {
                return Err(StoreError::Io {
                    op: "read",
                    path: index,
                    source,
                })
            }
        };
        Ok(LearnedStore {
            dir,
            capacity: capacity.max(1),
            keys,
        })
    }

    /// Like [`LearnedStore::open`], but a corrupt index resets the store to
    /// empty instead of failing. Returns the error that forced the reset so
    /// the caller can log why the cache came up cold.
    pub fn open_or_reset(
        dir: impl Into<PathBuf>,
        capacity: usize,
    ) -> (LearnedStore, Option<StoreError>) {
        let dir = dir.into();
        match LearnedStore::open(dir.clone(), capacity) {
            Ok(store) => (store, None),
            Err(err) => {
                // Best-effort removal of the bad index; a fresh store starts
                // from scratch either way.
                let _ = fs::remove_file(dir.join("index"));
                let store = LearnedStore {
                    dir,
                    capacity: capacity.max(1),
                    keys: Vec::new(),
                };
                (store, Some(err))
            }
        }
    }

    /// Directory holding the index and entry files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Maximum number of entries before FIFO eviction.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Returns `true` when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Returns `true` when `key` has an index slot.
    pub fn contains(&self, key: &StoreKey) -> bool {
        self.keys.contains(key)
    }

    /// The cached keys in insertion order (= eviction order).
    pub fn keys(&self) -> &[StoreKey] {
        &self.keys
    }

    /// Path of the entry file for `key`.
    fn entry_path(&self, key: &StoreKey) -> PathBuf {
        self.dir.join(format!("{key}.slal"))
    }

    /// Reads the learned database cached under `key`. `Ok(None)` means the
    /// key is not in the index; an `Err` means the index claims the entry
    /// but its bytes are missing, corrupt or mismatched — callers should
    /// treat that as a miss and may repopulate via [`LearnedStore::insert`].
    pub fn lookup(&self, key: &StoreKey) -> Result<Option<LearnedData>, StoreError> {
        if !self.contains(key) {
            return Ok(None);
        }
        let path = self.entry_path(key);
        let bytes = fs::read(&path).map_err(|source| StoreError::Io {
            op: "read",
            path: path.clone(),
            source,
        })?;
        let (found, learned) = decode_entry(&bytes).map_err(|source| StoreError::Codec {
            path: path.clone(),
            source,
        })?;
        if found != *key {
            return Err(StoreError::KeyMismatch {
                path,
                expected: *key,
                found,
            });
        }
        Ok(Some(learned))
    }

    /// Caches `learned` under `key`. Re-inserting an existing key overwrites
    /// its entry file without changing its index position; a new key appends
    /// and, at capacity, evicts the oldest entries first.
    pub fn insert(&mut self, key: StoreKey, learned: &LearnedData) -> Result<(), StoreError> {
        let path = self.entry_path(&key);
        self.write_atomic(&path, &encode_entry(&key, learned))?;
        if !self.contains(&key) {
            self.keys.push(key);
            while self.keys.len() > self.capacity {
                let victim = self.keys.remove(0);
                let victim_path = self.entry_path(&victim);
                match fs::remove_file(&victim_path) {
                    Ok(()) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                    Err(source) => {
                        return Err(StoreError::Io {
                            op: "evict",
                            path: victim_path,
                            source,
                        })
                    }
                }
            }
        }
        let index = self.dir.join("index");
        self.write_atomic(&index, &encode_index(&self.keys))
    }

    /// Writes `bytes` to `path` via a temporary sibling plus rename, so the
    /// previous contents survive a crash mid-write.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
        let tmp = self.dir.join(".tmp");
        let io = |op: &'static str, path: &Path| {
            let path = path.to_path_buf();
            move |source| StoreError::Io { op, path, source }
        };
        let mut f = fs::File::create(&tmp).map_err(io("write", &tmp))?;
        f.write_all(bytes).map_err(io("write", &tmp))?;
        f.sync_all().map_err(io("write", &tmp))?;
        drop(f);
        fs::rename(&tmp, path).map_err(io("rename", path))
    }
}

fn encode_index(keys: &[StoreKey]) -> Vec<u8> {
    let mut w = Writer::new();
    w.bytes_raw(INDEX_MAGIC);
    w.u32(STORE_FORMAT_VERSION);
    w.u32(keys.len() as u32);
    for key in keys {
        w.u64(key.netlist_hash);
        w.u64(key.config_hash);
    }
    w.seal()
}

fn decode_index(bytes: &[u8]) -> Result<Vec<StoreKey>, SnapshotError> {
    let mut r = codec::check_frame(bytes, INDEX_MAGIC, STORE_FORMAT_VERSION)?;
    let count = r.count()?;
    let mut keys = Vec::with_capacity(count);
    for _ in 0..count {
        keys.push(StoreKey {
            netlist_hash: r.u64()?,
            config_hash: r.u64()?,
        });
    }
    finish(r)?;
    Ok(keys)
}

fn encode_entry(key: &StoreKey, learned: &LearnedData) -> Vec<u8> {
    let mut w = Writer::new();
    w.bytes_raw(ENTRY_MAGIC);
    w.u32(STORE_FORMAT_VERSION);
    w.u64(key.netlist_hash);
    w.u64(key.config_hash);
    let implications: Vec<_> = learned.implications().iter().collect();
    codec::write_relations(&mut w, &implications, learned.cross_frame(), learned.tied());
    w.seal()
}

fn decode_entry(bytes: &[u8]) -> Result<(StoreKey, LearnedData), SnapshotError> {
    let mut r = codec::check_frame(bytes, ENTRY_MAGIC, STORE_FORMAT_VERSION)?;
    let key = StoreKey {
        netlist_hash: r.u64()?,
        config_hash: r.u64()?,
    };
    let (implications, cross, tied) = codec::read_relations(&mut r)?;
    finish(r)?;
    // `add` canonicalizes; the stored form is already canonical, so re-adding
    // reproduces the exact insertion order the learner produced.
    let mut db = ImplicationDb::new();
    for (imp, seq) in &implications {
        db.add(*imp, *seq);
    }
    let learned = LearnedData::from_parts(db, tied).with_cross_frame(cross);
    Ok((key, learned))
}

fn finish(r: Reader<'_>) -> Result<(), SnapshotError> {
    if r.at_end() {
        Ok(())
    } else {
        Err(SnapshotError::TrailingBytes)
    }
}
