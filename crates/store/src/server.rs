//! The `sla-serve` request loop.
//!
//! A deliberately single-threaded accept loop: requests on one socket are
//! served in arrival order, and parallelism lives where it always lives —
//! inside the session, which shards fault searches across the `sla-par`
//! worker pool. That keeps the service inside the workspace determinism
//! contract (no `std::thread`/`std::sync` outside `crates/par`) and makes
//! the answer to any request independent of connection interleaving.
//!
//! One [`LearnedStore`] is opened at startup and shared across all requests
//! and connections, so the second request for a design skips learning
//! entirely. Cache failures never fail a request: a corrupt entry is logged
//! (full error chain) and repopulated from a fresh learning run.

use crate::proto::{self, Message, ProtoError, Request, Summary};
use crate::{error_chain, CacheOutcome, LearnedStore, Session};
use sla_netlist::parser::parse_bench;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;

/// Configuration of a [`serve`] loop.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Directory of the persistent learned-knowledge store.
    pub store_dir: PathBuf,
    /// Maximum number of cached learned databases.
    pub capacity: usize,
    /// Stop after this many requests (used by tests); `None` = run until a
    /// [`Message::Shutdown`] arrives.
    pub max_requests: Option<usize>,
}

/// What a connection asked the server to do next.
enum Flow {
    /// Keep accepting connections.
    Continue,
    /// Exit the serve loop cleanly.
    Stop,
}

/// Accepts connections on `listener` and serves requests until a
/// [`Message::Shutdown`] arrives or the request quota is exhausted.
/// Per-connection failures are logged and do not stop the loop.
pub fn serve(listener: TcpListener, options: &ServeOptions) -> std::io::Result<()> {
    let (mut store, reset) = LearnedStore::open_or_reset(&options.store_dir, options.capacity);
    if let Some(err) = reset {
        eprintln!(
            "sla-serve: store at {} reset to empty: {}",
            store.dir().display(),
            error_chain(&err)
        );
    }
    let mut served = 0usize;
    for conn in listener.incoming() {
        let stream = match conn {
            Ok(s) => s,
            Err(e) => {
                eprintln!("sla-serve: accept failed: {e}");
                continue;
            }
        };
        match handle_connection(&stream, &mut store, &mut served, options.max_requests) {
            Ok(Flow::Continue) => {}
            Ok(Flow::Stop) => return Ok(()),
            Err(e) => eprintln!("sla-serve: connection dropped: {e}"),
        }
        if let Some(max) = options.max_requests {
            if served >= max {
                return Ok(());
            }
        }
    }
    Ok(())
}

/// Serves one connection until the client hangs up or asks for shutdown.
fn handle_connection(
    stream: &TcpStream,
    store: &mut LearnedStore,
    served: &mut usize,
    max_requests: Option<usize>,
) -> std::io::Result<Flow> {
    let mut input = BufReader::new(stream);
    let mut output = BufWriter::new(stream);
    loop {
        let msg = match proto::read_message(&mut input) {
            Ok(Some(msg)) => msg,
            Ok(None) => return Ok(Flow::Continue),
            Err(ProtoError::Io(e)) => return Err(e),
            Err(e) => {
                // A malformed frame poisons the stream framing; answer with
                // the reason and drop the connection.
                eprintln!("sla-serve: bad frame: {}", error_chain(&e));
                let _ = proto::write_message(&mut output, &Message::Error(error_chain(&e)));
                return Ok(Flow::Continue);
            }
        };
        match msg {
            Message::Shutdown => {
                eprintln!("sla-serve: shutdown requested");
                return Ok(Flow::Stop);
            }
            Message::Request(req) => {
                handle_request(&req, store, &mut output)?;
                *served += 1;
                if let Some(max) = max_requests {
                    if *served >= max {
                        output.flush()?;
                        return Ok(Flow::Stop);
                    }
                }
            }
            other => {
                let text = format!("unexpected client message: {other:?}");
                eprintln!("sla-serve: {text}");
                proto::write_message(&mut output, &Message::Error(text))?;
            }
        }
    }
}

/// Runs one request through the session API, streaming verdicts in strict
/// fault order followed by the summary frame.
fn handle_request(
    req: &Request,
    store: &mut LearnedStore,
    output: &mut impl Write,
) -> std::io::Result<()> {
    let netlist = match parse_bench(&req.name, &req.bench) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("sla-serve: request '{}' rejected: {e}", req.name);
            return proto::write_message(output, &Message::Error(format!("bad netlist: {e}")));
        }
    };
    let faults = match proto::resolve_faults(&netlist, &req.faults) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("sla-serve: request '{}' rejected: {e}", req.name);
            return proto::write_message(output, &Message::Error(format!("bad fault list: {e}")));
        }
    };
    let mut session = Session::open(&netlist);
    let (cache, learn_work_units) = match &req.learn {
        None => (CacheOutcome::Uncached, 0),
        Some(opts) => match session.learn_cached(opts, store) {
            Ok(report) => {
                if let Some(store_err) = &report.store_error {
                    eprintln!(
                        "sla-serve: cache entry for '{}' rejected: {}",
                        req.name,
                        error_chain(store_err)
                    );
                }
                (report.outcome, report.work_units)
            }
            Err(e) => {
                eprintln!("sla-serve: learning for '{}' failed: {e}", req.name);
                return proto::write_message(
                    output,
                    &Message::Error(format!("learning failed: {e}")),
                );
            }
        },
    };
    eprintln!(
        "sla-serve: request '{}': {} faults, cache {:?}, {} learning work units",
        req.name,
        req.faults.len(),
        cache,
        learn_work_units
    );
    let mut stream_err: Option<std::io::Error> = None;
    let run = session.atpg_streaming(&req.atpg, &faults, |index, status| {
        if stream_err.is_none() {
            if let Err(e) = proto::write_message(
                output,
                &Message::Verdict {
                    index: index as u32,
                    status,
                },
            ) {
                stream_err = Some(e);
            }
        }
    });
    if let Some(e) = stream_err {
        return Err(e);
    }
    let run = match run {
        Ok(run) => run,
        Err(e) => {
            eprintln!("sla-serve: ATPG for '{}' failed: {e}", req.name);
            return proto::write_message(output, &Message::Error(format!("atpg failed: {e}")));
        }
    };
    proto::write_message(
        output,
        &Message::Done(Summary {
            total_faults: run.stats.total_faults as u32,
            detected: run.stats.detected as u32,
            untestable: run.stats.untestable as u32,
            aborted: run.stats.aborted as u32,
            backtracks: run.stats.backtracks as u64,
            decisions: run.stats.decisions as u64,
            sequences: run.stats.sequences as u32,
            test_vectors: run.stats.test_vectors as u64,
            budget_spent: run.stats.budget_spent,
            cache,
            learn_work_units,
        }),
    )
}
