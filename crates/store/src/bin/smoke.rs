//! `service-smoke`: end-to-end check of the `sla-serve` service layer.
//!
//! Runs the committed table5 cross-cell workload standalone through the
//! session API, then starts an `sla-serve` child on loopback with a fresh
//! store and sends the same workload twice over one connection:
//!
//! - request 1 must miss the cache, spend learning work and stream verdicts
//!   byte-identical to the standalone run;
//! - request 2 must hit the cache, spend **zero** learning work units and
//!   stream the same bytes again.
//!
//! Exits 0 when every check holds, 1 with a diagnostic otherwise. CI runs
//! this as the `service-smoke` job.

use sla_atpg::{AtpgOptions, FaultStatus, LearningMode};
use sla_circuits::{table5_circuit, Table5Config};
use sla_core::LearnOptions;
use sla_sim::collapsed_fault_list;
use sla_store::proto::{self, Message, Request, Summary};
use sla_store::{CacheOutcome, Session};
use std::io::{BufRead, BufReader, BufWriter};
use std::net::TcpStream;
use std::process::{Child, Command, ExitCode, Stdio};

fn main() -> ExitCode {
    match run() {
        Ok(report) => {
            println!("service-smoke ok: {report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("service-smoke: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Renders a verdict stream as comparable lines.
fn verdict_lines(verdicts: &[(u32, FaultStatus)]) -> String {
    let mut out = String::new();
    for (index, status) in verdicts {
        out.push_str(&format!("fault {index}: {status:?}\n"));
    }
    out
}

fn learn_options() -> LearnOptions {
    LearnOptions::builder().cross_frame(true).build()
}

fn atpg_options() -> AtpgOptions {
    AtpgOptions::builder()
        .backtrack_limit(100)
        .learning(LearningMode::ForbiddenValue)
        .build()
}

/// Sends one request and collects the streamed verdicts plus the summary.
fn roundtrip(
    input: &mut impl BufRead,
    output: &mut BufWriter<&TcpStream>,
    request: &Message,
) -> Result<(Vec<(u32, FaultStatus)>, Summary), String> {
    proto::write_message(output, request).map_err(|e| format!("request write failed: {e}"))?;
    let mut verdicts = Vec::new();
    loop {
        let msg = proto::read_message(input)
            .map_err(|e| format!("response read failed: {e}"))?
            .ok_or("server closed the connection mid-response")?;
        match msg {
            Message::Verdict { index, status } => verdicts.push((index, status)),
            Message::Done(summary) => return Ok((verdicts, summary)),
            Message::Error(text) => return Err(format!("server error: {text}")),
            other => return Err(format!("unexpected server message: {other:?}")),
        }
    }
}

/// Kills the child and reaps it; used on every early-exit path.
fn cleanup(mut child: Child, store_dir: &std::path::Path) {
    let _ = child.kill();
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(store_dir);
}

fn run() -> Result<String, String> {
    // The committed workload: the cross-cell table5 circuit, collapsed
    // faults, cross-frame learning, forbidden-value ATPG. The request is
    // built from the generator's netlist; the reference run executes the
    // *round-tripped* bench text and resolved fault specs — exactly the
    // bytes the server will execute — so any difference is the service
    // layer's fault, not the bench writer's declaration order.
    let source = table5_circuit(&Table5Config::with_cross_cells(4));
    let bench = sla_netlist::writer::write_bench(&source);
    let specs = proto::fault_specs(&source, &collapsed_fault_list(&source));
    let netlist = sla_netlist::parser::parse_bench(source.name(), &bench)
        .map_err(|e| format!("bench round trip failed: {e}"))?;
    let faults = proto::resolve_faults(&netlist, &specs)
        .map_err(|e| format!("fault resolution failed: {e}"))?;

    // Standalone reference run through the same session API the server uses.
    let mut session = Session::open(&netlist);
    session
        .learn(&learn_options())
        .map_err(|e| format!("standalone learning failed: {e}"))?;
    let standalone = session
        .atpg(&atpg_options(), &faults)
        .map_err(|e| format!("standalone ATPG failed: {e}"))?;
    let reference: Vec<(u32, FaultStatus)> = standalone
        .status
        .iter()
        .enumerate()
        .map(|(i, s)| (i as u32, *s))
        .collect();
    let reference_lines = verdict_lines(&reference);

    // Start the server with a fresh store next to nothing else.
    let serve_bin = std::env::current_exe()
        .map_err(|e| format!("current_exe failed: {e}"))?
        .with_file_name("sla-serve");
    let store_dir = std::env::temp_dir().join(format!("sla-store-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let mut child = Command::new(&serve_bin)
        .arg("--store")
        .arg(&store_dir)
        .arg("--port")
        .arg("0")
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawning {} failed: {e}", serve_bin.display()))?;
    let mut child_stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut banner = String::new();
    child_stdout
        .read_line(&mut banner)
        .map_err(|e| format!("reading server banner failed: {e}"))?;
    let addr = match banner.trim().strip_prefix("sla-serve listening on ") {
        Some(addr) => addr.to_string(),
        None => {
            cleanup(child, &store_dir);
            return Err(format!("unexpected server banner: {banner:?}"));
        }
    };

    let outcome = (|| {
        let stream =
            TcpStream::connect(&addr).map_err(|e| format!("connect {addr} failed: {e}"))?;
        let mut input = BufReader::new(&stream);
        let mut output = BufWriter::new(&stream);
        let request = Message::Request(Request {
            name: netlist.name().to_string(),
            bench: bench.clone(),
            faults: specs.clone(),
            learn: Some(learn_options()),
            atpg: atpg_options(),
        });

        let (verdicts1, done1) = roundtrip(&mut input, &mut output, &request)?;
        if done1.cache != CacheOutcome::Miss {
            return Err(format!(
                "request 1: expected a cache miss, got {:?}",
                done1.cache
            ));
        }
        if done1.learn_work_units == 0 {
            return Err("request 1: a cold run must spend learning work".to_string());
        }
        let lines1 = verdict_lines(&verdicts1);
        if lines1 != reference_lines {
            return Err(format!(
                "request 1 verdicts differ from standalone:\n--- standalone\n{reference_lines}--- served\n{lines1}"
            ));
        }

        let (verdicts2, done2) = roundtrip(&mut input, &mut output, &request)?;
        if done2.cache != CacheOutcome::Hit {
            return Err(format!(
                "request 2: expected a cache hit, got {:?}",
                done2.cache
            ));
        }
        if done2.learn_work_units != 0 {
            return Err(format!(
                "request 2: warm run spent {} learning work units, want 0",
                done2.learn_work_units
            ));
        }
        let lines2 = verdict_lines(&verdicts2);
        if lines2 != reference_lines {
            return Err(format!(
                "request 2 verdicts differ from standalone:\n--- standalone\n{reference_lines}--- served\n{lines2}"
            ));
        }
        if done2.backtracks != done1.backtracks || done2.decisions != done1.decisions {
            return Err(format!(
                "summaries diverged between requests: {done1:?} vs {done2:?}"
            ));
        }

        proto::write_message(&mut output, &Message::Shutdown)
            .map_err(|e| format!("shutdown write failed: {e}"))?;
        Ok((verdicts1.len(), done1))
    })();

    let (num_verdicts, done1) = match outcome {
        Ok(v) => v,
        Err(e) => {
            cleanup(child, &store_dir);
            return Err(e);
        }
    };

    let status = child
        .wait()
        .map_err(|e| format!("waiting for server failed: {e}"))?;
    let _ = std::fs::remove_dir_all(&store_dir);
    if !status.success() {
        return Err(format!("server exited with {status}"));
    }
    Ok(format!(
        "{num_verdicts} verdicts byte-identical across standalone and two served requests; \
         cold miss spent {} learning work units, warm hit spent 0",
        done1.learn_work_units
    ))
}
