//! `sla-serve`: the long-running ATPG service.
//!
//! Usage: `sla-serve [--store DIR] [--port N] [--capacity N]
//! [--max-requests N]`.
//!
//! Binds a loopback listener (port 0 = ephemeral), prints a single
//! `sla-serve listening on 127.0.0.1:PORT` line on stdout so a parent
//! process can scrape the address, then serves framed requests (see
//! `sla_store::proto`) until a shutdown frame arrives. All diagnostics go
//! to stderr; stdout carries only the address line.
//!
//! Worker parallelism comes from the session layer (`SLA_THREADS`); the
//! accept loop itself is single-threaded by design.

use sla_store::server::{serve, ServeOptions};
use std::io::Write;
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut store_dir: Option<PathBuf> = None;
    let mut port: u16 = 0;
    let mut capacity: usize = 64;
    let mut max_requests: Option<usize> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        let parsed = match arg.as_str() {
            "--store" => value("--store").map(|v| store_dir = Some(PathBuf::from(v))),
            "--port" => value("--port").and_then(|v| {
                v.parse()
                    .map(|p| port = p)
                    .map_err(|e| format!("--port: {e}"))
            }),
            "--capacity" => value("--capacity").and_then(|v| {
                v.parse()
                    .map(|c| capacity = c)
                    .map_err(|e| format!("--capacity: {e}"))
            }),
            "--max-requests" => value("--max-requests").and_then(|v| {
                v.parse()
                    .map(|m| max_requests = Some(m))
                    .map_err(|e| format!("--max-requests: {e}"))
            }),
            other => Err(format!("unknown argument '{other}'")),
        };
        if let Err(e) = parsed {
            eprintln!("sla-serve: {e}");
            eprintln!(
                "usage: sla-serve [--store DIR] [--port N] [--capacity N] [--max-requests N]"
            );
            return ExitCode::FAILURE;
        }
    }

    let store_dir = store_dir
        .unwrap_or_else(|| std::env::temp_dir().join(format!("sla-store-{}", std::process::id())));

    let listener = match TcpListener::bind(("127.0.0.1", port)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("sla-serve: bind 127.0.0.1:{port} failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = match listener.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("sla-serve: local_addr failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("sla-serve listening on {addr}");
    let _ = std::io::stdout().flush();
    eprintln!(
        "sla-serve: store {} (capacity {capacity}), {} worker threads",
        store_dir.display(),
        sla_par::thread_count()
    );

    let options = ServeOptions {
        store_dir,
        capacity,
        max_requests,
    };
    match serve(listener, &options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sla-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
