//! The framed wire protocol `sla-serve` speaks.
//!
//! Every message is a `u32` little-endian length prefix followed by a sealed
//! codec frame: 4-byte magic `SLAF`, `u32` version, a one-byte message tag,
//! the body and the trailing checksum. The body serializes the same public
//! types the in-process API uses — [`LearnOptions`], [`AtpgOptions`],
//! [`FaultStatus`] — so the wire protocol is exactly the session API with
//! bytes instead of references. The one translation: faults travel as
//! [`FaultSpec`]s, which name their site by *node name* rather than node
//! id. Node ids are arena indices and are not stable across a
//! `.bench` round trip (the writer groups declarations by kind); names
//! are the identity the bench format itself uses, so the server resolves
//! them against its parsed netlist and a bad name is a typed error frame,
//! never a panic. Thread-variant diagnostics
//! (wall-clock times, wasted speculations) are deliberately absent: two
//! servers answering the same request send identical bytes.
//!
//! A conversation: the client sends [`Message::Request`]; the server streams
//! one [`Message::Verdict`] per fault in strict fault order, then one
//! [`Message::Done`] summary. Malformed requests get [`Message::Error`].
//! [`Message::Shutdown`] asks the server process to exit cleanly.

use sla_atpg::{AbortReason, AtpgOptions, FaultStatus};
use sla_core::{LearnOptions, WorkBudget};
use sla_netlist::{Netlist, NetlistError};
use sla_sim::{Fault, FaultSite};
use sla_snapshot::codec::{self, Reader, Writer};
use sla_snapshot::SnapshotError;
use std::fmt;
use std::io::{Read, Write};

use crate::CacheOutcome;

/// Magic of every wire frame.
const MAGIC: &[u8; 4] = b"SLAF";
/// Wire protocol version.
const PROTO_VERSION: u32 = 1;
/// Upper bound on a single frame, defending the length prefix against
/// garbage: a million-gate bench text stays well under this.
const MAX_FRAME: u32 = 256 * 1024 * 1024;

const TAG_REQUEST: u8 = 1;
const TAG_VERDICT: u8 = 2;
const TAG_DONE: u8 = 3;
const TAG_ERROR: u8 = 4;
const TAG_SHUTDOWN: u8 = 5;

/// A stuck-at fault named by its site, the wire form of [`Fault`].
///
/// Node ids are positions in the sender's arena and mean nothing to a
/// receiver that re-parsed the netlist from text; node *names* are the
/// stable identity. [`FaultSpec::from_fault`] translates outgoing faults,
/// [`FaultSpec::resolve`] translates incoming ones (with bounds checks, so
/// a hostile spec is an error, not a panic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSpec {
    /// Stuck-at on the output line of the named node.
    Output {
        /// Node name.
        node: String,
        /// Stuck-at value.
        stuck_at: bool,
    },
    /// Stuck-at on input pin `pin` of the named gate.
    Input {
        /// Gate name.
        gate: String,
        /// Zero-based fanin position.
        pin: u32,
        /// Stuck-at value.
        stuck_at: bool,
    },
}

impl FaultSpec {
    /// The wire form of `fault`, naming its site via `netlist`.
    pub fn from_fault(netlist: &Netlist, fault: &Fault) -> FaultSpec {
        match fault.site {
            FaultSite::Output(node) => FaultSpec::Output {
                node: netlist.node(node).name.to_string(),
                stuck_at: fault.stuck_at,
            },
            FaultSite::Input { gate, pin } => FaultSpec::Input {
                gate: netlist.node(gate).name.to_string(),
                pin: pin as u32,
                stuck_at: fault.stuck_at,
            },
        }
    }

    /// Resolves the named site against `netlist`. Unknown names and
    /// out-of-range pins are errors.
    pub fn resolve(&self, netlist: &Netlist) -> Result<Fault, NetlistError> {
        match self {
            FaultSpec::Output { node, stuck_at } => {
                Ok(Fault::output(netlist.require(node)?, *stuck_at))
            }
            FaultSpec::Input {
                gate,
                pin,
                stuck_at,
            } => {
                let id = netlist.require(gate)?;
                let arity = netlist.fanins(id).len();
                if *pin as usize >= arity {
                    return Err(NetlistError::Invalid(format!(
                        "fault pin {pin} out of range for '{gate}' (arity {arity})"
                    )));
                }
                Ok(Fault::input(id, *pin as usize, *stuck_at))
            }
        }
    }
}

/// Translates a whole fault list into wire form, preserving order.
pub fn fault_specs(netlist: &Netlist, faults: &[Fault]) -> Vec<FaultSpec> {
    faults
        .iter()
        .map(|f| FaultSpec::from_fault(netlist, f))
        .collect()
}

/// Resolves a whole wire fault list, preserving order.
pub fn resolve_faults(netlist: &Netlist, specs: &[FaultSpec]) -> Result<Vec<Fault>, NetlistError> {
    specs.iter().map(|s| s.resolve(netlist)).collect()
}

/// One unit of work for the server: a netlist (as `.bench` text), the
/// faults to target and the session configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Design name (used for the parsed netlist and in server logs).
    pub name: String,
    /// The netlist in ISCAS-89 `.bench` syntax
    /// ([`sla_netlist::writer::write_bench`] emits it, the server parses
    /// it back).
    pub bench: String,
    /// Target faults by site name, in the order verdicts will be streamed.
    pub faults: Vec<FaultSpec>,
    /// Learning configuration; `None` runs ATPG without learning.
    pub learn: Option<LearnOptions>,
    /// Test generation configuration.
    pub atpg: AtpgOptions,
}

/// End-of-request summary: the deterministic slice of
/// [`sla_atpg::AtpgStats`] plus what the knowledge cache did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Summary {
    /// Number of target faults.
    pub total_faults: u32,
    /// Faults detected.
    pub detected: u32,
    /// Faults proven untestable.
    pub untestable: u32,
    /// Faults aborted.
    pub aborted: u32,
    /// Total backtracks of merged searches.
    pub backtracks: u64,
    /// Total decisions of merged searches.
    pub decisions: u64,
    /// Validated test sequences generated.
    pub sequences: u32,
    /// Total test vectors across all sequences.
    pub test_vectors: u64,
    /// ATPG work units charged against the budget.
    pub budget_spent: u64,
    /// Whether learning hit the persistent cache.
    pub cache: CacheOutcome,
    /// Learning work units spent (zero on a cache hit).
    pub learn_work_units: u64,
}

/// A protocol message, either direction.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Client → server: run this workload.
    Request(Request),
    /// Server → client: the verdict for one fault, in strict fault order.
    Verdict {
        /// Index into the request's fault list.
        index: u32,
        /// Final classification.
        status: FaultStatus,
    },
    /// Server → client: the request completed; summary statistics.
    Done(Summary),
    /// Server → client: the request could not be served.
    Error(String),
    /// Client → server: finish up and exit.
    Shutdown,
}

/// Why a message could not be read.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying stream failed (including unexpected EOF mid-frame).
    Io(std::io::Error),
    /// The frame length prefix exceeds [`MAX_FRAME`].
    Oversize(u32),
    /// The frame bytes failed to decode.
    Frame(SnapshotError),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Io(_) => write!(f, "wire read failed"),
            ProtoError::Oversize(n) => write!(f, "frame length {n} exceeds limit {MAX_FRAME}"),
            ProtoError::Frame(_) => write!(f, "wire frame failed to decode"),
        }
    }
}

impl std::error::Error for ProtoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtoError::Io(e) => Some(e),
            ProtoError::Oversize(_) => None,
            ProtoError::Frame(e) => Some(e),
        }
    }
}

impl From<SnapshotError> for ProtoError {
    fn from(e: SnapshotError) -> ProtoError {
        ProtoError::Frame(e)
    }
}

/// Serializes `msg` as a sealed frame (without the length prefix).
pub fn encode_message(msg: &Message) -> Vec<u8> {
    let mut w = Writer::new();
    w.bytes_raw(MAGIC);
    w.u32(PROTO_VERSION);
    match msg {
        Message::Request(req) => {
            w.u8(TAG_REQUEST);
            w.str(&req.name);
            w.str(&req.bench);
            w.u32(req.faults.len() as u32);
            for spec in &req.faults {
                match spec {
                    FaultSpec::Output { node, stuck_at } => {
                        w.u8(0);
                        w.str(node);
                        w.u8(*stuck_at as u8);
                    }
                    FaultSpec::Input {
                        gate,
                        pin,
                        stuck_at,
                    } => {
                        w.u8(1);
                        w.str(gate);
                        w.u32(*pin);
                        w.u8(*stuck_at as u8);
                    }
                }
            }
            match &req.learn {
                None => w.u8(0),
                Some(opts) => {
                    w.u8(1);
                    write_learn_options(&mut w, opts);
                }
            }
            codec::write_atpg_options(&mut w, &req.atpg);
        }
        Message::Verdict { index, status } => {
            w.u8(TAG_VERDICT);
            w.u32(*index);
            w.u8(encode_status(*status));
        }
        Message::Done(s) => {
            w.u8(TAG_DONE);
            w.u32(s.total_faults);
            w.u32(s.detected);
            w.u32(s.untestable);
            w.u32(s.aborted);
            w.u64(s.backtracks);
            w.u64(s.decisions);
            w.u32(s.sequences);
            w.u64(s.test_vectors);
            w.u64(s.budget_spent);
            w.u8(match s.cache {
                CacheOutcome::Uncached => 0,
                CacheOutcome::Hit => 1,
                CacheOutcome::Miss => 2,
            });
            w.u64(s.learn_work_units);
        }
        Message::Error(text) => {
            w.u8(TAG_ERROR);
            w.str(text);
        }
        Message::Shutdown => {
            w.u8(TAG_SHUTDOWN);
        }
    }
    w.seal()
}

/// Decodes one sealed frame.
pub fn decode_message(bytes: &[u8]) -> Result<Message, SnapshotError> {
    let mut r = codec::check_frame(bytes, MAGIC, PROTO_VERSION)?;
    let msg = match r.u8()? {
        TAG_REQUEST => {
            let name = r.str()?;
            let bench = r.str()?;
            let count = r.count()?;
            let mut faults = Vec::with_capacity(count);
            for _ in 0..count {
                faults.push(match r.u8()? {
                    0 => FaultSpec::Output {
                        node: r.str()?,
                        stuck_at: r.bool()?,
                    },
                    1 => FaultSpec::Input {
                        gate: r.str()?,
                        pin: r.u32()?,
                        stuck_at: r.bool()?,
                    },
                    _ => return Err(SnapshotError::Corrupt("fault site")),
                });
            }
            let learn = match r.u8()? {
                0 => None,
                1 => Some(read_learn_options(&mut r)?),
                _ => return Err(SnapshotError::Corrupt("learn flag")),
            };
            let atpg = codec::read_atpg_options(&mut r)?;
            Message::Request(Request {
                name,
                bench,
                faults,
                learn,
                atpg,
            })
        }
        TAG_VERDICT => Message::Verdict {
            index: r.u32()?,
            status: decode_status(r.u8()?)?,
        },
        TAG_DONE => Message::Done(Summary {
            total_faults: r.u32()?,
            detected: r.u32()?,
            untestable: r.u32()?,
            aborted: r.u32()?,
            backtracks: r.u64()?,
            decisions: r.u64()?,
            sequences: r.u32()?,
            test_vectors: r.u64()?,
            budget_spent: r.u64()?,
            cache: match r.u8()? {
                0 => CacheOutcome::Uncached,
                1 => CacheOutcome::Hit,
                2 => CacheOutcome::Miss,
                _ => return Err(SnapshotError::Corrupt("cache outcome")),
            },
            learn_work_units: r.u64()?,
        }),
        TAG_ERROR => Message::Error(r.str()?),
        TAG_SHUTDOWN => Message::Shutdown,
        _ => return Err(SnapshotError::Corrupt("message tag")),
    };
    if !r.at_end() {
        return Err(SnapshotError::TrailingBytes);
    }
    Ok(msg)
}

/// Writes `msg` to `out` with its length prefix and flushes.
pub fn write_message(out: &mut impl Write, msg: &Message) -> std::io::Result<()> {
    let frame = encode_message(msg);
    out.write_all(&(frame.len() as u32).to_le_bytes())?;
    out.write_all(&frame)?;
    out.flush()
}

/// Reads one message, blocking. EOF before a length prefix is a clean end
/// of conversation (`Ok(None)`); EOF mid-frame is an error.
pub fn read_message(input: &mut impl Read) -> Result<Option<Message>, ProtoError> {
    let mut prefix = [0u8; 4];
    match input.read_exact(&mut prefix) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(ProtoError::Io(e)),
    }
    let len = u32::from_le_bytes(prefix);
    if len > MAX_FRAME {
        return Err(ProtoError::Oversize(len));
    }
    let mut frame = vec![0u8; len as usize];
    input.read_exact(&mut frame).map_err(ProtoError::Io)?;
    Ok(Some(decode_message(&frame)?))
}

fn encode_status(status: FaultStatus) -> u8 {
    match status {
        FaultStatus::Detected => 0,
        FaultStatus::Untestable => 1,
        FaultStatus::Aborted(AbortReason::Limit) => 2,
        FaultStatus::Aborted(AbortReason::Budget) => 3,
        FaultStatus::Aborted(AbortReason::Panic) => 4,
    }
}

fn decode_status(tag: u8) -> Result<FaultStatus, SnapshotError> {
    Ok(match tag {
        0 => FaultStatus::Detected,
        1 => FaultStatus::Untestable,
        2 => FaultStatus::Aborted(AbortReason::Limit),
        3 => FaultStatus::Aborted(AbortReason::Budget),
        4 => FaultStatus::Aborted(AbortReason::Panic),
        _ => return Err(SnapshotError::Corrupt("fault status")),
    })
}

fn write_learn_options(w: &mut Writer, opts: &LearnOptions) {
    w.u64(opts.max_frames as u64);
    w.u8(opts.multiple_node as u8);
    w.u8(opts.gate_equivalence as u8);
    w.u8(opts.partition_by_clock_class as u8);
    w.u8(opts.respect_seq_rules as u8);
    w.u8(opts.learn_cross_frame as u8);
    w.u64(opts.closure_limit as u64);
    w.u64(opts.equiv_config.random_words as u64);
    w.u64(opts.equiv_config.seed);
    w.u64(opts.equiv_config.exhaustive_input_limit as u64);
    w.u64(opts.max_multi_node_targets as u64);
    w.u64(opts.budget.limit());
}

fn read_learn_options(r: &mut Reader<'_>) -> Result<LearnOptions, SnapshotError> {
    let max_frames = r.u64()? as usize;
    let multiple_node = r.bool()?;
    let gate_equivalence = r.bool()?;
    let partition_by_clock_class = r.bool()?;
    let respect_seq_rules = r.bool()?;
    let learn_cross_frame = r.bool()?;
    let closure_limit = r.u64()? as usize;
    let equiv_config = sla_sim::EquivConfig {
        random_words: r.u64()? as usize,
        seed: r.u64()?,
        exhaustive_input_limit: r.u64()? as usize,
    };
    let max_multi_node_targets = r.u64()? as usize;
    let limit = r.u64()?;
    let budget = if limit == u64::MAX {
        WorkBudget::unlimited()
    } else {
        WorkBudget::units(limit)
    };
    Ok(LearnOptions::builder()
        .max_frames(max_frames)
        .multiple_node(multiple_node)
        .gate_equivalence(gate_equivalence)
        .partition_by_clock_class(partition_by_clock_class)
        .respect_seq_rules(respect_seq_rules)
        .cross_frame(learn_cross_frame)
        .closure_limit(closure_limit)
        .equiv_config(equiv_config)
        .max_multi_node_targets(max_multi_node_targets)
        .budget(budget)
        .build())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: &Message) -> Message {
        let mut buf = Vec::new();
        write_message(&mut buf, msg).expect("write to vec");
        let mut cursor = buf.as_slice();
        let back = read_message(&mut cursor)
            .expect("decode")
            .expect("one message");
        assert!(cursor.is_empty(), "no trailing bytes after one message");
        back
    }

    #[test]
    fn request_round_trips() {
        let msg = Message::Request(Request {
            name: "s27".to_string(),
            bench: "INPUT(a)\nOUTPUT(b)\nb = NOT(a)\n".to_string(),
            faults: vec![
                FaultSpec::Output {
                    node: "a".to_string(),
                    stuck_at: true,
                },
                FaultSpec::Input {
                    gate: "b".to_string(),
                    pin: 0,
                    stuck_at: false,
                },
            ],
            learn: Some(LearnOptions::builder().cross_frame(true).build()),
            atpg: AtpgOptions::builder().backtrack_limit(7).build(),
        });
        assert_eq!(round_trip(&msg), msg);

        let no_learn = Message::Request(Request {
            name: String::new(),
            bench: String::new(),
            faults: Vec::new(),
            learn: None,
            atpg: AtpgOptions::default(),
        });
        assert_eq!(round_trip(&no_learn), no_learn);
    }

    #[test]
    fn verdict_done_error_round_trip() {
        for status in [
            FaultStatus::Detected,
            FaultStatus::Untestable,
            FaultStatus::Aborted(AbortReason::Limit),
            FaultStatus::Aborted(AbortReason::Budget),
            FaultStatus::Aborted(AbortReason::Panic),
        ] {
            let msg = Message::Verdict { index: 42, status };
            assert_eq!(round_trip(&msg), msg);
        }
        let done = Message::Done(Summary {
            total_faults: 10,
            detected: 7,
            untestable: 2,
            aborted: 1,
            backtracks: 100,
            decisions: 2000,
            sequences: 7,
            test_vectors: 31,
            budget_spent: 2100,
            cache: CacheOutcome::Hit,
            learn_work_units: 0,
        });
        assert_eq!(round_trip(&done), done);
        assert_eq!(
            round_trip(&Message::Error("bad".to_string())),
            Message::Error("bad".to_string())
        );
        assert_eq!(round_trip(&Message::Shutdown), Message::Shutdown);
    }

    #[test]
    fn corrupt_frames_are_typed_errors() {
        let mut frame = encode_message(&Message::Shutdown);
        let last = frame.len() - 1;
        frame[last] ^= 1;
        assert!(matches!(
            decode_message(&frame),
            Err(SnapshotError::ChecksumMismatch)
        ));

        let mut buf = Vec::new();
        write_message(&mut buf, &Message::Shutdown).expect("write");
        buf.truncate(6);
        let mut cursor = buf.as_slice();
        assert!(matches!(
            read_message(&mut cursor),
            Err(ProtoError::Io(_)) // EOF mid-frame
        ));

        let mut empty: &[u8] = &[];
        assert!(matches!(read_message(&mut empty), Ok(None)));

        let oversize = (MAX_FRAME + 1).to_le_bytes();
        let mut cursor: &[u8] = &oversize;
        assert!(matches!(
            read_message(&mut cursor),
            Err(ProtoError::Oversize(_))
        ));
    }
}
