//! The unified session API: open a netlist, learn (with or without the
//! persistent cache), generate tests, stream verdicts.
//!
//! Every front end — the example binaries, the tests and the `sla-serve`
//! service — speaks this one surface, so a request over the wire and a
//! direct library call run exactly the same code path and produce
//! bit-identical results.

use crate::{LearnedStore, StoreError, StoreKey};
use sla_atpg::{AtpgEngine, AtpgOptions, AtpgRun, FaultStatus, LearnedData};
use sla_core::{LearnOptions, SequentialLearner};
use sla_netlist::{Netlist, NetlistError};
use sla_sim::Fault;

/// How many faults each streaming stride merges before verdicts are
/// emitted. Strides only batch the emission; they cannot change the
/// verdicts, which are a pure function of the merged fault prefix.
const STREAM_STRIDE: usize = 32;

/// Where a [`Session::learn_cached`] result came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The learned database was read from the store; no learning ran.
    Hit,
    /// The database was learned fresh (and written back to the store).
    Miss,
    /// Learning ran without a store ([`Session::learn`]).
    Uncached,
}

/// Outcome of a learning step, whatever its source.
#[derive(Debug)]
pub struct LearnReport {
    /// Cache hit, miss, or uncached run.
    pub outcome: CacheOutcome,
    /// Learning work units actually spent (stem injections plus
    /// multiple-node targets). Zero on a cache hit — the acceptance metric
    /// for the warm path.
    pub work_units: u64,
    /// Same-frame implications in the learned database.
    pub implications: usize,
    /// Cross-frame relations (deduplicated).
    pub cross_frame: usize,
    /// Gates tied to constants.
    pub tied: usize,
    /// Why the store could not serve this key, when lookup failed on a
    /// present-but-bad entry. The session treats that as a miss and
    /// repopulates; the error is kept so servers can log the cause chain.
    pub store_error: Option<StoreError>,
}

/// A unit of ATPG work on one netlist: learn once, run ATPG any number of
/// times, all under one thread setting.
#[derive(Debug)]
pub struct Session<'a> {
    netlist: &'a Netlist,
    threads: usize,
    learned: LearnedData,
    report: Option<LearnReport>,
}

impl<'a> Session<'a> {
    /// Opens a session on `netlist` with the environment's thread count
    /// (`SLA_THREADS`, default single-threaded).
    pub fn open(netlist: &'a Netlist) -> Session<'a> {
        Session {
            netlist,
            threads: sla_par::thread_count(),
            learned: LearnedData::new(),
            report: None,
        }
    }

    /// Overrides the worker thread count. Results are bit-identical for
    /// every value; this only changes wall-clock time.
    pub fn with_threads(mut self, threads: usize) -> Session<'a> {
        self.threads = threads.max(1);
        self
    }

    /// The netlist this session operates on.
    pub fn netlist(&self) -> &'a Netlist {
        self.netlist
    }

    /// The session's worker thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The learned database the next [`Session::atpg`] call will use.
    /// Empty until a `learn` step runs.
    pub fn learned(&self) -> &LearnedData {
        &self.learned
    }

    /// The report of the last learning step, if one ran.
    pub fn learn_report(&self) -> Option<&LearnReport> {
        self.report.as_ref()
    }

    /// Runs sequential learning on the session netlist and keeps the result
    /// for subsequent ATPG calls.
    pub fn learn(&mut self, options: &LearnOptions) -> Result<&LearnReport, NetlistError> {
        let result = SequentialLearner::new(self.netlist, options.clone())
            .learn_with_threads(self.threads)?;
        self.learned = LearnedData::from_learn_result(&result);
        Ok(self.install_report(CacheOutcome::Uncached, result.stats.budget_spent, None))
    }

    /// Lookup-before-learn: serves the learned database from `store` when a
    /// valid entry exists for (netlist, options), otherwise learns fresh and
    /// writes the result back. A present-but-corrupt entry is treated as a
    /// miss and repopulated; the typed error lands in
    /// [`LearnReport::store_error`].
    pub fn learn_cached(
        &mut self,
        options: &LearnOptions,
        store: &mut LearnedStore,
    ) -> Result<&LearnReport, NetlistError> {
        let key = StoreKey::new(self.netlist, options);
        let lookup_err = match store.lookup(&key) {
            Ok(Some(learned)) => {
                self.learned = learned;
                return Ok(self.install_report(CacheOutcome::Hit, 0, None));
            }
            Ok(None) => None,
            Err(e) => Some(e),
        };
        let result = SequentialLearner::new(self.netlist, options.clone())
            .learn_with_threads(self.threads)?;
        self.learned = LearnedData::from_learn_result(&result);
        // A failed write-back degrades future requests to cold runs but must
        // not fail this one; surface it through the report instead.
        let store_error = match store.insert(key, &self.learned) {
            Ok(()) => lookup_err,
            Err(e) => Some(e),
        };
        Ok(self.install_report(CacheOutcome::Miss, result.stats.budget_spent, store_error))
    }

    fn install_report(
        &mut self,
        outcome: CacheOutcome,
        work_units: u64,
        store_error: Option<StoreError>,
    ) -> &LearnReport {
        self.report = Some(LearnReport {
            outcome,
            work_units,
            implications: self.learned.implications().len(),
            cross_frame: self.learned.cross_frame().len(),
            tied: self.learned.tied().len(),
            store_error,
        });
        self.report.as_ref().expect("just installed")
    }

    /// Runs ATPG over `faults` with the session's learned database.
    pub fn atpg(&self, options: &AtpgOptions, faults: &[Fault]) -> Result<AtpgRun, NetlistError> {
        let engine = AtpgEngine::new(self.netlist, *options)?.with_learned(self.learned.clone());
        Ok(engine.run_with_threads(faults, self.threads))
    }

    /// Like [`Session::atpg`], but emits `(fault index, verdict)` pairs in
    /// strict fault order as prefixes of the run are merged, before the
    /// final [`AtpgRun`] is returned. Verdicts are identical to the batch
    /// run at every thread count; only the emission is incremental.
    pub fn atpg_streaming(
        &self,
        options: &AtpgOptions,
        faults: &[Fault],
        mut sink: impl FnMut(usize, FaultStatus),
    ) -> Result<AtpgRun, NetlistError> {
        let start = sla_netlist::wallclock::now();
        let engine = AtpgEngine::new(self.netlist, *options)?.with_learned(self.learned.clone());
        let mut progress = engine.start(faults);
        let mut emitted = 0;
        while progress.next_fault() < faults.len() {
            let before = progress.next_fault();
            engine.advance(
                faults,
                self.threads,
                &mut progress,
                Some(before + STREAM_STRIDE),
            );
            let after = progress.next_fault();
            for i in emitted..after {
                sink(
                    i,
                    progress.status()[i].expect("merged prefix is classified"),
                );
            }
            emitted = after;
            if after == before {
                // The work budget ran out; `finish` classifies the tail.
                break;
            }
        }
        let mut run = engine.finish(progress);
        run.stats.cpu = start.elapsed();
        for (i, status) in run.status.iter().enumerate().skip(emitted) {
            sink(i, *status);
        }
        Ok(run)
    }
}
