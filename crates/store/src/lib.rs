//! Persistent learned-knowledge store and the unified ATPG session API.
//!
//! The paper's learning pass is a preprocessing step: its output (the
//! implication database, tied gates and cross-frame relations) is a pure
//! function of the netlist structure and the learning configuration. This
//! crate caches that output on disk so repeated runs on the same circuit —
//! regression loops, the `sla-serve` service answering many requests for one
//! design — skip learning entirely and still produce bit-identical ATPG
//! results.
//!
//! Three layers:
//!
//! - [`LearnedStore`]: the on-disk cache. Entries are keyed by
//!   [`StoreKey`] (structural netlist hash + learning-config hash), framed
//!   with the `sla-snapshot` codec (magic, version, checksum; typed decode
//!   errors, never a panic on corrupt bytes), and kept in insertion order
//!   with FIFO eviction at capacity.
//! - [`Session`]: the unified front door —
//!   `Session::open(&netlist).learn(..)` then `.atpg(..)`, with
//!   [`Session::learn_cached`] doing lookup-before-learn against a store.
//! - [`proto`]/[`server`]: a framed request/response protocol over TCP and
//!   the single-threaded `sla-serve` accept loop that shares one store
//!   across requests. The wire protocol serializes the same public types the
//!   in-process API speaks.
//!
//! Determinism contract: a warm-cache run is bit-identical to a cold run at
//! every `SLA_THREADS` (the cached database round-trips in canonical
//! insertion order, and the ATPG engine is deterministic given the same
//! learned data). The only run-to-run variant fields — wall-clock times and
//! `wasted_speculations` — are excluded from the wire protocol.

mod session;
mod store;

pub mod proto;
pub mod server;

pub use session::{CacheOutcome, LearnReport, Session};
pub use store::LearnedStore;

use sla_core::LearnOptions;
use sla_netlist::Netlist;
use sla_snapshot::SnapshotError;
use std::fmt;
use std::hash::Hasher;
use std::path::PathBuf;

/// Cache key of a learned database: the structural netlist hash plus a hash
/// of every learning knob that influences the learned output.
///
/// Two netlists with the same structure and the same learning configuration
/// produce the same learned database (learning is deterministic), so a key
/// match makes the cached entry a sound substitute for a fresh run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StoreKey {
    /// [`Netlist::structural_hash`] of the design.
    pub netlist_hash: u64,
    /// Hash over all [`LearnOptions`] fields (including the equivalence
    /// detection configuration and the budget limit).
    pub config_hash: u64,
}

impl StoreKey {
    /// The key for learning `netlist` under `options`.
    pub fn new(netlist: &Netlist, options: &LearnOptions) -> StoreKey {
        StoreKey {
            netlist_hash: netlist.structural_hash(),
            config_hash: Self::config_hash(options),
        }
    }

    /// Hashes every learning knob. Any field that can change the learned
    /// output must be included, otherwise a stale entry could be returned
    /// for a different configuration.
    pub fn config_hash(options: &LearnOptions) -> u64 {
        let mut h = sla_netlist::FastHasher::default();
        h.write_u64(options.max_frames as u64);
        h.write_u8(options.multiple_node as u8);
        h.write_u8(options.gate_equivalence as u8);
        h.write_u8(options.partition_by_clock_class as u8);
        h.write_u8(options.respect_seq_rules as u8);
        h.write_u8(options.learn_cross_frame as u8);
        h.write_u64(options.closure_limit as u64);
        h.write_u64(options.equiv_config.random_words as u64);
        h.write_u64(options.equiv_config.seed);
        h.write_u64(options.equiv_config.exhaustive_input_limit as u64);
        h.write_u64(options.max_multi_node_targets as u64);
        h.write_u64(options.budget.limit());
        h.finish()
    }
}

impl fmt::Display for StoreKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}-{:016x}", self.netlist_hash, self.config_hash)
    }
}

/// Why a store operation failed. Every variant keeps its cause so callers
/// (the server in particular) can log the full chain via
/// [`std::error::Error::source`] — see [`error_chain`].
#[derive(Debug)]
pub enum StoreError {
    /// A filesystem operation failed.
    Io {
        /// What the store was doing (`"create"`, `"read"`, `"write"`, ...).
        op: &'static str,
        /// File or directory the operation targeted.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A stored frame failed to decode (bad magic, version mismatch,
    /// checksum mismatch, truncation, out-of-range field).
    Codec {
        /// File whose bytes were rejected.
        path: PathBuf,
        /// The typed decode error from the snapshot codec.
        source: SnapshotError,
    },
    /// An entry file decoded cleanly but echoes a different key than its
    /// index slot claims — the index and the entry disagree.
    KeyMismatch {
        /// File whose key echo was wrong.
        path: PathBuf,
        /// Key the index expected.
        expected: StoreKey,
        /// Key the entry file carries.
        found: StoreKey,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, path, .. } => {
                write!(f, "store {op} failed for {}", path.display())
            }
            StoreError::Codec { path, .. } => {
                write!(f, "store entry {} failed to decode", path.display())
            }
            StoreError::KeyMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "store entry {} echoes key {found}, index expected {expected}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Codec { source, .. } => Some(source),
            StoreError::KeyMismatch { .. } => None,
        }
    }
}

/// Renders an error and its full `source` chain as a single line
/// (`error: cause: root cause`), the form the server logs.
pub fn error_chain(err: &dyn std::error::Error) -> String {
    let mut out = err.to_string();
    let mut cur = err.source();
    while let Some(e) = cur {
        out.push_str(": ");
        out.push_str(&e.to_string());
        cur = e.source();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_hash_covers_every_knob() {
        use sla_core::WorkBudget;
        let base = LearnOptions::default();
        let variants = [
            LearnOptions::builder().max_frames(7).build(),
            LearnOptions::builder().multiple_node(false).build(),
            LearnOptions::builder().gate_equivalence(false).build(),
            LearnOptions::builder()
                .partition_by_clock_class(false)
                .build(),
            LearnOptions::builder().respect_seq_rules(false).build(),
            LearnOptions::builder().cross_frame(true).build(),
            LearnOptions::builder().closure_limit(10).build(),
            LearnOptions::builder()
                .equiv_config(sla_sim::EquivConfig {
                    random_words: 3,
                    ..Default::default()
                })
                .build(),
            LearnOptions::builder().max_multi_node_targets(5).build(),
            LearnOptions::builder()
                .budget(WorkBudget::units(100))
                .build(),
        ];
        let base_hash = StoreKey::config_hash(&base);
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(
                StoreKey::config_hash(v),
                base_hash,
                "variant {i} must change the config hash"
            );
        }
        assert_eq!(
            StoreKey::config_hash(&base),
            StoreKey::config_hash(&LearnOptions::default()),
            "hash is deterministic"
        );
    }

    #[test]
    fn error_chain_reports_sources() {
        let err = StoreError::Codec {
            path: PathBuf::from("/tmp/x"),
            source: SnapshotError::ChecksumMismatch,
        };
        let chain = error_chain(&err);
        assert!(chain.contains("failed to decode"), "{chain}");
        assert!(chain.contains("checksum"), "{chain}");
    }
}
