//! Service-layer integration test: a real `sla-serve` child process on
//! loopback answering two identical requests over one connection, the
//! second served entirely from the shared knowledge store.

use sla_atpg::{AtpgOptions, FaultStatus, LearningMode};
use sla_circuits::s27;
use sla_core::LearnOptions;
use sla_sim::collapsed_fault_list;
use sla_store::proto::{self, Message, Request, Summary};
use sla_store::CacheOutcome;
use std::io::{BufRead, BufReader, BufWriter};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};

fn roundtrip(
    input: &mut impl BufRead,
    output: &mut BufWriter<&TcpStream>,
    request: &Message,
) -> Result<(Vec<(u32, FaultStatus)>, Summary), String> {
    proto::write_message(output, request).map_err(|e| format!("send request: {e}"))?;
    let mut verdicts = Vec::new();
    loop {
        let msg = proto::read_message(input)
            .map_err(|e| format!("read response: {e}"))?
            .ok_or("server closed the connection mid-response")?;
        match msg {
            Message::Verdict { index, status } => verdicts.push((index, status)),
            Message::Done(summary) => return Ok((verdicts, summary)),
            other => return Err(format!("unexpected server message: {other:?}")),
        }
    }
}

/// The conversation under test; errors instead of panicking so the caller
/// can always reap the child process.
fn converse(child: &mut Child, request: &Message, num_faults: usize) -> Result<(), String> {
    let mut banner = String::new();
    BufReader::new(child.stdout.as_mut().expect("stdout piped"))
        .read_line(&mut banner)
        .map_err(|e| format!("read banner: {e}"))?;
    let addr = banner
        .trim()
        .strip_prefix("sla-serve listening on ")
        .ok_or_else(|| format!("unexpected banner: {banner:?}"))?
        .to_string();

    let stream = TcpStream::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut input = BufReader::new(&stream);
    let mut output = BufWriter::new(&stream);

    let (verdicts1, done1) = roundtrip(&mut input, &mut output, request)?;
    if done1.cache != CacheOutcome::Miss {
        return Err(format!("request 1: want Miss, got {:?}", done1.cache));
    }
    if done1.learn_work_units == 0 {
        return Err("request 1 must spend learning work".to_string());
    }
    if verdicts1.len() != num_faults {
        return Err(format!(
            "want {num_faults} verdicts, got {}",
            verdicts1.len()
        ));
    }
    if !verdicts1
        .iter()
        .enumerate()
        .all(|(i, (idx, _))| i as u32 == *idx)
    {
        return Err("verdicts must arrive in strict fault order".to_string());
    }

    let (verdicts2, done2) = roundtrip(&mut input, &mut output, request)?;
    if done2.cache != CacheOutcome::Hit {
        return Err(format!("request 2: want Hit, got {:?}", done2.cache));
    }
    if done2.learn_work_units != 0 {
        return Err(format!(
            "request 2 spent {} learning work units, want 0",
            done2.learn_work_units
        ));
    }
    if verdicts2 != verdicts1 {
        return Err("verdicts differ between requests".to_string());
    }
    if (done2.backtracks, done2.decisions, done2.budget_spent)
        != (done1.backtracks, done1.decisions, done1.budget_spent)
    {
        return Err(format!(
            "search statistics diverged: {done1:?} vs {done2:?}"
        ));
    }
    Ok(())
}

#[test]
fn two_requests_share_the_learned_store() {
    let source = s27();
    let bench = sla_netlist::writer::write_bench(&source);
    let specs = proto::fault_specs(&source, &collapsed_fault_list(&source));
    let request = Message::Request(Request {
        name: source.name().to_string(),
        bench,
        faults: specs.clone(),
        learn: Some(LearnOptions::builder().cross_frame(true).build()),
        atpg: AtpgOptions::builder()
            .backtrack_limit(30)
            .learning(LearningMode::ForbiddenValue)
            .build(),
    });

    let store_dir =
        std::env::temp_dir().join(format!("sla-store-service-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);

    // `--max-requests 2` makes the server exit on its own after the second
    // answer, so a clean conversation needs no shutdown frame.
    let mut child = Command::new(env!("CARGO_BIN_EXE_sla-serve"))
        .arg("--store")
        .arg(&store_dir)
        .arg("--port")
        .arg("0")
        .arg("--max-requests")
        .arg("2")
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn sla-serve");

    let outcome = converse(&mut child, &request, specs.len());
    if outcome.is_err() {
        let _ = child.kill();
    }
    let status = child.wait().expect("wait for server");
    let _ = std::fs::remove_dir_all(&store_dir);
    outcome.unwrap_or_else(|e| panic!("service conversation failed: {e}"));
    assert!(status.success(), "server must exit cleanly, got {status}");
}
