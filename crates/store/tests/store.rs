//! Persistent-store integration tests: round trips, corruption fallback and
//! the acceptance pin — a warm-store run is bit-identical to a cold run at
//! `SLA_THREADS ∈ {1, 4}` with zero learning work units on the warm path.

use sla_atpg::{AtpgOptions, AtpgRun, LearningMode};
use sla_circuits::{s27, table5_circuit, Table5Config};
use sla_core::LearnOptions;
use sla_netlist::Netlist;
use sla_sim::collapsed_fault_list;
use sla_snapshot::SnapshotError;
use sla_store::{CacheOutcome, LearnedStore, Session, StoreError, StoreKey};
use std::path::PathBuf;

/// A fresh scratch directory, removed on drop even when the test fails.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("sla-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn learn_options() -> LearnOptions {
    LearnOptions::builder().cross_frame(true).build()
}

fn atpg_options() -> AtpgOptions {
    AtpgOptions::builder()
        .backtrack_limit(100)
        .learning(LearningMode::ForbiddenValue)
        .build()
}

/// Zeroes the documented thread/run-variant diagnostics so runs can be
/// compared bit-for-bit.
fn canonical(mut run: AtpgRun) -> AtpgRun {
    run.stats.cpu = std::time::Duration::ZERO;
    run.stats.wasted_speculations = 0;
    run
}

/// Flattened view of a learned database for equality assertions.
type LearnedParts = (
    Vec<(sla_core::Implication, bool)>,
    Vec<sla_core::CrossImplication>,
    Vec<(sla_netlist::NodeId, bool)>,
);

fn learned_parts(learned: &sla_atpg::LearnedData) -> LearnedParts {
    (
        learned.implications().iter().collect(),
        learned.cross_frame().to_vec(),
        learned.tied().to_vec(),
    )
}

/// The entry file the store keeps for (netlist, options).
fn entry_file(store: &LearnedStore, netlist: &Netlist, options: &LearnOptions) -> PathBuf {
    store
        .dir()
        .join(format!("{}.slal", StoreKey::new(netlist, options)))
}

/// Acceptance pin: cold learn populates the store; a second session hits it,
/// spends zero learning work units and produces a bit-identical ATPG run —
/// at one and four worker threads.
#[test]
fn warm_store_run_is_bit_identical_to_cold() {
    let netlist = table5_circuit(&Table5Config::default());
    let faults = collapsed_fault_list(&netlist);
    for threads in [1usize, 4] {
        let scratch = Scratch::new(&format!("warm-{threads}"));
        let mut store = LearnedStore::open(scratch.path(), 8).expect("open store");

        let mut cold = Session::open(&netlist).with_threads(threads);
        let report = cold
            .learn_cached(&learn_options(), &mut store)
            .expect("cold learning");
        assert_eq!(report.outcome, CacheOutcome::Miss, "first run must miss");
        assert!(report.work_units > 0, "cold run must spend learning work");
        assert!(report.store_error.is_none(), "clean store, no error");
        let cold_parts = learned_parts(cold.learned());
        let cold_run = canonical(cold.atpg(&atpg_options(), &faults).expect("cold ATPG"));

        let mut warm = Session::open(&netlist).with_threads(threads);
        let report = warm
            .learn_cached(&learn_options(), &mut store)
            .expect("warm lookup");
        assert_eq!(report.outcome, CacheOutcome::Hit, "second run must hit");
        assert_eq!(
            report.work_units, 0,
            "a cache hit must spend zero learning work units"
        );
        assert_eq!(
            learned_parts(warm.learned()),
            cold_parts,
            "cached database must round-trip exactly (threads {threads})"
        );
        let warm_run = canonical(warm.atpg(&atpg_options(), &faults).expect("warm ATPG"));
        assert_eq!(
            warm_run, cold_run,
            "warm run must be bit-identical to cold (threads {threads})"
        );
    }
}

/// A corrupted entry is a typed miss: the session falls back to fresh
/// learning, reports the decode error, repopulates the entry, and the next
/// lookup hits again.
#[test]
fn corrupt_entry_falls_back_and_repopulates() {
    let netlist = s27();
    let scratch = Scratch::new("corrupt");
    let mut store = LearnedStore::open(scratch.path(), 8).expect("open store");

    let mut session = Session::open(&netlist).with_threads(1);
    session
        .learn_cached(&learn_options(), &mut store)
        .expect("populate");
    let baseline = learned_parts(session.learned());

    // Flip a payload byte; the checksum must catch it.
    let path = entry_file(&store, &netlist, &learn_options());
    let mut bytes = std::fs::read(&path).expect("read entry");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).expect("write corrupted entry");

    let mut session = Session::open(&netlist).with_threads(1);
    let report = session
        .learn_cached(&learn_options(), &mut store)
        .expect("fallback learning");
    assert_eq!(
        report.outcome,
        CacheOutcome::Miss,
        "corrupt entry is a miss"
    );
    assert!(report.work_units > 0, "fallback must learn fresh");
    match &report.store_error {
        Some(StoreError::Codec { .. }) => {}
        other => panic!("expected a typed codec error, got {other:?}"),
    }
    assert_eq!(
        learned_parts(session.learned()),
        baseline,
        "fallback must learn the same database"
    );

    let mut session = Session::open(&netlist).with_threads(1);
    let report = session
        .learn_cached(&learn_options(), &mut store)
        .expect("repopulated lookup");
    assert_eq!(
        report.outcome,
        CacheOutcome::Hit,
        "the fallback must have repopulated the entry"
    );
    assert_eq!(learned_parts(session.learned()), baseline);
}

/// An entry written by a future format version is rejected with the typed
/// version error and likewise repopulated.
#[test]
fn version_mismatch_is_typed_and_repopulated() {
    let netlist = s27();
    let scratch = Scratch::new("version");
    let mut store = LearnedStore::open(scratch.path(), 8).expect("open store");

    let mut session = Session::open(&netlist).with_threads(1);
    session
        .learn_cached(&learn_options(), &mut store)
        .expect("populate");

    // Overwrite the entry with a validly-framed file of a future version.
    let mut w = sla_snapshot::codec::Writer::new();
    w.bytes_raw(b"SLAL");
    w.u32(99);
    let path = entry_file(&store, &netlist, &learn_options());
    std::fs::write(&path, w.seal()).expect("write future-version entry");

    let mut session = Session::open(&netlist).with_threads(1);
    let report = session
        .learn_cached(&learn_options(), &mut store)
        .expect("fallback learning");
    assert_eq!(report.outcome, CacheOutcome::Miss);
    match &report.store_error {
        Some(StoreError::Codec {
            source: SnapshotError::UnsupportedVersion { found: 99, .. },
            ..
        }) => {}
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }

    let mut session = Session::open(&netlist).with_threads(1);
    let report = session
        .learn_cached(&learn_options(), &mut store)
        .expect("repopulated lookup");
    assert_eq!(report.outcome, CacheOutcome::Hit);
}

/// Insertion order is the eviction order, entries beyond capacity evict the
/// oldest first, and the order survives a close/reopen cycle.
#[test]
fn fifo_eviction_and_reopen_are_deterministic() {
    let netlist = s27();
    let scratch = Scratch::new("fifo");
    let options: Vec<LearnOptions> = [10usize, 20, 30]
        .iter()
        .map(|&frames| LearnOptions::builder().max_frames(frames).build())
        .collect();
    let keys: Vec<StoreKey> = options.iter().map(|o| StoreKey::new(&netlist, o)).collect();

    let mut store = LearnedStore::open(scratch.path(), 2).expect("open store");
    for opts in &options {
        let mut session = Session::open(&netlist).with_threads(1);
        session.learn_cached(opts, &mut store).expect("populate");
    }
    assert_eq!(
        store.keys(),
        &keys[1..],
        "inserting a third entry at capacity 2 must evict the oldest"
    );
    assert!(
        !entry_file(&store, &netlist, &options[0]).exists(),
        "the evicted entry file must be gone"
    );

    let reopened = LearnedStore::open(scratch.path(), 2).expect("reopen store");
    assert_eq!(
        reopened.keys(),
        store.keys(),
        "insertion order must survive reopen"
    );
    assert!(reopened
        .lookup(&keys[2])
        .expect("surviving entry readable")
        .is_some());
    assert!(reopened
        .lookup(&keys[0])
        .expect("evicted key is a clean miss")
        .is_none());
}

/// A corrupt index fails `open` with a typed error and `open_or_reset`
/// recovers to an empty store, reporting why.
#[test]
fn corrupt_index_is_typed_and_resettable() {
    let netlist = s27();
    let scratch = Scratch::new("index");
    let mut store = LearnedStore::open(scratch.path(), 8).expect("open store");
    let mut session = Session::open(&netlist).with_threads(1);
    session
        .learn_cached(&learn_options(), &mut store)
        .expect("populate");

    let index = scratch.path().join("index");
    std::fs::write(&index, b"not an index at all").expect("clobber index");

    match LearnedStore::open(scratch.path(), 8) {
        Err(StoreError::Codec { .. }) => {}
        other => panic!("expected a typed codec error, got {other:?}"),
    }

    let (reset, err) = LearnedStore::open_or_reset(scratch.path(), 8);
    assert!(reset.is_empty(), "reset store starts empty");
    assert!(
        matches!(err, Some(StoreError::Codec { .. })),
        "the reset must report why: {err:?}"
    );
}
