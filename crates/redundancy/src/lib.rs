//! FIRE-style fault-independent identification of untestable faults.
//!
//! This crate is the baseline comparator of Table 4 of the paper: the paper
//! compares the untestable faults identified *as a by-product of tie-gate
//! learning* against FIRES (Iyer, Long, Abramovici), whose published
//! combinational core is FIRE. FIRE observes that a fault requiring a value
//! `v` on a stem *and* requiring `¬v` on the same stem for detection is
//! untestable, without ever targeting individual faults:
//!
//! 1. for every fanout stem `s` and value `v`, compute the set of value
//!    assignments implied by `s=v` (static logic implications, forward and
//!    backward),
//! 2. derive the set of faults undetectable under `s=v` — faults whose
//!    excitation is blocked (their line is implied to the stuck value) and
//!    faults whose propagation is blocked (every path to an observation point
//!    passes a gate with a controlling side value),
//! 3. every fault in the intersection of the `s=0` and `s=1` sets is
//!    untestable.
//!
//! Observation points are primary outputs and flip-flop data inputs (the
//! combinational view of the sequential circuit), mirroring how the paper's
//! tie-gate counts are also produced by an analysis that crosses frames only
//! through learning.

mod implicate;
mod observe;

pub use implicate::static_implications;
pub use observe::observable_nodes;

use sla_netlist::stems::fanout_stems;
use sla_netlist::{Netlist, NodeId};
use sla_sim::{full_fault_list, Fault, FaultSite, Logic3};
use std::collections::BTreeSet;
use std::time::Duration;

/// Result of a FIRE run.
#[derive(Debug, Clone, Default)]
pub struct FireResult {
    /// Untestable faults, deduplicated and sorted.
    pub untestable: Vec<Fault>,
    /// Number of stems analysed.
    pub stems: usize,
    /// Wall-clock analysis time.
    pub cpu: Duration,
}

impl FireResult {
    /// Number of untestable faults identified.
    pub fn count(&self) -> usize {
        self.untestable.len()
    }
}

/// Runs FIRE over all fanout stems of the netlist.
///
/// # Errors
///
/// Returns an error when the combinational logic cannot be levelized.
pub fn identify_untestable(netlist: &Netlist) -> sla_netlist::Result<FireResult> {
    let start = sla_netlist::wallclock::now();
    let stems = fanout_stems(netlist);
    let faults = full_fault_list(netlist);
    let mut untestable: BTreeSet<Fault> = BTreeSet::new();

    for &stem in &stems {
        let blocked0 = blocked_faults(netlist, stem, false, &faults)?;
        if blocked0.is_empty() {
            continue;
        }
        let blocked1 = blocked_faults(netlist, stem, true, &faults)?;
        for f in blocked0.intersection(&blocked1) {
            untestable.insert(*f);
        }
    }

    Ok(FireResult {
        untestable: untestable.into_iter().collect(),
        stems: stems.len(),
        cpu: start.elapsed(),
    })
}

/// The set of faults undetectable while `stem = value` holds.
fn blocked_faults(
    netlist: &Netlist,
    stem: NodeId,
    value: bool,
    faults: &[Fault],
) -> sla_netlist::Result<BTreeSet<Fault>> {
    let implied = static_implications(netlist, &[(stem, value)])?;
    let Some(implied) = implied else {
        // The assignment itself is inconsistent: every fault is "blocked" under
        // it, but such a stem value is impossible, so no conclusion is drawn.
        return Ok(BTreeSet::new());
    };
    let observable = observable_nodes(netlist, &implied);
    let mut blocked = BTreeSet::new();
    for fault in faults {
        let line = match fault.site {
            FaultSite::Output(node) => node,
            FaultSite::Input { gate, pin } => netlist.fanins(gate)[pin],
        };
        // Excitation blocked: the line is implied to the stuck value.
        let unexcitable = implied[line.index()] == Logic3::from_bool(fault.stuck_at);
        // Propagation blocked: the fault site is unobservable under the
        // implications. For branch faults the observation path starts at the
        // gate the branch feeds.
        let unobservable = match fault.site {
            FaultSite::Output(node) => !observable[node.index()],
            FaultSite::Input { gate, pin } => {
                !observe::branch_observable(netlist, &implied, &observable, gate, pin)
            }
        };
        if unexcitable || unobservable {
            blocked.insert(*fault);
        }
    }
    Ok(blocked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sla_netlist::{GateType, NetlistBuilder};

    /// The classic FIRE textbook example shape: a reconvergent stem whose both
    /// values block the same fault.
    fn reconvergent() -> Netlist {
        let mut b = NetlistBuilder::new("reconv");
        b.input("a");
        b.input("b");
        b.input("c");
        // Stem a feeds both g1 and (inverted) g2; their AND is constant 0
        // whenever the other inputs do not help, making some faults untestable.
        b.gate("na", GateType::Not, &["a"]).unwrap();
        b.gate("g1", GateType::And, &["a", "b"]).unwrap();
        b.gate("g2", GateType::And, &["na", "c"]).unwrap();
        b.gate("g3", GateType::And, &["g1", "g2"]).unwrap();
        b.output("g3").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn finds_untestable_faults_on_reconvergent_logic() {
        let n = reconvergent();
        let result = identify_untestable(&n).unwrap();
        // g3 can never be 1 (needs a and !a), so g3 stuck-at-0 never makes a
        // difference and is untestable; g1 stuck-at-0 is untestable too because
        // exciting it needs a=1 while propagating it needs a=0.
        let g3 = n.require("g3").unwrap();
        let g1 = n.require("g1").unwrap();
        assert!(result.untestable.contains(&Fault::output(g1, false)));
        assert!(
            result.untestable.contains(&Fault::output(g3, false)),
            "g3 s-a-0 must be identified, got {:?}",
            result
                .untestable
                .iter()
                .map(|f| f.describe(&n))
                .collect::<Vec<_>>()
        );
        assert!(result.stems > 0);
    }

    #[test]
    fn irredundant_circuit_yields_nothing() {
        let mut b = NetlistBuilder::new("clean");
        b.input("a");
        b.input("b");
        b.gate("g", GateType::And, &["a", "b"]).unwrap();
        b.gate("h", GateType::Xor, &["g", "a"]).unwrap();
        b.output("h").unwrap();
        b.output("g").unwrap();
        let n = b.build().unwrap();
        let result = identify_untestable(&n).unwrap();
        assert!(
            result.untestable.is_empty(),
            "no fault of this circuit is untestable, got {:?}",
            result
                .untestable
                .iter()
                .map(|f| f.describe(&n))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn sequential_elements_act_as_boundaries() {
        // The untestable fault sits behind a flip-flop; FF data inputs are
        // observation points so the analysis still works frame-locally.
        let mut b = NetlistBuilder::new("seq");
        b.input("a");
        b.input("b");
        b.gate("na", GateType::Not, &["a"]).unwrap();
        b.gate("z", GateType::And, &["a", "na"]).unwrap();
        b.gate("d", GateType::Or, &["z", "b"]).unwrap();
        b.dff("q", "d").unwrap();
        b.output("q").unwrap();
        let n = b.build().unwrap();
        let result = identify_untestable(&n).unwrap();
        let z = n.require("z").unwrap();
        assert!(result.untestable.contains(&Fault::output(z, false)));
    }
}
