//! Observability analysis under a set of implied values.
//!
//! A node is observable when a fault effect on it can possibly reach an
//! observation point — a primary output or a flip-flop data input — without
//! passing a gate whose side input is implied to the controlling value.

use sla_netlist::levelize::levelize;
use sla_netlist::{Netlist, NodeId, NodeKind};
use sla_sim::Logic3;

/// Computes per-node observability flags under the given implied values
/// (`implied[i] = X` means the node is unconstrained).
///
/// The result is conservative in the safe direction for FIRE: a node marked
/// unobservable really has every path blocked by an implied controlling side
/// value, while a node marked observable may or may not be sensitisable.
pub fn observable_nodes(netlist: &Netlist, implied: &[Logic3]) -> Vec<bool> {
    let levels = levelize(netlist).expect("netlist used for FIRE is already levelized");
    let n = netlist.num_nodes();
    let mut observable = vec![false; n];

    for &po in netlist.outputs() {
        observable[po.index()] = true;
    }
    for s in netlist.sequential_elements() {
        observable[netlist.fanins(s)[0].index()] = true;
    }

    // Reverse topological order: a gate's observability is final before its
    // fanins are examined.
    for &id in levels.order().iter().rev() {
        if !observable[id.index()] {
            continue;
        }
        let node = netlist.node(id);
        let NodeKind::Gate(_) = node.kind else {
            continue;
        };
        for (pin, &fanin) in node.fanins.iter().enumerate() {
            if branch_open(netlist, implied, id, pin) {
                observable[fanin.index()] = true;
            }
        }
    }
    observable
}

/// Returns `true` when the path from input pin `pin` of `gate` through the
/// gate is not blocked by an implied controlling value on a side input.
fn branch_open(netlist: &Netlist, implied: &[Logic3], gate: NodeId, pin: usize) -> bool {
    let node = netlist.node(gate);
    let NodeKind::Gate(gtype) = node.kind else {
        return false;
    };
    let Some(controlling) = gtype.controlling_value() else {
        return true; // XOR/XNOR/NOT/BUF never block
    };
    node.fanins
        .iter()
        .enumerate()
        .all(|(j, &side)| j == pin || implied[side.index()] != Logic3::from_bool(controlling))
}

/// Observability of a specific fanout branch: the branch into pin `pin` of
/// `gate` is observable when the gate's output is observable and the branch is
/// not blocked inside the gate.
pub fn branch_observable(
    netlist: &Netlist,
    implied: &[Logic3],
    observable: &[bool],
    gate: NodeId,
    pin: usize,
) -> bool {
    observable[gate.index()] && branch_open(netlist, implied, gate, pin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sla_netlist::{GateType, NetlistBuilder};

    fn circuit() -> Netlist {
        let mut b = NetlistBuilder::new("obs");
        b.input("a");
        b.input("b");
        b.input("c");
        b.gate("g", GateType::And, &["a", "b"]).unwrap();
        b.gate("h", GateType::Or, &["g", "c"]).unwrap();
        b.dff("q", "h").unwrap();
        b.output("q").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn everything_observable_without_implications() {
        let n = circuit();
        let implied = vec![Logic3::X; n.num_nodes()];
        let obs = observable_nodes(&n, &implied);
        for name in ["a", "b", "c", "g", "h"] {
            assert!(obs[n.require(name).unwrap().index()], "{name}");
        }
    }

    #[test]
    fn controlling_side_value_blocks_a_path() {
        let n = circuit();
        let mut implied = vec![Logic3::X; n.num_nodes()];
        // c=1 is the controlling value of the OR: g (and hence a, b) becomes
        // unobservable.
        implied[n.require("c").unwrap().index()] = Logic3::One;
        let obs = observable_nodes(&n, &implied);
        assert!(!obs[n.require("g").unwrap().index()]);
        assert!(!obs[n.require("a").unwrap().index()]);
        assert!(
            obs[n.require("h").unwrap().index()],
            "h feeds the flip-flop"
        );
    }

    #[test]
    fn branch_observability_is_per_pin() {
        let n = circuit();
        let mut implied = vec![Logic3::X; n.num_nodes()];
        implied[n.require("b").unwrap().index()] = Logic3::Zero; // blocks a through g
        let obs = observable_nodes(&n, &implied);
        let g = n.require("g").unwrap();
        let h = n.require("h").unwrap();
        assert!(
            !branch_observable(&n, &implied, &obs, g, 0),
            "a into g is blocked"
        );
        assert!(
            branch_observable(&n, &implied, &obs, h, 1),
            "c into h is open"
        );
    }
}
