//! Static logic implication: the set of values forced by a seed assignment in
//! one combinational frame, propagated forward and backward to a fixed point.

use sla_netlist::levelize::levelize;
use sla_netlist::{GateType, Netlist, NodeId, NodeKind};
use sla_sim::{eval_gate3, Logic3};

/// Computes the values implied by the seed assignments.
///
/// Flip-flop outputs and primary inputs are free variables (set only if seeded
/// or implied backward). Returns `None` when the seed is self-contradictory
/// (forward and backward implications disagree on some node).
///
/// # Errors
///
/// Returns an error when the combinational logic cannot be levelized.
pub fn static_implications(
    netlist: &Netlist,
    seeds: &[(NodeId, bool)],
) -> sla_netlist::Result<Option<Vec<Logic3>>> {
    let levels = levelize(netlist)?;
    let n = netlist.num_nodes();
    let mut values = vec![Logic3::X; n];
    for &(node, v) in seeds {
        values[node.index()] = Logic3::from_bool(v);
    }

    // Alternate forward and backward passes until nothing changes. Both passes
    // only refine X to a binary value, so the iteration terminates.
    for _ in 0..n.max(4) {
        let mut changed = false;
        if !forward_pass(netlist, &levels, &mut values, &mut changed) {
            return Ok(None);
        }
        if !backward_pass(netlist, &levels, &mut values, &mut changed) {
            return Ok(None);
        }
        if !changed {
            break;
        }
    }
    Ok(Some(values))
}

/// Forward evaluation pass; returns `false` on contradiction.
fn forward_pass(
    netlist: &Netlist,
    levels: &sla_netlist::levelize::Levelization,
    values: &mut [Logic3],
    changed: &mut bool,
) -> bool {
    for &id in levels.order() {
        let node = netlist.node(id);
        let NodeKind::Gate(gate) = node.kind else {
            continue;
        };
        let computed = eval_gate3(gate, node.fanins.iter().map(|f| values[f.index()]));
        if computed.is_binary() {
            match values[id.index()] {
                Logic3::X => {
                    values[id.index()] = computed;
                    *changed = true;
                }
                existing if existing != computed => return false,
                _ => {}
            }
        }
    }
    true
}

/// Backward (justification) pass: when a gate output value can only be
/// produced one way, force the fanin values. Returns `false` on contradiction.
fn backward_pass(
    netlist: &Netlist,
    levels: &sla_netlist::levelize::Levelization,
    values: &mut [Logic3],
    changed: &mut bool,
) -> bool {
    for &id in levels.order().iter().rev() {
        let node = netlist.node(id);
        let NodeKind::Gate(gate) = node.kind else {
            continue;
        };
        let Some(out) = values[id.index()].to_bool() else {
            continue;
        };
        let fanins = node.fanins;
        let force = |node: NodeId, v: bool, values: &mut [Logic3], changed: &mut bool| -> bool {
            match values[node.index()] {
                Logic3::X => {
                    values[node.index()] = Logic3::from_bool(v);
                    *changed = true;
                    true
                }
                existing => existing == Logic3::from_bool(v),
            }
        };
        let ok = match gate {
            GateType::Buf => force(fanins[0], out, values, changed),
            GateType::Not => force(fanins[0], !out, values, changed),
            GateType::And | GateType::Nand | GateType::Or | GateType::Nor => {
                let controlling = gate.controlling_value().expect("and/or family");
                let controlled = gate.controlled_response().expect("and/or family");
                if out != controlled {
                    // The non-controlled output: every input must be at the
                    // non-controlling value.
                    fanins
                        .iter()
                        .all(|&f| force(f, !controlling, values, changed))
                } else {
                    // The controlled output: at least one input is at the
                    // controlling value; force it only if exactly one candidate
                    // remains.
                    let candidates: Vec<NodeId> = fanins
                        .iter()
                        .copied()
                        .filter(|f| values[f.index()] != Logic3::from_bool(!controlling))
                        .collect();
                    if candidates.is_empty() {
                        false
                    } else if candidates.len() == 1 && values[candidates[0].index()] == Logic3::X {
                        force(candidates[0], controlling, values, changed)
                    } else {
                        true
                    }
                }
            }
            GateType::Xor | GateType::Xnor => {
                // If all but one input is known, the last one is determined.
                let mut parity = gate.inverts();
                let mut unknown = Vec::new();
                for &f in fanins {
                    match values[f.index()].to_bool() {
                        Some(b) => parity ^= b,
                        None => unknown.push(f),
                    }
                }
                match unknown.len() {
                    0 => parity == out,
                    1 => force(unknown[0], out ^ parity, values, changed),
                    _ => true,
                }
            }
            GateType::Const0 => !out,
            GateType::Const1 => out,
        };
        if !ok {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use sla_netlist::NetlistBuilder;

    fn circuit() -> Netlist {
        let mut b = NetlistBuilder::new("imp");
        b.input("a");
        b.input("b");
        b.input("c");
        b.gate("g", GateType::And, &["a", "b"]).unwrap();
        b.gate("h", GateType::Or, &["g", "c"]).unwrap();
        b.gate("k", GateType::Not, &["h"]).unwrap();
        b.output("k").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn forward_implications() {
        let n = circuit();
        let v = static_implications(&n, &[(n.require("a").unwrap(), false)])
            .unwrap()
            .unwrap();
        assert_eq!(v[n.require("g").unwrap().index()], Logic3::Zero);
        assert_eq!(v[n.require("h").unwrap().index()], Logic3::X);
    }

    #[test]
    fn backward_implications_through_and_or() {
        let n = circuit();
        // g=1 forces a=1 and b=1 (AND); k=1 forces h=0, which forces g=0 and c=0.
        let v = static_implications(&n, &[(n.require("g").unwrap(), true)])
            .unwrap()
            .unwrap();
        assert_eq!(v[n.require("a").unwrap().index()], Logic3::One);
        assert_eq!(v[n.require("b").unwrap().index()], Logic3::One);
        let v = static_implications(&n, &[(n.require("k").unwrap(), true)])
            .unwrap()
            .unwrap();
        assert_eq!(v[n.require("g").unwrap().index()], Logic3::Zero);
        assert_eq!(v[n.require("c").unwrap().index()], Logic3::Zero);
    }

    #[test]
    fn contradictory_seed_is_reported() {
        let n = circuit();
        let out = static_implications(
            &n,
            &[
                (n.require("a").unwrap(), false),
                (n.require("g").unwrap(), true),
            ],
        )
        .unwrap();
        assert!(out.is_none());
    }

    #[test]
    fn last_unknown_input_of_controlled_gate_is_forced() {
        let n = circuit();
        // h=1 with c=0 forces g=1, which forces a=b=1.
        let v = static_implications(
            &n,
            &[
                (n.require("h").unwrap(), true),
                (n.require("c").unwrap(), false),
            ],
        )
        .unwrap()
        .unwrap();
        assert_eq!(v[n.require("a").unwrap().index()], Logic3::One);
        assert_eq!(v[n.require("b").unwrap().index()], Logic3::One);
    }
}
