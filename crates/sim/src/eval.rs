//! Gate evaluation in three-valued logic and in 64-wide parallel-pattern form.

use crate::value::Logic3;
use sla_netlist::{GateType, NodeId};
use std::ops::Not;

/// Evaluates a combinational gate over three-valued fanin values.
pub fn eval_gate3(gate: GateType, fanins: impl Iterator<Item = Logic3>) -> Logic3 {
    match gate {
        GateType::And | GateType::Nand => {
            let mut acc = Logic3::One;
            for v in fanins {
                acc = acc.and(v);
                if acc == Logic3::Zero {
                    break;
                }
            }
            if gate == GateType::Nand {
                acc.not()
            } else {
                acc
            }
        }
        GateType::Or | GateType::Nor => {
            let mut acc = Logic3::Zero;
            for v in fanins {
                acc = acc.or(v);
                if acc == Logic3::One {
                    break;
                }
            }
            if gate == GateType::Nor {
                acc.not()
            } else {
                acc
            }
        }
        GateType::Xor | GateType::Xnor => {
            let mut acc = Logic3::Zero;
            for v in fanins {
                acc = acc.xor(v);
                if acc == Logic3::X {
                    break;
                }
            }
            if gate == GateType::Xnor {
                acc.not()
            } else {
                acc
            }
        }
        GateType::Not => fanins
            .into_iter()
            .next()
            .map(Logic3::not)
            .unwrap_or(Logic3::X),
        GateType::Buf => fanins.into_iter().next().unwrap_or(Logic3::X),
        GateType::Const0 => Logic3::Zero,
        GateType::Const1 => Logic3::One,
    }
}

/// Evaluates a combinational gate whose fanin node ids are resolved through a
/// node-indexed value slice (one time frame). Shared by the frame evaluator
/// and the event-driven incremental simulator so both apply identical rules.
#[inline]
pub fn eval_gate3_at(gate: GateType, fanins: &[NodeId], values: &[Logic3]) -> Logic3 {
    eval_gate3(gate, fanins.iter().map(|f| values[f.index()]))
}

/// Evaluates a combinational gate over 64 parallel two-valued patterns packed
/// into `u64` words (bit *i* of every word belongs to pattern *i*).
pub fn eval_gate64(gate: GateType, fanins: impl Iterator<Item = u64>) -> u64 {
    match gate {
        GateType::And => fanins.fold(u64::MAX, |a, b| a & b),
        GateType::Nand => !fanins.fold(u64::MAX, |a, b| a & b),
        GateType::Or => fanins.fold(0, |a, b| a | b),
        GateType::Nor => !fanins.fold(0, |a, b| a | b),
        GateType::Xor => fanins.fold(0, |a, b| a ^ b),
        GateType::Xnor => !fanins.fold(0, |a, b| a ^ b),
        GateType::Not => !fanins.into_iter().next().unwrap_or(0),
        GateType::Buf => fanins.into_iter().next().unwrap_or(0),
        GateType::Const0 => 0,
        GateType::Const1 => u64::MAX,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Logic3::{One, Zero, X};

    #[test]
    fn and_nand_three_valued() {
        assert_eq!(eval_gate3(GateType::And, [One, One].into_iter()), One);
        assert_eq!(eval_gate3(GateType::And, [One, X].into_iter()), X);
        assert_eq!(eval_gate3(GateType::And, [Zero, X].into_iter()), Zero);
        assert_eq!(eval_gate3(GateType::Nand, [Zero, X].into_iter()), One);
        assert_eq!(eval_gate3(GateType::Nand, [One, One].into_iter()), Zero);
    }

    #[test]
    fn or_nor_three_valued() {
        assert_eq!(eval_gate3(GateType::Or, [Zero, Zero].into_iter()), Zero);
        assert_eq!(eval_gate3(GateType::Or, [X, One].into_iter()), One);
        assert_eq!(eval_gate3(GateType::Nor, [X, One].into_iter()), Zero);
        assert_eq!(eval_gate3(GateType::Nor, [X, Zero].into_iter()), X);
    }

    #[test]
    fn xor_family_and_unary() {
        assert_eq!(eval_gate3(GateType::Xor, [One, One, One].into_iter()), One);
        assert_eq!(eval_gate3(GateType::Xnor, [One, Zero].into_iter()), Zero);
        assert_eq!(eval_gate3(GateType::Not, [X].into_iter()), X);
        assert_eq!(eval_gate3(GateType::Buf, [Zero].into_iter()), Zero);
        assert_eq!(eval_gate3(GateType::Const0, [].into_iter()), Zero);
        assert_eq!(eval_gate3(GateType::Const1, [].into_iter()), One);
    }

    #[test]
    fn parallel_matches_scalar_on_binary_inputs() {
        // Exhaustively compare bit 0 of the 64-wide evaluation against the
        // three-valued evaluation restricted to binary inputs, for 2-input gates.
        for gate in GateType::ALL {
            if matches!(
                gate,
                GateType::Not | GateType::Buf | GateType::Const0 | GateType::Const1
            ) {
                continue;
            }
            for a in [false, true] {
                for b in [false, true] {
                    let scalar = eval_gate3(gate, [Logic3::from(a), Logic3::from(b)].into_iter());
                    let wide = eval_gate64(
                        gate,
                        [if a { 1u64 } else { 0 }, if b { 1u64 } else { 0 }].into_iter(),
                    ) & 1;
                    assert_eq!(scalar.to_bool(), Some(wide == 1), "{gate} {a} {b}");
                }
            }
        }
    }

    #[test]
    fn parallel_unary_and_consts() {
        assert_eq!(
            eval_gate64(GateType::Not, [0b1010u64].into_iter()) & 0b1111,
            0b0101
        );
        assert_eq!(eval_gate64(GateType::Buf, [0xFFu64].into_iter()), 0xFF);
        assert_eq!(eval_gate64(GateType::Const0, [].into_iter()), 0);
        assert_eq!(eval_gate64(GateType::Const1, [].into_iter()), u64::MAX);
    }
}
