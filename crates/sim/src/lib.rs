//! Simulation substrate for the sequential-learning / ATPG stack.
//!
//! The crate provides every simulation service the learning engine (the
//! `sla-core` crate, which depends on this one) and the ATPG engine
//! (`sla-atpg`) build on:
//!
//! * [`Logic3`] — three-valued logic (`0`, `1`, `X`) and gate evaluation,
//! * [`packed`] — 64-wide packed three-valued words ([`PackedWord`]) and gate
//!   evaluation, the word-parallel backbone behind batched injection
//!   simulation ([`InjectionSim::run_batch`]) and word-parallel fault
//!   dropping,
//! * [`CombEvaluator`] — single-frame evaluation of the combinational logic in
//!   levelized order, with forced (injected or tied) nodes and optional
//!   gate-equivalence value forwarding,
//! * [`EventSim`] — event-driven incremental multi-frame simulation with
//!   trail-based undo, the per-decision backbone of the ATPG search loop
//!   (only the affected cone is re-evaluated after an assignment),
//! * [`InjectionSim`] — the forward multi-time-frame simulator the paper's
//!   learning technique is built on: per-frame value injections, sequential
//!   element propagation rules (multi-port latches, partial set/reset, clock
//!   classes), state-repeat stopping and conflict detection,
//! * [`equiv`] — combinational equivalence-class detection by parallel-pattern
//!   (64-bit) simulation,
//! * [`fault`] / [`FaultSimulator`] — single stuck-at fault model, fault-list
//!   generation/collapsing and a sequential three-valued fault simulator,
//! * [`StateOracle`] — an exhaustive steady-state reachability oracle for small
//!   circuits, used to prove learned relations sound in tests.
//!
//! # Example
//!
//! ```
//! use sla_netlist::{GateType, NetlistBuilder};
//! use sla_sim::{InjectionSim, Injection, Logic3, SimOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = NetlistBuilder::new("demo");
//! b.input("a");
//! b.gate("g", GateType::Not, &["a"])?;
//! b.dff("q", "g")?;
//! b.output("q")?;
//! let netlist = b.build()?;
//!
//! let sim = InjectionSim::new(&netlist)?;
//! let a = netlist.require("a")?;
//! let q = netlist.require("q")?;
//! let trace = sim.run(&[Injection::new(a, false, 0)], &SimOptions::default());
//! // a = 0 in frame 0 drives the inverter to 1, captured by the flip-flop in frame 1.
//! assert_eq!(trace.value(1, q), Logic3::One);
//! # Ok(())
//! # }
//! ```

#[path = "equiv_impl.rs"]
pub mod equiv;
pub mod eval;
pub mod event;
#[path = "fault_impl.rs"]
pub mod fault;
mod fault_sim;
mod frame;
mod inject;
mod oracle;
pub mod packed;
mod value;

pub use equiv::{find_equivalences, EquivClasses, EquivConfig};
pub use eval::{eval_gate3, eval_gate3_at, eval_gate64};
pub use event::EventSim;
pub use fault::{collapsed_fault_list, full_fault_list, Fault, FaultSite};
pub use fault_sim::{FaultSimulator, TestSequence};
pub use frame::CombEvaluator;
pub use inject::{Conflict, Injection, InjectionSim, SimOptions, Trace};
pub use oracle::{OracleError, StateOracle};
pub use packed::{eval_gate3x64, LaneTrace, PackedTraces, PackedWord, TraceRead};
pub use value::Logic3;

/// Result alias for simulation-layer errors, which are netlist errors
/// (levelization failures, unknown nodes) surfaced unchanged.
pub type Result<T> = std::result::Result<T, sla_netlist::NetlistError>;
