//! 64-wide packed three-valued simulation: the word-parallel backbone of the
//! learning and fault-simulation hot loops.
//!
//! Values are encoded in two bit-planes per node word: bit *i* of `zero` is set
//! when lane *i* holds logic 0, bit *i* of `one` when it holds logic 1, and a
//! lane with neither bit set holds `X` (the planes are disjoint by
//! construction). Gate evaluation reduces to plane-wise applications of the
//! binary 64-wide primitive [`eval_gate64`](crate::eval::eval_gate64): for an
//! AND gate the `one` plane is the 64-wide AND of the fanin `one` planes and
//! the `zero` plane is the 64-wide OR of the fanin `zero` planes, and dually
//! for OR — exactly the Kleene three-valued truth tables, 64 lanes at a time.
//!
//! Consumers pack independent scenarios into the lanes:
//!
//! * [`InjectionSim::run_batch`](crate::InjectionSim::run_batch) packs up to 64
//!   injection jobs (e.g. 32 learning stems × 2 polarities) into one forward
//!   multi-frame pass,
//! * [`FaultSimulator::detected_faults`](crate::FaultSimulator::detected_faults)
//!   packs up to 64 faulty machines into one pass over a test sequence.

use crate::equiv::EquivClasses;
use crate::eval::eval_gate64;
use crate::inject::Conflict;
use crate::value::Logic3;
use sla_netlist::{GateType, Netlist, NodeId, NodeKind};

/// 64 lanes of three-valued logic in two disjoint bit-planes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PackedWord {
    /// Lanes holding logic 0.
    pub zero: u64,
    /// Lanes holding logic 1.
    pub one: u64,
}

impl PackedWord {
    /// All 64 lanes unknown.
    pub const ALL_X: PackedWord = PackedWord { zero: 0, one: 0 };

    /// The same value in every lane.
    pub fn splat(value: Logic3) -> PackedWord {
        match value {
            Logic3::Zero => PackedWord {
                zero: u64::MAX,
                one: 0,
            },
            Logic3::One => PackedWord {
                zero: 0,
                one: u64::MAX,
            },
            Logic3::X => PackedWord::ALL_X,
        }
    }

    /// Lanes holding a binary (non-`X`) value.
    pub fn known(self) -> u64 {
        self.zero | self.one
    }

    /// The value of one lane.
    pub fn get(self, lane: usize) -> Logic3 {
        debug_assert!(lane < 64);
        if (self.one >> lane) & 1 == 1 {
            Logic3::One
        } else if (self.zero >> lane) & 1 == 1 {
            Logic3::Zero
        } else {
            Logic3::X
        }
    }

    /// Sets the value of one lane.
    pub fn set(&mut self, lane: usize, value: Logic3) {
        debug_assert!(lane < 64);
        let bit = 1u64 << lane;
        self.zero &= !bit;
        self.one &= !bit;
        match value {
            Logic3::Zero => self.zero |= bit,
            Logic3::One => self.one |= bit,
            Logic3::X => {}
        }
    }

    /// Lanes where `self` and `other` hold the same three-valued value.
    pub fn eq_lanes(self, other: PackedWord) -> u64 {
        !((self.zero ^ other.zero) | (self.one ^ other.one))
    }

    /// Lanes where both words are binary and disagree.
    pub fn mismatch_lanes(self, other: PackedWord) -> u64 {
        (self.zero & other.one) | (self.one & other.zero)
    }
}

impl std::ops::Not for PackedWord {
    type Output = PackedWord;

    /// Lane-wise three-valued negation (plane swap; `X` stays `X`).
    fn not(self) -> PackedWord {
        PackedWord {
            zero: self.one,
            one: self.zero,
        }
    }
}

/// Evaluates a combinational gate over packed three-valued fanins, 64 lanes at
/// a time. Lane *i* of the result equals
/// [`eval_gate3`](crate::eval::eval_gate3) applied to lane *i* of the fanins.
#[inline]
pub fn eval_gate3x64(gate: GateType, fanins: &[PackedWord]) -> PackedWord {
    let ones = fanins.iter().map(|w| w.one);
    let zeros = fanins.iter().map(|w| w.zero);
    match gate {
        GateType::And | GateType::Nand => {
            let out = PackedWord {
                one: eval_gate64(GateType::And, ones),
                zero: eval_gate64(GateType::Or, zeros),
            };
            if gate == GateType::Nand {
                !out
            } else {
                out
            }
        }
        GateType::Or | GateType::Nor => {
            let out = PackedWord {
                one: eval_gate64(GateType::Or, ones),
                zero: eval_gate64(GateType::And, zeros),
            };
            if gate == GateType::Nor {
                !out
            } else {
                out
            }
        }
        GateType::Xor | GateType::Xnor => {
            // Defined only in lanes where every fanin is binary.
            let known = fanins.iter().fold(u64::MAX, |m, w| m & w.known());
            let parity = eval_gate64(GateType::Xor, ones);
            let out = PackedWord {
                one: parity & known,
                zero: !parity & known,
            };
            if gate == GateType::Xnor {
                !out
            } else {
                out
            }
        }
        GateType::Not => fanins.first().map(|w| !*w).unwrap_or(PackedWord::ALL_X),
        GateType::Buf => fanins.first().copied().unwrap_or(PackedWord::ALL_X),
        GateType::Const0 => PackedWord::splat(Logic3::Zero),
        GateType::Const1 => PackedWord::splat(Logic3::One),
    }
}

/// Per-lane first-conflict bookkeeping for a packed run.
///
/// Mirrors the scalar rule "only the first contradiction of a run is
/// reported": once a lane has a conflict recorded, later records for that lane
/// are ignored.
#[derive(Debug, Clone)]
pub(crate) struct LaneConflicts {
    first: Vec<Option<Conflict>>,
    mask: u64,
}

impl LaneConflicts {
    pub(crate) fn new(lanes: usize) -> Self {
        LaneConflicts {
            first: vec![None; lanes],
            mask: 0,
        }
    }

    /// Records `node`/`frame` as the conflict of every lane in `lanes` that
    /// does not have one yet.
    pub(crate) fn record(&mut self, lanes: u64, node: NodeId, frame: usize) {
        let mut fresh = lanes & !self.mask;
        self.mask |= fresh;
        while fresh != 0 {
            let lane = fresh.trailing_zeros() as usize;
            fresh &= fresh - 1;
            self.first[lane] = Some(Conflict { node, frame });
        }
    }

    /// Lanes with a recorded conflict.
    pub(crate) fn mask(&self) -> u64 {
        self.mask
    }

    pub(crate) fn take(self) -> Vec<Option<Conflict>> {
        self.first
    }
}

/// One packed combinational-evaluation pass in levelized order — the
/// word-parallel mirror of `CombEvaluator::eval_pass`. `forced` carries a
/// per-node lane mask; conflict recording is restricted to `active` lanes.
///
/// Returns `true` when another pass is needed: a value flowed *backwards* in
/// the topological order (equivalence forwarding into an already-visited
/// node). Values set at or ahead of the cursor are consumed by the same pass,
/// so they never force a re-pass.
#[allow(clippy::too_many_arguments)]
fn eval_pass_packed(
    netlist: &Netlist,
    order: &[NodeId],
    order_pos: &[u32],
    values: &mut [PackedWord],
    forced: &[u64],
    equiv: Option<&EquivClasses>,
    active: u64,
    frame: usize,
    conflicts: &mut LaneConflicts,
    fanin_buf: &mut Vec<PackedWord>,
) -> bool {
    let mut needs_repass = false;
    for &id in order {
        let node = netlist.node(id);
        let NodeKind::Gate(gate) = node.kind else {
            continue;
        };
        fanin_buf.clear();
        fanin_buf.extend(node.fanins.iter().map(|f| values[f.index()]));
        let computed = eval_gate3x64(gate, fanin_buf);
        let idx = id.index();
        let current = values[idx];
        let f = forced[idx];
        // Both-binary-and-different lanes conflict, forced or not (the scalar
        // evaluator reports both cases at this node).
        conflicts.record(computed.mismatch_lanes(current) & active, id, frame);
        // Non-forced lanes where the gate newly produces a binary value.
        let set = !f & computed.known() & !current.known();
        if set != 0 {
            values[idx].one |= computed.one & set;
            values[idx].zero |= computed.zero & set;
        }
        // Equivalence forwarding: binary lanes of this node propagate to the
        // other members of its combinational equivalence class.
        if let Some(eq) = equiv {
            let v = values[idx];
            if v.known() != 0 {
                if let Some((class, inv)) = eq.class_of(id) {
                    for &(member, m_inv) in eq.members(class) {
                        let m_idx = member.index();
                        if m_idx == idx {
                            continue;
                        }
                        let m_val = if inv ^ m_inv { !v } else { v };
                        let m_cur = values[m_idx];
                        let set = v.known() & !m_cur.known() & !forced[m_idx];
                        if set != 0 {
                            values[m_idx].one |= m_val.one & set;
                            values[m_idx].zero |= m_val.zero & set;
                            if order_pos[m_idx] < order_pos[idx] {
                                needs_repass = true;
                            }
                        }
                        conflicts.record(m_val.mismatch_lanes(m_cur) & active, member, frame);
                    }
                }
            }
        }
    }
    needs_repass
}

/// Evaluates all combinational gates of one packed frame to a fixed point —
/// the word-parallel mirror of `CombEvaluator::eval`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn eval_frame_packed(
    netlist: &Netlist,
    order: &[NodeId],
    order_pos: &[u32],
    values: &mut [PackedWord],
    forced: &[u64],
    equiv: Option<&EquivClasses>,
    active: u64,
    frame: usize,
    conflicts: &mut LaneConflicts,
    fanin_buf: &mut Vec<PackedWord>,
) {
    // A single topological pass suffices unless equivalence forwarding pushed
    // a value backwards; iterate to fixpoint only in that (rare) case.
    let max_passes = if equiv.is_some() {
        order.len().max(1)
    } else {
        1
    };
    for _ in 0..max_passes {
        let needs_repass = eval_pass_packed(
            netlist, order, order_pos, values, forced, equiv, active, frame, conflicts, fanin_buf,
        );
        if !needs_repass {
            break;
        }
    }
}

/// Unpacks one lane of a packed frame into a scalar value vector.
pub(crate) fn unpack_lane(frame: &[PackedWord], lane: usize) -> Vec<Logic3> {
    let bit = 1u64 << lane;
    frame
        .iter()
        .map(|w| {
            if w.one & bit != 0 {
                Logic3::One
            } else if w.zero & bit != 0 {
                Logic3::Zero
            } else {
                Logic3::X
            }
        })
        .collect()
}

/// Read access to one multi-frame three-valued trace, abstracting over the
/// scalar [`Trace`](crate::Trace) and a lane of [`PackedTraces`]. Learning
/// extraction is generic over this trait, so the packed batch results are
/// consumed in place — no per-lane unpacking into `Vec<Logic3>` frames.
pub trait TraceRead {
    /// Number of simulated frames.
    fn num_frames(&self) -> usize;
    /// Number of nodes per frame.
    fn num_nodes(&self) -> usize;
    /// Value of `node` in `frame`.
    fn value(&self, frame: usize, node: NodeId) -> Logic3;
    /// First contradiction observed, if any.
    fn conflict(&self) -> Option<Conflict>;
    /// Returns `true` when frames `a` and `b` hold identical values.
    fn frames_equal(&self, a: usize, b: usize) -> bool;

    /// Order-sensitive 64-bit fingerprint of one frame's values. Equal frames
    /// have equal fingerprints; callers use it as an O(nodes) prefilter and
    /// confirm candidate matches with [`TraceRead::frames_equal`].
    fn frame_fingerprint(&self, frame: usize) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for idx in 0..self.num_nodes() {
            let v = self.value(frame, NodeId(idx as u32)) as u64;
            h = (h ^ v).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// All nodes holding a binary value in `frame`, as `(node, value)` pairs.
    fn binary_assignments(&self, frame: usize) -> impl Iterator<Item = (NodeId, bool)> + '_ {
        (0..self.num_nodes()).filter_map(move |idx| {
            let node = NodeId(idx as u32);
            self.value(frame, node).to_bool().map(|b| (node, b))
        })
    }
}

/// The result of a packed batch run: per-frame packed words shared by all
/// lanes, plus per-lane frame counts, conflicts and repeat flags. Obtain a
/// per-lane view with [`PackedTraces::lane`].
#[derive(Debug, Clone)]
pub struct PackedTraces {
    pub(crate) num_nodes: usize,
    pub(crate) frames: Vec<Vec<PackedWord>>,
    pub(crate) lane_frames: Vec<usize>,
    pub(crate) conflicts: Vec<Option<Conflict>>,
    pub(crate) repeated: u64,
}

impl PackedTraces {
    /// Number of lanes (jobs) in the batch.
    pub fn lanes(&self) -> usize {
        self.lane_frames.len()
    }

    /// The trace of one lane, as a zero-copy view.
    pub fn lane(&self, lane: usize) -> LaneTrace<'_> {
        assert!(lane < self.lanes());
        LaneTrace { batch: self, lane }
    }

    /// Unpacks one lane into an owned scalar [`Trace`](crate::Trace).
    pub fn to_trace(&self, lane: usize) -> crate::Trace {
        crate::inject::trace_from_parts(
            self.frames[..self.lane_frames[lane]]
                .iter()
                .map(|f| unpack_lane(f, lane))
                .collect(),
            self.conflicts[lane],
            self.repeated >> lane & 1 == 1,
        )
    }
}

/// Zero-copy view of one lane of a [`PackedTraces`].
#[derive(Debug, Clone, Copy)]
pub struct LaneTrace<'a> {
    batch: &'a PackedTraces,
    lane: usize,
}

impl LaneTrace<'_> {
    /// `true` when the lane stopped because its sequential state repeated.
    pub fn repeated(&self) -> bool {
        self.batch.repeated >> self.lane & 1 == 1
    }
}

impl TraceRead for LaneTrace<'_> {
    fn num_frames(&self) -> usize {
        self.batch.lane_frames[self.lane]
    }

    fn num_nodes(&self) -> usize {
        self.batch.num_nodes
    }

    #[inline]
    fn value(&self, frame: usize, node: NodeId) -> Logic3 {
        debug_assert!(frame < self.num_frames());
        self.batch.frames[frame][node.index()].get(self.lane)
    }

    fn conflict(&self) -> Option<Conflict> {
        self.batch.conflicts[self.lane]
    }

    fn frames_equal(&self, a: usize, b: usize) -> bool {
        let lane_bit = 1u64 << self.lane;
        self.batch.frames[a]
            .iter()
            .zip(&self.batch.frames[b])
            .all(|(wa, wb)| ((wa.zero ^ wb.zero) | (wa.one ^ wb.one)) & lane_bit == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_gate3;

    const VALUES: [Logic3; 3] = [Logic3::Zero, Logic3::One, Logic3::X];

    #[test]
    fn splat_get_set_round_trip() {
        for v in VALUES {
            let w = PackedWord::splat(v);
            for lane in [0usize, 1, 31, 63] {
                assert_eq!(w.get(lane), v);
            }
        }
        let mut w = PackedWord::ALL_X;
        w.set(5, Logic3::One);
        w.set(6, Logic3::Zero);
        w.set(5, Logic3::Zero); // overwrite
        assert_eq!(w.get(5), Logic3::Zero);
        assert_eq!(w.get(6), Logic3::Zero);
        assert_eq!(w.get(7), Logic3::X);
        assert_eq!(w.known(), 0b110_0000);
    }

    #[test]
    fn packed_gates_match_scalar_exhaustively_on_two_inputs() {
        // Pack all 9 two-input three-valued combinations into lanes 0..9 and
        // compare every gate against the scalar evaluator.
        let mut a = PackedWord::ALL_X;
        let mut b = PackedWord::ALL_X;
        let mut combos = Vec::new();
        for (lane, (va, vb)) in VALUES
            .iter()
            .flat_map(|&va| VALUES.iter().map(move |&vb| (va, vb)))
            .enumerate()
        {
            a.set(lane, va);
            b.set(lane, vb);
            combos.push((va, vb));
        }
        for gate in GateType::ALL {
            if matches!(
                gate,
                GateType::Not | GateType::Buf | GateType::Const0 | GateType::Const1
            ) {
                continue;
            }
            let packed = eval_gate3x64(gate, &[a, b]);
            for (lane, &(va, vb)) in combos.iter().enumerate() {
                let scalar = eval_gate3(gate, [va, vb].into_iter());
                assert_eq!(packed.get(lane), scalar, "{gate} {va} {vb}");
            }
        }
    }

    #[test]
    fn packed_unary_and_const_gates() {
        let mut a = PackedWord::ALL_X;
        a.set(0, Logic3::Zero);
        a.set(1, Logic3::One);
        let not = eval_gate3x64(GateType::Not, &[a]);
        assert_eq!(not.get(0), Logic3::One);
        assert_eq!(not.get(1), Logic3::Zero);
        assert_eq!(not.get(2), Logic3::X);
        assert_eq!(eval_gate3x64(GateType::Buf, &[a]), a);
        assert_eq!(eval_gate3x64(GateType::Not, &[]), PackedWord::ALL_X);
        assert_eq!(
            eval_gate3x64(GateType::Const0, &[]),
            PackedWord::splat(Logic3::Zero)
        );
        assert_eq!(
            eval_gate3x64(GateType::Const1, &[]),
            PackedWord::splat(Logic3::One)
        );
    }

    #[test]
    fn planes_stay_disjoint() {
        let mut a = PackedWord::ALL_X;
        let mut b = PackedWord::ALL_X;
        for lane in 0..64 {
            a.set(lane, VALUES[lane % 3]);
            b.set(lane, VALUES[(lane / 3) % 3]);
        }
        for gate in GateType::ALL {
            let out = eval_gate3x64(gate, &[a, b]);
            assert_eq!(out.zero & out.one, 0, "{gate} planes overlap");
        }
    }

    #[test]
    fn mismatch_and_eq_lanes() {
        let mut a = PackedWord::ALL_X;
        let mut b = PackedWord::ALL_X;
        a.set(0, Logic3::One);
        b.set(0, Logic3::Zero); // mismatch
        a.set(1, Logic3::One);
        b.set(1, Logic3::One); // equal binary
        a.set(2, Logic3::Zero); // vs X: neither mismatch nor equal
        assert_eq!(a.mismatch_lanes(b), 0b001);
        assert_eq!(a.eq_lanes(b) & 0b111, 0b010);
    }

    #[test]
    fn lane_conflicts_keep_the_first() {
        let mut c = LaneConflicts::new(4);
        c.record(0b0101, NodeId(7), 2);
        c.record(0b0011, NodeId(9), 3);
        assert_eq!(c.mask(), 0b0111);
        let first = c.take();
        assert_eq!(
            first[0],
            Some(Conflict {
                node: NodeId(7),
                frame: 2
            })
        );
        assert_eq!(
            first[1],
            Some(Conflict {
                node: NodeId(9),
                frame: 3
            })
        );
        assert_eq!(
            first[2],
            Some(Conflict {
                node: NodeId(7),
                frame: 2
            })
        );
        assert_eq!(first[3], None);
    }
}
