//! Exhaustive steady-state reachability oracle for small circuits.
//!
//! The learned relations of the paper (same-frame implications between
//! flip-flops or between gates and flip-flops, and tied gates) are claims about
//! every state the circuit can be in after sufficiently many clock cycles,
//! *regardless of the power-up state*. For circuits with a small number of
//! state bits and inputs this can be checked exhaustively: iterate the image of
//! the universal state set until it stops shrinking — the fixpoint is exactly
//! the set of "steady" states in which every sound learned relation must hold.
//!
//! The oracle is the ground truth used by the test-suite to prove the learning
//! engine sound.

use sla_netlist::levelize::{levelize, Levelization};
use sla_netlist::{Netlist, NodeId, NodeKind};
use std::fmt;

/// Errors produced when the oracle cannot be built for a circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleError {
    /// The circuit has too many state bits or inputs for exhaustive analysis.
    TooLarge {
        /// Number of sequential elements.
        state_bits: usize,
        /// Number of primary inputs.
        input_bits: usize,
    },
    /// The circuit uses features the oracle does not model (unconstrained
    /// set/reset, multiple-port latches, multiple clock domains).
    Unsupported(String),
    /// Structural error (for example a combinational cycle).
    Netlist(sla_netlist::NetlistError),
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleError::TooLarge {
                state_bits,
                input_bits,
            } => write!(
                f,
                "circuit too large for exhaustive oracle ({state_bits} state bits, {input_bits} inputs)"
            ),
            OracleError::Unsupported(m) => write!(f, "oracle does not model: {m}"),
            OracleError::Netlist(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for OracleError {}

impl From<sla_netlist::NetlistError> for OracleError {
    fn from(e: sla_netlist::NetlistError) -> Self {
        OracleError::Netlist(e)
    }
}

/// Exhaustive reachability oracle. See the module documentation.
#[derive(Debug, Clone)]
pub struct StateOracle<'a> {
    netlist: &'a Netlist,
    levels: Levelization,
    ffs: Vec<NodeId>,
    pis: Vec<NodeId>,
    steady: Vec<u64>,
}

impl<'a> StateOracle<'a> {
    /// Default limit on `state_bits + input_bits` for exhaustive enumeration.
    pub const DEFAULT_BIT_LIMIT: usize = 24;

    /// Builds the oracle and computes the steady-state set.
    ///
    /// # Errors
    ///
    /// * [`OracleError::TooLarge`] when `#FFs + #PIs` exceeds `bit_limit`.
    /// * [`OracleError::Unsupported`] for circuits with unconstrained set/reset,
    ///   multiple-port latches or more than one clock domain.
    /// * [`OracleError::Netlist`] when levelization fails.
    pub fn build(netlist: &'a Netlist, bit_limit: usize) -> Result<Self, OracleError> {
        let ffs: Vec<NodeId> = netlist.sequential_elements().collect();
        let pis: Vec<NodeId> = netlist.inputs().to_vec();
        if ffs.len() + pis.len() > bit_limit || ffs.len() >= 32 {
            return Err(OracleError::TooLarge {
                state_bits: ffs.len(),
                input_bits: pis.len(),
            });
        }
        let mut class = None;
        for &ff in &ffs {
            let info = netlist.seq_info(ff).expect("sequential element");
            if info.ports > 1 {
                return Err(OracleError::Unsupported("multiple-port latches".into()));
            }
            if info.set.is_unconstrained() || info.reset.is_unconstrained() {
                return Err(OracleError::Unsupported(
                    "unconstrained set/reset lines".into(),
                ));
            }
            let key = info.class_key();
            match class {
                None => class = Some(key),
                Some(k) if k == key => {}
                Some(_) => {
                    return Err(OracleError::Unsupported(
                        "multiple clock domains or mixed latch/flip-flop classes".into(),
                    ))
                }
            }
        }
        let levels = levelize(netlist)?;
        let mut oracle = StateOracle {
            netlist,
            levels,
            ffs,
            pis,
            steady: Vec::new(),
        };
        oracle.compute_steady_states();
        Ok(oracle)
    }

    /// Sequential elements in the bit order used by state codes.
    pub fn state_bits(&self) -> &[NodeId] {
        &self.ffs
    }

    /// The steady-state set, as sorted state codes (bit *i* = value of
    /// `state_bits()[i]`).
    pub fn steady_states(&self) -> &[u64] {
        &self.steady
    }

    /// Number of steady states.
    pub fn num_steady(&self) -> usize {
        self.steady.len()
    }

    /// Density of encoding in basis points (1/100 of a percent): steady
    /// states divided by all `2^n` states, so 10000 means every state is
    /// reachable. The paper identifies a low density of encoding as the key
    /// driver of sequential ATPG complexity.
    ///
    /// Integer on purpose: the determinism contract keeps float arithmetic
    /// out of the pipeline crates (`sla-lint` rule `float-arith`).
    pub fn density_of_encoding_bp(&self) -> u32 {
        let total = 1u128 << self.ffs.len();
        (self.steady.len() as u128 * 10_000 / total) as u32
    }

    /// Checks that the same-frame implication `a = va  ->  b = vb` holds in
    /// every steady state under every input combination.
    pub fn implication_holds(&self, a: NodeId, va: bool, b: NodeId, vb: bool) -> bool {
        self.for_all_evaluations(|values| {
            if values[a.index()] == va {
                values[b.index()] == vb
            } else {
                true
            }
        })
    }

    /// Checks that `node` always evaluates to `value` in every steady state
    /// under every input combination (a sequentially tied gate).
    pub fn tie_holds(&self, node: NodeId, value: bool) -> bool {
        self.for_all_evaluations(|values| values[node.index()] == value)
    }

    /// Runs `check` on the full node valuation of every (steady state, input)
    /// pair; returns `true` when the predicate holds everywhere.
    fn for_all_evaluations(&self, mut check: impl FnMut(&[bool]) -> bool) -> bool {
        let mut values = vec![false; self.netlist.num_nodes()];
        for &state in &self.steady {
            for input in 0..(1u64 << self.pis.len()) {
                self.eval_frame(state, input, &mut values);
                if !check(&values) {
                    return false;
                }
            }
        }
        true
    }

    fn compute_steady_states(&mut self) {
        let nbits = self.ffs.len();
        let total = 1usize << nbits;
        let mut current = vec![true; total];
        let mut values = vec![false; self.netlist.num_nodes()];
        loop {
            let mut next = vec![false; total];
            let mut next_count = 0usize;
            for state in 0..total as u64 {
                if !current[state as usize] {
                    continue;
                }
                for input in 0..(1u64 << self.pis.len()) {
                    self.eval_frame(state, input, &mut values);
                    let succ = self.next_state(&values);
                    if !next[succ as usize] {
                        next[succ as usize] = true;
                        next_count += 1;
                    }
                }
            }
            // The image of a set of states is a subset of the universal set; the
            // iteration is monotonically decreasing once intersected with the
            // previous set, and reaches a fixpoint in at most 2^n steps.
            let intersect: Vec<bool> = current.iter().zip(&next).map(|(&a, &b)| a && b).collect();
            let same = intersect == current;
            current = if next_count == 0 { next } else { intersect };
            if same || next_count == 0 {
                break;
            }
        }
        self.steady = (0..total as u64).filter(|&s| current[s as usize]).collect();
    }

    /// Two-valued evaluation of one frame from a packed state and input code.
    fn eval_frame(&self, state: u64, input: u64, values: &mut [bool]) {
        for (i, &ff) in self.ffs.iter().enumerate() {
            values[ff.index()] = (state >> i) & 1 == 1;
        }
        for (i, &pi) in self.pis.iter().enumerate() {
            values[pi.index()] = (input >> i) & 1 == 1;
        }
        for &id in self.levels.order() {
            let node = self.netlist.node(id);
            let NodeKind::Gate(gate) = node.kind else {
                continue;
            };
            values[id.index()] = eval2(gate, node.fanins.iter().map(|f| values[f.index()]));
        }
    }

    fn next_state(&self, values: &[bool]) -> u64 {
        let mut s = 0u64;
        for (i, &ff) in self.ffs.iter().enumerate() {
            let data = self.netlist.fanins(ff)[0];
            if values[data.index()] {
                s |= 1 << i;
            }
        }
        s
    }
}

/// Two-valued gate evaluation.
fn eval2(gate: sla_netlist::GateType, mut fanins: impl Iterator<Item = bool>) -> bool {
    use sla_netlist::GateType as G;
    match gate {
        G::And => fanins.all(|b| b),
        G::Nand => !fanins.all(|b| b),
        G::Or => fanins.any(|b| b),
        G::Nor => !fanins.any(|b| b),
        G::Xor => fanins.fold(false, |a, b| a ^ b),
        G::Xnor => !fanins.fold(false, |a, b| a ^ b),
        G::Not => !fanins.next().unwrap_or(false),
        G::Buf => fanins.next().unwrap_or(false),
        G::Const0 => false,
        G::Const1 => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sla_netlist::{GateType, LineConstraint, NetlistBuilder, SeqInfo};

    /// Two flip-flops that can never both be 1 in steady state:
    /// f1 <- a AND NOT f2, f2 <- b AND NOT f1 ... actually use a one-hot-ish
    /// pair: f1 <- a AND NOT f2, f2 <- NOT a AND NOT f1.
    fn exclusive_pair() -> Netlist {
        let mut b = NetlistBuilder::new("excl");
        b.input("a");
        b.gate("nf2", GateType::Not, &["f2"]).unwrap();
        b.gate("nf1", GateType::Not, &["f1"]).unwrap();
        b.gate("na", GateType::Not, &["a"]).unwrap();
        b.gate("d1", GateType::And, &["a", "nf2"]).unwrap();
        b.gate("d2", GateType::And, &["na", "nf1"]).unwrap();
        b.dff("f1", "d1").unwrap();
        b.dff("f2", "d2").unwrap();
        b.output("f1").unwrap();
        b.output("f2").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn steady_states_exclude_unreachable_combination() {
        let n = exclusive_pair();
        let oracle = StateOracle::build(&n, StateOracle::DEFAULT_BIT_LIMIT).unwrap();
        // State (f1=1, f2=1) requires a AND !a in the previous frame - invalid.
        let f1 = n.require("f1").unwrap();
        let f2 = n.require("f2").unwrap();
        let bit = |ff: NodeId| oracle.state_bits().iter().position(|&x| x == ff).unwrap();
        let both = (1u64 << bit(f1)) | (1u64 << bit(f2));
        assert!(!oracle.steady_states().contains(&both));
        assert!(oracle.num_steady() >= 2);
        assert!(oracle.density_of_encoding_bp() < 10_000);
    }

    #[test]
    fn implication_and_tie_checks() {
        let n = exclusive_pair();
        let oracle = StateOracle::build(&n, StateOracle::DEFAULT_BIT_LIMIT).unwrap();
        let f1 = n.require("f1").unwrap();
        let f2 = n.require("f2").unwrap();
        // f1=1 -> f2=0 holds; f1=0 -> f2=1 does not (both can be 0).
        assert!(oracle.implication_holds(f1, true, f2, false));
        assert!(!oracle.implication_holds(f1, false, f2, true));
        // Nothing is tied in this circuit.
        assert!(!oracle.tie_holds(f1, false));
        let d1 = n.require("d1").unwrap();
        assert!(!oracle.tie_holds(d1, true));
    }

    #[test]
    fn tied_gate_is_recognised() {
        let mut b = NetlistBuilder::new("tied");
        b.input("a");
        b.gate("na", GateType::Not, &["a"]).unwrap();
        b.gate("t", GateType::And, &["a", "na"]).unwrap();
        b.gate("d", GateType::Or, &["t", "a"]).unwrap();
        b.dff("q", "d").unwrap();
        b.output("q").unwrap();
        let n = b.build().unwrap();
        let oracle = StateOracle::build(&n, StateOracle::DEFAULT_BIT_LIMIT).unwrap();
        let t = n.require("t").unwrap();
        assert!(oracle.tie_holds(t, false));
        assert!(!oracle.tie_holds(t, true));
    }

    #[test]
    fn rejects_unsupported_features() {
        let mut b = NetlistBuilder::new("sr");
        b.input("a");
        b.seq(
            "q",
            "a",
            SeqInfo {
                set: LineConstraint::Unconstrained,
                ..SeqInfo::default()
            },
        )
        .unwrap();
        b.output("q").unwrap();
        let n = b.build().unwrap();
        assert!(matches!(
            StateOracle::build(&n, 24),
            Err(OracleError::Unsupported(_))
        ));
    }

    #[test]
    fn rejects_oversized_circuits() {
        let mut b = NetlistBuilder::new("big");
        for i in 0..30 {
            b.input(&format!("i{i}"));
        }
        b.gate("g", GateType::And, &["i0", "i1"]).unwrap();
        b.output("g").unwrap();
        let n = b.build().unwrap();
        assert!(matches!(
            StateOracle::build(&n, 24),
            Err(OracleError::TooLarge { .. })
        ));
    }

    #[test]
    fn free_running_counter_keeps_all_states() {
        // f1 <- NOT f1 : both states recur forever.
        let mut b = NetlistBuilder::new("osc");
        b.gate("d", GateType::Not, &["f1"]).unwrap();
        b.dff("f1", "d").unwrap();
        b.output("f1").unwrap();
        let n = b.build().unwrap();
        let oracle = StateOracle::build(&n, 24).unwrap();
        assert_eq!(oracle.num_steady(), 2);
        assert_eq!(oracle.density_of_encoding_bp(), 10_000);
    }
}
