//! Single-frame evaluation of the combinational logic.

use crate::equiv::EquivClasses;
use crate::eval::eval_gate3_at;
use crate::value::Logic3;
use crate::Result;
use sla_netlist::levelize::{levelize, Levelization};
use sla_netlist::{Netlist, NodeId, NodeKind};

/// Evaluates the combinational gates of one time frame in levelized order.
///
/// Values live in a caller-owned `Vec<Logic3>` indexed by [`NodeId`]; primary
/// inputs and sequential-element outputs are frame inputs and are read, never
/// written. Nodes marked *forced* (injected stems, learned tied gates) keep
/// their value; if evaluation computes a contradictory binary value for a
/// forced gate, the contradiction is reported to the caller.
#[derive(Debug, Clone)]
pub struct CombEvaluator<'a> {
    netlist: &'a Netlist,
    levels: Levelization,
    /// Position of every node in the levelized order, for cheap "did a value
    /// flow backwards" checks during equivalence forwarding.
    order_pos: Vec<u32>,
}

impl<'a> CombEvaluator<'a> {
    /// Builds an evaluator (levelizes the combinational logic once).
    ///
    /// # Errors
    ///
    /// Returns a levelization error if the combinational logic is cyclic.
    pub fn new(netlist: &'a Netlist) -> Result<Self> {
        let levels = levelize(netlist)?;
        let mut order_pos = vec![0u32; netlist.num_nodes()];
        for (pos, &id) in levels.order().iter().enumerate() {
            order_pos[id.index()] = pos as u32;
        }
        Ok(CombEvaluator {
            netlist,
            levels,
            order_pos,
        })
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &'a Netlist {
        self.netlist
    }

    /// The levelization computed at construction time.
    pub fn levels(&self) -> &Levelization {
        &self.levels
    }

    /// Position of every node in the levelized order (indexed by node id).
    pub(crate) fn order_pos(&self) -> &[u32] {
        &self.order_pos
    }

    /// Evaluates all combinational gates.
    ///
    /// * `values` — per-node values; length must be `netlist.num_nodes()`.
    /// * `forced` — per-node flags; forced nodes keep their current value.
    /// * `equiv` — optional combinational equivalence classes; when a class
    ///   member obtains a binary value, the other members are set accordingly
    ///   and evaluation is iterated to a fixed point.
    ///
    /// Returns the first node at which a contradiction was observed (a forced
    /// node whose computed or equivalence-propagated value is the opposite
    /// binary value), or `None` if evaluation completed without conflict.
    pub fn eval(
        &self,
        values: &mut [Logic3],
        forced: &[bool],
        equiv: Option<&EquivClasses>,
    ) -> Option<NodeId> {
        debug_assert_eq!(values.len(), self.netlist.num_nodes());
        debug_assert_eq!(forced.len(), self.netlist.num_nodes());
        let mut conflict = None;
        // A single topological pass suffices unless equivalence forwarding
        // pushed a value backwards in the order; iterate to fixpoint only in
        // that (rare) case.
        let max_passes = if equiv.is_some() {
            self.levels.order().len().max(1)
        } else {
            1
        };
        for _ in 0..max_passes {
            let needs_repass = self.eval_pass(values, forced, equiv, &mut conflict);
            if !needs_repass {
                break;
            }
        }
        conflict
    }

    fn eval_pass(
        &self,
        values: &mut [Logic3],
        forced: &[bool],
        equiv: Option<&EquivClasses>,
        conflict: &mut Option<NodeId>,
    ) -> bool {
        let mut needs_repass = false;
        for &id in self.levels.order() {
            let node = self.netlist.node(id);
            let NodeKind::Gate(gate) = node.kind else {
                continue;
            };
            let computed = eval_gate3_at(gate, node.fanins, values);
            let idx = id.index();
            if forced[idx] {
                if computed.is_binary()
                    && values[idx].is_binary()
                    && computed != values[idx]
                    && conflict.is_none()
                {
                    *conflict = Some(id);
                }
            } else if computed.is_binary() {
                // Evaluation is monotone: it only ever adds information
                // (X -> binary). A binary value that disagrees with one that was
                // propagated earlier (e.g. through an equivalence class) is a
                // genuine contradiction.
                if values[idx] == Logic3::X {
                    values[idx] = computed;
                } else if values[idx] != computed && conflict.is_none() {
                    *conflict = Some(id);
                }
            }
            // Equivalence forwarding: propagate a binary value to all members
            // of the node's combinational equivalence class. Only a write to a
            // node *behind* the cursor forces another pass; writes ahead are
            // consumed by this pass.
            if let Some(eq) = equiv {
                if let Some(v) = values[idx].to_bool() {
                    if let Some((class, inv)) = eq.class_of(id) {
                        let rep_value = v ^ inv;
                        for &(member, m_inv) in eq.members(class) {
                            let m_idx = member.index();
                            if m_idx == idx {
                                continue;
                            }
                            let m_val = Logic3::from_bool(rep_value ^ m_inv);
                            if values[m_idx] == Logic3::X && !forced[m_idx] {
                                values[m_idx] = m_val;
                                if self.order_pos[m_idx] < self.order_pos[idx] {
                                    needs_repass = true;
                                }
                            } else if values[m_idx].is_binary()
                                && values[m_idx] != m_val
                                && conflict.is_none()
                            {
                                *conflict = Some(member);
                            }
                        }
                    }
                }
            }
        }
        needs_repass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sla_netlist::{GateType, NetlistBuilder};

    fn values(n: &Netlist) -> Vec<Logic3> {
        vec![Logic3::X; n.num_nodes()]
    }

    #[test]
    fn evaluates_simple_logic() {
        let mut b = NetlistBuilder::new("t");
        b.input("a");
        b.input("b");
        b.gate("g", GateType::And, &["a", "b"]).unwrap();
        b.gate("h", GateType::Nor, &["g", "a"]).unwrap();
        b.output("h").unwrap();
        let n = b.build().unwrap();
        let ev = CombEvaluator::new(&n).unwrap();
        let mut v = values(&n);
        let forced = vec![false; n.num_nodes()];
        v[n.require("a").unwrap().index()] = Logic3::One;
        v[n.require("b").unwrap().index()] = Logic3::One;
        assert!(ev.eval(&mut v, &forced, None).is_none());
        assert_eq!(v[n.require("g").unwrap().index()], Logic3::One);
        assert_eq!(v[n.require("h").unwrap().index()], Logic3::Zero);
    }

    #[test]
    fn x_inputs_stay_unknown_where_appropriate() {
        let mut b = NetlistBuilder::new("t");
        b.input("a");
        b.input("b");
        b.gate("g", GateType::And, &["a", "b"]).unwrap();
        b.output("g").unwrap();
        let n = b.build().unwrap();
        let ev = CombEvaluator::new(&n).unwrap();
        let mut v = values(&n);
        let forced = vec![false; n.num_nodes()];
        v[n.require("a").unwrap().index()] = Logic3::One;
        ev.eval(&mut v, &forced, None);
        assert_eq!(v[n.require("g").unwrap().index()], Logic3::X);
        // Controlling value decides regardless of the X.
        v[n.require("a").unwrap().index()] = Logic3::Zero;
        ev.eval(&mut v, &forced, None);
        assert_eq!(v[n.require("g").unwrap().index()], Logic3::Zero);
    }

    #[test]
    fn forced_gate_conflict_is_reported() {
        let mut b = NetlistBuilder::new("t");
        b.input("a");
        b.gate("g", GateType::Buf, &["a"]).unwrap();
        b.output("g").unwrap();
        let n = b.build().unwrap();
        let ev = CombEvaluator::new(&n).unwrap();
        let mut v = values(&n);
        let mut forced = vec![false; n.num_nodes()];
        let g = n.require("g").unwrap();
        let a = n.require("a").unwrap();
        v[a.index()] = Logic3::One;
        v[g.index()] = Logic3::Zero; // force g = 0 while its fanin says 1
        forced[g.index()] = true;
        assert_eq!(ev.eval(&mut v, &forced, None), Some(g));
        // The forced value is preserved.
        assert_eq!(v[g.index()], Logic3::Zero);
    }

    #[test]
    fn forced_gate_without_contradiction_is_fine() {
        let mut b = NetlistBuilder::new("t");
        b.input("a");
        b.gate("g", GateType::Buf, &["a"]).unwrap();
        b.gate("h", GateType::Not, &["g"]).unwrap();
        b.output("h").unwrap();
        let n = b.build().unwrap();
        let ev = CombEvaluator::new(&n).unwrap();
        let mut v = values(&n);
        let mut forced = vec![false; n.num_nodes()];
        let g = n.require("g").unwrap();
        v[g.index()] = Logic3::One; // a is X, so no contradiction
        forced[g.index()] = true;
        assert!(ev.eval(&mut v, &forced, None).is_none());
        assert_eq!(v[n.require("h").unwrap().index()], Logic3::Zero);
    }
}
