//! Forward multi-time-frame injection simulation — the substrate of the
//! sequential learning technique.
//!
//! Learning works by forcing a value on one or more nodes at given time frames
//! and simulating *forward only*: through the combinational logic of the frame
//! and across sequential elements into the next frame, subject to the
//! real-circuit propagation rules of the paper (§3.3):
//!
//! * values never cross multiple-port latches,
//! * values never cross elements with both set and reset unconstrained,
//! * with a single unconstrained set (reset), only a 1 (0) crosses,
//! * only the sequential elements of the clock class being learned propagate.
//!
//! Simulation stops at a frame limit or when the sequential state repeats over
//! two consecutive frames (and no later injections are pending). A conflict —
//! an injected or tied node contradicted by simulation — is reported to the
//! caller; the learning engine interprets it as a tied target (paper §3.2).

use crate::equiv::EquivClasses;
use crate::frame::CombEvaluator;
use crate::packed::{eval_frame_packed, LaneConflicts, PackedTraces, PackedWord, TraceRead};
use crate::value::Logic3;
use crate::Result;
use sla_netlist::{Netlist, NodeId};

/// A single forced assignment: `node = value` at time frame `frame`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Injection {
    /// Node whose value is forced.
    pub node: NodeId,
    /// Forced logic value.
    pub value: bool,
    /// Time frame (0-based) at which the value is forced.
    pub frame: usize,
}

impl Injection {
    /// Creates an injection of `value` on `node` at `frame`.
    pub fn new(node: NodeId, value: bool, frame: usize) -> Self {
        Injection { node, value, frame }
    }
}

/// Options controlling a forward simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOptions {
    /// Maximum number of time frames simulated (the paper uses 50).
    pub max_frames: usize,
    /// Stop early when the sequential state repeats over two consecutive frames.
    pub stop_on_repeat: bool,
    /// Apply the set/reset and multiple-port-latch propagation rules.
    pub respect_seq_rules: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            max_frames: 50,
            stop_on_repeat: true,
            respect_seq_rules: true,
        }
    }
}

/// A contradiction observed during simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conflict {
    /// Node at which the contradiction was observed.
    pub node: NodeId,
    /// Frame in which it was observed.
    pub frame: usize,
}

/// The result of a forward simulation run: per-frame values for every node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    frames: Vec<Vec<Logic3>>,
    /// First contradiction observed, if any (simulation stops there).
    pub conflict: Option<Conflict>,
    /// `true` when simulation stopped because the state repeated.
    pub repeated: bool,
}

impl Trace {
    /// Number of simulated frames.
    pub fn num_frames(&self) -> usize {
        self.frames.len()
    }

    /// Value of `node` in `frame`.
    ///
    /// # Panics
    ///
    /// Panics if `frame >= self.num_frames()`.
    pub fn value(&self, frame: usize, node: NodeId) -> Logic3 {
        self.frames[frame][node.index()]
    }

    /// All nodes holding a binary value in `frame`, as `(node, value)` pairs.
    pub fn assignments(&self, frame: usize) -> impl Iterator<Item = (NodeId, bool)> + '_ {
        self.frames[frame]
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.to_bool().map(|b| (NodeId(i as u32), b)))
    }

    /// Raw values of a frame.
    pub fn frame(&self, frame: usize) -> &[Logic3] {
        &self.frames[frame]
    }
}

/// Crate-internal constructor used by [`PackedTraces::to_trace`].
pub(crate) fn trace_from_parts(
    frames: Vec<Vec<Logic3>>,
    conflict: Option<Conflict>,
    repeated: bool,
) -> Trace {
    Trace {
        frames,
        conflict,
        repeated,
    }
}

impl TraceRead for Trace {
    fn num_frames(&self) -> usize {
        self.frames.len()
    }

    fn num_nodes(&self) -> usize {
        self.frames.first().map(|f| f.len()).unwrap_or(0)
    }

    #[inline]
    fn value(&self, frame: usize, node: NodeId) -> Logic3 {
        self.frames[frame][node.index()]
    }

    fn conflict(&self) -> Option<Conflict> {
        self.conflict
    }

    fn frames_equal(&self, a: usize, b: usize) -> bool {
        self.frames[a] == self.frames[b]
    }
}

/// Forward multi-frame three-valued simulator with value injection.
///
/// The simulator owns per-run-invariant learning state — previously learned
/// tied gates (forced as constants), combinational equivalence classes and the
/// active clock class — so that the per-stem inner loop of the learning engine
/// is allocation-light.
#[derive(Debug, Clone)]
pub struct InjectionSim<'a> {
    eval: CombEvaluator<'a>,
    equiv: Option<EquivClasses>,
    tied: Vec<(NodeId, bool)>,
    active_seq: Option<Vec<bool>>,
}

impl<'a> InjectionSim<'a> {
    /// Builds a simulator for `netlist`.
    ///
    /// # Errors
    ///
    /// Returns an error if the combinational logic cannot be levelized.
    pub fn new(netlist: &'a Netlist) -> Result<Self> {
        Ok(InjectionSim {
            eval: CombEvaluator::new(netlist)?,
            equiv: None,
            tied: Vec::new(),
            active_seq: None,
        })
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &'a Netlist {
        self.eval.netlist()
    }

    /// Enables combinational-equivalence value forwarding during simulation.
    pub fn set_equivalences(&mut self, classes: EquivClasses) {
        self.equiv = if classes.is_empty() {
            None
        } else {
            Some(classes)
        };
    }

    /// Disables equivalence forwarding.
    pub fn clear_equivalences(&mut self) {
        self.equiv = None;
    }

    /// Replaces the set of known tied gates, forced as constants in every frame.
    pub fn set_tied(&mut self, tied: Vec<(NodeId, bool)>) {
        self.tied = tied;
    }

    /// Adds one tied gate.
    pub fn add_tied(&mut self, node: NodeId, value: bool) {
        if !self.tied.iter().any(|&(n, _)| n == node) {
            self.tied.push((node, value));
        }
    }

    /// Currently registered tied gates.
    pub fn tied(&self) -> &[(NodeId, bool)] {
        &self.tied
    }

    /// Restricts propagation across sequential elements to those for which the
    /// mask (indexed by node id) is `true`; `None` activates all of them.
    pub fn set_active_sequential(&mut self, mask: Option<Vec<bool>>) {
        self.active_seq = mask;
    }

    /// Runs a forward simulation with the given injections.
    ///
    /// Frames are simulated starting at 0. All injections must have
    /// `frame < options.max_frames`; later ones never take effect.
    pub fn run(&self, injections: &[Injection], options: &SimOptions) -> Trace {
        let netlist = self.eval.netlist();
        let n = netlist.num_nodes();
        let mut state: Vec<Logic3> = vec![Logic3::X; n];
        let mut frames = Vec::new();
        let mut conflict: Option<Conflict> = None;
        let mut repeated = false;

        for t in 0..options.max_frames {
            let mut values = vec![Logic3::X; n];
            let mut forced = vec![false; n];

            // Previously learned tied gates hold their constant in every frame.
            for &(node, v) in &self.tied {
                values[node.index()] = Logic3::from_bool(v);
                forced[node.index()] = true;
            }

            // Sequential state propagated from the previous frame.
            for s in netlist.sequential_elements() {
                let idx = s.index();
                let incoming = state[idx];
                if forced[idx] {
                    if let (Some(a), Some(b)) = (incoming.to_bool(), values[idx].to_bool()) {
                        if a != b && conflict.is_none() {
                            conflict = Some(Conflict { node: s, frame: t });
                        }
                    }
                } else {
                    values[idx] = incoming;
                }
            }

            // Injections scheduled for this frame.
            for inj in injections.iter().filter(|i| i.frame == t) {
                let idx = inj.node.index();
                let v = Logic3::from_bool(inj.value);
                if values[idx].is_binary() && values[idx] != v && conflict.is_none() {
                    conflict = Some(Conflict {
                        node: inj.node,
                        frame: t,
                    });
                }
                values[idx] = v;
                forced[idx] = true;
            }

            // Combinational evaluation of this frame.
            if let Some(c) = self.eval.eval(&mut values, &forced, self.equiv.as_ref()) {
                if conflict.is_none() {
                    conflict = Some(Conflict { node: c, frame: t });
                }
            }

            frames.push(values.clone());
            if conflict.is_some() {
                break;
            }

            // Next sequential state.
            let mut next = vec![Logic3::X; n];
            for s in netlist.sequential_elements() {
                let info = *netlist.seq_info(s).expect("sequential element");
                let data = netlist.fanins(s)[0];
                let mut v = values[data.index()];
                if let Some(b) = v.to_bool() {
                    if options.respect_seq_rules && !info.allows_propagation(b) {
                        v = Logic3::X;
                    }
                    if let Some(mask) = &self.active_seq {
                        if !mask[s.index()] {
                            v = Logic3::X;
                        }
                    }
                }
                next[s.index()] = v;
            }

            let later_injections = injections.iter().any(|i| i.frame > t);
            if options.stop_on_repeat && !later_injections {
                let same = netlist
                    .sequential_elements()
                    .all(|s| next[s.index()] == state[s.index()]);
                if same {
                    repeated = true;
                    break;
                }
            }
            state = next;
        }

        Trace {
            frames,
            conflict,
            repeated,
        }
    }

    /// Runs up to 64 independent forward simulations in one packed pass.
    ///
    /// Each element of `jobs` is an injection list exactly as accepted by
    /// [`InjectionSim::run`]; entry *i* of the result is identical (frames,
    /// conflict, state-repeat flag) to `self.run(jobs[i], options)`. The jobs
    /// share every forward pass through the word-parallel kernel of
    /// [`crate::packed`], which is what makes batched learning cheap.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 jobs are passed.
    pub fn run_batch(&self, jobs: &[&[Injection]], options: &SimOptions) -> Vec<Trace> {
        let packed = self.run_batch_impl(jobs, options, None);
        (0..packed.lanes()).map(|l| packed.to_trace(l)).collect()
    }

    /// Like [`InjectionSim::run_batch`], but returns the packed result
    /// directly; per-lane views ([`crate::packed::LaneTrace`]) read it in
    /// place with no unpacking.
    pub fn run_batch_packed(&self, jobs: &[&[Injection]], options: &SimOptions) -> PackedTraces {
        self.run_batch_impl(jobs, options, None)
    }

    /// Like [`InjectionSim::run_batch`], but lane *i* additionally stops after
    /// `limits[i]` frames: entry *i* of the result is identical to running job
    /// *i* alone with `max_frames = options.max_frames.min(limits[i])`. This
    /// lets callers pack jobs with different frame horizons (e.g. multi-node
    /// learning targets) into one pass.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 jobs are passed or `limits` has a different
    /// length than `jobs`.
    pub fn run_batch_with_limits(
        &self,
        jobs: &[&[Injection]],
        options: &SimOptions,
        limits: &[usize],
    ) -> Vec<Trace> {
        let packed = self.run_batch_with_limits_packed(jobs, options, limits);
        (0..packed.lanes()).map(|l| packed.to_trace(l)).collect()
    }

    /// Like [`InjectionSim::run_batch_with_limits`], but returns the packed
    /// result directly.
    pub fn run_batch_with_limits_packed(
        &self,
        jobs: &[&[Injection]],
        options: &SimOptions,
        limits: &[usize],
    ) -> PackedTraces {
        assert_eq!(jobs.len(), limits.len(), "one frame limit per job");
        self.run_batch_impl(jobs, options, Some(limits))
    }

    fn run_batch_impl(
        &self,
        jobs: &[&[Injection]],
        options: &SimOptions,
        limits: Option<&[usize]>,
    ) -> PackedTraces {
        let lanes = jobs.len();
        assert!(lanes <= 64, "a packed batch holds at most 64 jobs");
        let n = self.eval.netlist().num_nodes();
        if lanes == 0 {
            return PackedTraces {
                num_nodes: n,
                frames: Vec::new(),
                lane_frames: Vec::new(),
                conflicts: Vec::new(),
                repeated: 0,
            };
        }
        let lane_limit =
            |lane: usize| limits.map_or(options.max_frames, |l| l[lane].min(options.max_frames));
        let netlist = self.eval.netlist();
        let order = self.eval.levels().order();
        let order_pos = self.eval.order_pos();
        let all: u64 = if lanes == 64 {
            u64::MAX
        } else {
            (1u64 << lanes) - 1
        };

        // Per-lane frame horizon of pending injections: a lane never
        // repeat-stops while injections are still scheduled (mirroring the
        // scalar `later_injections` check, which looks at every injection
        // regardless of the frame limit).
        let last_injection: Vec<usize> = jobs
            .iter()
            .map(|job| job.iter().map(|i| i.frame).max().unwrap_or(0))
            .collect();

        // Per-lane injections sorted by frame (stable: within a frame the
        // original order is kept, as the scalar path applies them), with a
        // cursor advanced once per frame instead of a full rescan. Callers
        // usually pass frame-sorted jobs already — those are borrowed as-is.
        let sorted_jobs: Vec<std::borrow::Cow<'_, [Injection]>> = jobs
            .iter()
            .map(|job| {
                if job.windows(2).all(|w| w[0].frame <= w[1].frame) {
                    std::borrow::Cow::Borrowed(*job)
                } else {
                    let mut owned = job.to_vec();
                    owned.sort_by_key(|i| i.frame);
                    std::borrow::Cow::Owned(owned)
                }
            })
            .collect();
        let mut cursors = vec![0usize; lanes];

        let mut active = 0u64;
        let mut max_frames = 0usize;
        for lane in 0..lanes {
            if lane_limit(lane) > 0 {
                active |= 1u64 << lane;
                max_frames = max_frames.max(lane_limit(lane));
            }
        }
        let mut repeated = 0u64;
        let mut conflicts = LaneConflicts::new(lanes);
        let mut lane_frames = vec![0usize; lanes];
        let mut state = vec![PackedWord::ALL_X; n];
        let mut packed_frames: Vec<Vec<PackedWord>> = Vec::new();
        let mut fanin_buf: Vec<PackedWord> = Vec::new();

        for t in 0..max_frames {
            if active == 0 {
                break;
            }
            let mut values = vec![PackedWord::ALL_X; n];
            let mut forced = vec![0u64; n];

            // Previously learned tied gates hold their constant in every frame
            // and every lane.
            for &(node, v) in &self.tied {
                values[node.index()] = PackedWord::splat(Logic3::from_bool(v));
                forced[node.index()] = all;
            }

            // Sequential state propagated from the previous frame.
            for s in netlist.sequential_elements() {
                let idx = s.index();
                let incoming = state[idx];
                let f = forced[idx];
                conflicts.record(incoming.mismatch_lanes(values[idx]) & f & active, s, t);
                let free = !f;
                values[idx].one |= incoming.one & free;
                values[idx].zero |= incoming.zero & free;
            }

            // Injections scheduled for this frame, per lane.
            for (lane, job) in sorted_jobs.iter().enumerate() {
                let bit = 1u64 << lane;
                let cursor = &mut cursors[lane];
                while *cursor < job.len() && job[*cursor].frame == t {
                    let inj = job[*cursor];
                    *cursor += 1;
                    if active & bit == 0 {
                        continue;
                    }
                    let idx = inj.node.index();
                    let v = Logic3::from_bool(inj.value);
                    let cur = values[idx].get(lane);
                    if cur.is_binary() && cur != v {
                        conflicts.record(bit, inj.node, t);
                    }
                    values[idx].set(lane, v);
                    forced[idx] |= bit;
                }
            }

            // Combinational evaluation of this frame.
            eval_frame_packed(
                netlist,
                order,
                order_pos,
                &mut values,
                &forced,
                self.equiv.as_ref(),
                active,
                t,
                &mut conflicts,
                &mut fanin_buf,
            );

            packed_frames.push(values);
            let mut live = active;
            while live != 0 {
                let lane = live.trailing_zeros() as usize;
                live &= live - 1;
                lane_frames[lane] = t + 1;
            }
            active &= !conflicts.mask();
            if active == 0 {
                break;
            }

            // Next sequential state.
            let values = packed_frames.last().expect("frame just pushed");
            let mut next = vec![PackedWord::ALL_X; n];
            for s in netlist.sequential_elements() {
                let info = *netlist.seq_info(s).expect("sequential element");
                let data = netlist.fanins(s)[0];
                let mut v = values[data.index()];
                if options.respect_seq_rules {
                    if !info.allows_propagation(true) {
                        v.one = 0;
                    }
                    if !info.allows_propagation(false) {
                        v.zero = 0;
                    }
                }
                if let Some(mask) = &self.active_seq {
                    if !mask[s.index()] {
                        v = PackedWord::ALL_X;
                    }
                }
                next[s.index()] = v;
            }

            if options.stop_on_repeat {
                let mut same = all;
                for s in netlist.sequential_elements() {
                    same &= next[s.index()].eq_lanes(state[s.index()]);
                    if same == 0 {
                        break;
                    }
                }
                let mut no_later = 0u64;
                for (lane, &last) in last_injection.iter().enumerate() {
                    if last <= t {
                        no_later |= 1u64 << lane;
                    }
                }
                let stop = same & no_later & active;
                repeated |= stop;
                active &= !stop;
            }
            // Per-lane frame limits deactivate only after the repeat check:
            // the scalar loop also runs its repeat check during the final
            // frame of a run.
            let mut live = active;
            while live != 0 {
                let lane = live.trailing_zeros() as usize;
                live &= live - 1;
                if lane_limit(lane) == t + 1 {
                    active &= !(1u64 << lane);
                }
            }
            state = next;
        }

        PackedTraces {
            num_nodes: n,
            frames: packed_frames,
            lane_frames,
            conflicts: conflicts.take(),
            repeated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sla_netlist::{GateType, LineConstraint, NetlistBuilder, SeqInfo, SeqKind};

    /// A two-FF shift register fed by an inverter: q2 <- q1 <- NOT(a).
    fn shift_register() -> Netlist {
        let mut b = NetlistBuilder::new("shift");
        b.input("a");
        b.gate("g", GateType::Not, &["a"]).unwrap();
        b.dff("q1", "g").unwrap();
        b.dff("q2", "q1").unwrap();
        b.output("q2").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn values_travel_through_time_frames() {
        let n = shift_register();
        let sim = InjectionSim::new(&n).unwrap();
        let a = n.require("a").unwrap();
        let q1 = n.require("q1").unwrap();
        let q2 = n.require("q2").unwrap();
        let trace = sim.run(
            &[Injection::new(a, false, 0)],
            &SimOptions {
                max_frames: 4,
                stop_on_repeat: false,
                respect_seq_rules: true,
            },
        );
        assert_eq!(trace.value(0, q1), Logic3::X);
        assert_eq!(trace.value(1, q1), Logic3::One);
        assert_eq!(trace.value(1, q2), Logic3::X);
        assert_eq!(trace.value(2, q2), Logic3::One);
        assert!(trace.conflict.is_none());
    }

    #[test]
    fn state_repeat_stops_simulation() {
        // q feeds itself through a buffer: injecting q=1 reaches a fixed point
        // immediately, so the run stops well before the frame limit.
        let mut b = NetlistBuilder::new("selfloop");
        b.input("a");
        b.gate("g", GateType::Buf, &["q"]).unwrap();
        b.dff("q", "g").unwrap();
        b.output("q").unwrap();
        let n = b.build().unwrap();
        let sim = InjectionSim::new(&n).unwrap();
        let q = n.require("q").unwrap();
        let trace = sim.run(&[Injection::new(q, true, 0)], &SimOptions::default());
        assert!(trace.repeated);
        assert!(trace.num_frames() < 50);
        // The value persists in every simulated frame.
        for t in 0..trace.num_frames() {
            assert_eq!(trace.value(t, q), Logic3::One);
        }
    }

    #[test]
    fn injection_conflict_is_reported() {
        let n = shift_register();
        let sim = InjectionSim::new(&n).unwrap();
        let a = n.require("a").unwrap();
        let q1 = n.require("q1").unwrap();
        // a=0 at frame 0 forces q1=1 at frame 1; injecting q1=0 at frame 1 conflicts.
        let trace = sim.run(
            &[Injection::new(a, false, 0), Injection::new(q1, false, 1)],
            &SimOptions::default(),
        );
        let c = trace.conflict.expect("conflict expected");
        assert_eq!(c.node, q1);
        assert_eq!(c.frame, 1);
    }

    #[test]
    fn tied_constants_apply_every_frame() {
        let mut b = NetlistBuilder::new("tied");
        b.input("a");
        b.gate("t", GateType::And, &["a", "na"]).unwrap();
        b.gate("na", GateType::Not, &["a"]).unwrap();
        b.gate("g", GateType::Or, &["t", "q"]).unwrap();
        b.dff("q", "g").unwrap();
        b.output("q").unwrap();
        let n = b.build().unwrap();
        let mut sim = InjectionSim::new(&n).unwrap();
        let t = n.require("t").unwrap();
        let q = n.require("q").unwrap();
        sim.add_tied(t, false);
        // With t tied to 0, q=0 propagates through the OR and the state stays 0.
        let trace = sim.run(&[Injection::new(q, false, 0)], &SimOptions::default());
        assert!(trace.conflict.is_none());
        assert_eq!(trace.value(0, t), Logic3::Zero);
        for f in 0..trace.num_frames() {
            assert_eq!(trace.value(f, q), Logic3::Zero, "frame {f}");
        }
    }

    #[test]
    fn multiport_latch_blocks_propagation() {
        let mut b = NetlistBuilder::new("mpl");
        b.input("a");
        b.seq(
            "l",
            "a",
            SeqInfo {
                kind: SeqKind::Latch,
                ports: 2,
                ..SeqInfo::default()
            },
        )
        .unwrap();
        b.gate("g", GateType::Buf, &["l"]).unwrap();
        b.output("g").unwrap();
        let n = b.build().unwrap();
        let sim = InjectionSim::new(&n).unwrap();
        let a = n.require("a").unwrap();
        let l = n.require("l").unwrap();
        let trace = sim.run(
            &[Injection::new(a, true, 0)],
            &SimOptions {
                max_frames: 3,
                stop_on_repeat: false,
                respect_seq_rules: true,
            },
        );
        assert_eq!(trace.value(1, l), Logic3::X, "2-port latch must block");
        // Without the rules the value would cross.
        let trace2 = sim.run(
            &[Injection::new(a, true, 0)],
            &SimOptions {
                max_frames: 3,
                stop_on_repeat: false,
                respect_seq_rules: false,
            },
        );
        assert_eq!(trace2.value(1, l), Logic3::One);
    }

    #[test]
    fn partial_set_only_lets_one_through() {
        let mut b = NetlistBuilder::new("set");
        b.input("a");
        b.seq(
            "q",
            "a",
            SeqInfo {
                set: LineConstraint::Unconstrained,
                ..SeqInfo::default()
            },
        )
        .unwrap();
        b.output("q").unwrap();
        let n = b.build().unwrap();
        let sim = InjectionSim::new(&n).unwrap();
        let a = n.require("a").unwrap();
        let q = n.require("q").unwrap();
        let opts = SimOptions {
            max_frames: 2,
            stop_on_repeat: false,
            respect_seq_rules: true,
        };
        let one = sim.run(&[Injection::new(a, true, 0)], &opts);
        assert_eq!(one.value(1, q), Logic3::One, "1 agrees with the set line");
        let zero = sim.run(&[Injection::new(a, false, 0)], &opts);
        assert_eq!(zero.value(1, q), Logic3::X, "0 could be overridden by set");
    }

    #[test]
    fn clock_class_mask_restricts_propagation() {
        let n = shift_register();
        let mut sim = InjectionSim::new(&n).unwrap();
        let a = n.require("a").unwrap();
        let q1 = n.require("q1").unwrap();
        let q2 = n.require("q2").unwrap();
        // Only q1 is in the active class; q2 must stay X.
        let mut mask = vec![false; n.num_nodes()];
        mask[q1.index()] = true;
        sim.set_active_sequential(Some(mask));
        let trace = sim.run(
            &[Injection::new(a, false, 0)],
            &SimOptions {
                max_frames: 4,
                stop_on_repeat: false,
                respect_seq_rules: true,
            },
        );
        assert_eq!(trace.value(1, q1), Logic3::One);
        assert_eq!(trace.value(2, q2), Logic3::X);
    }

    #[test]
    fn assignments_iterator_lists_binary_values_only() {
        let n = shift_register();
        let sim = InjectionSim::new(&n).unwrap();
        let a = n.require("a").unwrap();
        let trace = sim.run(&[Injection::new(a, true, 0)], &SimOptions::default());
        let frame0: Vec<(NodeId, bool)> = trace.assignments(0).collect();
        assert!(frame0.contains(&(a, true)));
        assert!(frame0
            .iter()
            .all(|&(node, _)| trace.value(0, node).is_binary()));
    }
}
