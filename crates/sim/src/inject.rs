//! Forward multi-time-frame injection simulation — the substrate of the
//! sequential learning technique.
//!
//! Learning works by forcing a value on one or more nodes at given time frames
//! and simulating *forward only*: through the combinational logic of the frame
//! and across sequential elements into the next frame, subject to the
//! real-circuit propagation rules of the paper (§3.3):
//!
//! * values never cross multiple-port latches,
//! * values never cross elements with both set and reset unconstrained,
//! * with a single unconstrained set (reset), only a 1 (0) crosses,
//! * only the sequential elements of the clock class being learned propagate.
//!
//! Simulation stops at a frame limit or when the sequential state repeats over
//! two consecutive frames (and no later injections are pending). A conflict —
//! an injected or tied node contradicted by simulation — is reported to the
//! caller; the learning engine interprets it as a tied target (paper §3.2).

use crate::equiv::EquivClasses;
use crate::frame::CombEvaluator;
use crate::value::Logic3;
use crate::Result;
use sla_netlist::{Netlist, NodeId};

/// A single forced assignment: `node = value` at time frame `frame`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Injection {
    /// Node whose value is forced.
    pub node: NodeId,
    /// Forced logic value.
    pub value: bool,
    /// Time frame (0-based) at which the value is forced.
    pub frame: usize,
}

impl Injection {
    /// Creates an injection of `value` on `node` at `frame`.
    pub fn new(node: NodeId, value: bool, frame: usize) -> Self {
        Injection { node, value, frame }
    }
}

/// Options controlling a forward simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOptions {
    /// Maximum number of time frames simulated (the paper uses 50).
    pub max_frames: usize,
    /// Stop early when the sequential state repeats over two consecutive frames.
    pub stop_on_repeat: bool,
    /// Apply the set/reset and multiple-port-latch propagation rules.
    pub respect_seq_rules: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            max_frames: 50,
            stop_on_repeat: true,
            respect_seq_rules: true,
        }
    }
}

/// A contradiction observed during simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conflict {
    /// Node at which the contradiction was observed.
    pub node: NodeId,
    /// Frame in which it was observed.
    pub frame: usize,
}

/// The result of a forward simulation run: per-frame values for every node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    frames: Vec<Vec<Logic3>>,
    /// First contradiction observed, if any (simulation stops there).
    pub conflict: Option<Conflict>,
    /// `true` when simulation stopped because the state repeated.
    pub repeated: bool,
}

impl Trace {
    /// Number of simulated frames.
    pub fn num_frames(&self) -> usize {
        self.frames.len()
    }

    /// Value of `node` in `frame`.
    ///
    /// # Panics
    ///
    /// Panics if `frame >= self.num_frames()`.
    pub fn value(&self, frame: usize, node: NodeId) -> Logic3 {
        self.frames[frame][node.index()]
    }

    /// All nodes holding a binary value in `frame`, as `(node, value)` pairs.
    pub fn assignments(&self, frame: usize) -> impl Iterator<Item = (NodeId, bool)> + '_ {
        self.frames[frame]
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.to_bool().map(|b| (NodeId(i as u32), b)))
    }

    /// Raw values of a frame.
    pub fn frame(&self, frame: usize) -> &[Logic3] {
        &self.frames[frame]
    }
}

/// Forward multi-frame three-valued simulator with value injection.
///
/// The simulator owns per-run-invariant learning state — previously learned
/// tied gates (forced as constants), combinational equivalence classes and the
/// active clock class — so that the per-stem inner loop of the learning engine
/// is allocation-light.
#[derive(Debug, Clone)]
pub struct InjectionSim<'a> {
    eval: CombEvaluator<'a>,
    equiv: Option<EquivClasses>,
    tied: Vec<(NodeId, bool)>,
    active_seq: Option<Vec<bool>>,
}

impl<'a> InjectionSim<'a> {
    /// Builds a simulator for `netlist`.
    ///
    /// # Errors
    ///
    /// Returns an error if the combinational logic cannot be levelized.
    pub fn new(netlist: &'a Netlist) -> Result<Self> {
        Ok(InjectionSim {
            eval: CombEvaluator::new(netlist)?,
            equiv: None,
            tied: Vec::new(),
            active_seq: None,
        })
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &'a Netlist {
        self.eval.netlist()
    }

    /// Enables combinational-equivalence value forwarding during simulation.
    pub fn set_equivalences(&mut self, classes: EquivClasses) {
        self.equiv = if classes.is_empty() {
            None
        } else {
            Some(classes)
        };
    }

    /// Disables equivalence forwarding.
    pub fn clear_equivalences(&mut self) {
        self.equiv = None;
    }

    /// Replaces the set of known tied gates, forced as constants in every frame.
    pub fn set_tied(&mut self, tied: Vec<(NodeId, bool)>) {
        self.tied = tied;
    }

    /// Adds one tied gate.
    pub fn add_tied(&mut self, node: NodeId, value: bool) {
        if !self.tied.iter().any(|&(n, _)| n == node) {
            self.tied.push((node, value));
        }
    }

    /// Currently registered tied gates.
    pub fn tied(&self) -> &[(NodeId, bool)] {
        &self.tied
    }

    /// Restricts propagation across sequential elements to those for which the
    /// mask (indexed by node id) is `true`; `None` activates all of them.
    pub fn set_active_sequential(&mut self, mask: Option<Vec<bool>>) {
        self.active_seq = mask;
    }

    /// Runs a forward simulation with the given injections.
    ///
    /// Frames are simulated starting at 0. All injections must have
    /// `frame < options.max_frames`; later ones never take effect.
    pub fn run(&self, injections: &[Injection], options: &SimOptions) -> Trace {
        let netlist = self.eval.netlist();
        let n = netlist.num_nodes();
        let mut state: Vec<Logic3> = vec![Logic3::X; n];
        let mut frames = Vec::new();
        let mut conflict: Option<Conflict> = None;
        let mut repeated = false;

        for t in 0..options.max_frames {
            let mut values = vec![Logic3::X; n];
            let mut forced = vec![false; n];

            // Previously learned tied gates hold their constant in every frame.
            for &(node, v) in &self.tied {
                values[node.index()] = Logic3::from_bool(v);
                forced[node.index()] = true;
            }

            // Sequential state propagated from the previous frame.
            for s in netlist.sequential_elements() {
                let idx = s.index();
                let incoming = state[idx];
                if forced[idx] {
                    if let (Some(a), Some(b)) = (incoming.to_bool(), values[idx].to_bool()) {
                        if a != b && conflict.is_none() {
                            conflict = Some(Conflict { node: s, frame: t });
                        }
                    }
                } else {
                    values[idx] = incoming;
                }
            }

            // Injections scheduled for this frame.
            for inj in injections.iter().filter(|i| i.frame == t) {
                let idx = inj.node.index();
                let v = Logic3::from_bool(inj.value);
                if values[idx].is_binary() && values[idx] != v && conflict.is_none() {
                    conflict = Some(Conflict {
                        node: inj.node,
                        frame: t,
                    });
                }
                values[idx] = v;
                forced[idx] = true;
            }

            // Combinational evaluation of this frame.
            if let Some(c) = self.eval.eval(&mut values, &forced, self.equiv.as_ref()) {
                if conflict.is_none() {
                    conflict = Some(Conflict { node: c, frame: t });
                }
            }

            frames.push(values.clone());
            if conflict.is_some() {
                break;
            }

            // Next sequential state.
            let mut next = vec![Logic3::X; n];
            for s in netlist.sequential_elements() {
                let info = *netlist.seq_info(s).expect("sequential element");
                let data = netlist.fanins(s)[0];
                let mut v = values[data.index()];
                if let Some(b) = v.to_bool() {
                    if options.respect_seq_rules && !info.allows_propagation(b) {
                        v = Logic3::X;
                    }
                    if let Some(mask) = &self.active_seq {
                        if !mask[s.index()] {
                            v = Logic3::X;
                        }
                    }
                }
                next[s.index()] = v;
            }

            let later_injections = injections.iter().any(|i| i.frame > t);
            if options.stop_on_repeat && !later_injections {
                let same = netlist
                    .sequential_elements()
                    .all(|s| next[s.index()] == state[s.index()]);
                if same {
                    repeated = true;
                    break;
                }
            }
            state = next;
        }

        Trace {
            frames,
            conflict,
            repeated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sla_netlist::{GateType, LineConstraint, NetlistBuilder, SeqInfo, SeqKind};

    /// A two-FF shift register fed by an inverter: q2 <- q1 <- NOT(a).
    fn shift_register() -> Netlist {
        let mut b = NetlistBuilder::new("shift");
        b.input("a");
        b.gate("g", GateType::Not, &["a"]).unwrap();
        b.dff("q1", "g").unwrap();
        b.dff("q2", "q1").unwrap();
        b.output("q2").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn values_travel_through_time_frames() {
        let n = shift_register();
        let sim = InjectionSim::new(&n).unwrap();
        let a = n.require("a").unwrap();
        let q1 = n.require("q1").unwrap();
        let q2 = n.require("q2").unwrap();
        let trace = sim.run(
            &[Injection::new(a, false, 0)],
            &SimOptions {
                max_frames: 4,
                stop_on_repeat: false,
                respect_seq_rules: true,
            },
        );
        assert_eq!(trace.value(0, q1), Logic3::X);
        assert_eq!(trace.value(1, q1), Logic3::One);
        assert_eq!(trace.value(1, q2), Logic3::X);
        assert_eq!(trace.value(2, q2), Logic3::One);
        assert!(trace.conflict.is_none());
    }

    #[test]
    fn state_repeat_stops_simulation() {
        // q feeds itself through a buffer: injecting q=1 reaches a fixed point
        // immediately, so the run stops well before the frame limit.
        let mut b = NetlistBuilder::new("selfloop");
        b.input("a");
        b.gate("g", GateType::Buf, &["q"]).unwrap();
        b.dff("q", "g").unwrap();
        b.output("q").unwrap();
        let n = b.build().unwrap();
        let sim = InjectionSim::new(&n).unwrap();
        let q = n.require("q").unwrap();
        let trace = sim.run(&[Injection::new(q, true, 0)], &SimOptions::default());
        assert!(trace.repeated);
        assert!(trace.num_frames() < 50);
        // The value persists in every simulated frame.
        for t in 0..trace.num_frames() {
            assert_eq!(trace.value(t, q), Logic3::One);
        }
    }

    #[test]
    fn injection_conflict_is_reported() {
        let n = shift_register();
        let sim = InjectionSim::new(&n).unwrap();
        let a = n.require("a").unwrap();
        let q1 = n.require("q1").unwrap();
        // a=0 at frame 0 forces q1=1 at frame 1; injecting q1=0 at frame 1 conflicts.
        let trace = sim.run(
            &[Injection::new(a, false, 0), Injection::new(q1, false, 1)],
            &SimOptions::default(),
        );
        let c = trace.conflict.expect("conflict expected");
        assert_eq!(c.node, q1);
        assert_eq!(c.frame, 1);
    }

    #[test]
    fn tied_constants_apply_every_frame() {
        let mut b = NetlistBuilder::new("tied");
        b.input("a");
        b.gate("t", GateType::And, &["a", "na"]).unwrap();
        b.gate("na", GateType::Not, &["a"]).unwrap();
        b.gate("g", GateType::Or, &["t", "q"]).unwrap();
        b.dff("q", "g").unwrap();
        b.output("q").unwrap();
        let n = b.build().unwrap();
        let mut sim = InjectionSim::new(&n).unwrap();
        let t = n.require("t").unwrap();
        let q = n.require("q").unwrap();
        sim.add_tied(t, false);
        // With t tied to 0, q=0 propagates through the OR and the state stays 0.
        let trace = sim.run(&[Injection::new(q, false, 0)], &SimOptions::default());
        assert!(trace.conflict.is_none());
        assert_eq!(trace.value(0, t), Logic3::Zero);
        for f in 0..trace.num_frames() {
            assert_eq!(trace.value(f, q), Logic3::Zero, "frame {f}");
        }
    }

    #[test]
    fn multiport_latch_blocks_propagation() {
        let mut b = NetlistBuilder::new("mpl");
        b.input("a");
        b.seq(
            "l",
            "a",
            SeqInfo {
                kind: SeqKind::Latch,
                ports: 2,
                ..SeqInfo::default()
            },
        )
        .unwrap();
        b.gate("g", GateType::Buf, &["l"]).unwrap();
        b.output("g").unwrap();
        let n = b.build().unwrap();
        let sim = InjectionSim::new(&n).unwrap();
        let a = n.require("a").unwrap();
        let l = n.require("l").unwrap();
        let trace = sim.run(
            &[Injection::new(a, true, 0)],
            &SimOptions {
                max_frames: 3,
                stop_on_repeat: false,
                respect_seq_rules: true,
            },
        );
        assert_eq!(trace.value(1, l), Logic3::X, "2-port latch must block");
        // Without the rules the value would cross.
        let trace2 = sim.run(
            &[Injection::new(a, true, 0)],
            &SimOptions {
                max_frames: 3,
                stop_on_repeat: false,
                respect_seq_rules: false,
            },
        );
        assert_eq!(trace2.value(1, l), Logic3::One);
    }

    #[test]
    fn partial_set_only_lets_one_through() {
        let mut b = NetlistBuilder::new("set");
        b.input("a");
        b.seq(
            "q",
            "a",
            SeqInfo {
                set: LineConstraint::Unconstrained,
                ..SeqInfo::default()
            },
        )
        .unwrap();
        b.output("q").unwrap();
        let n = b.build().unwrap();
        let sim = InjectionSim::new(&n).unwrap();
        let a = n.require("a").unwrap();
        let q = n.require("q").unwrap();
        let opts = SimOptions {
            max_frames: 2,
            stop_on_repeat: false,
            respect_seq_rules: true,
        };
        let one = sim.run(&[Injection::new(a, true, 0)], &opts);
        assert_eq!(one.value(1, q), Logic3::One, "1 agrees with the set line");
        let zero = sim.run(&[Injection::new(a, false, 0)], &opts);
        assert_eq!(zero.value(1, q), Logic3::X, "0 could be overridden by set");
    }

    #[test]
    fn clock_class_mask_restricts_propagation() {
        let n = shift_register();
        let mut sim = InjectionSim::new(&n).unwrap();
        let a = n.require("a").unwrap();
        let q1 = n.require("q1").unwrap();
        let q2 = n.require("q2").unwrap();
        // Only q1 is in the active class; q2 must stay X.
        let mut mask = vec![false; n.num_nodes()];
        mask[q1.index()] = true;
        sim.set_active_sequential(Some(mask));
        let trace = sim.run(
            &[Injection::new(a, false, 0)],
            &SimOptions {
                max_frames: 4,
                stop_on_repeat: false,
                respect_seq_rules: true,
            },
        );
        assert_eq!(trace.value(1, q1), Logic3::One);
        assert_eq!(trace.value(2, q2), Logic3::X);
    }

    #[test]
    fn assignments_iterator_lists_binary_values_only() {
        let n = shift_register();
        let sim = InjectionSim::new(&n).unwrap();
        let a = n.require("a").unwrap();
        let trace = sim.run(&[Injection::new(a, true, 0)], &SimOptions::default());
        let frame0: Vec<(NodeId, bool)> = trace.assignments(0).collect();
        assert!(frame0.contains(&(a, true)));
        assert!(frame0
            .iter()
            .all(|&(node, _)| trace.value(0, node).is_binary()));
    }
}
