use std::fmt;

/// Three-valued logic value used throughout learning and fault simulation.
///
/// `X` means "unknown / unassigned". Three-valued simulation is conservative:
/// a binary result is guaranteed correct for every completion of the `X`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Logic3 {
    /// Logic 0.
    Zero,
    /// Logic 1.
    One,
    /// Unknown.
    #[default]
    X,
}

impl Logic3 {
    /// Converts a boolean to a binary logic value.
    pub fn from_bool(b: bool) -> Logic3 {
        if b {
            Logic3::One
        } else {
            Logic3::Zero
        }
    }

    /// Returns `Some(bool)` for binary values and `None` for `X`.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Logic3::Zero => Some(false),
            Logic3::One => Some(true),
            Logic3::X => None,
        }
    }

    /// Returns `true` when the value is 0 or 1 (not `X`).
    pub fn is_binary(self) -> bool {
        self != Logic3::X
    }

    /// Three-valued conjunction.
    pub fn and(self, other: Logic3) -> Logic3 {
        match (self, other) {
            (Logic3::Zero, _) | (_, Logic3::Zero) => Logic3::Zero,
            (Logic3::One, Logic3::One) => Logic3::One,
            _ => Logic3::X,
        }
    }

    /// Three-valued disjunction.
    pub fn or(self, other: Logic3) -> Logic3 {
        match (self, other) {
            (Logic3::One, _) | (_, Logic3::One) => Logic3::One,
            (Logic3::Zero, Logic3::Zero) => Logic3::Zero,
            _ => Logic3::X,
        }
    }

    /// Three-valued exclusive or.
    pub fn xor(self, other: Logic3) -> Logic3 {
        match (self.to_bool(), other.to_bool()) {
            (Some(a), Some(b)) => Logic3::from_bool(a ^ b),
            _ => Logic3::X,
        }
    }
}

impl std::ops::Not for Logic3 {
    type Output = Logic3;

    /// Three-valued negation (`!X` stays `X`).
    fn not(self) -> Logic3 {
        match self {
            Logic3::Zero => Logic3::One,
            Logic3::One => Logic3::Zero,
            Logic3::X => Logic3::X,
        }
    }
}

impl From<bool> for Logic3 {
    fn from(b: bool) -> Self {
        Logic3::from_bool(b)
    }
}

impl fmt::Display for Logic3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Logic3::Zero => f.write_str("0"),
            Logic3::One => f.write_str("1"),
            Logic3::X => f.write_str("X"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Logic3; 3] = [Logic3::Zero, Logic3::One, Logic3::X];

    #[test]
    fn bool_round_trip() {
        assert_eq!(Logic3::from_bool(true).to_bool(), Some(true));
        assert_eq!(Logic3::from_bool(false).to_bool(), Some(false));
        assert_eq!(Logic3::X.to_bool(), None);
        assert_eq!(Logic3::from(true), Logic3::One);
    }

    #[test]
    fn and_truth_table() {
        assert_eq!(Logic3::One.and(Logic3::One), Logic3::One);
        assert_eq!(Logic3::One.and(Logic3::Zero), Logic3::Zero);
        assert_eq!(Logic3::X.and(Logic3::Zero), Logic3::Zero);
        assert_eq!(Logic3::X.and(Logic3::One), Logic3::X);
        assert_eq!(Logic3::X.and(Logic3::X), Logic3::X);
    }

    #[test]
    fn or_truth_table() {
        assert_eq!(Logic3::Zero.or(Logic3::Zero), Logic3::Zero);
        assert_eq!(Logic3::X.or(Logic3::One), Logic3::One);
        assert_eq!(Logic3::X.or(Logic3::Zero), Logic3::X);
    }

    #[test]
    fn xor_is_unknown_with_any_x() {
        assert_eq!(Logic3::One.xor(Logic3::Zero), Logic3::One);
        assert_eq!(Logic3::One.xor(Logic3::One), Logic3::Zero);
        assert_eq!(Logic3::One.xor(Logic3::X), Logic3::X);
        assert_eq!(Logic3::X.xor(Logic3::X), Logic3::X);
    }

    #[test]
    fn de_morgan_holds_in_three_valued_logic() {
        for a in ALL {
            for b in ALL {
                assert_eq!(!a.and(b), (!a).or(!b));
                assert_eq!(!a.or(b), (!a).and(!b));
            }
        }
    }

    #[test]
    fn operations_are_monotone_in_information_order() {
        // Replacing X by a binary value never flips an already-binary result.
        for a in ALL {
            for b in ALL {
                let r = a.and(b);
                if r.is_binary() {
                    for a2 in refine(a) {
                        for b2 in refine(b) {
                            assert_eq!(a2.and(b2), r);
                        }
                    }
                }
            }
        }
    }

    fn refine(v: Logic3) -> Vec<Logic3> {
        match v {
            Logic3::X => vec![Logic3::Zero, Logic3::One],
            other => vec![other],
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(Logic3::Zero.to_string(), "0");
        assert_eq!(Logic3::One.to_string(), "1");
        assert_eq!(Logic3::X.to_string(), "X");
    }
}
