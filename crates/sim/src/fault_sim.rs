//! Sequential three-valued stuck-at fault simulation.
//!
//! The ATPG flow fault-simulates every generated test sequence against the
//! remaining fault list and drops detected faults (the paper relies on this to
//! explain cases where ATPG-with-learning detects a fault it could not
//! generate a test for directly). Detection uses the conservative three-valued
//! criterion: a fault is detected at a frame when some primary output is a
//! known binary value in the good machine and the opposite binary value in the
//! faulty machine.

use crate::fault::{Fault, FaultSite};
use crate::packed::{eval_gate3x64, PackedWord};
use crate::value::Logic3;
use crate::Result;
use sla_netlist::levelize::{levelize, Levelization};
use sla_netlist::{Netlist, NodeId, NodeKind};

/// A test sequence: one vector of primary-input values per time frame, in the
/// order of [`Netlist::inputs`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TestSequence {
    /// Per-frame primary-input vectors.
    pub vectors: Vec<Vec<Logic3>>,
}

impl TestSequence {
    /// Creates a sequence from per-frame vectors.
    ///
    /// # Panics
    ///
    /// Does not validate vector lengths; [`FaultSimulator`] checks them.
    pub fn new(vectors: Vec<Vec<Logic3>>) -> Self {
        TestSequence { vectors }
    }

    /// Number of time frames.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Returns `true` when the sequence has no frames.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }
}

/// Serial sequential fault simulator.
#[derive(Debug, Clone)]
pub struct FaultSimulator<'a> {
    netlist: &'a Netlist,
    levels: Levelization,
}

impl<'a> FaultSimulator<'a> {
    /// Builds a fault simulator for `netlist`.
    ///
    /// # Errors
    ///
    /// Returns an error if the combinational logic cannot be levelized.
    pub fn new(netlist: &'a Netlist) -> Result<Self> {
        Ok(FaultSimulator {
            netlist,
            levels: levelize(netlist)?,
        })
    }

    /// Builds a fault simulator from an existing levelization, infallibly.
    ///
    /// Callers that already hold a [`Levelization`] of the same netlist (the
    /// ATPG engine validates one at construction) use this to avoid a
    /// re-levelize and the impossible error path.
    pub fn with_levels(netlist: &'a Netlist, levels: Levelization) -> Self {
        FaultSimulator { netlist, levels }
    }

    /// Simulates the fault-free machine and returns per-frame values of all
    /// nodes (initial state all-X).
    pub fn good_trace(&self, sequence: &TestSequence) -> Vec<Vec<Logic3>> {
        self.machine_trace(sequence, None)
    }

    /// Returns `true` when `fault` is detected by `sequence`.
    pub fn detects(&self, fault: &Fault, sequence: &TestSequence) -> bool {
        let good = self.good_trace(sequence);
        self.detects_against(fault, sequence, &good)
    }

    /// Fault simulation of a whole fault list; entry *i* of the result tells
    /// whether `faults[i]` is detected by `sequence`.
    ///
    /// The good machine is simulated once; the faulty machines are simulated
    /// word-parallel, up to 64 candidate faults per forward pass (one lane per
    /// fault), instead of one full `machine_trace` per fault.
    pub fn detected_faults(&self, faults: &[Fault], sequence: &TestSequence) -> Vec<bool> {
        let good = self.good_trace(sequence);
        let mut out = Vec::with_capacity(faults.len());
        for chunk in faults.chunks(64) {
            let detected = self.detect_batch(chunk, sequence, &good);
            out.extend((0..chunk.len()).map(|lane| detected >> lane & 1 == 1));
        }
        out
    }

    /// Simulates up to 64 faulty machines in one packed pass and returns the
    /// lane mask of faults detected by `sequence` (lane *i* = `faults[i]`).
    fn detect_batch(&self, faults: &[Fault], sequence: &TestSequence, good: &[Vec<Logic3>]) -> u64 {
        debug_assert!(faults.len() <= 64);
        let n = self.netlist.num_nodes();
        let all: u64 = if faults.len() == 64 {
            u64::MAX
        } else {
            (1u64 << faults.len()) - 1
        };

        // Per-node lane masks of stuck-at-0 / stuck-at-1 output faults, plus
        // the sparse list of input-pin faults (flagged per gate so the common
        // fault-free gate pays one boolean test).
        let mut out_stuck0 = vec![0u64; n];
        let mut out_stuck1 = vec![0u64; n];
        let mut has_pin_fault = vec![false; n];
        let mut pin_faults: Vec<(NodeId, usize, usize, bool)> = Vec::new();
        for (lane, fault) in faults.iter().enumerate() {
            match fault.site {
                FaultSite::Output(node) => {
                    if fault.stuck_at {
                        out_stuck1[node.index()] |= 1u64 << lane;
                    } else {
                        out_stuck0[node.index()] |= 1u64 << lane;
                    }
                }
                FaultSite::Input { gate, pin } => {
                    has_pin_fault[gate.index()] = true;
                    pin_faults.push((gate, pin, lane, fault.stuck_at));
                }
            }
        }
        let stick = |w: &mut PackedWord, idx: usize| {
            let s0 = out_stuck0[idx];
            let s1 = out_stuck1[idx];
            w.zero = (w.zero & !s1) | s0;
            w.one = (w.one & !s0) | s1;
        };

        let mut detected = 0u64;
        let mut state = vec![PackedWord::ALL_X; n];
        let mut values = vec![PackedWord::ALL_X; n];
        let mut fanin_buf: Vec<PackedWord> = Vec::new();
        for (frame, vector) in sequence.vectors.iter().enumerate() {
            values.fill(PackedWord::ALL_X);
            // Frame inputs.
            for (pos, &pi) in self.netlist.inputs().iter().enumerate() {
                values[pi.index()] =
                    PackedWord::splat(vector.get(pos).copied().unwrap_or(Logic3::X));
            }
            for s in self.netlist.sequential_elements() {
                values[s.index()] = state[s.index()];
            }
            // Output faults on frame inputs take effect before evaluation.
            for (id, node) in self.netlist.iter() {
                if node.is_input() || node.is_sequential() {
                    stick(&mut values[id.index()], id.index());
                }
            }
            // Combinational evaluation with the per-lane fault effects.
            for &id in self.levels.order() {
                let node = self.netlist.node(id);
                let NodeKind::Gate(gate) = node.kind else {
                    continue;
                };
                fanin_buf.clear();
                fanin_buf.extend(node.fanins.iter().map(|f| values[f.index()]));
                if has_pin_fault[id.index()] {
                    for &(g, pin, lane, stuck) in &pin_faults {
                        if g == id {
                            fanin_buf[pin].set(lane, Logic3::from_bool(stuck));
                        }
                    }
                }
                let mut v = eval_gate3x64(gate, &fanin_buf);
                stick(&mut v, id.index());
                values[id.index()] = v;
            }
            // Detection: a primary output binary in the good machine and the
            // opposite binary value in a faulty lane detects that lane's fault.
            for &po in self.netlist.outputs() {
                match good[frame][po.index()] {
                    Logic3::One => detected |= values[po.index()].zero,
                    Logic3::Zero => detected |= values[po.index()].one,
                    Logic3::X => {}
                }
            }
            if detected == all {
                break;
            }
            // Next state. A stuck output on the sequential element itself also
            // fixes the captured state.
            for s in self.netlist.sequential_elements() {
                let data = self.netlist.fanins(s)[0];
                let mut v = values[data.index()];
                stick(&mut v, s.index());
                state[s.index()] = v;
            }
        }
        detected
    }

    fn detects_against(
        &self,
        fault: &Fault,
        sequence: &TestSequence,
        good: &[Vec<Logic3>],
    ) -> bool {
        let faulty = self.machine_trace(sequence, Some(fault));
        for (frame, good_frame) in good.iter().enumerate() {
            for &po in self.netlist.outputs() {
                let g = good_frame[po.index()];
                let f = faulty[frame][po.index()];
                if let (Some(gv), Some(fv)) = (g.to_bool(), f.to_bool()) {
                    if gv != fv {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Simulates either the good machine (`fault = None`) or a faulty machine.
    fn machine_trace(&self, sequence: &TestSequence, fault: Option<&Fault>) -> Vec<Vec<Logic3>> {
        let n = self.netlist.num_nodes();
        let mut state = vec![Logic3::X; n];
        let mut out = Vec::with_capacity(sequence.len());
        for vector in &sequence.vectors {
            let mut values = vec![Logic3::X; n];
            // Frame inputs.
            for (pos, &pi) in self.netlist.inputs().iter().enumerate() {
                values[pi.index()] = vector.get(pos).copied().unwrap_or(Logic3::X);
            }
            for s in self.netlist.sequential_elements() {
                values[s.index()] = state[s.index()];
            }
            // Output faults on frame inputs take effect before evaluation.
            if let Some(f) = fault {
                if let FaultSite::Output(node) = f.site {
                    let node_ref = self.netlist.node(node);
                    if node_ref.is_input() || node_ref.is_sequential() {
                        values[node.index()] = Logic3::from_bool(f.stuck_at);
                    }
                }
            }
            // Combinational evaluation with the fault effect.
            for &id in self.levels.order() {
                let node = self.netlist.node(id);
                let NodeKind::Gate(gate) = node.kind else {
                    continue;
                };
                let fanin_value = |pin: usize, driver: NodeId| -> Logic3 {
                    if let Some(f) = fault {
                        if f.site == (FaultSite::Input { gate: id, pin }) {
                            return Logic3::from_bool(f.stuck_at);
                        }
                    }
                    values[driver.index()]
                };
                let mut v = crate::eval::eval_gate3(
                    gate,
                    node.fanins
                        .iter()
                        .enumerate()
                        .map(|(pin, &d)| fanin_value(pin, d)),
                );
                if let Some(f) = fault {
                    if f.site == FaultSite::Output(id) {
                        v = Logic3::from_bool(f.stuck_at);
                    }
                }
                values[id.index()] = v;
            }
            out.push(values.clone());
            // Next state.
            for s in self.netlist.sequential_elements() {
                let data = self.netlist.fanins(s)[0];
                let mut v = values[data.index()];
                if let Some(f) = fault {
                    // A stuck output on the sequential element itself also fixes
                    // the captured state.
                    if f.site == FaultSite::Output(s) {
                        v = Logic3::from_bool(f.stuck_at);
                    }
                }
                state[s.index()] = v;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::full_fault_list;
    use sla_netlist::{GateType, NetlistBuilder};

    /// q captures NOT(a); output is q.
    fn inverter_ff() -> Netlist {
        let mut b = NetlistBuilder::new("invff");
        b.input("a");
        b.gate("g", GateType::Not, &["a"]).unwrap();
        b.dff("q", "g").unwrap();
        b.output("q").unwrap();
        b.build().unwrap()
    }

    fn seq(frames: &[&[Logic3]]) -> TestSequence {
        TestSequence::new(frames.iter().map(|f| f.to_vec()).collect())
    }

    #[test]
    fn good_machine_shifts_values() {
        let n = inverter_ff();
        let sim = FaultSimulator::new(&n).unwrap();
        let s = seq(&[&[Logic3::Zero], &[Logic3::One]]);
        let trace = sim.good_trace(&s);
        let q = n.require("q").unwrap();
        assert_eq!(trace[0][q.index()], Logic3::X);
        assert_eq!(trace[1][q.index()], Logic3::One);
    }

    #[test]
    fn output_fault_on_gate_detected() {
        let n = inverter_ff();
        let sim = FaultSimulator::new(&n).unwrap();
        let g = n.require("g").unwrap();
        // g stuck-at-0: applying a=0 makes good g=1, faulty g=0; visible at q one frame later.
        let s = seq(&[&[Logic3::Zero], &[Logic3::Zero]]);
        assert!(sim.detects(&Fault::output(g, false), &s));
        // g stuck-at-1 is not detected by a=0 (good value is already 1).
        assert!(!sim.detects(&Fault::output(g, true), &s));
        // ... but is detected by a=1.
        let s2 = seq(&[&[Logic3::One], &[Logic3::One]]);
        assert!(sim.detects(&Fault::output(g, true), &s2));
    }

    #[test]
    fn input_pin_fault_only_affects_that_branch() {
        // k = OR(a, b); m = AND(a, b). Fault on k's pin-0 (branch of a) must not
        // change m.
        let mut b = NetlistBuilder::new("branch");
        b.input("a");
        b.input("b");
        b.gate("k", GateType::Or, &["a", "b"]).unwrap();
        b.gate("m", GateType::And, &["a", "b"]).unwrap();
        b.output("k").unwrap();
        b.output("m").unwrap();
        let n = b.build().unwrap();
        let sim = FaultSimulator::new(&n).unwrap();
        let k = n.require("k").unwrap();
        // a=1, b=0: good k=1, faulty (k/0 s-a-0) k=0 -> detected.
        let s = seq(&[&[Logic3::One, Logic3::Zero]]);
        assert!(sim.detects(&Fault::input(k, 0, false), &s));
        // Fault on m's pin for 'a' stuck-at-1 with a=1 is not excited.
        let m = n.require("m").unwrap();
        assert!(!sim.detects(&Fault::input(m, 0, true), &s));
    }

    #[test]
    fn stuck_primary_input_detected() {
        let n = inverter_ff();
        let sim = FaultSimulator::new(&n).unwrap();
        let a = n.require("a").unwrap();
        let s = seq(&[&[Logic3::One], &[Logic3::One]]);
        assert!(sim.detects(&Fault::output(a, false), &s));
    }

    #[test]
    fn x_outputs_never_count_as_detection() {
        let n = inverter_ff();
        let sim = FaultSimulator::new(&n).unwrap();
        let q = n.require("q").unwrap();
        // One frame only: q is still X at the output in frame 0, so nothing can
        // be detected there even for a stuck q.
        let s = seq(&[&[Logic3::One]]);
        assert!(!sim.detects(&Fault::output(q, false), &s));
    }

    #[test]
    fn detected_faults_matches_individual_calls() {
        let n = inverter_ff();
        let sim = FaultSimulator::new(&n).unwrap();
        let faults = full_fault_list(&n);
        let s = seq(&[&[Logic3::Zero], &[Logic3::One], &[Logic3::Zero]]);
        let bulk = sim.detected_faults(&faults, &s);
        for (f, &d) in faults.iter().zip(&bulk) {
            assert_eq!(sim.detects(f, &s), d, "{}", f.describe(&n));
        }
        assert!(bulk.iter().any(|&d| d), "sequence should detect something");
    }
}
