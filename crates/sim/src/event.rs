//! Event-driven incremental multi-time-frame simulation.
//!
//! [`EventSim`] maintains the three-valued values of an iterative logic array
//! (`window` frames × all nodes) under incremental primary-input assignments.
//! Instead of re-simulating the whole window after every assignment, only the
//! affected cone is re-evaluated: a levelized event queue recomputes fanouts
//! of changed values in topological order and crosses a flip-flop boundary
//! into the next frame only when the flip-flop's data input actually changed.
//! Every value write is recorded on a trail, so a branch-and-bound search can
//! undo to any earlier [`EventSim::mark`] in time proportional to the number
//! of changes, mirroring the trail-based undo of the incremental implication
//! layer in `sla-atpg` (the two compose on the same decide/backtrack
//! protocol).
//!
//! The machine optionally carries a single stuck-at [`Fault`] with the exact
//! semantics of the ATPG test generator's faulty machine: the faulted output
//! line is held at the stuck value in every frame, and an input-pin fault is
//! applied when evaluating the faulted gate. A good machine is simply an
//! `EventSim` without a fault.
//!
//! Along a decision path three-valued simulation is monotone — assignments
//! only refine `X` to a binary value — so the change list of an assignment is
//! exactly the set of values that *became binary*. That event stream is what
//! D-frontier maintenance and the incremental implication layer consume.

use crate::eval::{eval_gate3, eval_gate3_at};
use crate::fault::{Fault, FaultSite};
use crate::value::Logic3;
use crate::Result;
use sla_netlist::levelize::{levelize, Levelization};
use sla_netlist::{Netlist, NetlistCsr, NodeId, NodeKind};

/// Event-driven, trail-undoable simulation of `window` time frames.
#[derive(Debug, Clone)]
pub struct EventSim<'a> {
    netlist: &'a Netlist,
    /// Raw arena view; the event loop indexes the CSR arrays directly. Its
    /// `level` slice doubles as the per-node logic level within a frame:
    /// frame inputs (primary inputs and sequential elements) are 0, a gate is
    /// one above its deepest fanin. Events are drained in `(frame, level)`
    /// order — same-level nodes are independent, so every node is recomputed
    /// after all of its same-frame fanins.
    csr: NetlistCsr<'a>,
    window: usize,
    num_nodes: usize,
    fault: Option<Fault>,
    /// Number of level buckets per frame (`max_level + 1`).
    levels_per_frame: usize,
    /// Flat `(frame * num_nodes + node)` values.
    values: Vec<Logic3>,
    /// Deduplication flags for the event queue, per slot.
    queued: Vec<bool>,
    /// Pending events, bucketed by `frame * levels_per_frame + level`. An
    /// event only ever schedules strictly later buckets (same-frame fanouts
    /// sit on higher levels, flip-flop crossings on the next frame's level
    /// 0), so one forward sweep drains everything — O(1) per event where a
    /// binary heap paid a logarithmic push/pop with branchy compares on this
    /// innermost search-loop path.
    buckets: Vec<Vec<u32>>,
    /// Number of events currently queued across all buckets, so a drain
    /// sweep stops as soon as the queue is empty instead of scanning the
    /// remaining (frame × level) buckets.
    pending: usize,
    /// Undo trail of `(slot, previous value)` pairs.
    trail: Vec<(u32, Logic3)>,
    /// Slots changed by the most recent [`EventSim::assign`] (after
    /// construction: the slots holding a binary initial value).
    changed: Vec<u32>,
}

impl<'a> EventSim<'a> {
    /// Builds a machine over `window` frames, levelizing the netlist.
    ///
    /// All primary inputs start unassigned (`X`), the initial state is `X`,
    /// and the one-time full evaluation fills in everything that is binary
    /// regardless of assignments (constants, stuck fault sites and their
    /// cones). [`EventSim::changed`] holds those initially binary slots.
    ///
    /// # Errors
    ///
    /// Returns a levelization error if the combinational logic is cyclic.
    pub fn new(netlist: &'a Netlist, window: usize, fault: Option<Fault>) -> Result<Self> {
        let levels = levelize(netlist)?;
        Ok(EventSim::with_levels(netlist, &levels, window, fault))
    }

    /// Builds a machine reusing a precomputed [`Levelization`] (the hot path
    /// for callers that open many windows over the same netlist).
    pub fn with_levels(
        netlist: &'a Netlist,
        levels: &Levelization,
        window: usize,
        fault: Option<Fault>,
    ) -> Self {
        let num_nodes = netlist.num_nodes();
        let levels_per_frame = levels.max_level() as usize + 1;
        let mut sim = EventSim {
            netlist,
            csr: netlist.csr(),
            window,
            num_nodes,
            fault,
            levels_per_frame,
            values: vec![Logic3::X; window * num_nodes],
            queued: vec![false; window * num_nodes],
            buckets: vec![Vec::new(); window * levels_per_frame],
            pending: 0,
            trail: Vec::new(),
            changed: Vec::new(),
        };
        sim.init(levels);
        sim
    }

    /// One-time from-scratch evaluation of the whole window (the base state
    /// the trail never unwinds past).
    fn init(&mut self, levels: &Levelization) {
        self.eval_frames(levels, 0);
        self.reset_changed_to_binary();
    }

    /// From-scratch evaluation of frames `from..window` (earlier frames must
    /// already hold their base values — frame `from` reads its state from
    /// frame `from - 1`).
    fn eval_frames(&mut self, levels: &Levelization, from: usize) {
        for frame in from..self.window {
            let base = frame * self.num_nodes;
            for &pi in self.netlist.inputs() {
                self.values[base + pi.index()] = self.frame_input_value(pi);
            }
            for s in self.netlist.sequential_elements() {
                self.values[base + s.index()] = self.compute(frame, s);
            }
            for &id in levels.order() {
                self.values[base + id.index()] = self.compute(frame, id);
            }
        }
    }

    /// Sets [`EventSim::changed`] to every binary slot of the window — the
    /// post-construction contract consumers use to seed themselves.
    fn reset_changed_to_binary(&mut self) {
        self.changed = (0..self.values.len())
            .filter(|&slot| self.values[slot].is_binary())
            .map(|slot| slot as u32)
            .collect();
    }

    /// Widens the window to `new_window` frames **in place**, reusing the
    /// already evaluated prefix: values propagate strictly frame-forward, so
    /// the base values of frames `0..window` are unchanged by widening and
    /// only the appended frames are evaluated (seeded from the last old
    /// frame's next state). The result is bit-identical to constructing a
    /// fresh machine at `new_window` — the savings are what the geometric
    /// window growth of the test generator spends rebuilding otherwise.
    ///
    /// The machine must be at its base state: every assignment undone
    /// ([`EventSim::undo_to`] to mark 0). Afterwards [`EventSim::changed`]
    /// again lists every binary slot of the (new) whole window, exactly as
    /// after construction.
    ///
    /// # Panics
    ///
    /// Panics when assignments are still applied or the window would shrink.
    pub fn grow(&mut self, levels: &Levelization, new_window: usize) {
        assert!(
            self.trail.is_empty(),
            "grow requires the base state — undo all assignments first"
        );
        assert!(new_window >= self.window, "the window can only grow");
        let old_window = self.window;
        self.window = new_window;
        self.values.resize(new_window * self.num_nodes, Logic3::X);
        self.queued.resize(new_window * self.num_nodes, false);
        self.buckets
            .resize(new_window * self.levels_per_frame, Vec::new());
        self.eval_frames(levels, old_window);
        self.reset_changed_to_binary();
    }

    /// The value an unassigned primary input presents (stuck faults hold the
    /// line in every frame).
    fn frame_input_value(&self, pi: NodeId) -> Logic3 {
        match self.fault {
            Some(f) if f.site == FaultSite::Output(pi) => Logic3::from_bool(f.stuck_at),
            _ => Logic3::X,
        }
    }

    /// Recomputes the value of `node` in `frame` from its current fanin
    /// values, applying the fault semantics.
    fn compute(&self, frame: usize, id: NodeId) -> Logic3 {
        if let Some(f) = self.fault {
            if f.site == FaultSite::Output(id) {
                return Logic3::from_bool(f.stuck_at);
            }
        }
        let base = frame * self.num_nodes;
        // Hot path: read kind and fanins straight off the CSR arrays instead
        // of materializing a `Node` view per event.
        let fanins = self.csr.fanins(id);
        match self.csr.kind(id) {
            // Inputs hold their assigned value; they are never event targets.
            NodeKind::Input => self.values[base + id.index()],
            NodeKind::Seq(_) => {
                if frame == 0 {
                    Logic3::X // the power-up state is unknown
                } else {
                    self.values[(frame - 1) * self.num_nodes + fanins[0].index()]
                }
            }
            NodeKind::Gate(gate) => match self.fault {
                Some(Fault {
                    site: FaultSite::Input { gate: fg, pin },
                    stuck_at,
                }) if fg == id => eval_gate3(
                    gate,
                    fanins.iter().enumerate().map(|(p, d)| {
                        if p == pin {
                            Logic3::from_bool(stuck_at)
                        } else {
                            self.values[base + d.index()]
                        }
                    }),
                ),
                _ => eval_gate3_at(gate, fanins, &self.values[base..base + self.num_nodes]),
            },
        }
    }

    /// Assigns primary input `pi` in `frame` and propagates the change through
    /// the affected cone (and across flip-flops into later frames).
    /// [`EventSim::changed`] afterwards lists every slot that became binary.
    ///
    /// The slot must currently be unassigned (`X`); a flipped decision must
    /// first be retracted with [`EventSim::undo_to`].
    pub fn assign(&mut self, frame: usize, pi: NodeId, value: bool) {
        debug_assert!(self.netlist.node(pi).is_input(), "assignments target PIs");
        self.changed.clear();
        let slot = frame * self.num_nodes + pi.index();
        // A stuck fault on the input line shadows the assignment, exactly as
        // in the from-scratch reference (the override wins).
        let effective = match self.fault {
            Some(f) if f.site == FaultSite::Output(pi) => Logic3::from_bool(f.stuck_at),
            _ => Logic3::from_bool(value),
        };
        if self.values[slot] == effective {
            return;
        }
        debug_assert_eq!(self.values[slot], Logic3::X, "assignment over a binary PI");
        self.trail.push((slot as u32, self.values[slot]));
        self.values[slot] = effective;
        self.changed.push(slot as u32);
        self.schedule_fanouts(frame, pi);
        self.drain(frame * self.levels_per_frame);
    }

    fn schedule_fanouts(&mut self, frame: usize, id: NodeId) {
        let csr = self.csr;
        for &fo in csr.fanouts(id) {
            // A sequential fanout samples this value as its next state: the
            // event crosses the flip-flop boundary into the next frame.
            let target_frame = if csr.kind(fo).is_sequential() {
                frame + 1
            } else {
                frame
            };
            if target_frame < self.window {
                let slot = target_frame * self.num_nodes + fo.index();
                if !self.queued[slot] {
                    self.queued[slot] = true;
                    let bucket = target_frame * self.levels_per_frame + csr.level(fo) as usize;
                    self.buckets[bucket].push(fo.0);
                    self.pending += 1;
                }
            }
        }
    }

    /// Drains the event buckets in `(frame, level)` order, starting at
    /// `from_bucket` (no event can sit below the triggering assignment's
    /// frame). Each slot is recomputed at most once: a recompute at bucket
    /// `b` only ever schedules buckets strictly greater than `b`, so one
    /// forward sweep is complete.
    fn drain(&mut self, from_bucket: usize) {
        for bucket in from_bucket..self.buckets.len() {
            if self.pending == 0 {
                break;
            }
            if self.buckets[bucket].is_empty() {
                continue;
            }
            let frame = bucket / self.levels_per_frame;
            let base = frame * self.num_nodes;
            // A bucket never grows while it drains (all scheduled buckets
            // are strictly later), so the swap-out is safe and keeps the
            // allocation for reuse.
            let mut nodes = std::mem::take(&mut self.buckets[bucket]);
            self.pending -= nodes.len();
            for &nidx in &nodes {
                let id = NodeId(nidx);
                let slot = base + id.index();
                self.queued[slot] = false;
                let new = self.compute(frame, id);
                if new == self.values[slot] {
                    continue;
                }
                self.trail.push((slot as u32, self.values[slot]));
                self.values[slot] = new;
                self.changed.push(slot as u32);
                self.schedule_fanouts(frame, id);
            }
            nodes.clear();
            self.buckets[bucket] = nodes;
        }
    }

    /// Current trail position; pass to [`EventSim::undo_to`] to return here.
    pub fn mark(&self) -> usize {
        self.trail.len()
    }

    /// Unwinds every value change recorded after `mark` (newest first).
    pub fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let (slot, prev) = self.trail.pop().expect("trail entry");
            self.values[slot as usize] = prev;
        }
    }

    /// Number of frames in the window.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of nodes per frame.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The fault injected into this machine, if any.
    pub fn fault(&self) -> Option<&Fault> {
        self.fault.as_ref()
    }

    /// Value of `node` in `frame`.
    #[inline]
    pub fn value(&self, frame: usize, node: NodeId) -> Logic3 {
        self.values[frame * self.num_nodes + node.index()]
    }

    /// All values of one frame, indexed by node id.
    pub fn frame(&self, frame: usize) -> &[Logic3] {
        &self.values[frame * self.num_nodes..(frame + 1) * self.num_nodes]
    }

    /// The whole window as one flat `(frame * num_nodes + node)` slice.
    pub fn values(&self) -> &[Logic3] {
        &self.values
    }

    /// Slots (`frame * num_nodes + node`) that became binary in the most
    /// recent [`EventSim::assign`] call — or, straight after construction, the
    /// slots binary in the initial evaluation. Stale after
    /// [`EventSim::undo_to`].
    pub fn changed(&self) -> &[u32] {
        &self.changed
    }

    /// The window as per-frame vectors (convenience for tests and the
    /// from-scratch reference comparisons).
    pub fn to_frames(&self) -> Vec<Vec<Logic3>> {
        (0..self.window).map(|t| self.frame(t).to_vec()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sla_netlist::{GateType, NetlistBuilder};

    /// Sequential circuit: q captures NAND(a, b), o = NOT q.
    fn pipelined() -> Netlist {
        let mut b = NetlistBuilder::new("pipe");
        b.input("a");
        b.input("b");
        b.gate("g", GateType::Nand, &["a", "b"]).unwrap();
        b.dff("q", "g").unwrap();
        b.gate("o", GateType::Not, &["q"]).unwrap();
        b.output("o").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn assignments_propagate_across_frames() {
        let n = pipelined();
        let mut sim = EventSim::new(&n, 3, None).unwrap();
        let a = n.require("a").unwrap();
        let b = n.require("b").unwrap();
        let q = n.require("q").unwrap();
        let o = n.require("o").unwrap();
        assert_eq!(sim.value(1, q), Logic3::X);
        sim.assign(0, a, true);
        sim.assign(0, b, true);
        // g = NAND(1,1) = 0 in frame 0, captured by q in frame 1, o = 1.
        assert_eq!(sim.value(1, q), Logic3::Zero);
        assert_eq!(sim.value(1, o), Logic3::One);
        // Frame 2 q depends on frame-1 g which is still X.
        assert_eq!(sim.value(2, q), Logic3::X);
    }

    #[test]
    fn undo_restores_previous_values() {
        let n = pipelined();
        let mut sim = EventSim::new(&n, 2, None).unwrap();
        let a = n.require("a").unwrap();
        let b = n.require("b").unwrap();
        let q = n.require("q").unwrap();
        let mark = sim.mark();
        sim.assign(0, a, true);
        sim.assign(0, b, true);
        assert_eq!(sim.value(1, q), Logic3::Zero);
        sim.undo_to(mark);
        assert_eq!(sim.value(0, a), Logic3::X);
        assert_eq!(sim.value(1, q), Logic3::X);
        // Re-deciding after the undo works.
        sim.assign(0, a, false);
        assert_eq!(sim.value(1, q), Logic3::One, "NAND with a controlling 0");
    }

    #[test]
    fn changed_lists_newly_binary_slots() {
        let n = pipelined();
        let mut sim = EventSim::new(&n, 2, None).unwrap();
        let a = n.require("a").unwrap();
        sim.assign(0, a, false);
        let g = n.require("g").unwrap();
        let q = n.require("q").unwrap();
        let nn = n.num_nodes();
        let changed: Vec<usize> = sim.changed().iter().map(|&s| s as usize).collect();
        assert!(changed.contains(&a.index()));
        assert!(changed.contains(&g.index()), "NAND forced to 1");
        assert!(changed.contains(&(nn + q.index())), "captured next frame");
        for &slot in sim.changed() {
            assert!(sim.values()[slot as usize].is_binary());
        }
    }

    #[test]
    fn output_fault_holds_the_line_in_every_frame() {
        let n = pipelined();
        let g = n.require("g").unwrap();
        let q = n.require("q").unwrap();
        let fault = Fault::output(g, true);
        let mut sim = EventSim::new(&n, 2, Some(fault)).unwrap();
        let a = n.require("a").unwrap();
        let b = n.require("b").unwrap();
        sim.assign(0, a, true);
        sim.assign(0, b, true);
        // Good value would be 0; the stuck line stays 1, q captures 1.
        assert_eq!(sim.value(0, g), Logic3::One);
        assert_eq!(sim.value(1, q), Logic3::One);
    }

    #[test]
    fn input_pin_fault_applies_only_to_the_faulted_gate() {
        let mut b = NetlistBuilder::new("pinfault");
        b.input("a");
        b.gate("g", GateType::And, &["a", "a"]).unwrap();
        b.gate("h", GateType::Buf, &["a"]).unwrap();
        b.output("g").unwrap();
        b.output("h").unwrap();
        let n = b.build().unwrap();
        let g = n.require("g").unwrap();
        let mut sim = EventSim::new(&n, 1, Some(Fault::input(g, 0, false))).unwrap();
        let a = n.require("a").unwrap();
        sim.assign(0, a, true);
        // Pin 0 of g reads the stuck 0; the branch to h is healthy.
        assert_eq!(sim.value(0, g), Logic3::Zero);
        assert_eq!(sim.value(0, n.require("h").unwrap()), Logic3::One);
    }

    #[test]
    fn grow_matches_fresh_construction() {
        let n = pipelined();
        let levels = levelize(&n).unwrap();
        let g = n.require("g").unwrap();
        for fault in [None, Some(Fault::output(g, true))] {
            let mut grown = EventSim::with_levels(&n, &levels, 1, fault);
            // Decide, undo to base, then grow 1 -> 2 -> 4.
            let a = n.require("a").unwrap();
            let mark = grown.mark();
            grown.assign(0, a, true);
            grown.undo_to(mark);
            for w in [2usize, 4] {
                grown.grow(&levels, w);
                let fresh = EventSim::with_levels(&n, &levels, w, fault);
                assert_eq!(grown.values(), fresh.values(), "window {w}");
                assert_eq!(grown.changed(), fresh.changed(), "window {w}");
                assert_eq!(grown.window(), fresh.window());
            }
            // The grown machine keeps working incrementally.
            let b = n.require("b").unwrap();
            let q = n.require("q").unwrap();
            grown.assign(0, a, true);
            grown.assign(0, b, true);
            let mut fresh = EventSim::with_levels(&n, &levels, 4, fault);
            fresh.assign(0, a, true);
            fresh.assign(0, b, true);
            assert_eq!(grown.value(1, q), fresh.value(1, q));
            assert_eq!(grown.values(), fresh.values());
        }
    }

    #[test]
    #[should_panic(expected = "base state")]
    fn grow_rejects_applied_assignments() {
        let n = pipelined();
        let levels = levelize(&n).unwrap();
        let mut sim = EventSim::with_levels(&n, &levels, 1, None);
        sim.assign(0, n.require("a").unwrap(), true);
        sim.grow(&levels, 2);
    }

    #[test]
    fn initial_binaries_cover_constants() {
        let mut b = NetlistBuilder::new("consts");
        b.input("a");
        b.gate("one", GateType::Const1, &[]).unwrap();
        b.gate("g", GateType::And, &["a", "one"]).unwrap();
        b.output("g").unwrap();
        let n = b.build().unwrap();
        let sim = EventSim::new(&n, 2, None).unwrap();
        let one = n.require("one").unwrap();
        assert_eq!(sim.value(0, one), Logic3::One);
        assert_eq!(sim.value(1, one), Logic3::One);
        let nn = n.num_nodes();
        assert!(sim.changed().contains(&(one.index() as u32)));
        assert!(sim.changed().contains(&((nn + one.index()) as u32)));
    }
}
