//! Combinational gate-equivalence detection by parallel-pattern simulation.
//!
//! The paper (§3.1) uses combinationally equivalent gates to let values
//! propagate further during three-valued learning simulation: when one member
//! of an equivalence class obtains a binary value, the others are set too.
//! Equivalences (including complemented equivalences) are identified by
//! simulating many random patterns 64 at a time and grouping gates with equal
//! or complementary signatures; for circuits with few frame inputs the
//! signatures are exhaustive and the classes are exact.

use crate::eval::eval_gate64;
use crate::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sla_netlist::levelize::levelize;
use sla_netlist::{Netlist, NodeId, NodeKind};
use std::collections::BTreeMap;

/// Configuration of the equivalence-detection pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EquivConfig {
    /// Number of 64-bit pattern words simulated when sampling randomly.
    pub random_words: usize,
    /// Seed of the deterministic random pattern generator.
    pub seed: u64,
    /// If the number of frame inputs (primary inputs + sequential outputs) is
    /// at most this, signatures are computed exhaustively and classes are exact.
    pub exhaustive_input_limit: usize,
}

impl Default for EquivConfig {
    fn default() -> Self {
        EquivConfig {
            random_words: 8,
            seed: 0x5ea1_ea44,
            exhaustive_input_limit: 14,
        }
    }
}

/// A partition of combinational gates into equivalence classes with polarity.
///
/// Each member is stored with a flag telling whether it equals the class
/// representative (`false`) or its complement (`true`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EquivClasses {
    membership: Vec<Option<(u32, bool)>>,
    classes: Vec<Vec<(NodeId, bool)>>,
}

impl EquivClasses {
    /// An empty partition (no equivalences known) over `num_nodes` nodes.
    pub fn empty(num_nodes: usize) -> Self {
        EquivClasses {
            membership: vec![None; num_nodes],
            classes: Vec::new(),
        }
    }

    /// Builds a partition from explicit classes. Each class must have at least
    /// two members; polarity is relative to the first member.
    pub fn from_classes(num_nodes: usize, classes: Vec<Vec<(NodeId, bool)>>) -> Self {
        let mut membership = vec![None; num_nodes];
        let classes: Vec<Vec<(NodeId, bool)>> =
            classes.into_iter().filter(|c| c.len() >= 2).collect();
        for (ci, class) in classes.iter().enumerate() {
            for &(node, inv) in class {
                membership[node.index()] = Some((ci as u32, inv));
            }
        }
        EquivClasses {
            membership,
            classes,
        }
    }

    /// Class index and polarity of a node, if it belongs to a class.
    pub fn class_of(&self, node: NodeId) -> Option<(usize, bool)> {
        self.membership
            .get(node.index())
            .copied()
            .flatten()
            .map(|(c, inv)| (c as usize, inv))
    }

    /// Members of a class (node, polarity relative to the representative).
    pub fn members(&self, class: usize) -> &[(NodeId, bool)] {
        &self.classes[class]
    }

    /// Number of classes with at least two members.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Returns `true` when no equivalences are recorded.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }
}

/// Finds candidate combinational equivalence classes among the gates of the
/// netlist (exact classes when the circuit has few frame inputs, signature
/// based otherwise).
///
/// # Errors
///
/// Returns an error if the combinational logic cannot be levelized.
pub fn find_equivalences(netlist: &Netlist, config: &EquivConfig) -> Result<EquivClasses> {
    let levels = levelize(netlist)?;
    let frame_inputs: Vec<NodeId> = netlist
        .iter()
        .filter(|(_, n)| n.is_input() || n.is_sequential())
        .map(|(id, _)| id)
        .collect();

    let exhaustive = frame_inputs.len() <= config.exhaustive_input_limit;
    let words = if exhaustive {
        (1usize << frame_inputs.len()).div_ceil(64)
    } else {
        config.random_words.max(1)
    };

    let n = netlist.num_nodes();
    let mut signatures: Vec<Vec<u64>> = vec![Vec::with_capacity(words); n];
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut word_values = vec![0u64; n];

    for w in 0..words {
        // Assign frame-input patterns for this word.
        for (ord, &id) in frame_inputs.iter().enumerate() {
            let pattern = if exhaustive {
                exhaustive_word(ord, w)
            } else {
                rng.gen::<u64>()
            };
            word_values[id.index()] = pattern;
        }
        for &id in levels.order() {
            let node = netlist.node(id);
            let NodeKind::Gate(gate) = node.kind else {
                continue;
            };
            word_values[id.index()] =
                eval_gate64(gate, node.fanins.iter().map(|f| word_values[f.index()]));
        }
        for (id, _) in netlist.iter() {
            signatures[id.index()].push(word_values[id.index()]);
        }
    }

    // Mask off unused pattern bits of the last word in exhaustive mode so that
    // complements compare correctly.
    if exhaustive {
        let total_patterns = 1usize << frame_inputs.len();
        let used_in_last = total_patterns - (words - 1) * 64;
        if used_in_last < 64 {
            let mask = (1u64 << used_in_last) - 1;
            for sig in &mut signatures {
                if let Some(last) = sig.last_mut() {
                    *last &= mask;
                }
            }
        }
    }

    // Group gates by canonical signature (min of signature and complement).
    let mask_last = if exhaustive {
        let total_patterns = 1usize << frame_inputs.len();
        let used_in_last = total_patterns - (words - 1) * 64;
        if used_in_last < 64 {
            (1u64 << used_in_last) - 1
        } else {
            u64::MAX
        }
    } else {
        u64::MAX
    };

    let canonical = |sig: &[u64]| -> (Vec<u64>, bool) {
        let mut comp: Vec<u64> = sig.iter().map(|w| !w).collect();
        if let Some(last) = comp.last_mut() {
            *last &= mask_last;
        }
        if comp < sig.to_vec() {
            (comp, true)
        } else {
            (sig.to_vec(), false)
        }
    };

    // A BTreeMap so `into_values` below walks signatures in sorted order —
    // the class list is re-sorted by leader afterwards, but the iteration
    // itself must not depend on hash-insertion history (fast-map-iteration).
    let mut groups: BTreeMap<Vec<u64>, Vec<(NodeId, bool)>> = BTreeMap::new();
    for id in netlist.gates() {
        let (canon, inverted) = canonical(&signatures[id.index()]);
        groups.entry(canon).or_default().push((id, inverted));
    }

    let mut classes: Vec<Vec<(NodeId, bool)>> = groups
        .into_values()
        .filter(|members| members.len() >= 2)
        .map(|mut members| {
            members.sort_by_key(|(id, _)| *id);
            // Normalize polarity relative to the first member.
            let base = members[0].1;
            members
                .into_iter()
                .map(|(id, inv)| (id, inv ^ base))
                .collect()
        })
        .collect();
    classes.sort_by_key(|c| c[0].0);

    Ok(EquivClasses::from_classes(n, classes))
}

/// Bit pattern of exhaustive enumeration: pattern index `p = w*64 + bit`
/// enumerates all input combinations; input `ord` takes bit `ord` of `p`.
fn exhaustive_word(ord: usize, word: usize) -> u64 {
    let mut out = 0u64;
    for bit in 0..64 {
        let pattern = word * 64 + bit;
        if (pattern >> ord) & 1 == 1 {
            out |= 1 << bit;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sla_netlist::{GateType, NetlistBuilder};

    #[test]
    fn detects_identical_and_complemented_gates() {
        let mut b = NetlistBuilder::new("eq");
        b.input("a");
        b.input("b");
        b.gate("g1", GateType::And, &["a", "b"]).unwrap();
        b.gate("g2", GateType::And, &["b", "a"]).unwrap();
        b.gate("g3", GateType::Nand, &["a", "b"]).unwrap();
        b.gate("g4", GateType::Or, &["a", "b"]).unwrap();
        b.output("g3").unwrap();
        b.output("g4").unwrap();
        b.output("g1").unwrap();
        b.output("g2").unwrap();
        let n = b.build().unwrap();
        let eq = find_equivalences(&n, &EquivConfig::default()).unwrap();
        let g1 = n.require("g1").unwrap();
        let g2 = n.require("g2").unwrap();
        let g3 = n.require("g3").unwrap();
        let g4 = n.require("g4").unwrap();
        let (c1, p1) = eq.class_of(g1).unwrap();
        let (c2, p2) = eq.class_of(g2).unwrap();
        let (c3, p3) = eq.class_of(g3).unwrap();
        assert_eq!(c1, c2);
        assert_eq!(c1, c3);
        assert_eq!(p1, p2);
        assert_ne!(p1, p3, "NAND is the complement of AND");
        assert!(
            eq.class_of(g4).is_none(),
            "OR is not equivalent to AND of 2 inputs"
        );
    }

    #[test]
    fn exhaustive_mode_is_exact_for_small_circuits() {
        // g5 = a AND (b OR b) == a AND b; random signatures might alias, but
        // exhaustive mode must find exactly this equivalence.
        let mut b = NetlistBuilder::new("exact");
        b.input("a");
        b.input("b");
        b.gate("t", GateType::Or, &["b", "b"]).unwrap();
        b.gate("g5", GateType::And, &["a", "t"]).unwrap();
        b.gate("g6", GateType::And, &["a", "b"]).unwrap();
        b.gate("g7", GateType::Xor, &["a", "b"]).unwrap();
        b.output("g5").unwrap();
        b.output("g6").unwrap();
        b.output("g7").unwrap();
        let n = b.build().unwrap();
        let eq = find_equivalences(&n, &EquivConfig::default()).unwrap();
        let g5 = n.require("g5").unwrap();
        let g6 = n.require("g6").unwrap();
        let g7 = n.require("g7").unwrap();
        assert_eq!(eq.class_of(g5).unwrap().0, eq.class_of(g6).unwrap().0);
        assert!(
            eq.class_of(g7).is_none() || eq.class_of(g7).unwrap().0 != eq.class_of(g5).unwrap().0
        );
        // t (buffer of b) is equivalent to... nothing else among gates except itself.
    }

    #[test]
    fn empty_partition_reports_nothing() {
        let eq = EquivClasses::empty(10);
        assert!(eq.is_empty());
        assert_eq!(eq.num_classes(), 0);
        assert!(eq.class_of(NodeId(3)).is_none());
    }

    #[test]
    fn sequential_outputs_are_free_variables() {
        // Gates fed by FF outputs are compared over all FF values, so a gate on
        // a FF is not spuriously equivalent to a gate on an input.
        let mut b = NetlistBuilder::new("seq");
        b.input("a");
        b.dff("q", "a").unwrap();
        b.gate("g1", GateType::Not, &["a"]).unwrap();
        b.gate("g2", GateType::Not, &["q"]).unwrap();
        b.output("g1").unwrap();
        b.output("g2").unwrap();
        let n = b.build().unwrap();
        let eq = find_equivalences(&n, &EquivConfig::default()).unwrap();
        let g1 = n.require("g1").unwrap();
        let g2 = n.require("g2").unwrap();
        // Not being in any class at all is also correct.
        if let (Some((c1, _)), Some((c2, _))) = (eq.class_of(g1), eq.class_of(g2)) {
            assert_ne!(c1, c2);
        }
    }
}
