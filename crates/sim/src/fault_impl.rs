//! Single stuck-at fault model and fault-list generation.

use sla_netlist::{Netlist, NodeId};

/// Location of a stuck-at fault: either the output of a node or a specific
/// input pin of a gate (a fanout branch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultSite {
    /// The output line of a node (gate, primary input or sequential element).
    Output(NodeId),
    /// Input pin `pin` of gate `gate`.
    Input {
        /// Gate whose input pin is faulty.
        gate: NodeId,
        /// Zero-based fanin position.
        pin: usize,
    },
}

impl FaultSite {
    /// The node the fault is attached to (the gate for input faults).
    pub fn node(self) -> NodeId {
        match self {
            FaultSite::Output(n) => n,
            FaultSite::Input { gate, .. } => gate,
        }
    }
}

/// A single stuck-at fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fault {
    /// Where the fault sits.
    pub site: FaultSite,
    /// Stuck-at value (`false` = stuck-at-0, `true` = stuck-at-1).
    pub stuck_at: bool,
}

impl Fault {
    /// Stuck-at fault on the output of `node`.
    pub fn output(node: NodeId, stuck_at: bool) -> Fault {
        Fault {
            site: FaultSite::Output(node),
            stuck_at,
        }
    }

    /// Stuck-at fault on input pin `pin` of `gate`.
    pub fn input(gate: NodeId, pin: usize, stuck_at: bool) -> Fault {
        Fault {
            site: FaultSite::Input { gate, pin },
            stuck_at,
        }
    }

    /// Human-readable name, e.g. `g13/2 s-a-1` or `g7 s-a-0`.
    pub fn describe(&self, netlist: &Netlist) -> String {
        let sa = if self.stuck_at { 1 } else { 0 };
        match self.site {
            FaultSite::Output(n) => format!("{} s-a-{sa}", netlist.node(n).name),
            FaultSite::Input { gate, pin } => {
                format!("{}/{pin} s-a-{sa}", netlist.node(gate).name)
            }
        }
    }
}

/// The complete single stuck-at fault list: both polarities on every node
/// output and on every gate input pin.
pub fn full_fault_list(netlist: &Netlist) -> Vec<Fault> {
    let mut faults = Vec::new();
    for (id, node) in netlist.iter() {
        for v in [false, true] {
            faults.push(Fault::output(id, v));
        }
        if node.is_gate() {
            for pin in 0..node.fanins.len() {
                for v in [false, true] {
                    faults.push(Fault::input(id, pin, v));
                }
            }
        }
    }
    faults
}

/// Checkpoint-collapsed fault list: both polarities on primary inputs,
/// sequential-element outputs, and fanout branches (gate input pins whose
/// driver feeds more than one destination). By the checkpoint theorem this set
/// dominates the full list in the combinational sense; treating flip-flop
/// outputs as pseudo primary inputs extends it to the sequential circuit.
pub fn collapsed_fault_list(netlist: &Netlist) -> Vec<Fault> {
    let mut faults = Vec::new();
    for (id, node) in netlist.iter() {
        if node.is_input() || node.is_sequential() {
            for v in [false, true] {
                faults.push(Fault::output(id, v));
            }
        }
        if node.is_gate() {
            for (pin, driver) in node.fanins.iter().enumerate() {
                if netlist.fanout_count(*driver) > 1 {
                    for v in [false, true] {
                        faults.push(Fault::input(id, pin, v));
                    }
                }
            }
            // Gate outputs that feed a primary output directly are observable
            // checkpoints too; keep them so every output cone has a fault.
            if netlist.outputs().contains(&id) {
                for v in [false, true] {
                    faults.push(Fault::output(id, v));
                }
            }
        }
    }
    faults
}

#[cfg(test)]
mod tests {
    use super::*;
    use sla_netlist::{GateType, NetlistBuilder};

    fn sample() -> Netlist {
        let mut b = NetlistBuilder::new("f");
        b.input("a");
        b.input("b");
        b.gate("g", GateType::And, &["a", "b"]).unwrap();
        b.gate("h", GateType::Not, &["g"]).unwrap();
        b.gate("k", GateType::Or, &["g", "b"]).unwrap();
        b.dff("q", "h").unwrap();
        b.output("k").unwrap();
        b.output("q").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn full_list_counts() {
        let n = sample();
        let faults = full_fault_list(&n);
        // 6 nodes * 2 output faults + gate input pins: g(2) + h(1) + k(2) = 5 pins * 2.
        assert_eq!(faults.len(), 6 * 2 + 5 * 2);
        // No duplicates.
        let mut sorted = faults.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), faults.len());
    }

    #[test]
    fn collapsed_is_smaller_and_contains_checkpoints() {
        let n = sample();
        let full = full_fault_list(&n);
        let collapsed = collapsed_fault_list(&n);
        assert!(collapsed.len() < full.len());
        let a = n.require("a").unwrap();
        assert!(collapsed.contains(&Fault::output(a, false)));
        assert!(collapsed.contains(&Fault::output(a, true)));
        // b and g are fanout stems, so branch faults on their destinations exist.
        let k = n.require("k").unwrap();
        assert!(collapsed.contains(&Fault::input(k, 0, true)));
    }

    #[test]
    fn describe_is_readable() {
        let n = sample();
        let g = n.require("g").unwrap();
        assert_eq!(Fault::output(g, true).describe(&n), "g s-a-1");
        assert_eq!(Fault::input(g, 1, false).describe(&n), "g/1 s-a-0");
    }

    #[test]
    fn fault_site_node_accessor() {
        let n = sample();
        let g = n.require("g").unwrap();
        assert_eq!(FaultSite::Output(g).node(), g);
        assert_eq!(FaultSite::Input { gate: g, pin: 1 }.node(), g);
    }
}
