//! Topological levelization of the combinational portion of a netlist.
//!
//! The learning and simulation engines evaluate the combinational logic of one
//! time frame in a single pass over a precomputed topological order. Primary
//! inputs and sequential-element *outputs* are frame inputs; sequential-element
//! *data fanins* are frame outputs (the next-state function).
//!
//! Since the arena-CSR refactor the levelization is computed once inside
//! [`crate::NetlistBuilder::build`] and stored in the arena; [`levelize`] is a
//! thin checked accessor that materializes the owned [`Levelization`] handle
//! the engines hold on to (or reports the combinational cycle).

use crate::{Netlist, NetlistError, NodeId, Result};

/// A topological ordering of the combinational gates of a netlist, together
/// with per-node logic levels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Levelization {
    order: Vec<NodeId>,
    level: Vec<u32>,
    max_level: u32,
}

impl Levelization {
    /// Combinational gates in topological (fanin-before-fanout) order.
    /// Primary inputs and sequential elements are not included: they carry
    /// frame-input values and need no evaluation.
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Logic level of a node: inputs and sequential elements are level 0,
    /// a gate is 1 + max level of its fanins.
    pub fn level(&self, id: NodeId) -> u32 {
        self.level[id.index()]
    }

    /// Per-node logic levels as a flat slice indexed by node id.
    pub fn levels(&self) -> &[u32] {
        &self.level
    }

    /// Largest logic level in the circuit (sequential depth of one frame).
    pub fn max_level(&self) -> u32 {
        self.max_level
    }
}

/// Returns the [`Levelization`] of the combinational logic.
///
/// The order and levels are precomputed in the arena at build time, so this
/// only copies two flat arrays (engines own their `Levelization` handle
/// independently of the netlist's lifetime).
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] if the combinational gates form
/// a cycle that is not broken by a sequential element.
pub fn levelize(netlist: &Netlist) -> Result<Levelization> {
    match netlist.level_data() {
        Some((order, level, max_level)) => Ok(Levelization {
            order: order.to_vec(),
            level: level.to_vec(),
            max_level,
        }),
        None => Err(NetlistError::CombinationalCycle(
            netlist.first_cycle_gate_name(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GateType, NetlistBuilder};

    #[test]
    fn simple_chain_levels() {
        let mut b = NetlistBuilder::new("chain");
        b.input("a");
        b.gate("g1", GateType::Not, &["a"]).unwrap();
        b.gate("g2", GateType::Not, &["g1"]).unwrap();
        b.gate("g3", GateType::Not, &["g2"]).unwrap();
        b.output("g3").unwrap();
        let n = b.build().unwrap();
        let lv = levelize(&n).unwrap();
        assert_eq!(lv.order().len(), 3);
        assert_eq!(lv.level(n.require("g1").unwrap()), 1);
        assert_eq!(lv.level(n.require("g3").unwrap()), 3);
        assert_eq!(lv.max_level(), 3);
    }

    #[test]
    fn sequential_feedback_is_not_a_cycle() {
        let mut b = NetlistBuilder::new("loop");
        b.input("a");
        b.gate("g", GateType::And, &["a", "q"]).unwrap();
        b.dff("q", "g").unwrap();
        b.output("q").unwrap();
        let n = b.build().unwrap();
        let lv = levelize(&n).unwrap();
        assert_eq!(lv.order().len(), 1);
    }

    #[test]
    fn combinational_cycle_detected() {
        let mut b = NetlistBuilder::new("cyc");
        b.input("a");
        b.gate("g1", GateType::And, &["a", "g2"]).unwrap();
        b.gate("g2", GateType::Not, &["g1"]).unwrap();
        b.output("g2").unwrap();
        let n = b.build().unwrap();
        assert!(matches!(
            levelize(&n),
            Err(NetlistError::CombinationalCycle(_))
        ));
    }

    #[test]
    fn order_respects_fanin_before_fanout() {
        let mut b = NetlistBuilder::new("dag");
        b.input("a");
        b.input("b");
        b.gate("x", GateType::And, &["a", "b"]).unwrap();
        b.gate("y", GateType::Or, &["x", "a"]).unwrap();
        b.gate("z", GateType::Xor, &["y", "x"]).unwrap();
        b.output("z").unwrap();
        let n = b.build().unwrap();
        let lv = levelize(&n).unwrap();
        let pos = |name: &str| {
            lv.order()
                .iter()
                .position(|&id| id == n.require(name).unwrap())
                .unwrap()
        };
        assert!(pos("x") < pos("y"));
        assert!(pos("y") < pos("z"));
    }

    #[test]
    fn levelize_matches_arena_level_view() {
        let mut b = NetlistBuilder::new("view");
        b.input("a");
        b.gate("g1", GateType::Not, &["a"]).unwrap();
        b.gate("g2", GateType::And, &["g1", "a"]).unwrap();
        b.output("g2").unwrap();
        let n = b.build().unwrap();
        let lv = levelize(&n).unwrap();
        let csr = n.csr();
        for (id, _) in n.iter() {
            assert_eq!(lv.level(id), csr.level(id));
        }
        assert_eq!(lv.levels().len(), n.num_nodes());
    }
}
